#!/usr/bin/env bash
# Configure, build and run the test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer.
#
#   tools/sanitize.sh            # full cycle in build-sanitize/
#   tools/sanitize.sh -R Bcp     # extra args are forwarded to ctest
#
# The sanitized tree lives next to the regular build/ so the two configs
# never thrash each other's object files.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${SPIDER_SANITIZE_BUILD_DIR:-$repo_root/build-sanitize}"

# Probe sanitizer support up front so an unsupported toolchain fails
# with one actionable message, not a wall of compile errors. (CMake also
# re-checks at configure time; this catches a missing compiler entirely.)
cxx="${CXX:-c++}"
if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "error: no C++ compiler found (set \$CXX); cannot run sanitizers" >&2
  exit 1
fi
if ! echo 'int main(){return 0;}' | "$cxx" -x c++ - -fsanitize=address,undefined \
     -o /dev/null >/dev/null 2>&1; then
  echo "error: $cxx cannot build with -fsanitize=address,undefined." >&2
  echo "       Install the sanitizer runtimes (libasan/libubsan for GCC," >&2
  echo "       compiler-rt for Clang) or use a toolchain that ships them." >&2
  exit 1
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPIDER_SANITIZE=address,undefined \
  -DSPIDER_WERROR="${SPIDER_WERROR:-OFF}"

cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error: make UBSan findings fail the run instead of just logging.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
