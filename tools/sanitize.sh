#!/usr/bin/env bash
# Configure, build and run the test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer.
#
#   tools/sanitize.sh            # full cycle in build-sanitize/
#   tools/sanitize.sh -R Bcp     # extra args are forwarded to ctest
#
# The sanitized tree lives next to the regular build/ so the two configs
# never thrash each other's object files.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${SPIDER_SANITIZE_BUILD_DIR:-$repo_root/build-sanitize}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPIDER_SANITIZE=address,undefined

cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error: make UBSan findings fail the run instead of just logging.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
