#!/usr/bin/env bash
# Configure, build and run the test suite under sanitizers. Defaults to
# AddressSanitizer + UndefinedBehaviorSanitizer; set SPIDER_SANITIZE to
# any -fsanitize= list to pick others (TSan and ASan cannot be combined).
#
#   tools/sanitize.sh                        # ASan+UBSan in build-sanitize/
#   tools/sanitize.sh -R Bcp                 # extra args forwarded to ctest
#   SPIDER_SANITIZE=thread tools/sanitize.sh # TSan in build-sanitize-thread/
#
# Each sanitizer set gets its own build tree next to the regular build/
# so the configs never thrash each other's object files.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers="${SPIDER_SANITIZE:-address,undefined}"
if [[ "$sanitizers" == "address,undefined" ]]; then
  default_build_dir="$repo_root/build-sanitize"
else
  default_build_dir="$repo_root/build-sanitize-${sanitizers//[^a-z]/-}"
fi
build_dir="${SPIDER_SANITIZE_BUILD_DIR:-$default_build_dir}"

# Probe sanitizer support up front so an unsupported toolchain fails
# with one actionable message, not a wall of compile errors. (CMake also
# re-checks at configure time; this catches a missing compiler entirely.)
cxx="${CXX:-c++}"
if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "error: no C++ compiler found (set \$CXX); cannot run sanitizers" >&2
  exit 1
fi
if ! echo 'int main(){return 0;}' | "$cxx" -x c++ - "-fsanitize=$sanitizers" \
     -o /dev/null >/dev/null 2>&1; then
  echo "error: $cxx cannot build with -fsanitize=$sanitizers." >&2
  echo "       Install the sanitizer runtimes (libasan/libubsan/libtsan for" >&2
  echo "       GCC, compiler-rt for Clang) or use a toolchain that ships them." >&2
  exit 1
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPIDER_SANITIZE="$sanitizers" \
  -DSPIDER_WERROR="${SPIDER_WERROR:-OFF}"

cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error: make UBSan findings fail the run instead of just logging.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" "$@"
