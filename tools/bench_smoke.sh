#!/usr/bin/env bash
# Reduced-scale benchmark smoke test: run fig8 + fig9 in --quick mode,
# export their metrics and compare key ratios against the checked-in
# expectations in bench/baselines.json. fig8 is additionally re-run with
# --jobs $SPIDER_SMOKE_JOBS (default 4) and its stdout + metrics JSON are
# diffed byte-for-byte against the serial run (DESIGN.md §5f). The
# bench_scale quick tier (1k/2k peers) runs next; its per-row probe
# message counts are compared exactly against the scale_rows baseline and
# its BENCH_scale.json lands at $SPIDER_SCALE_JSON_OUT for CI to archive.
# A third scale pass re-runs the quick tier with --build-jobs
# $SPIDER_SMOKE_JOBS (parallel world construction, DESIGN.md §5k) and
# byte-diffs its stdout against the serial build.
# The serving bench (bench_serve --quick) runs next, serial and --jobs,
# with the same byte-diff discipline; every counter a serve_rows baseline
# row pins (arrivals/established/rejected, plus retries/retry_gaveups on
# the closed-loop cell) is compared exactly and its BENCH_serve.json
# lands at $SPIDER_SERVE_JSON_OUT. The community-partitioned two-tier
# sweep (bench_communities --quick) runs last — serial, --jobs, and
# --build-jobs byte-diffed — with its per-row counters pinned against
# communities_rows and its JSON at $SPIDER_COMMUNITIES_JSON_OUT.
#
#   tools/bench_smoke.sh                 # uses ./build
#   SPIDER_BUILD_DIR=build-ci tools/bench_smoke.sh
#   SPIDER_SMOKE_JOBS=8 tools/bench_smoke.sh
#   SPIDER_SCALE_JSON_OUT=$PWD/BENCH_scale.json tools/bench_smoke.sh
#   SPIDER_SERVE_JSON_OUT=$PWD/BENCH_serve.json tools/bench_smoke.sh
#   SPIDER_SMOKE_XL=1 tools/bench_smoke.sh      # adds the 500k-peer row
#
# With SPIDER_SMOKE_XL=1 the --xl --quick tier also runs: one 500k-peer
# world built through the landmark estimator (DESIGN.md §5h), depth-2
# row only (~10 min single-threaded). The binary self-asserts its RSS
# and wall-clock budgets (non-zero exit on breach), and the xl row joins
# the exact probe-message comparison below, keyed estimator-aware. Its
# JSON lands at $SPIDER_SCALE_XL_JSON_OUT.
#
# The runs are deterministic (fixed seed), so a failure means a real
# behavior change: either a regression, or an intentional tuning that
# must update bench/baselines.json in the same commit.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${SPIDER_BUILD_DIR:-$repo_root/build}"
smoke_jobs="${SPIDER_SMOKE_JOBS:-4}"
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
scale_json="${SPIDER_SCALE_JSON_OUT:-$out_dir/BENCH_scale.json}"
serve_json="${SPIDER_SERVE_JSON_OUT:-$out_dir/BENCH_serve.json}"
communities_json="${SPIDER_COMMUNITIES_JSON_OUT:-$out_dir/BENCH_communities.json}"
smoke_xl="${SPIDER_SMOKE_XL:-0}"
scale_xl_json="${SPIDER_SCALE_XL_JSON_OUT:-$out_dir/BENCH_scale_xl.json}"

for bench in bench_fig8_success_ratio bench_fig9_failure_recovery \
             bench_scale bench_serve bench_communities; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

# The two fig8 passes run from their own working directories with the
# same relative --metrics-out path, so their stdout (which echoes the
# metrics path) can be diffed byte-for-byte.
mkdir -p "$out_dir/serial" "$out_dir/jobs"

echo "== fig8 (quick) =="
serial_start=$SECONDS
(cd "$out_dir/serial" && "$build_dir/bench/bench_fig8_success_ratio" \
  --quick --seed 42 --metrics-out fig8.json > fig8.out)
serial_secs=$((SECONDS - serial_start))
tail -n 3 "$out_dir/serial/fig8.out"
cp "$out_dir/serial/fig8.json" "$out_dir/fig8.json"

echo "== fig8 (quick, --jobs $smoke_jobs) =="
jobs_start=$SECONDS
(cd "$out_dir/jobs" && "$build_dir/bench/bench_fig8_success_ratio" \
  --quick --seed 42 --jobs "$smoke_jobs" \
  --metrics-out fig8.json > fig8.out)
jobs_secs=$((SECONDS - jobs_start))
if ! diff -u "$out_dir/serial/fig8.out" "$out_dir/jobs/fig8.out"; then
  echo "FAIL: fig8 stdout differs between --jobs 1 and --jobs $smoke_jobs" >&2
  exit 1
fi
if ! cmp -s "$out_dir/serial/fig8.json" "$out_dir/jobs/fig8.json"; then
  echo "FAIL: fig8 metrics JSON differs between --jobs 1 and --jobs $smoke_jobs" >&2
  exit 1
fi
echo "ok   stdout and metrics byte-identical to serial" \
     "(serial ${serial_secs}s, --jobs $smoke_jobs ${jobs_secs}s)"

echo "== fig9 (quick) =="
"$build_dir/bench/bench_fig9_failure_recovery" --quick --seed 42 \
  --metrics-out "$out_dir/fig9.json" | tail -n 3

# Scaling sweep, quick tier: only deterministic columns reach stdout, so
# the serial and --jobs runs must again match byte-for-byte (modulo the
# banner line that echoes the jobs value itself).
echo "== scale (quick) =="
mkdir -p "$out_dir/scale_serial" "$out_dir/scale_jobs"
(cd "$out_dir/scale_serial" && "$build_dir/bench/bench_scale" \
  --quick --seed 42 --json-out BENCH_scale.json > scale.out)
tail -n +4 "$out_dir/scale_serial/scale.out" | head -n 8
cp "$out_dir/scale_serial/BENCH_scale.json" "$scale_json"
(cd "$out_dir/scale_jobs" && "$build_dir/bench/bench_scale" \
  --quick --seed 42 --jobs "$smoke_jobs" \
  --json-out BENCH_scale.json > scale.out)
if ! diff -u <(sed "s/jobs=$smoke_jobs/jobs=1/" "$out_dir/scale_jobs/scale.out") \
             "$out_dir/scale_serial/scale.out"; then
  echo "FAIL: bench_scale stdout differs between --jobs 1 and --jobs $smoke_jobs" >&2
  exit 1
fi
echo "ok   stdout byte-identical to serial"

# Parallel world construction (DESIGN.md §5k) must not change a single
# output byte either: rebuild the same worlds with --build-jobs and diff
# against the serial run, normalizing only the banner token.
mkdir -p "$out_dir/scale_build_jobs"
(cd "$out_dir/scale_build_jobs" && "$build_dir/bench/bench_scale" \
  --quick --seed 42 --build-jobs "$smoke_jobs" \
  --json-out BENCH_scale.json > scale.out)
if ! diff -u <(sed "s/build-jobs=$smoke_jobs/build-jobs=1/" \
               "$out_dir/scale_build_jobs/scale.out") \
             "$out_dir/scale_serial/scale.out"; then
  echo "FAIL: bench_scale stdout differs between --build-jobs 1 and" \
       "--build-jobs $smoke_jobs" >&2
  exit 1
fi
echo "ok   stdout byte-identical with --build-jobs $smoke_jobs"

# Open-loop serving: the quick tier is fully deterministic in virtual
# time (wall-clock only reaches the JSON), so serial vs --jobs stdout is
# byte-diffed like the others; the bench's own exit code asserts the
# admission/quiesce invariants (utilization <= 1, saturate rejects,
# zero leaked grants/holds).
echo "== serve (quick) =="
mkdir -p "$out_dir/serve_serial" "$out_dir/serve_jobs"
(cd "$out_dir/serve_serial" && "$build_dir/bench/bench_serve" \
  --quick --seed 42 --json-out BENCH_serve.json > serve.out)
tail -n 4 "$out_dir/serve_serial/serve.out"
cp "$out_dir/serve_serial/BENCH_serve.json" "$serve_json"
(cd "$out_dir/serve_jobs" && "$build_dir/bench/bench_serve" \
  --quick --seed 42 --jobs "$smoke_jobs" \
  --json-out BENCH_serve.json > serve.out)
if ! diff -u <(sed "s/jobs=$smoke_jobs/jobs=1/" "$out_dir/serve_jobs/serve.out") \
             "$out_dir/serve_serial/serve.out"; then
  echo "FAIL: bench_serve stdout differs between --jobs 1 and --jobs $smoke_jobs" >&2
  exit 1
fi
echo "ok   stdout byte-identical to serial"

# Community-partitioned two-tier BCP (DESIGN.md §5l): the quick tier is
# one 1k-peer world whose community maps are rebuilt in-bench per count,
# so the serial, --jobs, and --build-jobs passes must all produce
# byte-identical stdout (map fingerprints included — partition
# determinism at any parallelism). The binary self-asserts the C=1
# flat-equivalence oracle; the per-row counters are pinned exactly
# against the communities_rows baseline below.
echo "== communities (quick) =="
mkdir -p "$out_dir/comm_serial" "$out_dir/comm_jobs" "$out_dir/comm_build_jobs"
(cd "$out_dir/comm_serial" && "$build_dir/bench/bench_communities" \
  --quick --seed 42 --json-out BENCH_communities.json > comm.out)
tail -n +4 "$out_dir/comm_serial/comm.out" | head -n 8
cp "$out_dir/comm_serial/BENCH_communities.json" "$communities_json"
(cd "$out_dir/comm_jobs" && "$build_dir/bench/bench_communities" \
  --quick --seed 42 --jobs "$smoke_jobs" \
  --json-out BENCH_communities.json > comm.out)
if ! diff -u <(sed "s/jobs=$smoke_jobs/jobs=1/" "$out_dir/comm_jobs/comm.out") \
             "$out_dir/comm_serial/comm.out"; then
  echo "FAIL: bench_communities stdout differs between --jobs 1 and" \
       "--jobs $smoke_jobs" >&2
  exit 1
fi
(cd "$out_dir/comm_build_jobs" && "$build_dir/bench/bench_communities" \
  --quick --seed 42 --build-jobs "$smoke_jobs" \
  --json-out BENCH_communities.json > comm.out)
if ! diff -u <(sed "s/build-jobs=$smoke_jobs/build-jobs=1/" \
               "$out_dir/comm_build_jobs/comm.out") \
             "$out_dir/comm_serial/comm.out"; then
  echo "FAIL: bench_communities stdout differs between --build-jobs 1 and" \
       "--build-jobs $smoke_jobs" >&2
  exit 1
fi
echo "ok   stdout byte-identical across --jobs and --build-jobs"

# Optional 500k-peer xl row: the landmark-estimated build path, with the
# RSS / wall-clock budget assertion enforced by bench_scale itself.
if [[ "$smoke_xl" == "1" ]]; then
  echo "== scale (--xl, 500k peers) =="
  xl_start=$SECONDS
  "$build_dir/bench/bench_scale" --xl --seed 42 --build-jobs "$smoke_jobs" \
    --json-out "$scale_xl_json" | tail -n 8
  echo "ok   xl sweep within budget ($((SECONDS - xl_start))s)"
else
  scale_xl_json=""
fi

python3 - "$repo_root/bench/baselines.json" "$out_dir" "$scale_json" \
    "$serve_json" "$communities_json" "$scale_xl_json" <<'PY'
import json
import sys

baselines_path, out_dir, scale_json = sys.argv[1], sys.argv[2], sys.argv[3]
serve_json = sys.argv[4]
communities_json = sys.argv[5]
scale_xl_json = sys.argv[6] if len(sys.argv) > 6 else ""
with open(baselines_path) as f:
    baselines = json.load(f)

metrics = {}
failures = 0

# Exact probe-message counts for the bench_scale quick tier (and the xl
# tier when it ran): probing is governed by the β budget, so these are
# deterministic integers — any drift is a protocol change that must
# update scale_rows deliberately. Rows are keyed estimator-aware: the
# same (peers, depth) can legitimately differ between the exact and the
# landmark-estimated world.
def row_key(r):
    return (r["peers"], r["depth"], bool(r.get("estimator", False)))

scale_rows = {}
with open(scale_json) as f:
    scale_rows.update({row_key(r): r for r in json.load(f)["rows"]})
if scale_xl_json:
    with open(scale_xl_json) as f:
        scale_rows.update({row_key(r): r for r in json.load(f)["rows"]})
for expect in baselines.get("scale_rows", []):
    key = row_key(expect)
    if key[2] and not scale_xl_json:
        continue  # xl rows only checked when the xl tier ran
    row = scale_rows.get(key)
    if row is None:
        print(f"FAIL scale:{key}: row missing from BENCH_scale.json")
        failures += 1
        continue
    actual = row["probe_messages"]
    status = "ok  " if actual == expect["probe_messages"] else "FAIL"
    print(f"{status} scale:peers={expect['peers']},depth={expect['depth']},"
          f"estimator={key[2]}: "
          f"probe_messages={actual} expected={expect['probe_messages']}")
    if actual != expect["probe_messages"]:
        failures += 1
    if key[2] and row.get("est_bound_violations", 0) != 0:
        print(f"FAIL scale:{key}: estimator bound violations "
              f"({row['est_bound_violations']})")
        failures += 1

# Exact per-(cell, phase) counts for the serving quick tier: the open
# loop is deterministic in virtual time, so every integer counter a
# baseline row pins (arrivals / established / rejected, plus retries /
# retry_gaveups on the closed-loop cell) is compared exactly — drift
# means the traffic, admission, or retry behaviour changed and the
# baseline must be updated deliberately in the same commit.
with open(serve_json) as f:
    serve_rows = {(r["cell"], r["phase"]): r for r in json.load(f)["rows"]}
for expect in baselines.get("serve_rows", []):
    key = (expect["cell"], expect["phase"])
    row = serve_rows.get(key)
    if row is None:
        print(f"FAIL serve:{key}: row missing from BENCH_serve.json")
        failures += 1
        continue
    for field in sorted(k for k in expect if k not in ("cell", "phase")):
        actual = row[field]
        status = "ok  " if actual == expect[field] else "FAIL"
        print(f"{status} serve:{key[0]}/{key[1]}: {field}={actual} "
              f"expected={expect[field]}")
        if actual != expect[field]:
            failures += 1
# Exact per-(peers, communities) counters for the two-tier quick tier:
# every integer a communities_rows baseline row pins (successes, probe /
# discovery messages, coarse probes, pruned communities) is compared
# exactly — drift means the partitioning or the coarse-tier selection
# changed and the baseline must be updated deliberately.
with open(communities_json) as f:
    comm_rows = {(r["peers"], r["communities"]): r
                 for r in json.load(f)["rows"]}
for expect in baselines.get("communities_rows", []):
    key = (expect["peers"], expect["communities"])
    row = comm_rows.get(key)
    if row is None:
        print(f"FAIL communities:{key}: row missing from "
              "BENCH_communities.json")
        failures += 1
        continue
    for field in sorted(k for k in expect if k not in ("peers", "communities")):
        actual = row[field]
        status = "ok  " if actual == expect[field] else "FAIL"
        print(f"{status} communities:peers={key[0]},C={key[1]}: "
              f"{field}={actual} expected={expect[field]}")
        if actual != expect[field]:
            failures += 1

for check in baselines["checks"]:
    bench = check["bench"]
    if bench not in metrics:
        with open(f"{out_dir}/{bench}.json") as f:
            metrics[bench] = json.load(f)["counters"]
    counters = metrics[bench]
    num = sum(counters.get(k, 0) for k in check["numerator"])
    den = sum(counters.get(k, 0) for k in check["denominator"])
    if den == 0:
        print(f"FAIL {bench}:{check['name']}: denominator is zero "
              f"({check['denominator']})")
        failures += 1
        continue
    actual = num / den
    delta = abs(actual - check["expected"])
    status = "ok  " if delta <= check["abs_tol"] else "FAIL"
    print(f"{status} {bench}:{check['name']}: actual={actual:.4f} "
          f"expected={check['expected']} (+/- {check['abs_tol']})")
    if delta > check["abs_tol"]:
        failures += 1

if failures:
    print(f"\n{failures} baseline check(s) failed. If the change is "
          "intentional, update bench/baselines.json in the same commit.")
    sys.exit(1)
print("\nall baseline checks passed")
PY
