#!/usr/bin/env bash
# Long-running lifecycle soak: the lease_soak_test suite at SPIDER_SOAK_SCALE
# times its default round count (default 10x). The test drives N concurrent
# sessions through message loss, peer churn and mid-session source crashes
# with leases + anti-entropy enabled, and asserts zero leaked grants/holds
# after quiesce.
#
#   tools/soak.sh                          # 10x rounds against ./build
#   SPIDER_SOAK_SCALE=50 tools/soak.sh     # longer
#   SPIDER_BUILD_DIR=build-ci tools/soak.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${SPIDER_BUILD_DIR:-$repo_root/build}"
scale="${SPIDER_SOAK_SCALE:-10}"

if [[ ! -x "$build_dir/tests/lease_soak_test" ]]; then
  echo "error: $build_dir/tests/lease_soak_test not built" >&2
  echo "       (cmake --build $build_dir --target lease_soak_test)" >&2
  exit 1
fi

echo "== lease soak, ${scale}x rounds =="
SPIDER_SOAK_SCALE="$scale" "$build_dir/tests/lease_soak_test"
