// Resource allocation with soft (probe-time) and confirmed (session-time)
// reservations.
//
// BCP step 2.1 requires each probed peer to *temporarily* allocate the
// resources a probe asks for, so that concurrent probes cannot jointly
// admit sessions beyond capacity; the allocation is cancelled after a
// timeout unless a confirmation message arrives (§4.2).  This manager
// implements that protocol state for both end-system resources (per peer)
// and bandwidth (per overlay link):
//
//   soft_reserve_*()  -> HoldId      (expires at `expire_at` unless...)
//   confirm(hold, session)           (...converted to a session grant)
//   release_hold(hold)               (explicit early cancel)
//   release_session(session)         (teardown / failure)
//
// Expiry is lazy: expired holds are purged whenever availability for the
// same peer/link is inspected, so no simulator events are needed. A purge
// is complete — detecting an expired hold on one link removes it from
// every structure it touches — and sweep_expired() purges everything at
// once, so the outstanding-hold gauge never lags availability.
//
// Session grants are optionally *leased* (set_lease_ttl_ms > 0): each
// granted session carries a renew_by deadline that renew_session() pushes
// forward, and reclaim_expired_leases() returns un-renewed grants to
// availability — the session-time half of the paper's soft-state story,
// protecting capacity from sources that crashed or whose teardown was
// lost. The default ttl of 0 means grants never expire (seed behaviour,
// bit-for-bit).
//
// Admission control (set_admission, off by default): under sustained
// open-loop load, letting every arrival probe-and-reserve once granted
// capacity is nearly exhausted just thrashes soft holds — probes reserve,
// fail to find a full graph, and time out while starving each other.
// With a high-water mark configured, admit_setup(cls) gates *new* setups
// before any probing happens: admit while aggregate grant utilization is
// below the mark and nothing is queued, queue (per-class bounded queues)
// while saturated, reject beyond that. Queued work drains in deficit-
// weighted round-robin order across the configured admission classes
// (admission_next_class; one class = plain FIFO, the seed behaviour),
// and the effective mark may be driven by a deterministic AIMD
// controller servoing on observed setup latency / compose-failure rate
// (DESIGN.md §5j). The caller owns the queued work (the allocator has no
// notion of a request); this class owns the decision and the accounting:
// alloc.admission_rejects / admission_queued / admission_queue_wait_ms
// counters, a queue-wait histogram, the queue-depth and admission_mark
// gauges, and per-class queued/reject/starvation counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/deployment.hpp"
#include "service/qos.hpp"
#include "sim/simulator.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace spider::obs

namespace spider::core {

using HoldId = std::uint64_t;
using SessionId = std::uint64_t;
constexpr HoldId kInvalidHold = 0;
constexpr SessionId kInvalidSession = 0;

/// Read interface over resource availability. The live implementation is
/// AllocationManager; the centralized baseline evaluates against a stale
/// snapshot implementing the same interface (that staleness is exactly the
/// imprecision the paper's §1 critique of global-state schemes describes).
class AvailabilityView {
 public:
  virtual ~AvailabilityView() = default;
  virtual service::Resources peer_available(PeerId peer) = 0;
  virtual double link_available_kbps(overlay::OverlayLinkId link) = 0;

  /// Min available bandwidth along a path's links (infinity for empty).
  double path_available_kbps(const overlay::OverlayPath& path) {
    double avail = std::numeric_limits<double>::infinity();
    for (overlay::OverlayLinkId link : path.links) {
      avail = std::min(avail, link_available_kbps(link));
    }
    return avail;
  }
};

class AllocationManager : public AvailabilityView {
 public:
  AllocationManager(Deployment& deployment, sim::Simulator& simulator)
      : deployment_(&deployment),
        sim_(&simulator),
        peer_state_(deployment.peer_count()),
        link_state_(deployment.overlay().link_count()) {}

  // ----- availability -----

  /// Peer resources not held or granted (soft holds that expired are
  /// purged first).
  service::Resources peer_available(PeerId peer) override;
  /// Overlay link bandwidth not held or granted.
  double link_available_kbps(overlay::OverlayLinkId link) override;

  // ----- soft holds (probe-time) -----

  /// Reserves `amount` on `peer` until `expire_at`; fails (nullopt) if it
  /// does not fit the current availability.
  std::optional<HoldId> soft_reserve_peer(PeerId peer,
                                          const service::Resources& amount,
                                          sim::Time expire_at);
  /// Reserves `kbps` on every link of `path` until `expire_at`; all-or-
  /// nothing.
  std::optional<HoldId> soft_reserve_path(const overlay::OverlayPath& path,
                                          double kbps, sim::Time expire_at);

  /// Converts a pending hold into a grant owned by `session`. Returns
  /// false if the hold already expired or was released.
  bool confirm(HoldId hold, SessionId session);
  /// Cancels a pending hold early (no-op if gone).
  void release_hold(HoldId hold);

  // ----- sessions -----

  SessionId new_session_id() { return next_session_id_++; }
  /// Frees everything granted to `session`.
  void release_session(SessionId session);

  // ----- session leases (soft session-time state) -----

  /// Lease time-to-live for session grants. 0 (the default) disables
  /// leasing entirely: grants are permanent until released, the seed
  /// behaviour. With a positive ttl, confirm()/grant_direct() stamp the
  /// session's `renew_by = now + ttl`, renew_session() refreshes it, and
  /// reclaim_expired_leases() frees sessions that missed their deadline.
  void set_lease_ttl_ms(double ttl_ms) { lease_ttl_ms_ = ttl_ms; }
  double lease_ttl_ms() const { return lease_ttl_ms_; }

  /// Pushes `session`'s lease deadline to now + ttl. No-op (and uncounted)
  /// when leasing is off or the session holds no grants.
  void renew_session(SessionId session);

  /// Reclaims every session whose lease deadline has passed, returning
  /// its grants to availability. Returns the number of sessions freed.
  std::size_t reclaim_expired_leases();

  /// The session's lease deadline, if it is granted and leasing is on.
  std::optional<sim::Time> lease_renew_by(SessionId session) const;

  // Cumulative lease accounting (valid with or without a metrics
  // registry; mirrored into alloc.lease_* counters when one is attached).
  std::uint64_t lease_renewals() const { return lease_renewals_; }
  std::uint64_t lease_expirations() const { return lease_expirations_; }
  double lease_reclaimed_kbps() const { return lease_reclaimed_kbps_; }

  // ----- admission control (steady-state serving) -----

  /// What admit_setup() told the caller to do with a new setup attempt.
  enum class AdmissionDecision { kAdmit, kQueue, kReject };

  /// One weighted admission class. Weights are relative deficit-round-
  /// robin shares: while several classes are backlogged, class i drains
  /// roughly weight_i / Σ weights of the served slots, and any positive
  /// weight guarantees eventual service (no starvation). A near-zero
  /// weight against a huge one degenerates to strict priority.
  struct AdmissionClassConfig {
    double weight = 1.0;
    std::size_t queue_capacity = 0;
  };

  struct AdmissionConfig {
    /// Fraction of aggregate peer grant capacity (max over resource
    /// types) at or above which new setups stop being admitted directly.
    /// Negative (the default) disables admission control entirely:
    /// admit_setup() always says kAdmit and counts nothing.
    double high_water_utilization = -1.0;
    /// How many setups the caller may hold back for retry while
    /// saturated; 0 means saturated arrivals are rejected outright.
    /// Only consulted when `classes` is empty.
    std::size_t queue_capacity = 0;
    /// Weighted admission classes. Empty (the default) configures one
    /// implicit class bounded by `queue_capacity` whose dequeue order is
    /// plain FIFO — bit-for-bit the historical single-queue behaviour.
    std::vector<AdmissionClassConfig> classes;

    // --- adaptive controller (AIMD; inert unless `adaptive`) ---

    /// When true, the effective high-water mark starts at
    /// high_water_utilization and is adjusted by every
    /// admission_controller_tick(): additive increase while the observed
    /// window stays inside both targets, multiplicative decrease when
    /// either is breached. When false the mark is the configured
    /// constant, exactly as before.
    bool adaptive = false;
    /// Mean virtual setup latency (successful setups, per window) above
    /// which the controller backs off; <= 0 disables the latency signal.
    double target_setup_ms = -1.0;
    /// Compose-failure fraction (failed / attempted setups, per window)
    /// above which the controller backs off; < 0 disables that signal.
    double target_failure_rate = -1.0;
    /// Additive increase per calm tick (utilization fraction).
    double increase_step = 0.02;
    /// Multiplicative decrease applied on a breached tick.
    double decrease_factor = 0.7;
    /// The adaptive mark is clamped to [mark_floor, mark_ceiling].
    double mark_floor = 0.05;
    double mark_ceiling = 0.95;
  };

  /// Installs (or, with the default config, removes) the admission gate.
  /// Also re-snapshots aggregate peer capacity, so call it after the
  /// deployment's capacities are final. Per-class queue depths survive a
  /// re-arm with the same class count (re-arming while queued is how the
  /// tests move the mark); changing the class count requires an empty
  /// queue. Class weights must be positive.
  void set_admission(const AdmissionConfig& config);
  const AdmissionConfig& admission() const { return admission_; }

  /// Fraction of aggregate *live* peer capacity currently granted to
  /// sessions, maximized over resource types (cpu, memory). Soft holds
  /// are deliberately excluded: they self-expire, and counting them
  /// would make the gate oscillate with probe traffic. The capacity
  /// denominator tracks peer liveness lazily: kill/revive bumps the
  /// deployment's liveness epoch and the next query recomputes the
  /// snapshot, so churn cannot leave the gate judging against capacity
  /// that no longer exists. 0 when no live peer has capacity.
  double grant_utilization();

  /// Gate for one new setup in admission class `cls`. Counts kReject
  /// into admission_rejects and kQueue into admission_queued (and the
  /// queue-depth gauge); the caller must pair every kQueue with exactly
  /// one admission_dequeued() once the setup is served or abandoned.
  /// FIFO across the gate is preserved: while anything is queued (any
  /// class), new arrivals queue behind it even if capacity recovered.
  AdmissionDecision admit_setup(std::size_t cls = 0);

  /// The caller removed one queued setup of class `cls` (served or
  /// timed out) after waiting `wait_ms` of virtual time.
  void admission_dequeued(double wait_ms, std::size_t cls = 0);

  /// Which class's queue head should be served next, consuming that
  /// class's deficit: nullopt when nothing is queued or the gate is
  /// closed (so a closed gate can never dequeue-for-service; timeouts go
  /// through admission_dequeued directly). With one class this is plain
  /// FIFO; with several it is deficit-weighted round robin over the
  /// backlogged classes, counting admission_class_skips for every pass
  /// a backlogged class had to wait for credit.
  std::optional<std::size_t> admission_next_class();

  /// True when the gate would admit a *queued* setup right now (below
  /// the effective high-water mark). Used by callers to drain queues.
  bool admission_open();

  // --- adaptive-controller feed (harmless no-ops while static) ---

  /// The caller attempted one admitted setup: `success` says whether it
  /// established, `setup_ms` its virtual setup latency (successes only).
  /// Accumulates the controller's current observation window.
  void admission_observe_setup(bool success, double setup_ms);

  /// One deterministic controller step over the window accumulated since
  /// the previous tick (drive it from a virtual-time timer, never from
  /// wall clock). Applies AIMD to the effective mark when `adaptive`,
  /// publishes the alloc.admission_mark gauge, and resets the window. A
  /// window with no attempted setups holds the mark (no information).
  void admission_controller_tick();

  /// The effective high-water mark admission_open() gates against (the
  /// configured constant when static, the controller's current value
  /// when adaptive; meaningless while admission is disabled).
  double admission_mark() const { return admission_mark_; }

  std::uint64_t admission_rejects() const { return admission_rejects_; }
  std::uint64_t admission_queued() const { return admission_queued_count_; }
  double admission_queue_wait_ms() const { return admission_queue_wait_ms_; }
  std::size_t admission_queue_depth() const { return admission_queue_depth_; }

  // --- per-class accounting (class 0 aliases the implicit class) ---

  std::size_t admission_class_count() const {
    return admission_.classes.empty() ? 1 : admission_.classes.size();
  }
  std::size_t admission_queue_depth(std::size_t cls) const {
    return class_state_.at(cls).depth;
  }
  std::uint64_t admission_class_queued(std::size_t cls) const {
    return class_state_.at(cls).queued;
  }
  std::uint64_t admission_class_rejects(std::size_t cls) const {
    return class_state_.at(cls).rejects;
  }
  /// Starvation counter: passes where the class was backlogged but had
  /// to wait another round for deficit credit.
  std::uint64_t admission_class_skips(std::size_t cls) const {
    return class_state_.at(cls).skips;
  }

  /// Direct session grant without a prior hold (used by the baselines,
  /// which have no probing phase). All-or-nothing across the peer demands
  /// and link demands given. Returns false and changes nothing on failure.
  bool grant_direct(SessionId session,
                    const std::vector<std::pair<PeerId, service::Resources>>&
                        peer_demands,
                    const std::vector<std::pair<overlay::OverlayLinkId, double>>&
                        link_demands);

  // ----- introspection -----

  std::size_t active_holds() const { return holds_.size(); }
  std::size_t active_grants() const { return grants_.size(); }

  /// Purges every expired soft hold right now, across all peers and
  /// links, so availability and the outstanding-hold gauge agree without
  /// waiting for a query to touch each peer.
  void sweep_expired();

  /// Session ids that currently own at least one grant (sorted). The
  /// anti-entropy audit cross-checks this against live sessions.
  std::vector<SessionId> granted_sessions() const;

  /// Aggregate of everything granted to one session.
  struct SessionGrantTotals {
    service::Resources peer_total;     ///< summed component demands
    double link_kbps_total = 0.0;      ///< Σ kbps · links over link grants
    std::size_t grant_count = 0;
  };
  SessionGrantTotals session_grant_totals(SessionId session) const;

  /// Soft-map entries whose hold record no longer exists. Always 0 now
  /// that purges are complete; kept as a cheap consistency probe for
  /// tests (a partial purge regression would make it positive).
  std::size_t dangling_soft_entries() const;

  /// Attaches a metrics registry (null detaches). Publishes cumulative
  /// "alloc.*" counters (reserve/confirm/release/expire outcomes) and
  /// outstanding-hold/grant gauges. Costs one null check per event when
  /// detached.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct PeerHold {
    service::Resources amount;
    sim::Time expire_at;
  };
  struct LinkHold {
    double kbps;
    sim::Time expire_at;
  };
  struct Hold {
    PeerId peer = overlay::kInvalidPeer;  // valid if peer hold
    service::Resources peer_amount;
    std::vector<overlay::OverlayLinkId> links;  // valid if path hold
    double kbps = 0.0;
    sim::Time expire_at = 0.0;
  };
  struct Grant {
    SessionId session;
    PeerId peer = overlay::kInvalidPeer;
    service::Resources peer_amount;
    std::vector<overlay::OverlayLinkId> links;
    double kbps = 0.0;
  };
  struct PeerState {
    service::Resources confirmed;  // sum of grants
    std::unordered_map<HoldId, PeerHold> soft;
  };
  struct LinkState {
    double confirmed_kbps = 0.0;
    std::unordered_map<HoldId, LinkHold> soft;
  };

  void purge_expired_peer(PeerState& state);
  void purge_expired_link(LinkState& state);
  /// Removes one expired hold from every structure it touches (its peer's
  /// soft map, every link's soft map, the hold table) and counts it.
  void purge_hold(HoldId hold);
  void update_outstanding_gauges();
  void stamp_lease(SessionId session);
  void count_lease_reclaim(const std::vector<Grant>& grants);

  Deployment* deployment_;
  sim::Simulator* sim_;
  std::vector<PeerState> peer_state_;
  std::vector<LinkState> link_state_;
  std::unordered_map<HoldId, Hold> holds_;
  std::unordered_map<SessionId, std::vector<Grant>> grants_;
  HoldId next_hold_id_ = 1;
  SessionId next_session_id_ = 1;

  // Admission control (inert while high_water_utilization < 0).
  struct AdmissionClassState {
    std::size_t depth = 0;      ///< entries currently queued
    std::uint64_t queued = 0;   ///< cumulative kQueue decisions
    std::uint64_t rejects = 0;  ///< cumulative kReject decisions
    std::uint64_t skips = 0;    ///< backlogged passes without credit
    double deficit = 0.0;       ///< DRR credit (requests; cost 1 each)
  };
  std::size_t class_queue_capacity(std::size_t cls) const {
    return admission_.classes.empty() ? admission_.queue_capacity
                                      : admission_.classes[cls].queue_capacity;
  }
  void refresh_capacity_snapshot();

  AdmissionConfig admission_;
  /// Running totals of everything granted / capacity of the live peers;
  /// the capacity side is recomputed by set_admission() and lazily
  /// whenever the deployment's liveness epoch moved (churn).
  service::Resources granted_total_;
  service::Resources capacity_total_;
  std::uint64_t capacity_epoch_ = std::uint64_t(-1);
  std::vector<AdmissionClassState> class_state_{AdmissionClassState{}};
  std::size_t drr_cursor_ = 0;
  double admission_mark_ = -1.0;
  std::size_t admission_queue_depth_ = 0;
  std::uint64_t admission_rejects_ = 0;
  std::uint64_t admission_queued_count_ = 0;
  double admission_queue_wait_ms_ = 0.0;
  // Adaptive-controller observation window (since the previous tick).
  std::uint64_t window_attempts_ = 0;
  std::uint64_t window_failures_ = 0;
  std::uint64_t window_setup_count_ = 0;
  double window_setup_sum_ms_ = 0.0;

  // Session leases (empty map while lease_ttl_ms_ == 0).
  double lease_ttl_ms_ = 0.0;
  std::unordered_map<SessionId, sim::Time> lease_renew_by_;
  std::uint64_t lease_renewals_ = 0;
  std::uint64_t lease_expirations_ = 0;
  double lease_reclaimed_kbps_ = 0.0;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_reserved_ = nullptr;
  obs::Counter* m_reserve_failures_ = nullptr;
  obs::Counter* m_confirmed_ = nullptr;
  obs::Counter* m_confirm_failures_ = nullptr;
  obs::Counter* m_released_ = nullptr;
  obs::Counter* m_expired_ = nullptr;
  obs::Counter* m_direct_grants_ = nullptr;
  obs::Counter* m_direct_grant_failures_ = nullptr;
  obs::Gauge* m_holds_outstanding_ = nullptr;
  obs::Gauge* m_grants_outstanding_ = nullptr;
  // Lease counters bind lazily (first event), so runs with leasing off
  // export exactly the same metrics JSON as before leases existed.
  obs::Counter* m_lease_renewals_ = nullptr;
  obs::Counter* m_lease_expirations_ = nullptr;
  obs::Counter* m_lease_reclaimed_kbps_ = nullptr;
  // Admission counters bind lazily too: runs with admission off (or that
  // never saturate) export exactly the same metrics JSON as before.
  obs::Counter* m_admission_rejects_ = nullptr;
  obs::Counter* m_admission_queued_ = nullptr;
  obs::Counter* m_admission_queue_wait_ms_ = nullptr;
  obs::Gauge* m_admission_queue_depth_ = nullptr;
  obs::Histogram* m_admission_queue_wait_hist_ = nullptr;
  obs::Gauge* m_admission_mark_ = nullptr;
};

}  // namespace spider::core
