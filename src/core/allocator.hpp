// Resource allocation with soft (probe-time) and confirmed (session-time)
// reservations.
//
// BCP step 2.1 requires each probed peer to *temporarily* allocate the
// resources a probe asks for, so that concurrent probes cannot jointly
// admit sessions beyond capacity; the allocation is cancelled after a
// timeout unless a confirmation message arrives (§4.2).  This manager
// implements that protocol state for both end-system resources (per peer)
// and bandwidth (per overlay link):
//
//   soft_reserve_*()  -> HoldId      (expires at `expire_at` unless...)
//   confirm(hold, session)           (...converted to a session grant)
//   release_hold(hold)               (explicit early cancel)
//   release_session(session)         (teardown / failure)
//
// Expiry is lazy: expired holds are purged whenever availability for the
// same peer/link is inspected, so no simulator events are needed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/deployment.hpp"
#include "service/qos.hpp"
#include "sim/simulator.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace spider::obs

namespace spider::core {

using HoldId = std::uint64_t;
using SessionId = std::uint64_t;
constexpr HoldId kInvalidHold = 0;
constexpr SessionId kInvalidSession = 0;

/// Read interface over resource availability. The live implementation is
/// AllocationManager; the centralized baseline evaluates against a stale
/// snapshot implementing the same interface (that staleness is exactly the
/// imprecision the paper's §1 critique of global-state schemes describes).
class AvailabilityView {
 public:
  virtual ~AvailabilityView() = default;
  virtual service::Resources peer_available(PeerId peer) = 0;
  virtual double link_available_kbps(overlay::OverlayLinkId link) = 0;

  /// Min available bandwidth along a path's links (infinity for empty).
  double path_available_kbps(const overlay::OverlayPath& path) {
    double avail = std::numeric_limits<double>::infinity();
    for (overlay::OverlayLinkId link : path.links) {
      avail = std::min(avail, link_available_kbps(link));
    }
    return avail;
  }
};

class AllocationManager : public AvailabilityView {
 public:
  AllocationManager(Deployment& deployment, sim::Simulator& simulator)
      : deployment_(&deployment),
        sim_(&simulator),
        peer_state_(deployment.peer_count()),
        link_state_(deployment.overlay().link_count()) {}

  // ----- availability -----

  /// Peer resources not held or granted (soft holds that expired are
  /// purged first).
  service::Resources peer_available(PeerId peer) override;
  /// Overlay link bandwidth not held or granted.
  double link_available_kbps(overlay::OverlayLinkId link) override;

  // ----- soft holds (probe-time) -----

  /// Reserves `amount` on `peer` until `expire_at`; fails (nullopt) if it
  /// does not fit the current availability.
  std::optional<HoldId> soft_reserve_peer(PeerId peer,
                                          const service::Resources& amount,
                                          sim::Time expire_at);
  /// Reserves `kbps` on every link of `path` until `expire_at`; all-or-
  /// nothing.
  std::optional<HoldId> soft_reserve_path(const overlay::OverlayPath& path,
                                          double kbps, sim::Time expire_at);

  /// Converts a pending hold into a grant owned by `session`. Returns
  /// false if the hold already expired or was released.
  bool confirm(HoldId hold, SessionId session);
  /// Cancels a pending hold early (no-op if gone).
  void release_hold(HoldId hold);

  // ----- sessions -----

  SessionId new_session_id() { return next_session_id_++; }
  /// Frees everything granted to `session`.
  void release_session(SessionId session);

  /// Direct session grant without a prior hold (used by the baselines,
  /// which have no probing phase). All-or-nothing across the peer demands
  /// and link demands given. Returns false and changes nothing on failure.
  bool grant_direct(SessionId session,
                    const std::vector<std::pair<PeerId, service::Resources>>&
                        peer_demands,
                    const std::vector<std::pair<overlay::OverlayLinkId, double>>&
                        link_demands);

  // ----- introspection -----

  std::size_t active_holds() const { return holds_.size(); }
  std::size_t active_grants() const { return grants_.size(); }

  /// Attaches a metrics registry (null detaches). Publishes cumulative
  /// "alloc.*" counters (reserve/confirm/release/expire outcomes) and
  /// outstanding-hold/grant gauges. Costs one null check per event when
  /// detached.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct PeerHold {
    service::Resources amount;
    sim::Time expire_at;
  };
  struct LinkHold {
    double kbps;
    sim::Time expire_at;
  };
  struct Hold {
    PeerId peer = overlay::kInvalidPeer;  // valid if peer hold
    service::Resources peer_amount;
    std::vector<overlay::OverlayLinkId> links;  // valid if path hold
    double kbps = 0.0;
    sim::Time expire_at = 0.0;
  };
  struct Grant {
    SessionId session;
    PeerId peer = overlay::kInvalidPeer;
    service::Resources peer_amount;
    std::vector<overlay::OverlayLinkId> links;
    double kbps = 0.0;
  };
  struct PeerState {
    service::Resources confirmed;  // sum of grants
    std::unordered_map<HoldId, PeerHold> soft;
  };
  struct LinkState {
    double confirmed_kbps = 0.0;
    std::unordered_map<HoldId, LinkHold> soft;
  };

  void purge_expired_peer(PeerState& state);
  void purge_expired_link(LinkState& state);
  void count_expired(HoldId hold);
  void update_outstanding_gauges();

  Deployment* deployment_;
  sim::Simulator* sim_;
  std::vector<PeerState> peer_state_;
  std::vector<LinkState> link_state_;
  std::unordered_map<HoldId, Hold> holds_;
  std::unordered_map<SessionId, std::vector<Grant>> grants_;
  HoldId next_hold_id_ = 1;
  SessionId next_session_id_ = 1;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_reserved_ = nullptr;
  obs::Counter* m_reserve_failures_ = nullptr;
  obs::Counter* m_confirmed_ = nullptr;
  obs::Counter* m_confirm_failures_ = nullptr;
  obs::Counter* m_released_ = nullptr;
  obs::Counter* m_expired_ = nullptr;
  obs::Counter* m_direct_grants_ = nullptr;
  obs::Counter* m_direct_grant_failures_ = nullptr;
  obs::Gauge* m_holds_outstanding_ = nullptr;
  obs::Gauge* m_grants_outstanding_ = nullptr;
};

}  // namespace spider::core
