#include "core/baselines.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace spider::core {

using service::ComponentMetadata;
using service::FnNode;
using service::ServiceGraph;

namespace {

/// Live replicas of a function per the global-view oracle.
std::vector<ComponentMetadata> live_replicas(const Deployment& deployment,
                                             service::FunctionId fn) {
  std::vector<ComponentMetadata> out;
  for (service::ComponentId id : deployment.replicas_oracle(fn)) {
    if (deployment.component_alive(id)) {
      out.push_back(ComponentMetadata::from(deployment.component(id)));
    }
  }
  return out;
}

}  // namespace

BaselineResult OptimalComposer::compose(
    const service::CompositeRequest& request, Objective objective,
    AvailabilityView* view, std::size_t max_backups) {
  BaselineResult result;
  std::vector<service::FunctionGraph> patterns =
      use_commutation_ ? request.graph.patterns(max_patterns_)
                       : std::vector<service::FunctionGraph>{request.graph};

  struct Scored {
    ServiceGraph graph;
    double key;
  };
  std::vector<Scored> qualified;

  for (const service::FunctionGraph& pattern : patterns) {
    const std::size_t n = pattern.node_count();
    // Replica lists per node; empty list means the pattern is infeasible.
    std::vector<std::vector<ComponentMetadata>> options(n);
    bool feasible = true;
    for (FnNode node = 0; node < n; ++node) {
      options[node] = live_replicas(*deployment_, pattern.function(node));
      if (options[node].empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Exhaustive cross product; each full assignment is one candidate
    // service graph ("probe" of the flooding scheme).
    std::vector<std::size_t> pick(n, 0);
    for (;;) {
      if (result.candidates_examined >= max_candidates_) {
        result.truncated = true;
        break;
      }
      ++result.candidates_examined;
      ++result.messages;  // the probe this graph would have cost

      ServiceGraph graph;
      graph.pattern = pattern;
      graph.source = request.source;
      graph.dest = request.dest;
      graph.mapping.reserve(n);
      for (FnNode node = 0; node < n; ++node) {
        graph.mapping.push_back(options[node][pick[node]]);
      }
      if (evaluator_->levels_compatible(graph, request) &&
          evaluator_->resolve(graph)) {
        evaluator_->evaluate(graph, request, view);
        if (evaluator_->qos_qualified(graph, request) &&
            evaluator_->resource_feasible(graph, request, view)) {
          const double key = objective == Objective::kMinPsi
                                 ? graph.psi_cost
                                 : graph.qos.delay_ms();
          qualified.push_back(Scored{std::move(graph), key});
        }
      }

      // Odometer increment.
      std::size_t i = 0;
      while (i < n && ++pick[i] == options[i].size()) {
        pick[i] = 0;
        ++i;
      }
      if (i == n) break;
    }
  }

  if (qualified.empty()) return result;
  std::stable_sort(qualified.begin(), qualified.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.key < b.key;
                   });
  result.success = true;
  result.best = std::move(qualified.front().graph);
  for (std::size_t i = 1; i < qualified.size() && result.backups.size() < max_backups;
       ++i) {
    result.backups.push_back(std::move(qualified[i].graph));
  }
  return result;
}

BaselineResult RandomComposer::compose(const service::CompositeRequest& request,
                                       Rng& rng) {
  BaselineResult result;
  const service::FunctionGraph& pattern = request.graph;
  ServiceGraph graph;
  graph.pattern = pattern;
  graph.source = request.source;
  graph.dest = request.dest;
  for (FnNode node = 0; node < pattern.node_count(); ++node) {
    std::vector<ComponentMetadata> options =
        live_replicas(*deployment_, pattern.function(node));
    if (options.empty()) return result;
    graph.mapping.push_back(
        options[rng.next_below(options.size())]);
    ++result.messages;  // one lookup per function
  }
  if (!evaluator_->resolve(graph)) return result;
  evaluator_->evaluate(graph, request);
  result.success = true;  // "success" = produced a graph; callers apply the
                          // QoS-success definition themselves
  result.best = std::move(graph);
  return result;
}

BaselineResult StaticComposer::compose(const service::CompositeRequest& request) {
  BaselineResult result;
  const service::FunctionGraph& pattern = request.graph;
  ServiceGraph graph;
  graph.pattern = pattern;
  graph.source = request.source;
  graph.dest = request.dest;
  for (FnNode node = 0; node < pattern.node_count(); ++node) {
    // Pre-defined choice: lowest component id overall; if its peer is
    // dead the static scheme simply fails (it is not failure-aware).
    const auto& replicas = deployment_->replicas_oracle(pattern.function(node));
    if (replicas.empty()) return result;
    const service::ComponentId chosen =
        *std::min_element(replicas.begin(), replicas.end());
    if (!deployment_->component_alive(chosen)) return result;
    graph.mapping.push_back(
        ComponentMetadata::from(deployment_->component(chosen)));
    ++result.messages;
  }
  if (!evaluator_->resolve(graph)) return result;
  evaluator_->evaluate(graph, request);
  result.success = true;
  result.best = std::move(graph);
  return result;
}

void CentralizedComposer::refresh() {
  const std::size_t peers = deployment_->peer_count();
  for (PeerId p = 0; p < peers; ++p) {
    if (!deployment_->peer_alive(p)) continue;
    snapshot_.peer[p] = alloc_->peer_available(p);
    ++maintenance_messages_;  // one state-update message per live peer
  }
  for (overlay::OverlayLinkId l = 0; l < deployment_->overlay().link_count();
       ++l) {
    snapshot_.link[l] = alloc_->link_available_kbps(l);
  }
  refreshed_once_ = true;
}

BaselineResult CentralizedComposer::compose(
    const service::CompositeRequest& request, Objective objective) {
  SPIDER_REQUIRE_MSG(refreshed_once_, "call refresh() before composing");
  return optimal_.compose(request, objective, &snapshot_);
}

}  // namespace spider::core
