// Service graph resolution and evaluation.
//
// Turns a (pattern, component mapping, source, dest) candidate into a fully
// resolved ServiceGraph — every service link bound to an overlay path — and
// computes the three aggregate values composition selection needs:
//
//  * end-to-end QoS: per additive metric, the worst (max) branch sum of
//    component performance qualities plus overlay link delays (§4.3);
//  * failure probability: 1 - Π(1 - p_peer) over the distinct peers used,
//    assuming independent peer failures (§5.1 footnote 6);
//  * ψ_λ, Eq. 1: the weighted sum of requested/available ratios over
//    end-system resources and service-link bandwidth — the load-balancing
//    cost used to pick the best qualified graph (smaller = more headroom).
#pragma once

#include <array>

#include "core/allocator.hpp"
#include "core/deployment.hpp"
#include "service/service_graph.hpp"

namespace spider::core {

/// Weights of Eq. 1; must sum to 1 across resource types + bandwidth.
struct PsiWeights {
  std::array<double, service::Resources::kTypes> resource{0.4, 0.3};
  double bandwidth = 0.3;
};

class GraphEvaluator {
 public:
  GraphEvaluator(Deployment& deployment, AllocationManager& alloc,
                 PsiWeights weights = {})
      : deployment_(&deployment), alloc_(&alloc), weights_(weights) {}

  /// Resolves all service links (source→entries, dependency edges,
  /// exits→dest) to overlay paths. Fails (false) if any used peer is dead
  /// or any pair is unroutable.
  bool resolve(service::ServiceGraph& graph) const;

  /// Fills graph.qos / failure_prob / psi_cost from current availability
  /// (or from `view`, e.g. the centralized baseline's stale snapshot).
  /// Requires resolve() to have succeeded.
  void evaluate(service::ServiceGraph& graph,
                const service::CompositeRequest& request,
                AvailabilityView* view = nullptr) const;

  /// QoS-qualification per §4.3 (resource feasibility is enforced by the
  /// probing / admission path, not here).
  bool qos_qualified(const service::ServiceGraph& graph,
                     const service::CompositeRequest& request) const;

  /// §2.2 Q_in/Q_out compatibility: along every service link the
  /// producer's output level must meet the consumer's input level
  /// (source stream level feeds entry nodes; exit nodes must meet the
  /// destination's minimum level). Static per-graph check.
  bool levels_compatible(const service::ServiceGraph& graph,
                         const service::CompositeRequest& request) const;

  /// Full feasibility against *current* availability (used by baselines
  /// that skip probing): every peer fits the summed component demands and
  /// every link path carries the stream bandwidth.
  bool resource_feasible(const service::ServiceGraph& graph,
                         const service::CompositeRequest& request,
                         AvailabilityView* view = nullptr) const;

  /// Time for the setup acknowledgement to travel the reversed graph
  /// (destination back to source along the longest branch).
  double ack_time_ms(const service::ServiceGraph& graph) const;

  const PsiWeights& weights() const { return weights_; }
  /// Eq. 1 lets the deployment "customize ψ by assigning higher weights
  /// to more critical resource types."
  void set_weights(const PsiWeights& weights) { weights_ = weights; }

 private:
  Deployment* deployment_;
  AllocationManager* alloc_;
  PsiWeights weights_;
};

}  // namespace spider::core
