// Deployment: one instantiated P2P service overlay.
//
// Ties together the substrates a SpiderNet run needs — the overlay graph,
// the Pastry DHT (one node per peer), the service registry, the function
// catalog, the deployed component instances and per-peer resource
// capacities — and owns peer lifecycle (failure / rejoin) so that all
// layers stay consistent: killing a peer marks it dead in the overlay,
// fails its DHT node and invalidates its components.
//
// Construction is done by the scenario builders in `src/workload`; this
// class is the runtime container.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dht/pastry.hpp"
#include "discovery/registry.hpp"
#include "overlay/overlay.hpp"
#include "service/component.hpp"

namespace spider::core {

using overlay::PeerId;

class Deployment {
 public:
  /// World-construction knobs. The initial DHT is always bulk-loaded
  /// (canonical state straight from the sorted id space — see
  /// PastryNetwork::bulk_load); `build_jobs` spreads the per-node fill
  /// over a WorkerPool. State is identical at any job count; jobs > 1
  /// needs the estimator-backed proximity hint (thread-safe), so the fill
  /// silently runs serial when the overlay has no estimator.
  struct BuildOptions {
    std::size_t build_jobs = 1;
  };

  /// Takes ownership of a built overlay; peers' DHT nodes are bulk-loaded
  /// with ids derived from the peer index. `leaf_set_size`/`replication`
  /// are forwarded to the Pastry network.
  Deployment(overlay::OverlayNetwork overlay_net, Rng& rng,
             int leaf_set_size = 16, int replication = 3);
  Deployment(overlay::OverlayNetwork overlay_net, Rng& rng,
             const BuildOptions& opts, int leaf_set_size = 16,
             int replication = 3);

  // Self-referential (the DHT proximity callback captures `this`).
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;
  Deployment(Deployment&&) = delete;
  Deployment& operator=(Deployment&&) = delete;

  // ----- components -----

  /// Deploys a component on its host peer and registers it in the DHT.
  /// Returns the stored instance (id assigned from the host's counter).
  const service::ServiceComponent& deploy_component(
      service::ServiceComponent component);

  /// Deploys a batch: bookkeeping runs serially in vector order (ids and
  /// oracle lists come out exactly as repeated deploy_component calls),
  /// then all DHT registrations go through the registry's bulk path with
  /// route computation across `jobs` workers. Requires an all-live DHT —
  /// use during world construction, before any churn.
  void deploy_components(std::vector<service::ServiceComponent> components,
                         std::size_t jobs = 1);

  const service::ServiceComponent& component(service::ComponentId id) const;
  bool component_alive(service::ComponentId id) const;
  /// All components deployed on a peer (including those on dead peers).
  const std::vector<service::ComponentId>& components_on(PeerId peer) const;
  /// Ground-truth replica list for a function — the global-view oracle
  /// used ONLY by the centralized/optimal baselines and tests.
  const std::vector<service::ComponentId>& replicas_oracle(
      service::FunctionId function) const;
  std::size_t component_count() const { return components_.size(); }

  // ----- resources -----

  void set_capacity(PeerId peer, const service::Resources& capacity);
  const service::Resources& capacity(PeerId peer) const;

  // ----- peer lifecycle -----

  bool peer_alive(PeerId peer) const { return overlay_.alive(peer); }
  /// Abrupt peer failure: overlay + DHT + components go down.
  void kill_peer(PeerId peer);
  /// Brings a previously killed peer back (fresh DHT join through any live
  /// bootstrap; its components re-register).
  void revive_peer(PeerId peer);
  std::vector<PeerId> live_peers() const;
  /// Bumped on every effective kill/revive. Consumers that cache anything
  /// derived from the live-peer set (e.g. the allocator's aggregate
  /// capacity snapshot) compare epochs to recompute lazily instead of
  /// subscribing to lifecycle callbacks.
  std::uint64_t liveness_epoch() const { return liveness_epoch_; }

  // ----- accessors -----

  std::size_t peer_count() const { return overlay_.peer_count(); }
  overlay::OverlayNetwork& overlay() { return overlay_; }
  const overlay::OverlayNetwork& overlay() const { return overlay_; }
  dht::PastryNetwork& dht() { return dht_; }
  discovery::ServiceRegistry& registry() { return registry_; }
  service::FunctionCatalog& catalog() { return catalog_; }
  const service::FunctionCatalog& catalog() const { return catalog_; }

 private:
  overlay::OverlayNetwork overlay_;
  dht::PastryNetwork dht_;
  service::FunctionCatalog catalog_;
  discovery::ServiceRegistry registry_;

  std::unordered_map<service::ComponentId, service::ServiceComponent>
      components_;
  std::vector<std::vector<service::ComponentId>> by_peer_;
  std::unordered_map<service::FunctionId, std::vector<service::ComponentId>>
      by_function_;
  std::vector<service::Resources> capacity_;
  std::vector<std::uint32_t> next_local_id_;
  std::uint64_t revive_counter_ = 0;
  std::uint64_t liveness_epoch_ = 0;
};

}  // namespace spider::core
