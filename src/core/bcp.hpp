// Bounded Composition Probing (§4) — SpiderNet's setup-phase protocol.
//
// Given a composite request, the source:
//   1. enumerates composition patterns (commutation exchanges, §2.4) and
//      decomposes each into branch paths (§4.3);
//   2. spawns probes carrying a probing budget β, split across
//      pattern/branch seeds and then hop by hop per §4.2:
//      I_k = min(β_k, α_k) next-hop components are probed, each child
//      receiving ⌊β_k/Z_k⌋ (enough budget for all replicas) or ⌊β_k/I_k⌋;
//   3. per hop, the probed peer checks accumulated QoS against the user's
//      requirements (drop on violation), soft-allocates the component's
//      resources and the incoming path's bandwidth (step 2.1), discovers
//      next-hop replicas via the DHT registry (step 2.3's meta-data
//      retrieval), and scores candidates with a composite local metric
//      (network delay + component performance + failure probability);
//   4. the destination merges per-branch probes into complete service
//      graphs, keeps the QoS-qualified ones and ranks them by ψ_λ (§4.3);
//   5. the best graph's soft holds are kept for confirmation; all other
//      holds created by this request are released (the timeout path).
//
// Execution model (DESIGN.md §5): probing runs synchronously with
// analytically accumulated virtual latency per probe — identical protocol
// decisions to a message-level run, at the scale Fig 8 requires. Message
// and timing totals are reported in ComposeStats.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/allocator.hpp"
#include "core/deployment.hpp"
#include "core/evaluator.hpp"
#include "core/probe_path.hpp"
#include "util/rng.hpp"

namespace spider::obs {
class MetricsRegistry;
class ProbeTrace;
}  // namespace spider::obs

namespace spider::fault {
class LinkFaultModel;
}  // namespace spider::fault

namespace spider::overlay {
class CommunityMap;
}  // namespace spider::overlay

namespace spider::discovery {
class CommunityIndex;
}  // namespace spider::discovery

namespace spider::core {

enum class QuotaPolicy {
  kUniform,             ///< α_k = quota_base for every function
  kReplicaProportional  ///< α_k grows with the function's replica count
};

/// What the destination minimizes among qualified graphs (§4.3 uses ψ_λ;
/// the Fig 11 prototype experiment asks for minimum end-to-end delay).
enum class SelectionObjective { kMinPsi, kMinDelay };

struct BcpConfig {
  /// β: total number of probes available to a request.
  int probing_budget = 64;
  QuotaPolicy quota_policy = QuotaPolicy::kReplicaProportional;
  /// Base quota. Uniform policy: α_k = quota_base for every function.
  /// Proportional policy: the per-replica fraction anchor — α_k =
  /// ⌈replicas · quota_base / 8⌉, i.e. quota_base/8 is the fraction of a
  /// function's replica pool probed (8 probes every replica; the default
  /// 4 probes half). Both are clamped to [1, max_quota].
  int quota_base = 4;
  /// Hard per-function cap on α_k.
  int max_quota = 16;
  /// Explore commutation-derived patterns (ablation A1 turns this off).
  bool use_commutation = true;
  std::size_t max_patterns = 8;
  /// Destination collection timeout; also the soft-hold lifetime.
  double probe_timeout_ms = 8000.0;
  /// Per-hop probe processing cost added to the latency model.
  double per_hop_processing_ms = 2.0;
  /// Cap on merged candidate graphs evaluated at the destination.
  std::size_t max_candidates = 256;
  /// Cap on qualified graphs returned beyond the best (backup pool).
  std::size_t max_backups_returned = 16;
  /// Composite next-hop metric weights (step 2.3): lower score is better.
  double metric_w_link_delay = 1.0;
  double metric_w_perf_delay = 1.0;
  double metric_w_failure = 2000.0;  ///< ms-equivalent per unit probability
  /// Weight of the bandwidth-headroom term (ms-equivalent when the stream
  /// would consume the path's entire remaining bandwidth). Candidates on
  /// paths that cannot carry the stream sort last.
  double metric_w_bandwidth = 100.0;
  /// Uniform per-candidate jitter added to the selection metric. Without
  /// it every request ranks replicas identically and herds onto the same
  /// hosts, defeating load balancing; jitter decorrelates exploration
  /// while keeping good candidates likely (deterministic per request via
  /// the caller's Rng).
  double metric_jitter_ms = 40.0;
  /// Log-normal sigma of the peer's *estimate* of network delay to a
  /// candidate. Peers do not have precise global state (the paper's core
  /// premise, §1); their local delay estimates are off by a multiplicative
  /// factor exp(N(0, σ)). Larger budgets compensate by probing more
  /// candidates and letting the destination judge measured state.
  double metric_estimate_sigma = 0.5;
  SelectionObjective objective = SelectionObjective::kMinPsi;
  /// Soft resource allocation during probing (step 2.1). Turning it off
  /// (ablation A4) keeps the availability *check* but makes no
  /// reservation, so concurrent requests can race to admission.
  bool soft_allocation = true;
  /// Optional trust hook (the §8 future-work extension, implemented in
  /// src/trust): returns a score in (0, 1] for a candidate's host peer.
  /// Low-trust candidates are penalized by metric_w_trust · (1 − trust)
  /// in the next-hop metric. Null disables trust awareness.
  std::function<double(overlay::PeerId)> trust_fn;
  double metric_w_trust = 400.0;  ///< ms-equivalent at zero trust

  // ---- unreliable delivery (consulted only with a fault model attached,
  // see set_fault_model; a clean/absent model never samples) ------------
  /// Max retransmissions of one probe hop after the initial send. Each
  /// retransmission is charged against the probe's budget (floor 1), so
  /// β still bounds total probing overhead: a probe that burned budget
  /// on retransmissions explores fewer replicas downstream, and total
  /// transmissions stay <= (1 + probe_retx_limit) x the loss-free count.
  int probe_retx_limit = 3;
  /// Initial per-hop retransmission timeout is
  /// max(retx_min_rto_ms, retx_rtt_factor * path delay); each further
  /// attempt multiplies it by retx_backoff. Waits add to the probe's
  /// arrival time (setup latency) but not to its measured path QoS.
  double retx_min_rto_ms = 20.0;
  double retx_rtt_factor = 2.0;
  double retx_backoff = 2.0;

  // ---- two-tier probing (consulted only with communities attached, see
  // set_communities; flat BCP never reads these) ------------------------
  /// Share of β spent on the coarse inter-community tier: up to
  /// ⌊β · share⌋ communities are probed for QoS summaries (1 budget unit
  /// each, clamped to [1, β−1]) before the remaining budget seeds the
  /// per-hop fine tier. Σ coarse + fine == β, so the budget invariants of
  /// §4.2 hold across both tiers.
  double coarse_budget_share = 0.125;
  /// Cap on candidate communities the fine tier probes into; the coarse
  /// ranking greedily keeps the best-scoring communities that still add
  /// coverage of a requested function, pruning the rest.
  std::size_t max_candidate_communities = 4;

  /// Test-only: spawn children by deep-copying the parent's prefix chain
  /// instead of sharing its tail. Protocol decisions, results, stats and
  /// metrics are identical either way — the prefix-sharing equivalence
  /// suite runs both modes and diffs them; only memory behaviour (arena
  /// churn) differs.
  bool debug_clone_prefixes = false;
};

/// Cumulative PathArena accounting across every compose an engine ran.
/// `peak_live_segments` is the largest single-request high-water mark —
/// times sizeof(PathSegment) it is the engine's peak-RSS proxy for probe
/// state (the scaling benchmark's memory column).
struct ProbeArenaTotals {
  std::uint64_t segments_allocated = 0;
  std::uint64_t freelist_reused = 0;
  std::uint64_t peak_live_segments = 0;
};

struct ComposeStats {
  // Every spawned probe reaches exactly one terminal outcome:
  //   spawned == arrived + dropped_qos + dropped_resources
  //            + dropped_timeout + dropped_lost + forwarded
  // where "forwarded" means the probe continued as >= 1 child probes.
  std::uint64_t probes_spawned = 0;
  std::uint64_t probes_arrived = 0;
  std::uint64_t probes_forwarded = 0;   ///< continued as child probes
  std::uint64_t probes_dropped_qos = 0;
  std::uint64_t probes_dropped_resources = 0;
  std::uint64_t probes_dropped_timeout = 0;
  /// Final-leg message lost on every retransmission attempt (fault model).
  std::uint64_t probes_dropped_lost = 0;
  // Next-hop candidates rejected before a child probe existed (invalid
  // route, would-arrive-late, QoS violation, failed reservation, child
  // probe message lost despite retransmission). These were never probes,
  // so they are accounted separately from drops.
  std::uint64_t candidates_skipped_route = 0;
  std::uint64_t candidates_skipped_timeout = 0;
  std::uint64_t candidates_skipped_qos = 0;
  std::uint64_t candidates_skipped_resources = 0;
  std::uint64_t candidates_skipped_lost = 0;
  // Unreliable-delivery accounting (all zero without a fault model).
  std::uint64_t probe_retransmits = 0;     ///< extra sends that happened
  std::uint64_t probe_hop_timeouts = 0;    ///< per-hop retx timer firings
  std::uint64_t probe_messages_lost = 0;   ///< transmissions the net dropped
  /// Selected compositions abandoned because the step-4 setup ack never
  /// survived a hop despite retransmission (the request then fails).
  std::uint64_t setup_acks_lost = 0;
  // Soft-hold dedup effectiveness: fresh reservations vs sibling reuse.
  std::uint64_t holds_acquired = 0;
  std::uint64_t holds_reused = 0;
  // Probe-state copy accounting (the spawn hot path). `probe_bytes_copied`
  // is the volume of probe state physically copied when spawning probes;
  // `prefix_nodes_shared` counts prefix hops children inherited by
  // reference instead of copying. Both are identical between the sync and
  // message-level drivers (they depend on spawn events, not timing).
  std::uint64_t probe_bytes_copied = 0;
  std::uint64_t prefix_nodes_shared = 0;
  // Two-tier accounting (both zero in flat mode — see set_communities).
  std::uint64_t coarse_probes = 0;       ///< inter-community summary probes
  std::uint64_t communities_pruned = 0;  ///< probed but not selected
  std::uint64_t probe_messages = 0;      ///< probe + ack transmissions
  std::uint64_t discovery_messages = 0;  ///< DHT lookup hops
  double discovery_time_ms = 0.0;        ///< critical-path discovery share
  double probing_time_ms = 0.0;          ///< arrival of last useful probe
  double setup_time_ms = 0.0;            ///< probing + ack/confirm leg
  std::size_t candidates_merged = 0;
  std::size_t qualified_found = 0;

  std::uint64_t probes_dropped_total() const {
    return probes_dropped_qos + probes_dropped_resources +
           probes_dropped_timeout + probes_dropped_lost;
  }
  std::uint64_t candidates_skipped_total() const {
    return candidates_skipped_route + candidates_skipped_timeout +
           candidates_skipped_qos + candidates_skipped_resources +
           candidates_skipped_lost;
  }
};

struct ComposeResult {
  bool success = false;
  service::ServiceGraph best;
  /// Other qualified graphs, ascending ψ — the backup pool for §5.
  std::vector<service::ServiceGraph> backups;
  /// Soft holds backing `best` (confirm with AllocationManager to admit).
  std::vector<HoldId> best_holds;
  ComposeStats stats;
};

class BcpEngine {
 public:
  BcpEngine(Deployment& deployment, AllocationManager& alloc,
            GraphEvaluator& evaluator, sim::Simulator& simulator,
            BcpConfig config = {})
      : deployment_(&deployment),
        alloc_(&alloc),
        evaluator_(&evaluator),
        sim_(&simulator),
        config_(config) {}

  /// Runs the full BCP flow for one request synchronously (probe latency
  /// is accumulated analytically; see DESIGN.md §5b). On success the best
  /// graph's holds are alive (expire at now + probe_timeout_ms unless
  /// confirmed); every other hold created here has been released.
  ComposeResult compose(const service::CompositeRequest& request, Rng& rng);

  /// Message-level execution of the same protocol: every probe hop is a
  /// simulator event fired at its arrival time, the destination collects
  /// until its timeout (or until the last outstanding probe lands), and
  /// `done` is invoked at the virtual time the setup acknowledgement
  /// returns. Decision logic is byte-for-byte the one compose() uses —
  /// only the execution order differs (probes interleave by arrival time,
  /// so under contention the two modes may reserve in different orders).
  /// `rng` must stay valid until `done` runs.
  void compose_async(const service::CompositeRequest& request, Rng& rng,
                     std::function<void(ComposeResult)> done);

  const BcpConfig& config() const { return config_; }
  void set_config(const BcpConfig& config) { config_ = config; }

  /// α_k for a function with `replica_count` live replicas under the
  /// current quota policy (exposed for tests and capacity planning).
  int quota_for(std::size_t replica_count) const;

  /// Attaches observability sinks (either may be null; both default off).
  /// `metrics` receives cumulative "bcp.*" counters/histograms flushed
  /// once per compose; `trace` receives the per-request structured event
  /// log (seeds, hops, drops, holds, merge/selection). The engine never
  /// clears the trace — callers scope it per request or per campaign.
  void set_observability(obs::MetricsRegistry* metrics,
                         obs::ProbeTrace* trace) {
    metrics_ = metrics;
    trace_ = trace;
  }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::ProbeTrace* trace() const { return trace_; }

  /// Attaches a link fault model (null detaches — the default). With a
  /// model attached, every probe hop samples loss/jitter per overlay
  /// link; lost hops are retransmitted with exponential backoff up to
  /// probe_retx_limit times, charged against the probe's budget. A model
  /// whose probabilities are all zero is never sampled, so attaching one
  /// does not change fault-free results.
  void set_fault_model(const fault::LinkFaultModel* model) { fault_ = model; }
  const fault::LinkFaultModel* fault_model() const { return fault_; }

  /// Attaches a community partition + per-community discovery index,
  /// switching composes to two-tier probing: a coarse inter-community
  /// phase (summary probes to community heads, paid for out of β per
  /// coarse_budget_share) selects candidate communities, then the fine
  /// per-hop tier discovers replicas inside those communities only.
  /// Either pointer null detaches (the default — flat BCP, bit-for-bit
  /// the pre-community behavior). A map with a single community also runs
  /// flat: one community is the whole overlay, so there is nothing to
  /// prune and the legacy path is byte-identical.
  void set_communities(const overlay::CommunityMap* map,
                       const discovery::CommunityIndex* index) {
    communities_ = map;
    community_index_ = index;
  }
  const overlay::CommunityMap* communities() const { return communities_; }

  /// Probe-path arena accounting accumulated over all composes (see
  /// ProbeArenaTotals). Peak probe-state bytes ≈ peak_live_segments ×
  /// sizeof(PathSegment).
  const ProbeArenaTotals& arena_totals() const { return arena_totals_; }

 private:
  struct Probe;
  struct DiscoveryEntry;
  struct ComposeState;
  struct HopDelivery;

  /// Validates the request and seeds the initial probes (returns false if
  /// composition is impossible before probing starts).
  bool init_state(ComposeState& state, const service::CompositeRequest& request,
                  Rng& rng);
  /// Coarse inter-community tier: probes community heads for summaries,
  /// greedily selects candidate communities and fills the state's allowed
  /// set. Returns the budget spent (== coarse probe count).
  int coarse_select(ComposeState& state, int budget_total);
  /// Executes one per-hop step (§4.2) for `probe`: either the final leg
  /// to the destination (probe lands in state.arrived) or next-hop
  /// selection + soft allocation, appending spawned children to
  /// `out_children` with their arrival times set.
  void process_probe(ComposeState& state, Probe probe,
                     std::vector<Probe>* out_children);
  /// Destination-side merge, qualification, ψ ranking, hold cleanup
  /// (§4.3 / step 4); fills state.result.
  void finalize(ComposeState& state);

  const DiscoveryEntry& discover(ComposeState& state, PeerId peer,
                                 service::FunctionId fn);
  /// Attempts delivery of one probe transmission (plus bounded
  /// retransmissions) over `path`, charging stats/budget as it goes.
  HopDelivery deliver_hop(ComposeState& state, const overlay::OverlayPath& path,
                          std::uint64_t hop_key, int* budget);
  /// Accumulates one request's ComposeStats into the metrics registry.
  void flush_metrics(const ComposeStats& stats, bool success);

  Deployment* deployment_;
  AllocationManager* alloc_;
  GraphEvaluator* evaluator_;
  sim::Simulator* sim_;
  BcpConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ProbeTrace* trace_ = nullptr;
  const fault::LinkFaultModel* fault_ = nullptr;
  const overlay::CommunityMap* communities_ = nullptr;
  const discovery::CommunityIndex* community_index_ = nullptr;
  ProbeArenaTotals arena_totals_;
};

}  // namespace spider::core
