#include "core/session.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"

namespace spider::core {

using service::ServiceGraph;

namespace {

/// Lazily binds and bumps a counter. The fault-path counters are created
/// on first use, not in set_metrics, so a fault-free run exports exactly
/// the same metrics JSON as before the fault layer existed.
void bump(obs::MetricsRegistry* registry, obs::Counter*& counter,
          const char* name, std::uint64_t delta = 1) {
  if (registry == nullptr || delta == 0) return;
  if (counter == nullptr) counter = &registry->counter(name);
  counter->inc(delta);
}

// Message-kind tags namespacing the fault-sampling keys of lifecycle
// control legs (arbitrary distinct constants).
constexpr std::uint64_t kCtrlConfirm = 0xc0f1u;
constexpr std::uint64_t kCtrlTeardown = 0x7ead0u;
constexpr std::uint64_t kCtrlSwitch = 0x5a17c4u;
constexpr std::uint64_t kCtrlRenew = 0x1ea5eu;

}  // namespace

void SessionManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  // The fault-path counters rebind lazily (see bump()) so they only show
  // up in exports once a miss/loss actually happens.
  m_probe_misses_ = m_false_suspicions_ = m_notifications_lost_ =
      m_probe_timeouts_ = nullptr;
  m_ctrl_retransmits_ = m_ctrl_duplicates_ = m_confirms_lost_ =
      m_teardowns_lost_ = m_switch_activations_lost_ = m_source_crashes_ =
          m_orphans_reclaimed_ = m_lease_renewals_sent_ = nullptr;
  if (metrics == nullptr) {
    m_established_ = m_teardowns_ = m_breaks_ = m_backup_switches_ =
        m_reactive_recoveries_ = m_losses_ = m_maintenance_messages_ = nullptr;
    m_active_sessions_ = nullptr;
    return;
  }
  m_established_ = &metrics->counter("session.established");
  m_teardowns_ = &metrics->counter("session.teardowns");
  m_breaks_ = &metrics->counter("session.breaks");
  m_backup_switches_ = &metrics->counter("session.backup_switches");
  m_reactive_recoveries_ = &metrics->counter("session.reactive_recoveries");
  m_losses_ = &metrics->counter("session.losses");
  m_maintenance_messages_ = &metrics->counter("session.maintenance_messages");
  m_active_sessions_ = &metrics->gauge("session.active");
  update_active_gauge();
}

void SessionManager::count_established() {
  if (m_established_ != nullptr) m_established_->inc();
  update_active_gauge();
}

void SessionManager::update_active_gauge() {
  if (m_active_sessions_ != nullptr) {
    m_active_sessions_->set(double(sessions_.size()));
  }
}

std::vector<overlay::OverlayLinkId> SessionManager::graph_route(
    const ServiceGraph& graph) {
  std::vector<overlay::OverlayLinkId> links;
  for (const auto& hop : graph.hops) {
    links.insert(links.end(), hop.path.links.begin(), hop.path.links.end());
  }
  return links;
}

void SessionManager::erase_session(SessionId id) {
  std::erase_if(ctrl_applied_,
                [id](const CtrlKey& k) { return k.session == id; });
  sessions_.erase(id);
}

SessionManager::CtrlOutcome SessionManager::send_control(
    Session& session, std::uint64_t tag,
    const std::vector<overlay::OverlayLinkId>& links) {
  CtrlOutcome out;
  if (fault_ == nullptr || !fault_->active()) {
    // Reliable network: one attempt, delivered and acked. Nothing is
    // counted, keeping fault-free runs bit-identical to the seed.
    out.acked = out.applied = true;
    return out;
  }
  const CtrlKey op{session.id, session.epoch, session.ctrl_seq++};
  const std::uint64_t op_key =
      util::hash_values(tag, op.session, op.epoch, op.seq);
  const int max_attempts = 1 + std::max(config_.ctrl_retry_limit, 0);
  double rto = std::max(config_.ctrl_min_rto_ms, 1.0);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff between attempts. The exchange is synchronous
      // in the simulation, so the backoff is latency bookkeeping, not a
      // scheduled event.
      ++stats_.ctrl_retransmits;
      bump(metrics_, m_ctrl_retransmits_, "session.ctrl_retransmits");
      stats_.ctrl_backoff_ms += rto;
      rto *= 2.0;
    }
    out.attempts = attempt + 1;
    const std::uint64_t key = util::hash_values(op_key, std::uint64_t(attempt));
    if (!fault_->sample_path(links, key).delivered) continue;  // request lost
    // The request arrived. The first delivery applies the operation; any
    // retransmitted duplicate hits the (session, epoch, seq) dedup set
    // and is merely re-acked — the operation is idempotent.
    if (!ctrl_applied_.insert(op).second) {
      ++stats_.ctrl_duplicates;
      bump(metrics_, m_ctrl_duplicates_, "session.ctrl_duplicates");
    }
    out.applied = true;
    const std::uint64_t ack_key = util::hash_values(key, std::uint64_t{0xacu});
    if (fault_->sample_path(links, ack_key).delivered) {
      out.acked = true;
      return out;
    }
  }
  // Retry budget exhausted without an ack: the caller must degrade to
  // abort-and-release (or strand-and-let-leases-reclaim), never hang.
  return out;
}

int SessionManager::backup_count(const ServiceGraph& graph,
                                 const service::CompositeRequest& request,
                                 std::size_t qualified_total) const {
  SPIDER_REQUIRE(graph.evaluated);
  // Eq. 2: γ = min( ⌊U · (Σ qᵢ^λ/qᵢ^req + F^λ/F^req)⌋, C − 1 ).
  // A graph operating close to its QoS bounds (ratios near 1) or close to
  // the acceptable failure probability needs more backups.
  double margin = graph.qos.ratio_sum(request.qos_req);
  if (request.max_failure_prob > 0.0) {
    margin += graph.failure_prob / request.max_failure_prob;
  } else if (graph.failure_prob > 0.0) {
    margin += double(config_.backup_upper_bound);
  }
  const double scaled = config_.backup_aggressiveness * margin;
  int gamma = int(std::floor(std::min(scaled, 1e9)));
  gamma = std::min(gamma, config_.backup_upper_bound);
  if (qualified_total > 0) {
    gamma = std::min<int>(gamma, int(qualified_total) - 1);
  }
  return std::max(gamma, 0);
}

std::vector<ServiceGraph> SessionManager::select_backups(
    const ServiceGraph& current, std::vector<ServiceGraph> pool,
    std::size_t count, BackupPolicy policy, Rng* rng,
    std::vector<ServiceGraph>* leftover) {
  std::vector<ServiceGraph> selected;
  std::vector<bool> taken(pool.size(), false);
  // Every exit path funnels through here: selected graphs have been moved
  // out of the pool; whatever remains keeps its original pool order and is
  // handed to the caller's replenishment pool instead of being dropped.
  // Qualified sets can contain mapping-duplicates (same components reached
  // via different patterns); a leftover that duplicates a selected backup
  // is dead weight and is dropped here.
  auto drain_leftover = [&]() {
    if (leftover == nullptr) return;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      bool duplicate = false;
      for (const ServiceGraph& b : selected) {
        if (b.same_mapping(pool[i])) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) leftover->push_back(std::move(pool[i]));
    }
  };
  if (count == 0 || pool.empty()) {
    drain_leftover();
    return selected;
  }

  if (policy == BackupPolicy::kRandom) {
    SPIDER_REQUIRE_MSG(rng != nullptr, "kRandom needs an Rng");
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    rng->shuffle(idx);
    for (std::size_t i = 0; i < std::min(count, idx.size()); ++i) {
      taken[idx[i]] = true;
      selected.push_back(std::move(pool[idx[i]]));
    }
    drain_leftover();
    return selected;
  }
  if (policy == BackupPolicy::kMostDisjoint) {
    // Sort indices, not the pool: the leftover must keep its ψ-ranked
    // pool order for later refills.
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return pool[a].overlap(current) <
                              pool[b].overlap(current);
                     });
    for (std::size_t i = 0; i < std::min(count, idx.size()); ++i) {
      taken[idx[i]] = true;
      selected.push_back(std::move(pool[idx[i]]));
    }
    drain_leftover();
    return selected;
  }

  // Components of the current graph ordered by failure probability,
  // highest first — bottleneck components get covered first (§5.2).
  struct Target {
    service::ComponentId id;
    double fail;
  };
  std::vector<Target> targets;
  targets.reserve(current.mapping.size());
  for (const auto& meta : current.mapping) {
    targets.push_back(Target{meta.id, meta.failure_prob});
  }
  std::stable_sort(targets.begin(), targets.end(),
                   [](const Target& a, const Target& b) {
                     if (a.fail != b.fail) return a.fail > b.fail;
                     return a.id < b.id;
                   });

  // Pass 1 (§5.2 bullet 1): for each component s_i, pick the qualified
  // graph that does NOT include s_i and has the largest overlap with the
  // current graph.
  auto pick_avoiding = [&](const std::vector<service::ComponentId>& avoid) {
    std::size_t best_idx = pool.size();
    std::size_t best_overlap = 0;
    double best_psi = 0.0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      bool excludes_all = true;
      for (service::ComponentId id : avoid) {
        if (pool[i].uses_component(id)) {
          excludes_all = false;
          break;
        }
      }
      if (!excludes_all) continue;
      const std::size_t ov = pool[i].overlap(current);
      if (best_idx == pool.size() || ov > best_overlap ||
          (ov == best_overlap && pool[i].psi_cost < best_psi)) {
        best_idx = i;
        best_overlap = ov;
        best_psi = pool[i].psi_cost;
      }
    }
    if (best_idx < pool.size()) {
      taken[best_idx] = true;
      selected.push_back(std::move(pool[best_idx]));
      return true;
    }
    return false;
  };

  for (const Target& t : targets) {
    if (selected.size() >= count) break;
    pick_avoiding({t.id});
  }
  // Pass 2 (§5.2 bullet 2): cover concurrent failures of component pairs.
  for (std::size_t i = 0; i < targets.size() && selected.size() < count; ++i) {
    for (std::size_t j = i + 1; j < targets.size() && selected.size() < count;
         ++j) {
      pick_avoiding({targets[i].id, targets[j].id});
    }
  }
  // Fill any remaining slots with the best remaining qualified graphs.
  for (std::size_t i = 0; i < pool.size() && selected.size() < count; ++i) {
    if (!taken[i]) {
      taken[i] = true;
      selected.push_back(std::move(pool[i]));
    }
  }
  drain_leftover();
  return selected;
}

SessionId SessionManager::establish(const service::CompositeRequest& request,
                                    ComposeResult&& composed) {
  SPIDER_REQUIRE(composed.success);
  const SessionId id = alloc_->new_session_id();

  // Confirm every hold backing the best graph; if any expired, roll back.
  bool all_confirmed = true;
  for (HoldId hold : composed.best_holds) {
    if (!alloc_->confirm(hold, id)) {
      all_confirmed = false;
      break;
    }
  }
  if (!all_confirmed) {
    alloc_->release_session(id);
    for (HoldId hold : composed.best_holds) alloc_->release_hold(hold);
    return kInvalidSession;
  }

  Session session;
  session.id = id;
  session.request = request;
  session.active = std::move(composed.best);

  // Confirm leg: the source tells the graph's peers their holds are now
  // session grants. Under the fault model this is a retried round-trip;
  // without one it trivially succeeds.
  const CtrlOutcome confirm =
      send_control(session, kCtrlConfirm, graph_route(session.active));
  if (!confirm.acked) {
    ++stats_.confirms_lost;
    bump(metrics_, m_confirms_lost_, "session.confirm_lost");
    if (!confirm.applied) {
      // No peer ever saw the confirm: in the real protocol the holds
      // would simply expire unconverted; release the grants now.
      alloc_->release_session(id);
    }
    // else: the peers applied the confirm but every ack was lost — the
    // source aborts, and the grants strand until a lease expires or an
    // audit() pass reclaims the orphan.
    erase_session(id);  // drops dedup residue; no session was registered
    return kInvalidSession;
  }
  session.state = SessionState::kActive;

  if (config_.proactive) {
    const int gamma = backup_count(session.active, request,
                                   composed.backups.size() + 1);
    // Non-selected qualified graphs flow straight into the replenishment
    // pool; nothing is copied and nothing needs a same_mapping rescan.
    session.backups = select_backups(session.active,
                                     std::move(composed.backups),
                                     std::size_t(gamma),
                                     config_.backup_policy, &policy_rng_,
                                     &session.pool);
    stats_.backup_count_sum += double(session.backups.size());
    ++stats_.backup_count_samples;
  }

  sessions_.emplace(id, std::move(session));
  count_established();
  return id;
}

SessionId SessionManager::establish_direct(
    const service::CompositeRequest& request, service::ServiceGraph graph,
    std::vector<service::ServiceGraph> backup_pool) {
  SPIDER_REQUIRE(graph.evaluated);
  const SessionId id = alloc_->new_session_id();

  std::vector<std::pair<PeerId, service::Resources>> peer_demands;
  for (const auto& meta : graph.mapping) {
    peer_demands.emplace_back(meta.host, meta.required);
  }
  std::vector<std::pair<overlay::OverlayLinkId, double>> link_demands;
  if (request.bandwidth_kbps > 0.0) {
    for (const auto& hop : graph.hops) {
      for (overlay::OverlayLinkId link : hop.path.links) {
        link_demands.emplace_back(link, request.bandwidth_kbps);
      }
    }
  }
  if (!alloc_->grant_direct(id, peer_demands, link_demands)) {
    return kInvalidSession;
  }

  Session session;
  session.id = id;
  session.request = request;
  session.active = std::move(graph);
  // Same confirm leg as establish(): direct admission still has to tell
  // the graph's peers they are part of a session now.
  const CtrlOutcome confirm =
      send_control(session, kCtrlConfirm, graph_route(session.active));
  if (!confirm.acked) {
    ++stats_.confirms_lost;
    bump(metrics_, m_confirms_lost_, "session.confirm_lost");
    if (!confirm.applied) alloc_->release_session(id);
    erase_session(id);
    return kInvalidSession;
  }
  session.state = SessionState::kActive;
  if (config_.proactive) {
    const int gamma =
        backup_count(session.active, request, backup_pool.size() + 1);
    session.backups = select_backups(session.active, std::move(backup_pool),
                                     std::size_t(gamma),
                                     config_.backup_policy, &policy_rng_,
                                     &session.pool);
    stats_.backup_count_sum += double(session.backups.size());
    ++stats_.backup_count_samples;
  }
  sessions_.emplace(id, std::move(session));
  count_established();
  return id;
}

void SessionManager::teardown(SessionId id) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    Session& session = it->second;
    session.state = SessionState::kTornDown;
    const CtrlOutcome out =
        send_control(session, kCtrlTeardown, graph_route(session.active));
    if (!out.applied) {
      // No teardown request ever arrived: the peers keep the grants
      // (stranded until lease expiry or audit() reclaims them), but the
      // source still forgets the session.
      ++stats_.teardowns_lost;
      bump(metrics_, m_teardowns_lost_, "session.teardown_lost");
      erase_session(id);
      if (m_teardowns_ != nullptr) m_teardowns_->inc();
      update_active_gauge();
      return;
    }
  }
  alloc_->release_session(id);
  if (it != sessions_.end()) {
    erase_session(id);
    if (m_teardowns_ != nullptr) m_teardowns_->inc();
  }
  update_active_gauge();
}

std::size_t SessionManager::on_source_crashed(PeerId source) {
  std::vector<SessionId> dead;
  for (const auto& [id, session] : sessions_) {
    if (session.active.source == source) dead.push_back(id);
  }
  std::sort(dead.begin(), dead.end());
  for (SessionId id : dead) {
    sessions_.at(id).state = SessionState::kTornDown;
    ++stats_.source_crashes;
    bump(metrics_, m_source_crashes_, "session.source_crashes");
    // Deliberately no release_session: the crashed source cannot tear
    // anything down. Its grants are exactly what leases and the
    // anti-entropy audit exist to reclaim.
    erase_session(id);
  }
  update_active_gauge();
  return dead.size();
}

bool SessionManager::admit(Session& session, ServiceGraph graph) {
  // Re-resolve against the current overlay (routes change under churn).
  if (!evaluator_->resolve(graph)) return false;
  evaluator_->evaluate(graph, session.request);
  if (!evaluator_->qos_qualified(graph, session.request)) return false;

  std::vector<std::pair<PeerId, service::Resources>> peer_demands;
  for (const auto& meta : graph.mapping) {
    peer_demands.emplace_back(meta.host, meta.required);
  }
  std::vector<std::pair<overlay::OverlayLinkId, double>> link_demands;
  if (session.request.bandwidth_kbps > 0.0) {
    for (const auto& hop : graph.hops) {
      for (overlay::OverlayLinkId link : hop.path.links) {
        link_demands.emplace_back(link, session.request.bandwidth_kbps);
      }
    }
  }
  // Free the broken graph's grants first, then grant the replacement.
  alloc_->release_session(session.id);
  if (!alloc_->grant_direct(session.id, peer_demands, link_demands)) {
    return false;
  }
  session.active = std::move(graph);
  return true;
}

RecoveryOutcome SessionManager::recover(Session& session, Rng& rng) {
  ++stats_.breaks;
  if (m_breaks_ != nullptr) m_breaks_->inc();
  if (config_.proactive) {
    // Fast path: first surviving, admissible backup.
    session.state = SessionState::kSwitching;
    while (!session.backups.empty()) {
      ServiceGraph candidate = std::move(session.backups.front());
      session.backups.erase(session.backups.begin());
      bool alive = true;
      for (const auto& meta : candidate.mapping) {
        if (!deployment_->peer_alive(meta.host)) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      // Switch-activation leg: the source must reach the candidate's
      // peers to activate the backup graph. An unacked activation skips
      // the candidate — nothing was granted yet, so an applied-but-
      // unacked activation strands nothing in the allocator.
      const CtrlOutcome activation =
          send_control(session, kCtrlSwitch, graph_route(candidate));
      if (!activation.acked) {
        ++stats_.switch_activations_lost;
        bump(metrics_, m_switch_activations_lost_,
             "session.switch_activation_lost");
        continue;
      }
      const double disruption =
          double(session.active.mapping.size()) -
          double(candidate.overlap(session.active));
      if (admit(session, std::move(candidate))) {
        ++session.epoch;
        session.state = SessionState::kActive;
        ++stats_.backup_switches;
        if (m_backup_switches_ != nullptr) m_backup_switches_->inc();
        stats_.switch_disruption_sum += disruption;
        refill_backups(session);
        return RecoveryOutcome::kSwitchedToBackup;
      }
    }
  }
  // Slow path: reactive re-composition via BCP.
  session.state = SessionState::kRecovering;
  ComposeResult re = bcp_->compose(session.request, rng);
  if (re.success) {
    // Convert the re-composition's holds into grants.
    alloc_->release_session(session.id);
    bool ok = true;
    for (HoldId hold : re.best_holds) {
      if (!alloc_->confirm(hold, session.id)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      session.active = std::move(re.best);
      ++session.epoch;
      session.state = SessionState::kActive;
      if (config_.proactive) {
        session.backups.clear();
        session.pool = std::move(re.backups);
        refill_backups(session);
      }
      ++stats_.reactive_recoveries;
      if (m_reactive_recoveries_ != nullptr) m_reactive_recoveries_->inc();
      return RecoveryOutcome::kReactiveRecovered;
    }
    for (HoldId hold : re.best_holds) alloc_->release_hold(hold);
  }
  session.state = SessionState::kTornDown;  // caller tears the session down
  ++stats_.losses;
  if (m_losses_ != nullptr) m_losses_->inc();
  return RecoveryOutcome::kLost;
}

std::vector<RecoveryOutcome> SessionManager::on_peer_failed(PeerId peer,
                                                            Rng& rng) {
  std::vector<RecoveryOutcome> outcomes;
  // Collect affected session ids first: recovery mutates the map's values
  // but not its keys, and lost sessions are torn down after the loop.
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  const bool faults_active = fault_ != nullptr && fault_->active();
  std::vector<SessionId> lost;
  for (SessionId id : ids) {
    Session& session = sessions_.at(id);
    if (faults_active && session.active.uses_peer(peer)) {
      // The failure notification to this session's source is one message
      // subject to the default fault profile (the crashed peer has no
      // routable path, so a concrete route cannot be sampled). If it is
      // lost the source learns nothing now — no pruning, no recovery —
      // and the liveness monitor's miss threshold must time the peer out.
      const std::uint64_t key = util::hash_values(
          std::uint64_t{0x4f71fu}, std::uint64_t(peer), notify_nonce_++);
      if (!fault_->sample_default(key).delivered) {
        ++stats_.notifications_lost;
        bump(metrics_, m_notifications_lost_, "session.notifications_lost");
        outcomes.push_back(RecoveryOutcome::kNotificationLost);
        continue;
      }
    }
    // Backups using the failed peer are silently pruned (their liveness
    // probe would discover it; we prune eagerly and recount maintenance
    // at the next tick).
    std::erase_if(session.backups, [&](const ServiceGraph& g) {
      return g.uses_peer(peer);
    });
    std::erase_if(session.pool, [&](const ServiceGraph& g) {
      return g.uses_peer(peer);
    });
    if (!session.active.uses_peer(peer)) {
      outcomes.push_back(RecoveryOutcome::kNotAffected);
      continue;
    }
    const RecoveryOutcome outcome = recover(session, rng);
    session.probe_misses.clear();  // fresh graph, fresh suspicion state
    outcomes.push_back(outcome);
    if (outcome == RecoveryOutcome::kLost) lost.push_back(id);
  }
  for (SessionId id : lost) teardown(id);
  return outcomes;
}

bool SessionManager::probe_responds(PeerId source, PeerId peer) {
  if (!deployment_->peer_alive(peer)) return false;
  if (fault_ == nullptr || !fault_->active()) return true;
  const std::uint64_t key = util::hash_values(
      std::uint64_t{0x11feu}, std::uint64_t(peer), probe_nonce_++);
  if (source == peer) return true;  // self-probe, no network traversal
  const overlay::OverlayPathRef path =
      deployment_->overlay().route(source, peer);
  if (!path->valid) return false;  // partitioned: the probe cannot reach
  // Round trip: the probe and its ack are independent transmissions.
  return fault_->sample_round_trip(path->links, key).delivered;
}

std::vector<RecoveryOutcome> SessionManager::monitor_active_sessions(
    Rng& rng) {
  std::vector<RecoveryOutcome> outcomes;
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<SessionId> lost;
  for (SessionId id : ids) {
    Session& session = sessions_.at(id);
    // Liveness probes along the active graph (maintenance traffic).
    stats_.maintenance_messages += session.active.hops.size();
    if (m_maintenance_messages_ != nullptr) {
      m_maintenance_messages_->inc(session.active.hops.size());
    }
    // Each monitored peer gets one probe round-trip per pass. A peer is
    // declared dead only after `liveness_miss_threshold` consecutive
    // misses, so a single probe lost by the fault model does not trigger
    // spurious recovery; with a reliable network and the default
    // threshold of 1 this degenerates to a plain aliveness check.
    std::vector<PeerId> monitored;
    monitored.push_back(session.active.source);
    auto add = [&](PeerId p) {
      if (std::find(monitored.begin(), monitored.end(), p) == monitored.end()) {
        monitored.push_back(p);
      }
    };
    add(session.active.dest);
    for (const auto& meta : session.active.mapping) add(meta.host);

    bool broken = false;
    for (PeerId peer : monitored) {
      if (probe_responds(session.active.source, peer)) {
        session.probe_misses.erase(peer);
        continue;
      }
      ++stats_.liveness_probe_misses;
      bump(metrics_, m_probe_misses_, "session.probe_misses");
      bump(metrics_, m_probe_timeouts_, "probe.timeout");
      if (deployment_->peer_alive(peer)) {
        ++stats_.false_suspicions;
        bump(metrics_, m_false_suspicions_, "session.false_suspicions");
      }
      if (++session.probe_misses[peer] >= config_.liveness_miss_threshold) {
        broken = true;
      }
    }
    // Stale backups referencing dead peers are pruned by run_maintenance;
    // here we only react to an active-graph break.
    if (!broken) continue;
    const RecoveryOutcome outcome = recover(session, rng);
    session.probe_misses.clear();
    outcomes.push_back(outcome);
    if (outcome == RecoveryOutcome::kLost) lost.push_back(id);
  }
  for (SessionId id : lost) teardown(id);
  return outcomes;
}

void SessionManager::refill_backups(Session& session) {
  const int gamma = backup_count(session.active, session.request,
                                 session.pool.size() + session.backups.size() +
                                     1);
  while (int(session.backups.size()) < gamma && !session.pool.empty()) {
    // Re-select from the pool against the *new* active graph; the pool
    // cycles through select_backups by move and comes back without the
    // picked graph, in its original order.
    std::vector<ServiceGraph> remainder;
    std::vector<ServiceGraph> pick =
        select_backups(session.active, std::move(session.pool), 1,
                       config_.backup_policy, &policy_rng_, &remainder);
    session.pool = std::move(remainder);
    if (pick.empty()) break;
    session.backups.push_back(std::move(pick.front()));
  }
}

void SessionManager::run_maintenance() {
  const bool leased = alloc_->lease_ttl_ms() > 0.0;
  const bool faults_active = fault_ != nullptr && fault_->active();
  for (auto& [id, session] : sessions_) {
    if (leased) {
      // Lease renewal piggybacks on the maintenance beat: one renewal
      // message per session per pass. It is fire-and-forget soft state —
      // a lost renewal is simply retried by the next pass, so the only
      // penalty of loss is a closer brush with the ttl deadline.
      ++stats_.lease_renew_messages;
      ++stats_.maintenance_messages;
      if (m_maintenance_messages_ != nullptr) m_maintenance_messages_->inc();
      bump(metrics_, m_lease_renewals_sent_, "session.lease_renewals_sent");
      bool delivered = true;
      if (faults_active) {
        const std::uint64_t key =
            util::hash_values(kCtrlRenew, id, session.ctrl_seq++);
        delivered =
            fault_->sample_path(graph_route(session.active), key).delivered;
      }
      if (delivered) alloc_->renew_session(id);
    }
    std::vector<ServiceGraph> kept;
    kept.reserve(session.backups.size());
    for (ServiceGraph& backup : session.backups) {
      // Low-rate liveness probe along the backup graph: one message per
      // service link hop (the paper's maintenance overhead).
      stats_.maintenance_messages += backup.hops.size();
      if (m_maintenance_messages_ != nullptr) {
        m_maintenance_messages_->inc(backup.hops.size());
      }
      bool alive = deployment_->peer_alive(backup.source) &&
                   deployment_->peer_alive(backup.dest);
      for (const auto& meta : backup.mapping) {
        alive = alive && deployment_->peer_alive(meta.host);
      }
      if (!alive) continue;
      // QoS re-validation with current routes/availability.
      ServiceGraph refreshed = backup;
      if (!evaluator_->resolve(refreshed)) continue;
      evaluator_->evaluate(refreshed, session.request);
      if (!evaluator_->qos_qualified(refreshed, session.request)) continue;
      kept.push_back(std::move(refreshed));
    }
    session.backups = std::move(kept);
    refill_backups(session);
  }
}

SessionManager::AuditReport SessionManager::audit() {
  AuditReport report;
  // 1. Sweep probe-time soft state: expired holds leave availability and
  //    the outstanding-hold gauge in agreement right now.
  const std::size_t holds_before = alloc_->active_holds();
  alloc_->sweep_expired();
  report.expired_holds = holds_before - alloc_->active_holds();
  // 2. Sweep session-time soft state: leases that missed their deadline.
  report.leases_reclaimed = alloc_->reclaim_expired_leases();
  // 3. Reclaim orphans: grant sets whose session is not live here —
  //    crashed sources, lost teardowns, confirm legs whose ack vanished.
  for (SessionId id : alloc_->granted_sessions()) {
    if (sessions_.find(id) != sessions_.end()) continue;
    const auto totals = alloc_->session_grant_totals(id);
    report.orphan_kbps += totals.link_kbps_total;
    ++report.orphan_sessions;
    ++stats_.orphans_reclaimed;
    bump(metrics_, m_orphans_reclaimed_, "session.orphans_reclaimed");
    alloc_->release_session(id);
  }
  // 4. Conservation: what the allocator holds for each live session must
  //    equal that session's active-graph demand. A live session with no
  //    grants at all lost its lease (every renewal was lost, or the ttl
  //    is shorter than the maintenance period): its peers already
  //    reclaimed the capacity, so the session is dead — tear it down
  //    locally rather than flag a violation.
  std::vector<SessionId> lapsed;
  for (const auto& [id, session] : sessions_) {
    const auto totals = alloc_->session_grant_totals(id);
    if (alloc_->lease_ttl_ms() > 0.0 && totals.grant_count == 0) {
      lapsed.push_back(id);
      continue;
    }
    service::Resources demand;
    for (const auto& meta : session.active.mapping) demand += meta.required;
    double link_kbps = 0.0;
    if (session.request.bandwidth_kbps > 0.0) {
      for (const auto& hop : session.active.hops) {
        link_kbps += session.request.bandwidth_kbps * double(hop.path.links.size());
      }
    }
    constexpr double kTol = 1e-6;
    bool ok = std::abs(totals.link_kbps_total - link_kbps) <= kTol;
    for (std::size_t i = 0; i < service::Resources::kTypes && ok; ++i) {
      ok = std::abs(totals.peer_total.v[i] - demand.v[i]) <= kTol;
    }
    if (!ok) report.conserved = false;
    SPIDER_DCHECK(ok);
  }
  std::sort(lapsed.begin(), lapsed.end());
  for (SessionId id : lapsed) {
    sessions_.at(id).state = SessionState::kTornDown;
    ++stats_.losses;
    if (m_losses_ != nullptr) m_losses_->inc();
    erase_session(id);
  }
  if (!lapsed.empty()) update_active_gauge();
  return report;
}

void SessionManager::enable_periodic_audit(double period_ms,
                                           double first_delay_ms) {
  audit_timer_.reset();
  if (period_ms <= 0.0) return;
  audit_timer_ = std::make_unique<sim::PeriodicTimer>(*sim_, period_ms,
                                                      [this] { audit(); });
  // Default phase: half a period, so the audit interleaves with
  // maintenance timers of the same period instead of colliding.
  audit_timer_->start(first_delay_ms >= 0.0 ? first_delay_ms
                                            : period_ms * 0.5);
}

SessionState SessionManager::session_state(SessionId session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? SessionState::kTornDown : it->second.state;
}

const service::ServiceGraph* SessionManager::active_graph(
    SessionId session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second.active;
}

std::size_t SessionManager::backup_count_of(SessionId session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.backups.size();
}

}  // namespace spider::core
