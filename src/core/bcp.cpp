#include "core/bcp.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/hold_keys.hpp"
#include "discovery/community_index.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/community.hpp"
#include "util/hash.hpp"
#include "util/keys.hpp"
#include "util/require.hpp"

namespace spider::core {

using service::ComponentMetadata;
using service::FnNode;
using service::Qos;
using service::ServiceGraph;
using service::ServiceLinkHop;

namespace {

/// splitmix64-based hash -> uniform double in [0, 1). The next-hop
/// metric's noise/jitter terms are derived from a per-request salt and
/// the (observer peer, candidate) pair, NOT from a shared RNG stream:
/// an estimate error is a property of who measures whom, and hashing
/// makes composition results independent of probe processing order (the
/// synchronous and message-level modes decide identically).
double unit_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return double(x >> 11) * 0x1.0p-53;
}

/// ψ ranking must not be distorted by a request's own soft holds (probes
/// of the same request would otherwise see each other's temporary
/// reservations as load). The engine tracks what it reserved and ranks
/// through this view, which adds it back — the availability a probe
/// carried in its states before its own allocation (step 2.4).
struct OwnHoldsView : public AvailabilityView {
  AllocationManager* base = nullptr;
  std::unordered_map<overlay::PeerId, service::Resources> peer_extra;
  std::unordered_map<overlay::OverlayLinkId, double> link_extra;

  service::Resources peer_available(overlay::PeerId peer) override {
    service::Resources avail = base->peer_available(peer);
    if (auto it = peer_extra.find(peer); it != peer_extra.end()) {
      avail += it->second;
    }
    return avail;
  }
  double link_available_kbps(overlay::OverlayLinkId link) override {
    double avail = base->link_available_kbps(link);
    if (auto it = link_extra.find(link); it != link_extra.end()) {
      avail += it->second;
    }
    return avail;
  }
};

}  // namespace

struct BcpEngine::Probe {
  std::size_t pattern_idx = 0;
  std::size_t branch_idx = 0;
  PeerId at = overlay::kInvalidPeer;
  double arrival = 0.0;   ///< ms since request start
  double disc_acc = 0.0;  ///< discovery share of `arrival`
  Qos qos_acc = Qos::delay_loss(0.0);
  std::uint32_t level = 0;  ///< quality level of the stream at this point
  int budget = 1;
  /// Deterministic delivery-sampling key. Derived from the request salt
  /// and the probe's (pattern, branch, chosen-component) path — NOT from
  /// processing order — so fault outcomes are identical between the
  /// synchronous and message-level modes.
  std::uint64_t fault_key = 0;
  /// Chosen prefix of the branch: component, per-hop holds and leg timing
  /// live in immutable shared PathSegments (probe_path.hpp), so copying a
  /// Probe is O(1) regardless of depth. depth() == hops taken so far.
  PathRef prefix;
  /// Bandwidth hold on the final leg toward the destination — attached to
  /// the probe, not the chain: it exists only once the probe leaves its
  /// last component, which no child ever shares.
  std::optional<std::pair<HoldCoverKey, HoldId>> dest_hold;
  bool final_leg_done = false;
};

struct BcpEngine::DiscoveryEntry {
  std::vector<ComponentMetadata> components;
  double time_ms = 0.0;
};

/// Everything one in-flight composition owns. The synchronous path keeps
/// it on the stack; the message-level path keeps it alive on the heap
/// until the last event fires.
struct BcpEngine::ComposeState {
  /// Backs every probe's prefix chain for this request. Declared first:
  /// members below (seeds, arrived, queued probes in the drivers) hold
  /// PathRefs into it and must be destroyed before it.
  PathArena arena;
  service::CompositeRequest request;
  Rng* rng = nullptr;
  std::uint64_t noise_salt = 0;  ///< seeds the hashed metric noise/jitter
  ComposeResult result;
  sim::Time hold_expiry = 0.0;
  std::vector<HoldId> all_holds;
  OwnHoldsView own_view;
  std::unordered_map<SharedPeerKey, HoldId, SharedPeerKeyHash>
      shared_peer_holds;
  std::unordered_map<SharedPathKey, HoldId, SharedPathKeyHash>
      shared_path_holds;
  std::vector<service::FunctionGraph> patterns;
  std::vector<std::vector<std::vector<FnNode>>> branches;
  std::unordered_map<util::PairKey<PeerId, service::FunctionId>,
                     DiscoveryEntry, util::PairKeyHash>
      discovery_cache;
  std::vector<Probe> seeds;    ///< filled by init_state
  std::vector<Probe> arrived;  ///< probes that completed their final leg
  bool faults_active = false;  ///< fault model attached AND non-clean
  // Two-tier state (filled by coarse_select; untouched in flat mode).
  bool two_tier = false;
  double coarse_time_ms = 0.0;  ///< when the coarse tier's answers are in
  std::vector<overlay::CommunityId> allowed_communities;  ///< ascending
};

/// Outcome of delivering one probe hop under the fault model.
struct BcpEngine::HopDelivery {
  bool delivered = true;
  /// Retransmission waits + link jitter — added to the probe's arrival
  /// time (setup latency) but not to its measured path QoS.
  double added_latency_ms = 0.0;
};

const BcpEngine::DiscoveryEntry& BcpEngine::discover(ComposeState& state,
                                                     PeerId peer,
                                                     service::FunctionId fn) {
  auto& ov = deployment_->overlay();
  const util::PairKey<PeerId, service::FunctionId> key{peer, fn};
  auto it = state.discovery_cache.find(key);
  if (it != state.discovery_cache.end()) return it->second;
  if (state.two_tier) {
    // Fine tier: replicas come from the candidate communities' indices
    // (one request + reply per community head) instead of the global DHT
    // — the intra-community restriction that makes probing cost scale
    // with the communities selected, not the overlay.
    DiscoveryEntry entry;
    for (overlay::CommunityId c : state.allowed_communities) {
      const auto span = community_index_->replicas(c, fn);
      entry.components.insert(entry.components.end(), span.begin(),
                              span.end());
      entry.time_ms = std::max(
          entry.time_ms,
          2.0 * ov.estimated_delay_ms(peer, communities_->head(c)));
    }
    state.result.stats.discovery_messages +=
        2 * state.allowed_communities.size();
    return state.discovery_cache.emplace(key, std::move(entry))
        .first->second;
  }
  DiscoveryEntry entry;
  discovery::DiscoveryResult found = deployment_->registry().discover(peer, fn);
  state.result.stats.discovery_messages += found.hops() + 1;  // lookup + reply
  // Lookup latency: the DHT route's overlay transit plus the response
  // straight back to the requester.
  // Discovery timing is a latency *hint*, never a candidate-graph leg:
  // the estimator (when attached) answers these in O(k) without routing.
  for (std::size_t i = 0; i + 1 < found.path.size(); ++i) {
    entry.time_ms += ov.estimated_delay_ms(found.path[i], found.path[i + 1]);
  }
  if (!found.path.empty()) {
    entry.time_ms += ov.estimated_delay_ms(found.path.back(), peer);
  }
  if (found.found) entry.components = std::move(found.components);
  return state.discovery_cache.emplace(key, std::move(entry)).first->second;
}

BcpEngine::HopDelivery BcpEngine::deliver_hop(ComposeState& state,
                                              const overlay::OverlayPath& path,
                                              std::uint64_t hop_key,
                                              int* budget) {
  HopDelivery out;
  if (!state.faults_active) return out;  // reliable network: one send, on time
  ComposeStats& stats = state.result.stats;
  // Initial timeout tracks the path RTT; each retry backs off.
  double rto = std::max(config_.retx_min_rto_ms,
                        config_.retx_rtt_factor * path.delay_ms);
  double waited = 0.0;
  const int attempts = 1 + std::max(config_.probe_retx_limit, 0);
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      // A retransmission happened: the sender's timer fired and one more
      // transmission goes out, paid for from the probe's budget.
      ++stats.probe_messages;
      ++stats.probe_retransmits;
      if (budget != nullptr) *budget = std::max(1, *budget - 1);
    }
    const fault::DeliveryOutcome d = fault_->sample_path(
        path.links, util::hash_values(hop_key, std::uint64_t(a)));
    if (d.delivered) {
      out.added_latency_ms = waited + d.extra_delay_ms;
      return out;
    }
    ++stats.probe_messages_lost;
    ++stats.probe_hop_timeouts;  // the sender times out on this attempt
    waited += rto;
    rto *= config_.retx_backoff;
  }
  out.delivered = false;
  out.added_latency_ms = waited;
  return out;
}

int BcpEngine::quota_for(std::size_t replica_count) const {
  switch (config_.quota_policy) {
    case QuotaPolicy::kUniform:
      return std::max(1, std::min(config_.quota_base, config_.max_quota));
    case QuotaPolicy::kReplicaProportional: {
      // α_k = ⌈replicas · quota_base / 8⌉: quota_base anchors the fraction
      // of the replica pool probed (8 = all of it; the default 4 = half,
      // matching the pre-anchor behavior ⌈replicas / 2⌉).
      const std::size_t base = std::size_t(std::max(config_.quota_base, 1));
      const std::size_t alpha = (replica_count * base + 7) / 8;
      return int(std::clamp<std::size_t>(alpha, 1,
                                         std::size_t(config_.max_quota)));
    }
  }
  return 1;
}

int BcpEngine::coarse_select(ComposeState& state, int budget_total) {
  auto& ov = deployment_->overlay();
  ComposeStats& stats = state.result.stats;
  const service::CompositeRequest& request = state.request;
  const overlay::CommunityMap& map = *communities_;
  const std::size_t community_count = map.community_count();

  // The functions this request needs (commutation permutes their order,
  // never their set, so one coarse pass covers every pattern).
  std::vector<service::FunctionId> fns;
  for (service::FnNode n = 0; n < request.graph.node_count(); ++n) {
    fns.push_back(request.graph.function(n));
  }
  std::sort(fns.begin(), fns.end());
  fns.erase(std::unique(fns.begin(), fns.end()), fns.end());

  // Rank communities by the source's delay hint to their heads, then
  // probe the nearest ⌊β · share⌋ of them: one summary request + reply
  // per head, one budget unit each.
  std::vector<std::pair<double, overlay::CommunityId>> by_prior;
  by_prior.reserve(community_count);
  for (std::size_t c = 0; c < community_count; ++c) {
    by_prior.emplace_back(
        ov.estimated_delay_ms(request.source, map.head(overlay::CommunityId(c))),
        overlay::CommunityId(c));
  }
  std::stable_sort(by_prior.begin(), by_prior.end());

  const int coarse_budget =
      std::clamp(int(double(budget_total) * config_.coarse_budget_share), 1,
                 budget_total - 1);
  const std::size_t probed =
      std::min<std::size_t>(std::size_t(coarse_budget), community_count);

  // Score each probed community on its summary answers: head proximity
  // plus the best advertised per-function QoS, with a large penalty per
  // requested function the community cannot serve at all.
  struct Scored {
    double score;
    overlay::CommunityId c;
    std::uint32_t covered_mask;  // bit i: hosts a replica of fns[i]
  };
  SPIDER_REQUIRE_MSG(fns.size() <= 32,
                     "coarse tier supports up to 32 distinct functions");
  std::vector<Scored> scored;
  scored.reserve(probed);
  for (std::size_t i = 0; i < probed; ++i) {
    const auto [prior, c] = by_prior[i];
    ++stats.coarse_probes;
    stats.probe_messages += 2;  // summary request + reply
    state.coarse_time_ms =
        std::max(state.coarse_time_ms,
                 2.0 * prior + config_.per_hop_processing_ms);
    Scored s{prior, c, 0};
    for (std::size_t f = 0; f < fns.size(); ++f) {
      const discovery::CommunitySummary* sum =
          community_index_->summary(c, fns[f]);
      if (sum == nullptr) {
        s.score += 1e9;  // missing function: near-useless on its own
      } else {
        s.score += config_.metric_w_perf_delay * sum->min_perf_delay_ms +
                   config_.metric_w_failure * sum->min_failure_prob;
        s.covered_mask |= 1u << f;
      }
    }
    scored.push_back(s);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score < b.score;
                     return a.c < b.c;
                   });

  // Greedy cover: keep a community only while it adds coverage of a
  // requested function (always keep the best-scoring one so the fine
  // tier has somewhere to go), capped at max_candidate_communities.
  const std::uint32_t full_mask =
      fns.size() >= 32 ? ~0u : (1u << fns.size()) - 1u;
  std::uint32_t covered = 0;
  for (const Scored& s : scored) {
    if (!state.allowed_communities.empty() &&
        (state.allowed_communities.size() >=
             config_.max_candidate_communities ||
         covered == full_mask || (s.covered_mask & ~covered) == 0)) {
      continue;
    }
    state.allowed_communities.push_back(s.c);
    covered |= s.covered_mask;
  }
  std::sort(state.allowed_communities.begin(),
            state.allowed_communities.end());
  stats.communities_pruned += probed - state.allowed_communities.size();
  state.two_tier = true;
  return int(probed);
}

bool BcpEngine::init_state(ComposeState& state,
                           const service::CompositeRequest& request,
                           Rng& rng) {
  auto& ov = deployment_->overlay();
  SPIDER_REQUIRE(request.graph.node_count() > 0);
  SPIDER_REQUIRE(request.graph.is_dag());
  if (!ov.alive(request.source) || !ov.alive(request.dest)) return false;

  state.request = request;
  state.rng = &rng;
  state.noise_salt = rng();  // one draw per request; see unit_hash
  state.hold_expiry = sim_->now() + config_.probe_timeout_ms;
  state.own_view.base = alloc_;
  state.faults_active = fault_ != nullptr && fault_->active();

  // ---- Step 1: patterns, branches, seed probes ------------------------
  state.patterns =
      config_.use_commutation
          ? request.graph.patterns(config_.max_patterns)
          : std::vector<service::FunctionGraph>{request.graph};
  state.branches.resize(state.patterns.size());
  std::size_t total_seeds = 0;
  for (std::size_t pi = 0; pi < state.patterns.size(); ++pi) {
    state.branches[pi] = state.patterns[pi].branches();
    total_seeds += state.branches[pi].size();
  }
  SPIDER_REQUIRE(total_seeds > 0);
  // β is split exactly across the pattern/branch seeds: every seed gets
  // ⌊β/S⌋ and the first β mod S seeds one more, so Σ seed budgets == β.
  // When β < S only the first β seeds spawn at all — the budget is a hard
  // ceiling on probes in flight, never rounded up per seed.
  const int budget_total = std::max(config_.probing_budget, 0);
  // Coarse inter-community tier first (two-tier mode only): it spends
  // part of β on summary probes and restricts discovery to the selected
  // communities; the remainder seeds the fine tier below, so coarse +
  // fine == β exactly. Tiny budgets (< 4) and single-community maps run
  // flat — there is nothing worth pruning.
  int fine_budget = budget_total;
  if (communities_ != nullptr && community_index_ != nullptr &&
      communities_->community_count() > 1 && budget_total >= 4) {
    fine_budget -= coarse_select(state, budget_total);
  }
  const int seed_base = fine_budget / int(total_seeds);
  const int seed_extra = fine_budget % int(total_seeds);

  int granted = 0;
  std::size_t seed_idx = 0;
  for (std::size_t pi = 0; pi < state.patterns.size(); ++pi) {
    for (std::size_t bi = 0; bi < state.branches[pi].size(); ++bi) {
      const int seed_budget =
          seed_base + (seed_idx < std::size_t(seed_extra) ? 1 : 0);
      ++seed_idx;
      if (seed_budget < 1) continue;  // β exhausted: seed never spawns
      granted += seed_budget;
      Probe seed;
      seed.pattern_idx = pi;
      seed.branch_idx = bi;
      seed.at = request.source;
      seed.arrival = state.coarse_time_ms;  // 0 in flat mode
      seed.budget = seed_budget;
      seed.qos_acc = Qos(request.qos_req.size());
      seed.level = request.source_level;
      seed.fault_key = util::hash_values(state.noise_salt, pi, bi);
      state.seeds.push_back(std::move(seed));
      ++state.result.stats.probes_spawned;
      if (trace_ != nullptr) {
        obs::TraceRecord rec;
        rec.event = obs::TraceEvent::kSeedSpawned;
        rec.pattern = std::int64_t(pi);
        rec.branch = std::int64_t(bi);
        rec.peer = std::int64_t(request.source);
        rec.value = double(seed_budget);
        trace_->record(std::move(rec));
      }
    }
  }
  SPIDER_DCHECK(granted <= fine_budget);
  (void)granted;
  return !state.seeds.empty();
}

void BcpEngine::process_probe(ComposeState& state, Probe probe,
                              std::vector<Probe>* out_children) {
  auto& ov = deployment_->overlay();
  ComposeStats& stats = state.result.stats;
  const service::CompositeRequest& request = state.request;
  (void)state.rng;  // metric noise is hashed, not drawn (see unit_hash)
  const auto& branch = state.branches[probe.pattern_idx][probe.branch_idx];
  const auto& pattern = state.patterns[probe.pattern_idx];

  // Trace emitters (no-ops without an attached trace).
  auto trace_drop = [&](const Probe& p, const char* reason) {
    if (trace_ == nullptr) return;
    obs::TraceRecord rec;
    rec.event = obs::TraceEvent::kProbeDropped;
    rec.time_ms = p.arrival;
    rec.pattern = std::int64_t(p.pattern_idx);
    rec.branch = std::int64_t(p.branch_idx);
    rec.peer = std::int64_t(p.at);
    rec.note = reason;
    trace_->record(std::move(rec));
  };
  auto trace_skip = [&](FnNode node, PeerId host, const char* reason) {
    if (trace_ == nullptr) return;
    obs::TraceRecord rec;
    rec.event = obs::TraceEvent::kCandidateSkipped;
    rec.time_ms = probe.arrival;
    rec.pattern = std::int64_t(probe.pattern_idx);
    rec.branch = std::int64_t(probe.branch_idx);
    rec.node = std::int64_t(node);
    rec.peer = std::int64_t(host);
    rec.note = reason;
    trace_->record(std::move(rec));
  };
  auto trace_hold = [&](obs::TraceEvent event, double t, FnNode node,
                        HoldId hold) {
    if (trace_ == nullptr) return;
    obs::TraceRecord rec;
    rec.event = event;
    rec.time_ms = t;
    rec.node = std::int64_t(node);
    rec.value = double(hold);
    trace_->record(std::move(rec));
  };

  if (probe.prefix.depth() == branch.size()) {
    // Final leg: stream exits the last component toward the destination.
    ++stats.probe_messages;
    const FnNode last = branch.back();
    double leg_delay = 0.0;
    double leg_extra = 0.0;  ///< retransmission waits + jitter
    if (probe.at != request.dest) {
      const overlay::OverlayPathRef path = ov.route(probe.at, request.dest);
      if (!path->valid) {
        ++stats.probes_dropped_resources;
        trace_drop(probe, "no_route_to_dest");
        return;
      }
      leg_delay = path->delay_ms;
      if (request.bandwidth_kbps > 0.0 && !path->links.empty()) {
        if (!config_.soft_allocation) {
          // Check-only mode (ablation A4): no reservation is made.
          if (alloc_->path_available_kbps(*path) <
              request.bandwidth_kbps) {
            ++stats.probes_dropped_resources;
            trace_drop(probe, "dest_leg_bandwidth");
            return;
          }
        } else {
          const SharedPathKey skey{last, ServiceLinkHop::kEndpoint, probe.at,
                                   request.dest};
          auto existing = state.shared_path_holds.find(skey);
          if (existing != state.shared_path_holds.end()) {
            ++stats.holds_reused;
            trace_hold(obs::TraceEvent::kHoldReused, probe.arrival, last,
                       existing->second);
            probe.dest_hold.emplace(
                HoldCoverKey::edge(last, ServiceLinkHop::kEndpoint),
                existing->second);
          } else {
            auto hold = alloc_->soft_reserve_path(
                *path, request.bandwidth_kbps, state.hold_expiry);
            if (!hold.has_value()) {
              ++stats.probes_dropped_resources;
              trace_drop(probe, "dest_leg_bandwidth");
              return;
            }
            ++stats.holds_acquired;
            trace_hold(obs::TraceEvent::kHoldAcquired, probe.arrival, last,
                       *hold);
            state.all_holds.push_back(*hold);
            state.shared_path_holds.emplace(skey, *hold);
            for (auto link : path->links) {
              state.own_view.link_extra[link] += request.bandwidth_kbps;
            }
            probe.dest_hold.emplace(
                HoldCoverKey::edge(last, ServiceLinkHop::kEndpoint), *hold);
          }
        }
      }
      // The probe message itself must survive the trip (holds a lost
      // probe left behind are reclaimed by finalize's cleanup, exactly
      // like the paper's timeout-based cancellation).
      const HopDelivery hd = deliver_hop(
          state, *path, util::hash_values(probe.fault_key, 0x0fu),
          &probe.budget);
      if (!hd.delivered) {
        ++stats.probes_dropped_lost;
        trace_drop(probe, "msg_lost");
        return;
      }
      leg_extra = hd.added_latency_ms;
    }
    probe.arrival += config_.per_hop_processing_ms + leg_delay + leg_extra;
    probe.qos_acc[Qos::kDelay] += leg_delay;
    if (probe.arrival > config_.probe_timeout_ms) {
      ++stats.probes_dropped_timeout;
      trace_drop(probe, "timeout");
      return;
    }
    if (!probe.qos_acc.within(request.qos_req) ||
        probe.level < request.min_dest_level) {
      ++stats.probes_dropped_qos;
      trace_drop(probe, "qos_violation");
      return;
    }
    probe.final_leg_done = true;
    ++stats.probes_arrived;
    if (trace_ != nullptr) {
      obs::TraceRecord rec;
      rec.event = obs::TraceEvent::kHopTaken;
      rec.time_ms = probe.arrival;
      rec.pattern = std::int64_t(probe.pattern_idx);
      rec.branch = std::int64_t(probe.branch_idx);
      rec.peer = std::int64_t(request.dest);
      rec.note = "arrived";
      trace_->record(std::move(rec));
    }
    state.arrived.push_back(std::move(probe));
    return;
  }

  // Step 2.2/2.3: next-hop function & replica selection.
  const FnNode next_node = branch[probe.prefix.depth()];
  const service::FunctionId fn = pattern.function(next_node);
  const DiscoveryEntry& disc = discover(state, probe.at, fn);

  std::vector<const ComponentMetadata*> candidates;
  for (const ComponentMetadata& meta : disc.components) {
    // Liveness + Q_in compatibility (§2.2): the candidate must accept the
    // stream at its current quality level.
    if (ov.alive(meta.host) && meta.input_level <= probe.level) {
      candidates.push_back(&meta);
    }
  }
  if (candidates.empty() || probe.budget < 1) {
    ++stats.probes_dropped_resources;
    trace_drop(probe, candidates.empty() ? "no_candidates" : "no_budget");
    return;
  }

  // Composite local selection metric (step 2.3): proximity + component
  // performance + failure risk + trust; lower is better. Local knowledge
  // only: the peer knows the measured delay of its own overlay links; for
  // non-neighbor candidates it falls back to a coarse estimate (2x its
  // mean neighbor delay) blurred by log-normal noise — the states-
  // imprecision the paper's decentralization argument rests on. The
  // *destination* later judges candidates on the states the probes
  // actually measured en route.
  const double far_guess = 2.0 * ov.mean_neighbor_delay(probe.at);
  auto score = [&](const ComponentMetadata& meta) {
    // Deterministic per-(observer, candidate) noise draws.
    const std::uint64_t noise_key = state.noise_salt ^
                                    (std::uint64_t(probe.at) << 40) ^
                                    meta.id * 0x9e3779b97f4a7c15ULL;
    double link = 0.0;
    if (probe.at != meta.host &&
        !ov.are_neighbors(probe.at, meta.host, &link)) {
      link = far_guess;
      if (config_.metric_estimate_sigma > 0.0) {
        // Log-normal multiplier via Box–Muller over two hashed uniforms.
        double u1 = unit_hash(noise_key);
        if (u1 <= 0.0) u1 = 0.5;
        const double u2 = unit_hash(noise_key + 1);
        const double normal =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
        link *= std::exp(config_.metric_estimate_sigma * normal);
      }
    }
    double bw_term = 0.0;
    if (request.bandwidth_kbps > 0.0 && probe.at != meta.host) {
      const overlay::OverlayPathRef path = ov.route(probe.at, meta.host);
      const double avail =
          path->valid ? state.own_view.path_available_kbps(*path) : 0.0;
      bw_term = avail >= request.bandwidth_kbps
                    ? config_.metric_w_bandwidth *
                          (request.bandwidth_kbps / avail)
                    : 1e6;  // cannot carry the stream
    }
    const double jitter = config_.metric_jitter_ms > 0.0
                              ? config_.metric_jitter_ms *
                                    unit_hash(noise_key + 2)
                              : 0.0;
    double trust_term = 0.0;
    if (config_.trust_fn) {
      trust_term =
          config_.metric_w_trust * (1.0 - config_.trust_fn(meta.host));
    }
    return config_.metric_w_link_delay * link +
           config_.metric_w_perf_delay * meta.perf.delay_ms() +
           config_.metric_w_failure * meta.failure_prob + bw_term + jitter +
           trust_term;
  };
  // Score once per candidate (the jitter draw must be stable for the sort
  // comparator).
  std::vector<std::pair<double, const ComponentMetadata*>> scored;
  scored.reserve(candidates.size());
  for (const ComponentMetadata* meta : candidates) {
    scored.emplace_back(score(*meta), meta);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second->id < b.second->id;
                   });
  candidates.clear();
  for (const auto& [sc, meta] : scored) candidates.push_back(meta);

  // §4.2: fan out to I_k = min(β_k, α_k) replicas (never more than Z_k),
  // splitting the parent's remaining budget exactly: every child gets
  // ⌊β_k/I_k⌋ and the first β_k mod I_k children one more. Σ child
  // budgets == β_k — the parent's grant is conserved: never minted (a
  // budget-exhausted probe was already dropped above) and never
  // truncated away by the integer division.
  const std::size_t z = candidates.size();
  const int alpha = quota_for(z);
  const std::size_t fanout =
      std::min<std::size_t>(std::size_t(std::min(probe.budget, alpha)), z);
  const int child_base = probe.budget / int(fanout);
  const int child_extra = probe.budget % int(fanout);

  int granted = 0;
  const std::size_t children_before = out_children->size();
  for (std::size_t ci = 0; ci < fanout; ++ci) {
    const ComponentMetadata& cand = *candidates[ci];
    // O(1) spawn: the child copies the probe's scalars and takes a shared
    // reference on the prefix chain; the hops walked so far are inherited
    // by reference, never copied (debug_clone_prefixes deep-copies them
    // below as the equivalence-test oracle, with identical accounting so
    // both modes report the same stats).
    Probe child = probe;
    stats.probe_bytes_copied += sizeof(Probe);
    stats.prefix_nodes_shared += probe.prefix.depth();
    child.budget = child_base + (int(ci) < child_extra ? 1 : 0);
    SPIDER_DCHECK(child.budget >= 1 && child.budget <= probe.budget);
    granted += child.budget;  // before retransmissions charge it below
    ++stats.probe_messages;

    double leg_delay = 0.0;
    double leg_extra = 0.0;  ///< retransmission waits + jitter
    overlay::OverlayPathRef leg_path;  // pinned for this iteration only
    // Sibling probes are distinguished by the component they extend the
    // branch with, so the child key stays processing-order independent.
    child.fault_key =
        util::hash_values(probe.fault_key, std::uint64_t(cand.id));
    if (probe.at != cand.host) {
      leg_path = ov.route(probe.at, cand.host);
      if (!leg_path->valid) {
        ++stats.candidates_skipped_route;
        trace_skip(next_node, cand.host, "no_route");
        continue;
      }
      leg_delay = leg_path->delay_ms;
      const HopDelivery hd =
          deliver_hop(state, *leg_path, child.fault_key, &child.budget);
      if (!hd.delivered) {
        ++stats.candidates_skipped_lost;
        trace_skip(next_node, cand.host, "msg_lost");
        continue;
      }
      leg_extra = hd.added_latency_ms;
    }
    child.arrival +=
        disc.time_ms + config_.per_hop_processing_ms + leg_delay + leg_extra;
    child.disc_acc += disc.time_ms;
    if (child.arrival > config_.probe_timeout_ms) {
      ++stats.candidates_skipped_timeout;
      trace_skip(next_node, cand.host, "would_arrive_late");
      continue;
    }

    // Step 2.4 then 2.1 at the receiving peer: accumulate QoS states, drop
    // on violation, then soft-allocate.
    child.qos_acc[Qos::kDelay] += leg_delay;
    child.qos_acc += cand.perf.resized(request.qos_req.size());
    if (!child.qos_acc.within(request.qos_req)) {
      ++stats.candidates_skipped_qos;
      trace_skip(next_node, cand.host, "qos_violation");
      continue;
    }

    const FnNode prev_node = child.prefix.depth() == 0
                                 ? ServiceLinkHop::kEndpoint
                                 : branch[child.prefix.depth() - 1];
    // Holds attached at this hop, recorded onto the child's fresh
    // PathSegment once it exists (bandwidth first, then resources — the
    // order finalize()'s hold union must observe).
    std::optional<std::pair<HoldCoverKey, HoldId>> leg_bw_hold;
    std::optional<std::pair<HoldCoverKey, HoldId>> leg_res_hold;
    if (!config_.soft_allocation) {
      // Check-only mode (ablation A4): availability verified, nothing
      // reserved — concurrent requests may later race to admission.
      if (leg_path.has_value() && request.bandwidth_kbps > 0.0 &&
          !leg_path->links.empty() &&
          alloc_->path_available_kbps(*leg_path) < request.bandwidth_kbps) {
        ++stats.candidates_skipped_resources;
        trace_skip(next_node, cand.host, "link_bandwidth");
        continue;
      }
      if (!cand.required.fits_within(alloc_->peer_available(cand.host))) {
        ++stats.candidates_skipped_resources;
        trace_skip(next_node, cand.host, "peer_resources");
        continue;
      }
    } else {
      // Bandwidth on the incoming service link (shared per request).
      std::optional<HoldId> bw_hold;
      bool bw_hold_fresh = false;
      if (leg_path.has_value() && request.bandwidth_kbps > 0.0 &&
          !leg_path->links.empty()) {
        const SharedPathKey skey{prev_node, next_node, probe.at, cand.host};
        if (auto it = state.shared_path_holds.find(skey);
            it != state.shared_path_holds.end()) {
          bw_hold = it->second;
          ++stats.holds_reused;
          trace_hold(obs::TraceEvent::kHoldReused, child.arrival, next_node,
                     *bw_hold);
        } else {
          bw_hold = alloc_->soft_reserve_path(
              *leg_path, request.bandwidth_kbps, state.hold_expiry);
          if (!bw_hold.has_value()) {
            ++stats.candidates_skipped_resources;
            trace_skip(next_node, cand.host, "link_bandwidth");
            continue;
          }
          bw_hold_fresh = true;
          ++stats.holds_acquired;
          trace_hold(obs::TraceEvent::kHoldAcquired, child.arrival, next_node,
                     *bw_hold);
          state.shared_path_holds.emplace(skey, *bw_hold);
        }
      }
      // Component resources on the candidate host (shared per request).
      std::optional<HoldId> res_hold;
      const SharedPeerKey pkey{next_node, cand.id};
      if (auto it = state.shared_peer_holds.find(pkey);
          it != state.shared_peer_holds.end()) {
        res_hold = it->second;
        ++stats.holds_reused;
        trace_hold(obs::TraceEvent::kHoldReused, child.arrival, next_node,
                   *res_hold);
      } else {
        res_hold = alloc_->soft_reserve_peer(cand.host, cand.required,
                                             state.hold_expiry);
        if (!res_hold.has_value()) {
          if (bw_hold_fresh) {
            alloc_->release_hold(*bw_hold);
            state.shared_path_holds.erase(
                SharedPathKey{prev_node, next_node, probe.at, cand.host});
          }
          ++stats.candidates_skipped_resources;
          trace_skip(next_node, cand.host, "peer_resources");
          continue;
        }
        ++stats.holds_acquired;
        trace_hold(obs::TraceEvent::kHoldAcquired, child.arrival, next_node,
                   *res_hold);
        state.shared_peer_holds.emplace(pkey, *res_hold);
        state.all_holds.push_back(*res_hold);
        state.own_view.peer_extra[cand.host] += cand.required;
      }
      if (bw_hold.has_value()) {
        if (bw_hold_fresh) {
          state.all_holds.push_back(*bw_hold);
          for (auto link : leg_path->links) {
            state.own_view.link_extra[link] += request.bandwidth_kbps;
          }
        }
        leg_bw_hold.emplace(HoldCoverKey::edge(prev_node, next_node),
                            *bw_hold);
      }
      leg_res_hold.emplace(HoldCoverKey::node(next_node), *res_hold);
    }

    // Every skip is behind us: extend the prefix by one segment. The
    // segment is written (holds attached) before the child is handed to
    // the driver; from then on it is immutable and shared.
    child.prefix =
        config_.debug_clone_prefixes
            ? state.arena.clone_append(probe.prefix.get(), cand, leg_delay,
                                       child.arrival)
            : state.arena.append(probe.prefix.get(), cand, leg_delay,
                                 child.arrival);
    PathSegment* leaf = child.prefix.leaf();
    if (leg_bw_hold.has_value()) {
      leaf->add_hold(leg_bw_hold->first, leg_bw_hold->second);
    }
    if (leg_res_hold.has_value()) {
      leaf->add_hold(leg_res_hold->first, leg_res_hold->second);
    }
    child.at = cand.host;
    child.level = cand.output_level;
    ++stats.probes_spawned;
    if (trace_ != nullptr) {
      obs::TraceRecord rec;
      rec.event = obs::TraceEvent::kHopTaken;
      rec.time_ms = child.arrival;
      rec.pattern = std::int64_t(child.pattern_idx);
      rec.branch = std::int64_t(child.branch_idx);
      rec.node = std::int64_t(next_node);
      rec.peer = std::int64_t(cand.host);
      trace_->record(std::move(rec));
    }
    out_children->push_back(std::move(child));
  }

  SPIDER_DCHECK(granted <= probe.budget);
  (void)granted;

  // Terminal accounting for the parent: it either forwarded into >= 1
  // children or died here because every candidate was skipped.
  if (out_children->size() > children_before) {
    ++stats.probes_forwarded;
  } else {
    ++stats.probes_dropped_resources;
    trace_drop(probe, "all_candidates_skipped");
  }
}

void BcpEngine::finalize(ComposeState& state) {
  ComposeStats& stats = state.result.stats;
  ComposeResult& result = state.result;
  const service::CompositeRequest& request = state.request;

  // ---- Step 3: destination merge + optimal composition selection ------
  // Group arrived probes by (pattern, branch). This is the one place
  // shared prefixes are flattened: the merge below reads each probe's
  // chain through a positional root-first view, so it observes exactly
  // the per-probe component vectors the deep-copy implementation carried.
  std::unordered_map<util::PairKey<std::size_t, std::size_t>,
                     std::vector<const Probe*>, util::PairKeyHash>
      by_pb;
  std::unordered_map<const Probe*, FlatPrefix> flat;
  flat.reserve(state.arrived.size());
  double last_arrival = 0.0;
  double critical_disc = 0.0;
  for (const Probe& probe : state.arrived) {
    by_pb[util::PairKey<std::size_t, std::size_t>{probe.pattern_idx,
                                                  probe.branch_idx}]
        .push_back(&probe);
    flat.emplace(&probe, FlatPrefix(probe.prefix.get()));
    if (probe.arrival > last_arrival) {
      last_arrival = probe.arrival;
      critical_disc = probe.disc_acc;
    }
  }

  struct Candidate {
    std::size_t pattern_idx;
    std::vector<ComponentMetadata> mapping;  // per pattern node
    std::vector<const Probe*> probes;
  };
  std::vector<Candidate> candidates;
  std::unordered_set<std::string> candidate_sigs;

  for (std::size_t pi = 0; pi < state.patterns.size(); ++pi) {
    const auto& pattern_branches = state.branches[pi];
    // All branches must have at least one arrived probe.
    std::vector<const std::vector<const Probe*>*> lists;
    bool complete = true;
    for (std::size_t bi = 0; bi < pattern_branches.size(); ++bi) {
      auto it = by_pb.find(util::PairKey<std::size_t, std::size_t>{pi, bi});
      if (it == by_pb.end()) {
        complete = false;
        break;
      }
      lists.push_back(&it->second);
    }
    if (!complete) continue;

    // Depth-first join across branches, requiring agreement on shared
    // function nodes.
    const std::size_t node_count = state.patterns[pi].node_count();
    std::vector<ComponentMetadata> mapping(node_count);
    std::vector<bool> bound(node_count, false);
    std::vector<const Probe*> used;

    std::function<void(std::size_t)> join = [&](std::size_t bi) {
      if (candidates.size() >= config_.max_candidates) return;
      if (bi == lists.size()) {
        Candidate c;
        c.pattern_idx = pi;
        c.mapping = mapping;
        c.probes = used;
        // Dedupe identical (pattern, mapping) combinations.
        std::string sig = std::to_string(pi) + ":";
        for (const auto& m : c.mapping) sig += std::to_string(m.id) + ",";
        if (candidate_sigs.insert(sig).second) {
          candidates.push_back(std::move(c));
        }
        return;
      }
      const auto& branch = pattern_branches[bi];
      for (const Probe* probe : *lists[bi]) {
        const FlatPrefix& chosen = flat.at(probe);
        bool compatible = true;
        for (std::size_t k = 0; k < branch.size(); ++k) {
          if (bound[branch[k]] &&
              mapping[branch[k]].id != chosen.component(k).id) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
        std::vector<FnNode> newly_bound;
        for (std::size_t k = 0; k < branch.size(); ++k) {
          if (!bound[branch[k]]) {
            bound[branch[k]] = true;
            mapping[branch[k]] = chosen.component(k);
            newly_bound.push_back(branch[k]);
          }
        }
        used.push_back(probe);
        join(bi + 1);
        used.pop_back();
        for (FnNode n : newly_bound) bound[n] = false;
      }
    };
    join(0);
  }
  stats.candidates_merged = candidates.size();
  if (trace_ != nullptr) {
    for (const Candidate& cand : candidates) {
      obs::TraceRecord rec;
      rec.event = obs::TraceEvent::kCandidateMerged;
      rec.time_ms = last_arrival;
      rec.pattern = std::int64_t(cand.pattern_idx);
      rec.value = double(cand.probes.size());
      trace_->record(std::move(rec));
    }
  }

  // Evaluate, filter by QoS, rank by the selection objective.
  struct Scored {
    ServiceGraph graph;
    std::vector<HoldId> holds;
  };
  std::vector<Scored> qualified;
  for (Candidate& cand : candidates) {
    ServiceGraph graph;
    graph.pattern = state.patterns[cand.pattern_idx];
    graph.mapping = std::move(cand.mapping);
    graph.source = request.source;
    graph.dest = request.dest;
    if (!evaluator_->levels_compatible(graph, request)) continue;
    if (!evaluator_->resolve(graph)) continue;
    evaluator_->evaluate(graph, request, &state.own_view);
    if (!evaluator_->qos_qualified(graph, request)) continue;

    // Union of constituent probes' holds, deduped by coverage key. Walk
    // each probe's chain root-first (bandwidth before resources within a
    // hop), destination-leg hold last — the exact insertion order the
    // deep-copy implementation's flat hold vectors produced.
    std::unordered_map<HoldCoverKey, HoldId, HoldCoverKeyHash> by_key;
    for (const Probe* probe : cand.probes) {
      const FlatPrefix& path = flat.at(probe);
      for (std::size_t k = 0; k < path.size(); ++k) {
        const PathSegment& seg = path.segment(k);
        for (std::uint8_t h = 0; h < seg.hold_count; ++h) {
          by_key.emplace(seg.holds[h].first, seg.holds[h].second);
        }
      }
      if (probe->dest_hold.has_value()) {
        by_key.emplace(probe->dest_hold->first, probe->dest_hold->second);
      }
    }
    if (trace_ != nullptr) {
      obs::TraceRecord rec;
      rec.event = obs::TraceEvent::kGraphQualified;
      rec.time_ms = last_arrival;
      rec.value = graph.psi_cost;
      trace_->record(std::move(rec));
    }
    Scored s;
    s.graph = std::move(graph);
    s.holds.reserve(by_key.size());
    for (const auto& [key, hold] : by_key) s.holds.push_back(hold);
    qualified.push_back(std::move(s));
  }
  stats.qualified_found = qualified.size();

  const auto selection_key = [this](const service::ServiceGraph& g) {
    return config_.objective == SelectionObjective::kMinPsi ? g.psi_cost
                                                            : g.qos.delay_ms();
  };
  std::stable_sort(qualified.begin(), qualified.end(),
                   [&](const Scored& a, const Scored& b) {
                     return selection_key(a.graph) < selection_key(b.graph);
                   });

  stats.probing_time_ms = last_arrival;
  stats.discovery_time_ms = critical_disc;

  if (!qualified.empty()) {
    // Step 4: the acknowledgement travels the reversed selected graph.
    // Under the fault model every hop is a real, retransmitted message
    // (same deliver_hop machinery as forward probes); if a hop stays
    // undelivered the source never learns which composition was selected
    // and the request fails — its holds are released below and expire at
    // the peers, the paper's timeout-based cancellation.
    bool ack_ok = true;
    double ack_extra_ms = 0.0;
    for (std::size_t h = 0; h < qualified.front().graph.hops.size(); ++h) {
      ++stats.probe_messages;
      const HopDelivery d = deliver_hop(
          state, qualified.front().graph.hops[h].path,
          util::hash_values(state.noise_salt, std::uint64_t{0xac4eu}, h),
          nullptr);
      ack_extra_ms += d.added_latency_ms;
      if (!d.delivered) {
        ack_ok = false;
        break;
      }
    }
    if (ack_ok) {
      result.success = true;
      if (trace_ != nullptr) {
        obs::TraceRecord rec;
        rec.event = obs::TraceEvent::kGraphSelected;
        rec.time_ms = last_arrival;
        rec.value = selection_key(qualified.front().graph);
        trace_->record(std::move(rec));
      }
      result.best = std::move(qualified.front().graph);
      result.best_holds = std::move(qualified.front().holds);
      for (std::size_t i = 1;
           i < qualified.size() &&
           result.backups.size() < config_.max_backups_returned;
           ++i) {
        result.backups.push_back(std::move(qualified[i].graph));
      }
      stats.setup_time_ms = last_arrival + evaluator_->ack_time_ms(result.best) +
                            config_.per_hop_processing_ms + ack_extra_ms;
    } else {
      ++stats.setup_acks_lost;
      // The source sat through the ack's retransmission timeouts for
      // nothing; charge them to the (failed) setup time.
      stats.setup_time_ms = last_arrival + ack_extra_ms;
    }
  } else {
    stats.setup_time_ms = last_arrival;
  }

  // Release every hold this request made except those backing the best
  // graph (the paper's timeout-based cancellation, applied eagerly).
  std::unordered_set<HoldId> keep(result.best_holds.begin(),
                                  result.best_holds.end());
  for (HoldId hold : state.all_holds) {
    if (keep.count(hold) == 0) {
      alloc_->release_hold(hold);
      if (trace_ != nullptr) {
        obs::TraceRecord rec;
        rec.event = obs::TraceEvent::kHoldReleased;
        rec.time_ms = last_arrival;
        rec.value = double(hold);
        trace_->record(std::move(rec));
      }
    }
  }

  arena_totals_.segments_allocated += state.arena.segments_allocated();
  arena_totals_.freelist_reused += state.arena.freelist_reused();
  arena_totals_.peak_live_segments = std::max(
      arena_totals_.peak_live_segments, state.arena.peak_live_segments());

  flush_metrics(stats, result.success);
}

void BcpEngine::flush_metrics(const ComposeStats& stats, bool success) {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& m = *metrics_;
  m.counter("bcp.requests").inc();
  m.counter(success ? "bcp.compose_success" : "bcp.compose_failure").inc();
  m.counter("bcp.probes_spawned").inc(stats.probes_spawned);
  m.counter("bcp.probes_arrived").inc(stats.probes_arrived);
  m.counter("bcp.probes_forwarded").inc(stats.probes_forwarded);
  m.counter("bcp.probes_dropped_qos").inc(stats.probes_dropped_qos);
  m.counter("bcp.probes_dropped_resources")
      .inc(stats.probes_dropped_resources);
  m.counter("bcp.probes_dropped_timeout").inc(stats.probes_dropped_timeout);
  m.counter("bcp.candidates_skipped_route").inc(stats.candidates_skipped_route);
  m.counter("bcp.candidates_skipped_timeout")
      .inc(stats.candidates_skipped_timeout);
  m.counter("bcp.candidates_skipped_qos").inc(stats.candidates_skipped_qos);
  m.counter("bcp.candidates_skipped_resources")
      .inc(stats.candidates_skipped_resources);
  // Unreliable-delivery counters (stay zero without a fault model; the
  // per-hop retx timer firings live under the cross-layer "probe.*"
  // namespace shared with session liveness probing).
  if (stats.probes_dropped_lost > 0) {
    m.counter("bcp.probes_dropped_lost").inc(stats.probes_dropped_lost);
  }
  if (stats.candidates_skipped_lost > 0) {
    m.counter("bcp.candidates_skipped_lost").inc(stats.candidates_skipped_lost);
  }
  if (stats.probe_retransmits > 0) {
    m.counter("bcp.retransmit").inc(stats.probe_retransmits);
  }
  if (stats.probe_hop_timeouts > 0) {
    m.counter("probe.timeout").inc(stats.probe_hop_timeouts);
  }
  if (stats.probe_messages_lost > 0) {
    m.counter("bcp.probe_messages_lost").inc(stats.probe_messages_lost);
  }
  if (stats.setup_acks_lost > 0) {
    m.counter("bcp.setup_ack_lost").inc(stats.setup_acks_lost);
  }
  m.counter("bcp.holds_acquired").inc(stats.holds_acquired);
  m.counter("bcp.holds_reused").inc(stats.holds_reused);
  m.counter("bcp.probe_bytes_copied").inc(stats.probe_bytes_copied);
  m.counter("bcp.prefix_nodes_shared").inc(stats.prefix_nodes_shared);
  // Two-tier counters (lazily registered so flat runs' metric exports
  // stay byte-identical to the pre-community builds).
  if (stats.coarse_probes > 0) {
    m.counter("bcp.coarse_probes").inc(stats.coarse_probes);
  }
  if (stats.communities_pruned > 0) {
    m.counter("bcp.communities_pruned").inc(stats.communities_pruned);
  }
  m.counter("bcp.probe_messages").inc(stats.probe_messages);
  m.counter("bcp.discovery_messages").inc(stats.discovery_messages);
  m.counter("bcp.candidates_merged").inc(stats.candidates_merged);
  m.counter("bcp.qualified_graphs").inc(stats.qualified_found);
  static const std::vector<double> kSetupBoundsMs = {
      1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
  m.histogram("bcp.setup_time_ms", kSetupBoundsMs).observe(stats.setup_time_ms);
  m.histogram("bcp.probing_time_ms", kSetupBoundsMs)
      .observe(stats.probing_time_ms);
}

ComposeResult BcpEngine::compose(const service::CompositeRequest& request,
                                 Rng& rng) {
  ComposeState state;
  if (!init_state(state, request, rng)) return std::move(state.result);

  std::deque<Probe> queue(std::make_move_iterator(state.seeds.begin()),
                          std::make_move_iterator(state.seeds.end()));
  state.seeds.clear();
  std::vector<Probe> children;
  while (!queue.empty()) {
    Probe probe = std::move(queue.front());
    queue.pop_front();
    children.clear();
    process_probe(state, std::move(probe), &children);
    for (Probe& child : children) queue.push_back(std::move(child));
  }
  finalize(state);
  return std::move(state.result);
}

void BcpEngine::compose_async(const service::CompositeRequest& request,
                              Rng& rng,
                              std::function<void(ComposeResult)> done) {
  SPIDER_REQUIRE(done != nullptr);

  struct AsyncRun {
    ComposeState state;
    std::size_t outstanding = 0;  ///< probes still in flight
    bool finished = false;
    sim::EventId timeout_event = sim::kInvalidEvent;
    std::function<void(ComposeResult)> done;
  };
  auto run = std::make_shared<AsyncRun>();
  run->done = std::move(done);

  if (!init_state(run->state, request, rng)) {
    // Fail at the earliest possible virtual instant, still asynchronously.
    sim_->schedule_after(0.0, [this, run] {
      (void)this;
      run->done(std::move(run->state.result));
    });
    return;
  }

  const double t0 = sim_->now();

  // Each probe hop is one event at the probe's arrival time. The
  // recursion goes through a shared function object so that event lambdas
  // hold a stable copy (a local std::function would die when
  // compose_async returns).
  auto scheduler = std::make_shared<std::function<void(Probe)>>();

  // Completion: merge/select at the destination, then deliver the result
  // when the ack (or the failure notice) reaches the source.
  auto complete = [this, run, t0, scheduler] {
    if (run->finished) return;
    run->finished = true;
    if (run->timeout_event != sim::kInvalidEvent) {
      sim_->cancel(run->timeout_event);
    }
    finalize(run->state);
    const double done_at = t0 + run->state.result.stats.setup_time_ms;
    const double delay = std::max(0.0, done_at - sim_->now());
    sim_->schedule_after(delay, [run] {
      run->done(std::move(run->state.result));
    });
    // The scheduler's lambda captures `scheduler` (and, via `complete`,
    // this whole chain) — an ownership cycle that would leak the run's
    // state. Clearing the function breaks it; in-flight events hold
    // their own shared_ptr copies and drain harmlessly via the
    // `finished` check.
    *scheduler = nullptr;
  };

  *scheduler = [this, run, t0, complete, scheduler](Probe probe) {
    ++run->outstanding;
    const double at = t0 + probe.arrival;
    sim_->schedule_at(std::max(at, sim_->now()),
                      [this, run, complete, scheduler,
                       probe = std::move(probe)]() mutable {
                        --run->outstanding;
                        if (run->finished) return;
                        std::vector<Probe> children;
                        process_probe(run->state, std::move(probe), &children);
                        for (Probe& child : children) {
                          (*scheduler)(std::move(child));
                        }
                        if (run->outstanding == 0) complete();
                      });
  };

  // Destination collection timeout (§4.1 step 3).
  run->timeout_event = sim_->schedule_after(
      config_.probe_timeout_ms, [run, complete] {
        run->timeout_event = sim::kInvalidEvent;
        complete();
      });

  std::vector<Probe> seeds = std::move(run->state.seeds);
  run->state.seeds.clear();
  for (Probe& seed : seeds) (*scheduler)(std::move(seed));
}

}  // namespace spider::core
