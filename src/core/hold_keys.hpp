// Composite keys for the BCP soft-hold dedup maps.
//
// During probing, sibling probes of one request routinely need the same
// reservation — the same component on the same host, or the same overlay
// path between the same pair of service-graph nodes. The engine dedupes
// those through per-request maps so one request never double-reserves.
//
// The seed implementation packed each tuple into a single uint64 with
// overlapping shifts (e.g. `(from << 48) ^ (to << 32) ^ (a << 16) ^ b`),
// which aliases distinct tuples: two different (node, peer, peer) triples
// could produce one key, silently REUSING a hold made for a different
// path/component and under-reserving bandwidth or peer resources. These
// struct keys carry every field at full width with field-wise equality,
// so a collision in the map requires an actual hash-table collision,
// which the map resolves correctly.
#pragma once

#include <cstddef>

#include "overlay/overlay.hpp"
#include "service/component.hpp"
#include "service/service_graph.hpp"
#include "util/hash.hpp"

namespace spider::core {

/// A request-shared bandwidth reservation: the overlay path carrying the
/// service link (from -> to) between two concrete peers.
struct SharedPathKey {
  service::FnNode from = 0;
  service::FnNode to = 0;
  overlay::PeerId src = 0;
  overlay::PeerId dst = 0;

  bool operator==(const SharedPathKey& o) const {
    return from == o.from && to == o.to && src == o.src && dst == o.dst;
  }
};

/// A request-shared component reservation: one replica bound to a
/// function-graph node.
struct SharedPeerKey {
  service::FnNode node = 0;
  service::ComponentId component = service::kInvalidComponent;

  bool operator==(const SharedPeerKey& o) const {
    return node == o.node && component == o.component;
  }
};

/// What a hold carried by a probe covers, used at the destination to
/// union the constituent probes' holds without double-counting: either a
/// node's component resources or a service edge's bandwidth.
struct HoldCoverKey {
  enum class Kind : unsigned char { kNode, kEdge };

  Kind kind = Kind::kNode;
  service::FnNode from = 0;  ///< edge source (kEdge only)
  service::FnNode to = 0;    ///< node for kNode; edge target for kEdge

  static HoldCoverKey node(service::FnNode n) {
    return HoldCoverKey{Kind::kNode, 0, n};
  }
  static HoldCoverKey edge(service::FnNode from, service::FnNode to) {
    return HoldCoverKey{Kind::kEdge, from, to};
  }

  bool operator==(const HoldCoverKey& o) const {
    return kind == o.kind && from == o.from && to == o.to;
  }
};

struct SharedPathKeyHash {
  std::size_t operator()(const SharedPathKey& k) const {
    return util::hash_values(k.from, k.to, k.src, k.dst);
  }
};

struct SharedPeerKeyHash {
  std::size_t operator()(const SharedPeerKey& k) const {
    return util::hash_values(k.node, k.component);
  }
};

struct HoldCoverKeyHash {
  std::size_t operator()(const HoldCoverKey& k) const {
    return util::hash_values(static_cast<unsigned char>(k.kind), k.from, k.to);
  }
};

}  // namespace spider::core
