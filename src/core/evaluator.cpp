#include "core/evaluator.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/keys.hpp"
#include "util/require.hpp"

namespace spider::core {

using service::FnNode;
using service::ServiceGraph;
using service::ServiceLinkHop;

namespace {

constexpr double kHugeCost = 1e9;

/// Key for hop lookup: (from node, to node) with kEndpoint sentinels.
using HopKey = util::PairKey<FnNode, FnNode>;

HopKey hop_key(FnNode from, FnNode to) { return HopKey{from, to}; }

}  // namespace

bool GraphEvaluator::resolve(ServiceGraph& graph) const {
  auto& ov = deployment_->overlay();
  graph.hops.clear();
  graph.evaluated = false;

  if (!ov.alive(graph.source) || !ov.alive(graph.dest)) return false;
  SPIDER_REQUIRE(graph.mapping.size() == graph.pattern.node_count());
  for (const auto& meta : graph.mapping) {
    if (!ov.alive(meta.host)) return false;
  }

  auto add_hop = [&](FnNode from, FnNode to, PeerId from_peer,
                     PeerId to_peer) -> bool {
    ServiceLinkHop hop;
    hop.from = from;
    hop.to = to;
    hop.from_peer = from_peer;
    hop.to_peer = to_peer;
    if (from_peer != to_peer) {
      const overlay::OverlayPathRef path = ov.route(from_peer, to_peer);
      if (!path->valid) return false;
      hop.path = *path;  // copy out: hop outlives the route cache entry
    } else {
      hop.path.valid = true;
      hop.path.delay_ms = 0.0;
    }
    graph.hops.push_back(std::move(hop));
    return true;
  };

  for (FnNode entry : graph.pattern.sources()) {
    if (!add_hop(ServiceLinkHop::kEndpoint, entry, graph.source,
                 graph.mapping[entry].host)) {
      return false;
    }
  }
  for (const auto& [u, v] : graph.pattern.dependencies()) {
    if (!add_hop(u, v, graph.mapping[u].host, graph.mapping[v].host)) {
      return false;
    }
  }
  for (FnNode exit : graph.pattern.sinks()) {
    if (!add_hop(exit, ServiceLinkHop::kEndpoint, graph.mapping[exit].host,
                 graph.dest)) {
      return false;
    }
  }
  return true;
}

void GraphEvaluator::evaluate(ServiceGraph& graph,
                              const service::CompositeRequest& request,
                              AvailabilityView* view) const {
  SPIDER_REQUIRE_MSG(!graph.hops.empty(), "resolve() must run first");
  AvailabilityView& avail_view = view != nullptr ? *view : *alloc_;

  std::unordered_map<HopKey, const ServiceLinkHop*, util::PairKeyHash>
      hops;
  for (const ServiceLinkHop& hop : graph.hops) {
    hops[hop_key(hop.from, hop.to)] = &hop;
  }
  auto link_delay = [&](FnNode from, FnNode to) {
    auto it = hops.find(hop_key(from, to));
    SPIDER_REQUIRE_MSG(it != hops.end(), "missing resolved hop");
    return it->second->path.delay_ms;
  };

  // End-to-end QoS: worst branch sum per metric.
  const std::size_t metrics = request.qos_req.size();
  service::Qos worst(metrics);
  for (const auto& branch : graph.pattern.branches()) {
    service::Qos sum(metrics);
    sum[service::Qos::kDelay] += link_delay(ServiceLinkHop::kEndpoint,
                                            branch.front());
    for (std::size_t i = 0; i < branch.size(); ++i) {
      // Component perf vectors may carry fewer metrics than the request
      // constrains (missing dimensions contribute zero).
      sum += graph.mapping[branch[i]].perf.resized(metrics);
      if (i + 1 < branch.size()) {
        sum[service::Qos::kDelay] += link_delay(branch[i], branch[i + 1]);
      }
    }
    sum[service::Qos::kDelay] += link_delay(branch.back(),
                                            ServiceLinkHop::kEndpoint);
    for (std::size_t m = 0; m < metrics; ++m) {
      worst[m] = std::max(worst[m], sum[m]);
    }
  }
  graph.qos = worst;

  // Failure probability: independent peer failures; a peer's failure
  // estimate is the max over its components in this graph.
  std::unordered_map<PeerId, double> peer_fail;
  for (const auto& meta : graph.mapping) {
    auto [it, inserted] = peer_fail.emplace(meta.host, meta.failure_prob);
    if (!inserted) it->second = std::max(it->second, meta.failure_prob);
  }
  double survive = 1.0;
  for (const auto& [peer, p] : peer_fail) survive *= (1.0 - p);
  graph.failure_prob = 1.0 - survive;

  // ψ_λ (Eq. 1) against current availability.
  double psi = 0.0;
  for (const auto& meta : graph.mapping) {
    const service::Resources avail = avail_view.peer_available(meta.host);
    for (std::size_t i = 0; i < service::Resources::kTypes; ++i) {
      const double need = meta.required.v[i];
      if (need <= 0.0) continue;
      psi += avail.v[i] > 0.0 ? weights_.resource[i] * need / avail.v[i]
                              : kHugeCost;
    }
  }
  if (request.bandwidth_kbps > 0.0) {
    for (const ServiceLinkHop& hop : graph.hops) {
      if (hop.path.links.empty()) continue;  // co-located peers
      const double avail = avail_view.path_available_kbps(hop.path);
      psi += avail > 0.0
                 ? weights_.bandwidth * request.bandwidth_kbps / avail
                 : kHugeCost;
    }
  }
  graph.psi_cost = psi;
  graph.evaluated = true;
}

bool GraphEvaluator::qos_qualified(
    const ServiceGraph& graph, const service::CompositeRequest& request) const {
  SPIDER_REQUIRE(graph.evaluated);
  return graph.qos.within(request.qos_req);
}

bool GraphEvaluator::levels_compatible(
    const ServiceGraph& graph, const service::CompositeRequest& request) const {
  SPIDER_REQUIRE(graph.mapping.size() == graph.pattern.node_count());
  for (FnNode entry : graph.pattern.sources()) {
    if (request.source_level < graph.mapping[entry].input_level) return false;
  }
  for (const auto& [u, v] : graph.pattern.dependencies()) {
    if (graph.mapping[u].output_level < graph.mapping[v].input_level) {
      return false;
    }
  }
  for (FnNode exit : graph.pattern.sinks()) {
    if (graph.mapping[exit].output_level < request.min_dest_level) {
      return false;
    }
  }
  return true;
}

bool GraphEvaluator::resource_feasible(
    const ServiceGraph& graph, const service::CompositeRequest& request,
    AvailabilityView* view) const {
  AvailabilityView& avail_view = view != nullptr ? *view : *alloc_;
  // Sum demands per peer (a peer may host several of the graph's
  // components).
  std::unordered_map<PeerId, service::Resources> per_peer;
  for (const auto& meta : graph.mapping) {
    auto [it, inserted] = per_peer.emplace(meta.host, meta.required);
    if (!inserted) it->second += meta.required;
  }
  for (const auto& [peer, need] : per_peer) {
    if (!need.fits_within(avail_view.peer_available(peer))) return false;
  }
  if (request.bandwidth_kbps > 0.0) {
    std::unordered_map<overlay::OverlayLinkId, double> per_link;
    for (const ServiceLinkHop& hop : graph.hops) {
      for (overlay::OverlayLinkId link : hop.path.links) {
        per_link[link] += request.bandwidth_kbps;
      }
    }
    for (const auto& [link, kbps] : per_link) {
      if (avail_view.link_available_kbps(link) < kbps) return false;
    }
  }
  return true;
}

double GraphEvaluator::ack_time_ms(const ServiceGraph& graph) const {
  SPIDER_REQUIRE(!graph.hops.empty());
  std::unordered_map<HopKey, double, util::PairKeyHash> delay;
  for (const ServiceLinkHop& hop : graph.hops) {
    delay[hop_key(hop.from, hop.to)] = hop.path.delay_ms;
  }
  double worst = 0.0;
  for (const auto& branch : graph.pattern.branches()) {
    double sum = delay[hop_key(ServiceLinkHop::kEndpoint, branch.front())];
    for (std::size_t i = 0; i + 1 < branch.size(); ++i) {
      sum += delay[hop_key(branch[i], branch[i + 1])];
    }
    sum += delay[hop_key(branch.back(), ServiceLinkHop::kEndpoint)];
    worst = std::max(worst, sum);
  }
  return worst;
}

}  // namespace spider::core
