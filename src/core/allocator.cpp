#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace spider::core {

namespace {

/// Lazily binds and bumps a counter (first event registers it), so runs
/// that never trigger the event export unchanged metrics JSON.
void bump(obs::MetricsRegistry* registry, obs::Counter*& counter,
          const char* name, std::uint64_t delta = 1) {
  if (registry == nullptr || delta == 0) return;
  if (counter == nullptr) counter = &registry->counter(name);
  counter->inc(delta);
}

}  // namespace

void AllocationManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  // Lease and admission counters rebind lazily (see bump()); they only
  // appear in exports once such an event actually happens.
  m_lease_renewals_ = m_lease_expirations_ = m_lease_reclaimed_kbps_ = nullptr;
  m_admission_rejects_ = m_admission_queued_ = m_admission_queue_wait_ms_ =
      nullptr;
  m_admission_queue_depth_ = nullptr;
  if (metrics == nullptr) {
    m_reserved_ = m_reserve_failures_ = m_confirmed_ = m_confirm_failures_ =
        m_released_ = m_expired_ = m_direct_grants_ =
            m_direct_grant_failures_ = nullptr;
    m_holds_outstanding_ = m_grants_outstanding_ = nullptr;
    return;
  }
  m_reserved_ = &metrics->counter("alloc.holds_reserved");
  m_reserve_failures_ = &metrics->counter("alloc.reserve_failures");
  m_confirmed_ = &metrics->counter("alloc.holds_confirmed");
  m_confirm_failures_ = &metrics->counter("alloc.confirm_failures");
  m_released_ = &metrics->counter("alloc.holds_released");
  m_expired_ = &metrics->counter("alloc.holds_expired");
  m_direct_grants_ = &metrics->counter("alloc.direct_grants");
  m_direct_grant_failures_ = &metrics->counter("alloc.direct_grant_failures");
  m_holds_outstanding_ = &metrics->gauge("alloc.holds_outstanding");
  m_grants_outstanding_ = &metrics->gauge("alloc.grants_outstanding");
  update_outstanding_gauges();
}

void AllocationManager::update_outstanding_gauges() {
  if (m_holds_outstanding_ != nullptr) {
    m_holds_outstanding_->set(double(holds_.size()));
  }
  if (m_grants_outstanding_ != nullptr) {
    m_grants_outstanding_->set(double(grants_.size()));
  }
}

void AllocationManager::purge_hold(HoldId hold_id) {
  // A path hold spans several links and its expiry may be observed from
  // any of them; purge it from *every* structure it touches at once so
  // no link/peer keeps a dangling entry (and the outstanding-hold gauge
  // never disagrees with availability).
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) return;
  const Hold& hold = it->second;
  if (hold.peer != overlay::kInvalidPeer) {
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  for (overlay::OverlayLinkId link : hold.links) {
    link_state_[link].soft.erase(hold_id);
  }
  holds_.erase(it);
  if (m_expired_ != nullptr) m_expired_->inc();
}

void AllocationManager::purge_expired_peer(PeerState& state) {
  const sim::Time now = sim_->now();
  // Collect first: purge_hold mutates state.soft.
  std::vector<HoldId> expired;
  for (const auto& [id, ph] : state.soft) {
    if (ph.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

void AllocationManager::purge_expired_link(LinkState& state) {
  const sim::Time now = sim_->now();
  std::vector<HoldId> expired;
  for (const auto& [id, lh] : state.soft) {
    if (lh.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

void AllocationManager::sweep_expired() {
  const sim::Time now = sim_->now();
  std::vector<HoldId> expired;
  for (const auto& [id, hold] : holds_) {
    if (hold.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

service::Resources AllocationManager::peer_available(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_state_.size());
  PeerState& state = peer_state_[peer];
  purge_expired_peer(state);
  service::Resources avail = deployment_->capacity(peer) - state.confirmed;
  for (const auto& [hold, ph] : state.soft) avail -= ph.amount;
  return avail;
}

double AllocationManager::link_available_kbps(overlay::OverlayLinkId link) {
  SPIDER_REQUIRE(link < link_state_.size());
  LinkState& state = link_state_[link];
  purge_expired_link(state);
  double avail =
      deployment_->overlay().link(link).capacity_kbps - state.confirmed_kbps;
  for (const auto& [hold, lh] : state.soft) avail -= lh.kbps;
  return avail;
}

std::optional<HoldId> AllocationManager::soft_reserve_peer(
    PeerId peer, const service::Resources& amount, sim::Time expire_at) {
  SPIDER_REQUIRE(amount.non_negative());
  if (!amount.fits_within(peer_available(peer))) {
    if (m_reserve_failures_ != nullptr) m_reserve_failures_->inc();
    return std::nullopt;
  }
  const HoldId id = next_hold_id_++;
  peer_state_[peer].soft.emplace(id, PeerHold{amount, expire_at});
  Hold hold;
  hold.peer = peer;
  hold.peer_amount = amount;
  hold.expire_at = expire_at;
  holds_.emplace(id, std::move(hold));
  if (m_reserved_ != nullptr) {
    m_reserved_->inc();
    update_outstanding_gauges();
  }
  return id;
}

std::optional<HoldId> AllocationManager::soft_reserve_path(
    const overlay::OverlayPath& path, double kbps, sim::Time expire_at) {
  SPIDER_REQUIRE(kbps >= 0.0);
  for (overlay::OverlayLinkId link : path.links) {
    if (link_available_kbps(link) < kbps) {
      if (m_reserve_failures_ != nullptr) m_reserve_failures_->inc();
      return std::nullopt;
    }
  }
  const HoldId id = next_hold_id_++;
  for (overlay::OverlayLinkId link : path.links) {
    link_state_[link].soft.emplace(id, LinkHold{kbps, expire_at});
  }
  Hold hold;
  hold.links = path.links;
  hold.kbps = kbps;
  hold.expire_at = expire_at;
  holds_.emplace(id, std::move(hold));
  if (m_reserved_ != nullptr) {
    m_reserved_->inc();
    update_outstanding_gauges();
  }
  return id;
}

bool AllocationManager::confirm(HoldId hold_id, SessionId session) {
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) {
    if (m_confirm_failures_ != nullptr) m_confirm_failures_->inc();
    return false;
  }
  const Hold& hold = it->second;
  if (hold.expire_at <= sim_->now()) {
    release_hold(hold_id);
    if (m_confirm_failures_ != nullptr) m_confirm_failures_->inc();
    return false;
  }
  Grant grant;
  grant.session = session;
  if (hold.peer != overlay::kInvalidPeer) {
    grant.peer = hold.peer;
    grant.peer_amount = hold.peer_amount;
    peer_state_[hold.peer].confirmed += hold.peer_amount;
    granted_total_ += hold.peer_amount;
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  if (!hold.links.empty()) {
    grant.links = hold.links;
    grant.kbps = hold.kbps;
    for (overlay::OverlayLinkId link : hold.links) {
      link_state_[link].confirmed_kbps += hold.kbps;
      link_state_[link].soft.erase(hold_id);
    }
  }
  grants_[session].push_back(std::move(grant));
  holds_.erase(it);
  stamp_lease(session);
  if (m_confirmed_ != nullptr) {
    m_confirmed_->inc();
    update_outstanding_gauges();
  }
  return true;
}

void AllocationManager::set_admission(const AdmissionConfig& config) {
  admission_ = config;
  capacity_total_ = service::Resources{};
  for (PeerId p = 0; p < PeerId(peer_state_.size()); ++p) {
    capacity_total_ += deployment_->capacity(p);
  }
}

double AllocationManager::grant_utilization() {
  double util = 0.0;
  for (std::size_t i = 0; i < service::Resources::kTypes; ++i) {
    if (capacity_total_.v[i] > 0.0) {
      util = std::max(util, granted_total_.v[i] / capacity_total_.v[i]);
    }
  }
  return util;
}

AllocationManager::AdmissionDecision AllocationManager::admit_setup() {
  if (admission_.high_water_utilization < 0.0) {
    return AdmissionDecision::kAdmit;
  }
  if (admission_queue_depth_ == 0 && admission_open()) {
    return AdmissionDecision::kAdmit;
  }
  if (admission_queue_depth_ < admission_.queue_capacity) {
    ++admission_queue_depth_;
    ++admission_queued_count_;
    bump(metrics_, m_admission_queued_, "alloc.admission_queued");
    if (metrics_ != nullptr) {
      if (m_admission_queue_depth_ == nullptr) {
        m_admission_queue_depth_ =
            &metrics_->gauge("alloc.admission_queue_depth");
      }
      m_admission_queue_depth_->set(double(admission_queue_depth_));
    }
    return AdmissionDecision::kQueue;
  }
  ++admission_rejects_;
  bump(metrics_, m_admission_rejects_, "alloc.admission_rejects");
  return AdmissionDecision::kReject;
}

void AllocationManager::admission_dequeued(double wait_ms) {
  SPIDER_REQUIRE(admission_queue_depth_ > 0);
  --admission_queue_depth_;
  admission_queue_wait_ms_ += wait_ms;
  bump(metrics_, m_admission_queue_wait_ms_, "alloc.admission_queue_wait_ms",
       std::uint64_t(std::llround(wait_ms)));
  if (m_admission_queue_depth_ != nullptr) {
    m_admission_queue_depth_->set(double(admission_queue_depth_));
  }
}

bool AllocationManager::admission_open() {
  return admission_.high_water_utilization < 0.0 ||
         grant_utilization() < admission_.high_water_utilization;
}

void AllocationManager::stamp_lease(SessionId session) {
  if (lease_ttl_ms_ <= 0.0) return;
  lease_renew_by_[session] = sim_->now() + lease_ttl_ms_;
}

void AllocationManager::renew_session(SessionId session) {
  if (lease_ttl_ms_ <= 0.0) return;
  auto it = lease_renew_by_.find(session);
  if (it == lease_renew_by_.end()) return;
  it->second = sim_->now() + lease_ttl_ms_;
  ++lease_renewals_;
  bump(metrics_, m_lease_renewals_, "alloc.lease_renewals");
}

std::optional<sim::Time> AllocationManager::lease_renew_by(
    SessionId session) const {
  auto it = lease_renew_by_.find(session);
  if (it == lease_renew_by_.end()) return std::nullopt;
  return it->second;
}

void AllocationManager::count_lease_reclaim(const std::vector<Grant>& grants) {
  double kbps = 0.0;
  for (const Grant& grant : grants) {
    kbps += grant.kbps * double(grant.links.size());
  }
  lease_reclaimed_kbps_ += kbps;
  ++lease_expirations_;
  bump(metrics_, m_lease_expirations_, "alloc.lease_expirations");
  bump(metrics_, m_lease_reclaimed_kbps_, "alloc.lease_reclaimed_kbps",
       std::uint64_t(std::llround(kbps)));
}

std::size_t AllocationManager::reclaim_expired_leases() {
  if (lease_ttl_ms_ <= 0.0) return 0;
  const sim::Time now = sim_->now();
  std::vector<SessionId> expired;
  for (const auto& [session, renew_by] : lease_renew_by_) {
    if (renew_by <= now) expired.push_back(session);
  }
  // Deterministic reclaim order (the map iterates in hash order).
  std::sort(expired.begin(), expired.end());
  for (SessionId session : expired) {
    if (auto it = grants_.find(session); it != grants_.end()) {
      count_lease_reclaim(it->second);
    }
    release_session(session);
  }
  return expired.size();
}

void AllocationManager::release_hold(HoldId hold_id) {
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) return;
  const Hold& hold = it->second;
  if (hold.peer != overlay::kInvalidPeer) {
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  for (overlay::OverlayLinkId link : hold.links) {
    link_state_[link].soft.erase(hold_id);
  }
  holds_.erase(it);
  if (m_released_ != nullptr) {
    m_released_->inc();
    update_outstanding_gauges();
  }
}

void AllocationManager::release_session(SessionId session) {
  lease_renew_by_.erase(session);
  auto it = grants_.find(session);
  if (it == grants_.end()) return;
  for (const Grant& grant : it->second) {
    if (grant.peer != overlay::kInvalidPeer) {
      peer_state_[grant.peer].confirmed -= grant.peer_amount;
      granted_total_ -= grant.peer_amount;
    }
    for (overlay::OverlayLinkId link : grant.links) {
      link_state_[link].confirmed_kbps -= grant.kbps;
    }
  }
  grants_.erase(it);
  update_outstanding_gauges();
}

bool AllocationManager::grant_direct(
    SessionId session,
    const std::vector<std::pair<PeerId, service::Resources>>& peer_demands,
    const std::vector<std::pair<overlay::OverlayLinkId, double>>& link_demands) {
  // Aggregate duplicate peers/links first so the feasibility check is
  // exact when a graph places several components on one peer.
  std::unordered_map<PeerId, service::Resources> per_peer;
  for (const auto& [peer, amount] : peer_demands) {
    auto [it, inserted] = per_peer.emplace(peer, amount);
    if (!inserted) it->second += amount;
  }
  std::unordered_map<overlay::OverlayLinkId, double> per_link;
  for (const auto& [link, kbps] : link_demands) {
    per_link[link] += kbps;
  }
  for (const auto& [peer, amount] : per_peer) {
    if (!amount.fits_within(peer_available(peer))) {
      if (m_direct_grant_failures_ != nullptr) m_direct_grant_failures_->inc();
      return false;
    }
  }
  for (const auto& [link, kbps] : per_link) {
    if (link_available_kbps(link) < kbps) {
      if (m_direct_grant_failures_ != nullptr) m_direct_grant_failures_->inc();
      return false;
    }
  }
  auto& grant_list = grants_[session];
  for (const auto& [peer, amount] : per_peer) {
    Grant g;
    g.session = session;
    g.peer = peer;
    g.peer_amount = amount;
    peer_state_[peer].confirmed += amount;
    granted_total_ += amount;
    grant_list.push_back(std::move(g));
  }
  for (const auto& [link, kbps] : per_link) {
    Grant g;
    g.session = session;
    g.links = {link};
    g.kbps = kbps;
    link_state_[link].confirmed_kbps += kbps;
    grant_list.push_back(std::move(g));
  }
  stamp_lease(session);
  if (m_direct_grants_ != nullptr) {
    m_direct_grants_->inc();
    update_outstanding_gauges();
  }
  return true;
}

std::vector<SessionId> AllocationManager::granted_sessions() const {
  std::vector<SessionId> ids;
  ids.reserve(grants_.size());
  for (const auto& [session, grant_list] : grants_) ids.push_back(session);
  std::sort(ids.begin(), ids.end());
  return ids;
}

AllocationManager::SessionGrantTotals AllocationManager::session_grant_totals(
    SessionId session) const {
  SessionGrantTotals totals;
  auto it = grants_.find(session);
  if (it == grants_.end()) return totals;
  for (const Grant& grant : it->second) {
    if (grant.peer != overlay::kInvalidPeer) {
      totals.peer_total += grant.peer_amount;
    }
    totals.link_kbps_total += grant.kbps * double(grant.links.size());
    ++totals.grant_count;
  }
  return totals;
}

std::size_t AllocationManager::dangling_soft_entries() const {
  std::size_t dangling = 0;
  for (const PeerState& state : peer_state_) {
    for (const auto& [id, ph] : state.soft) dangling += holds_.count(id) == 0;
  }
  for (const LinkState& state : link_state_) {
    for (const auto& [id, lh] : state.soft) dangling += holds_.count(id) == 0;
  }
  return dangling;
}

}  // namespace spider::core
