#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace spider::core {

namespace {

/// Lazily binds and bumps a counter (first event registers it), so runs
/// that never trigger the event export unchanged metrics JSON.
void bump(obs::MetricsRegistry* registry, obs::Counter*& counter,
          const char* name, std::uint64_t delta = 1) {
  if (registry == nullptr || delta == 0) return;
  if (counter == nullptr) counter = &registry->counter(name);
  counter->inc(delta);
}

}  // namespace

void AllocationManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  // Lease and admission counters rebind lazily (see bump()); they only
  // appear in exports once such an event actually happens.
  m_lease_renewals_ = m_lease_expirations_ = m_lease_reclaimed_kbps_ = nullptr;
  m_admission_rejects_ = m_admission_queued_ = m_admission_queue_wait_ms_ =
      nullptr;
  m_admission_queue_depth_ = m_admission_mark_ = nullptr;
  m_admission_queue_wait_hist_ = nullptr;
  if (metrics == nullptr) {
    m_reserved_ = m_reserve_failures_ = m_confirmed_ = m_confirm_failures_ =
        m_released_ = m_expired_ = m_direct_grants_ =
            m_direct_grant_failures_ = nullptr;
    m_holds_outstanding_ = m_grants_outstanding_ = nullptr;
    return;
  }
  m_reserved_ = &metrics->counter("alloc.holds_reserved");
  m_reserve_failures_ = &metrics->counter("alloc.reserve_failures");
  m_confirmed_ = &metrics->counter("alloc.holds_confirmed");
  m_confirm_failures_ = &metrics->counter("alloc.confirm_failures");
  m_released_ = &metrics->counter("alloc.holds_released");
  m_expired_ = &metrics->counter("alloc.holds_expired");
  m_direct_grants_ = &metrics->counter("alloc.direct_grants");
  m_direct_grant_failures_ = &metrics->counter("alloc.direct_grant_failures");
  m_holds_outstanding_ = &metrics->gauge("alloc.holds_outstanding");
  m_grants_outstanding_ = &metrics->gauge("alloc.grants_outstanding");
  update_outstanding_gauges();
}

void AllocationManager::update_outstanding_gauges() {
  if (m_holds_outstanding_ != nullptr) {
    m_holds_outstanding_->set(double(holds_.size()));
  }
  if (m_grants_outstanding_ != nullptr) {
    m_grants_outstanding_->set(double(grants_.size()));
  }
}

void AllocationManager::purge_hold(HoldId hold_id) {
  // A path hold spans several links and its expiry may be observed from
  // any of them; purge it from *every* structure it touches at once so
  // no link/peer keeps a dangling entry (and the outstanding-hold gauge
  // never disagrees with availability).
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) return;
  const Hold& hold = it->second;
  if (hold.peer != overlay::kInvalidPeer) {
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  for (overlay::OverlayLinkId link : hold.links) {
    link_state_[link].soft.erase(hold_id);
  }
  holds_.erase(it);
  if (m_expired_ != nullptr) m_expired_->inc();
}

void AllocationManager::purge_expired_peer(PeerState& state) {
  const sim::Time now = sim_->now();
  // Collect first: purge_hold mutates state.soft.
  std::vector<HoldId> expired;
  for (const auto& [id, ph] : state.soft) {
    if (ph.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

void AllocationManager::purge_expired_link(LinkState& state) {
  const sim::Time now = sim_->now();
  std::vector<HoldId> expired;
  for (const auto& [id, lh] : state.soft) {
    if (lh.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

void AllocationManager::sweep_expired() {
  const sim::Time now = sim_->now();
  std::vector<HoldId> expired;
  for (const auto& [id, hold] : holds_) {
    if (hold.expire_at <= now) expired.push_back(id);
  }
  if (expired.empty()) return;
  for (HoldId id : expired) purge_hold(id);
  update_outstanding_gauges();
}

service::Resources AllocationManager::peer_available(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_state_.size());
  PeerState& state = peer_state_[peer];
  purge_expired_peer(state);
  service::Resources avail = deployment_->capacity(peer) - state.confirmed;
  for (const auto& [hold, ph] : state.soft) avail -= ph.amount;
  return avail;
}

double AllocationManager::link_available_kbps(overlay::OverlayLinkId link) {
  SPIDER_REQUIRE(link < link_state_.size());
  LinkState& state = link_state_[link];
  purge_expired_link(state);
  double avail =
      deployment_->overlay().link(link).capacity_kbps - state.confirmed_kbps;
  for (const auto& [hold, lh] : state.soft) avail -= lh.kbps;
  return avail;
}

std::optional<HoldId> AllocationManager::soft_reserve_peer(
    PeerId peer, const service::Resources& amount, sim::Time expire_at) {
  SPIDER_REQUIRE(amount.non_negative());
  if (!amount.fits_within(peer_available(peer))) {
    if (m_reserve_failures_ != nullptr) m_reserve_failures_->inc();
    return std::nullopt;
  }
  const HoldId id = next_hold_id_++;
  peer_state_[peer].soft.emplace(id, PeerHold{amount, expire_at});
  Hold hold;
  hold.peer = peer;
  hold.peer_amount = amount;
  hold.expire_at = expire_at;
  holds_.emplace(id, std::move(hold));
  if (m_reserved_ != nullptr) {
    m_reserved_->inc();
    update_outstanding_gauges();
  }
  return id;
}

std::optional<HoldId> AllocationManager::soft_reserve_path(
    const overlay::OverlayPath& path, double kbps, sim::Time expire_at) {
  SPIDER_REQUIRE(kbps >= 0.0);
  for (overlay::OverlayLinkId link : path.links) {
    if (link_available_kbps(link) < kbps) {
      if (m_reserve_failures_ != nullptr) m_reserve_failures_->inc();
      return std::nullopt;
    }
  }
  const HoldId id = next_hold_id_++;
  for (overlay::OverlayLinkId link : path.links) {
    link_state_[link].soft.emplace(id, LinkHold{kbps, expire_at});
  }
  Hold hold;
  hold.links = path.links;
  hold.kbps = kbps;
  hold.expire_at = expire_at;
  holds_.emplace(id, std::move(hold));
  if (m_reserved_ != nullptr) {
    m_reserved_->inc();
    update_outstanding_gauges();
  }
  return id;
}

bool AllocationManager::confirm(HoldId hold_id, SessionId session) {
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) {
    if (m_confirm_failures_ != nullptr) m_confirm_failures_->inc();
    return false;
  }
  const Hold& hold = it->second;
  if (hold.expire_at <= sim_->now()) {
    release_hold(hold_id);
    if (m_confirm_failures_ != nullptr) m_confirm_failures_->inc();
    return false;
  }
  Grant grant;
  grant.session = session;
  if (hold.peer != overlay::kInvalidPeer) {
    grant.peer = hold.peer;
    grant.peer_amount = hold.peer_amount;
    peer_state_[hold.peer].confirmed += hold.peer_amount;
    granted_total_ += hold.peer_amount;
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  if (!hold.links.empty()) {
    grant.links = hold.links;
    grant.kbps = hold.kbps;
    for (overlay::OverlayLinkId link : hold.links) {
      link_state_[link].confirmed_kbps += hold.kbps;
      link_state_[link].soft.erase(hold_id);
    }
  }
  grants_[session].push_back(std::move(grant));
  holds_.erase(it);
  stamp_lease(session);
  if (m_confirmed_ != nullptr) {
    m_confirmed_->inc();
    update_outstanding_gauges();
  }
  return true;
}

void AllocationManager::refresh_capacity_snapshot() {
  capacity_epoch_ = deployment_->liveness_epoch();
  capacity_total_ = service::Resources{};
  for (PeerId p = 0; p < PeerId(peer_state_.size()); ++p) {
    if (deployment_->peer_alive(p)) capacity_total_ += deployment_->capacity(p);
  }
}

void AllocationManager::set_admission(const AdmissionConfig& config) {
  const std::size_t new_classes =
      config.classes.empty() ? 1 : config.classes.size();
  for (const AdmissionClassConfig& cls : config.classes) {
    SPIDER_REQUIRE_MSG(cls.weight > 0.0,
                       "admission class weights must be positive");
  }
  if (new_classes != class_state_.size()) {
    SPIDER_REQUIRE_MSG(admission_queue_depth_ == 0,
                       "cannot change admission class count while queued");
    class_state_.assign(new_classes, AdmissionClassState{});
    drr_cursor_ = 0;
  }
  admission_ = config;
  admission_mark_ =
      admission_.adaptive
          ? std::clamp(admission_.high_water_utilization, admission_.mark_floor,
                       admission_.mark_ceiling)
          : admission_.high_water_utilization;
  window_attempts_ = window_failures_ = window_setup_count_ = 0;
  window_setup_sum_ms_ = 0.0;
  refresh_capacity_snapshot();
}

double AllocationManager::grant_utilization() {
  if (capacity_epoch_ != deployment_->liveness_epoch()) {
    refresh_capacity_snapshot();
  }
  double util = 0.0;
  for (std::size_t i = 0; i < service::Resources::kTypes; ++i) {
    if (capacity_total_.v[i] > 0.0) {
      util = std::max(util, granted_total_.v[i] / capacity_total_.v[i]);
    }
  }
  return util;
}

AllocationManager::AdmissionDecision AllocationManager::admit_setup(
    std::size_t cls) {
  if (admission_.high_water_utilization < 0.0) {
    return AdmissionDecision::kAdmit;
  }
  SPIDER_REQUIRE(cls < class_state_.size());
  if (admission_queue_depth_ == 0 && admission_open()) {
    return AdmissionDecision::kAdmit;
  }
  AdmissionClassState& state = class_state_[cls];
  if (state.depth < class_queue_capacity(cls)) {
    ++state.depth;
    ++state.queued;
    ++admission_queue_depth_;
    ++admission_queued_count_;
    bump(metrics_, m_admission_queued_, "alloc.admission_queued");
    if (metrics_ != nullptr) {
      if (m_admission_queue_depth_ == nullptr) {
        m_admission_queue_depth_ =
            &metrics_->gauge("alloc.admission_queue_depth");
      }
      m_admission_queue_depth_->set(double(admission_queue_depth_));
    }
    return AdmissionDecision::kQueue;
  }
  ++state.rejects;
  ++admission_rejects_;
  bump(metrics_, m_admission_rejects_, "alloc.admission_rejects");
  return AdmissionDecision::kReject;
}

void AllocationManager::admission_dequeued(double wait_ms, std::size_t cls) {
  SPIDER_REQUIRE(cls < class_state_.size());
  SPIDER_REQUIRE(class_state_[cls].depth > 0);
  --class_state_[cls].depth;
  --admission_queue_depth_;
  admission_queue_wait_ms_ += wait_ms;
  bump(metrics_, m_admission_queue_wait_ms_, "alloc.admission_queue_wait_ms",
       std::uint64_t(std::llround(wait_ms)));
  if (metrics_ != nullptr) {
    if (m_admission_queue_wait_hist_ == nullptr) {
      m_admission_queue_wait_hist_ = &metrics_->histogram(
          "alloc.admission_queue_wait",
          {5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
           10000.0, 20000.0});
    }
    m_admission_queue_wait_hist_->observe(wait_ms);
  }
  if (m_admission_queue_depth_ != nullptr) {
    m_admission_queue_depth_->set(double(admission_queue_depth_));
  }
}

std::optional<std::size_t> AllocationManager::admission_next_class() {
  if (admission_queue_depth_ == 0 || !admission_open()) return std::nullopt;
  const std::size_t n = class_state_.size();
  if (n == 1) return 0;  // plain FIFO: no deficit arithmetic, ever
  // Deficit round robin, one served request per call (cost 1.0). The
  // cursor stays on a class while its credit lasts; a visited backlogged
  // class without credit earns its weight and, if still short, records a
  // starvation skip and yields the pass. Positive weights bound the
  // number of passes any backlogged class can be skipped by ~1/weight.
  double min_weight = admission_.classes[0].weight;
  for (const AdmissionClassConfig& cls : admission_.classes) {
    min_weight = std::min(min_weight, cls.weight);
  }
  const std::size_t guard =
      n * (2 + std::size_t(std::ceil(1.0 / min_weight)));
  for (std::size_t pass = 0; pass < guard; ++pass) {
    const std::size_t cls = drr_cursor_;
    AdmissionClassState& state = class_state_[cls];
    if (state.depth == 0) {
      state.deficit = 0.0;  // idle classes do not bank credit
      drr_cursor_ = (drr_cursor_ + 1) % n;
      continue;
    }
    if (state.deficit < 1.0) {
      state.deficit += admission_.classes[cls].weight;
      if (state.deficit < 1.0) {
        ++state.skips;
        drr_cursor_ = (drr_cursor_ + 1) % n;
        continue;
      }
    }
    state.deficit -= 1.0;
    // Burst over (credit spent): yield the rest of the round to the next
    // class, else a backlogged heavy class would re-earn its quantum on
    // every call and starve everyone behind it.
    if (state.deficit < 1.0) drr_cursor_ = (drr_cursor_ + 1) % n;
    return cls;
  }
  SPIDER_REQUIRE_MSG(false, "DRR failed to pick a backlogged class");
  return std::nullopt;
}

bool AllocationManager::admission_open() {
  return admission_.high_water_utilization < 0.0 ||
         grant_utilization() < admission_mark_;
}

void AllocationManager::admission_observe_setup(bool success,
                                                double setup_ms) {
  ++window_attempts_;
  if (success) {
    ++window_setup_count_;
    window_setup_sum_ms_ += setup_ms;
  } else {
    ++window_failures_;
  }
}

void AllocationManager::admission_controller_tick() {
  if (!admission_.adaptive || admission_.high_water_utilization < 0.0) return;
  if (window_attempts_ > 0) {
    bool breach = false;
    if (admission_.target_failure_rate >= 0.0) {
      breach |= double(window_failures_) / double(window_attempts_) >
                admission_.target_failure_rate;
    }
    if (admission_.target_setup_ms > 0.0 && window_setup_count_ > 0) {
      breach |= window_setup_sum_ms_ / double(window_setup_count_) >
                admission_.target_setup_ms;
    }
    admission_mark_ =
        breach ? std::max(admission_.mark_floor,
                          admission_mark_ * admission_.decrease_factor)
               : std::min(admission_.mark_ceiling,
                          admission_mark_ + admission_.increase_step);
  }
  window_attempts_ = window_failures_ = window_setup_count_ = 0;
  window_setup_sum_ms_ = 0.0;
  if (metrics_ != nullptr) {
    if (m_admission_mark_ == nullptr) {
      m_admission_mark_ = &metrics_->gauge("alloc.admission_mark");
    }
    m_admission_mark_->set(admission_mark_);
  }
}

void AllocationManager::stamp_lease(SessionId session) {
  if (lease_ttl_ms_ <= 0.0) return;
  lease_renew_by_[session] = sim_->now() + lease_ttl_ms_;
}

void AllocationManager::renew_session(SessionId session) {
  if (lease_ttl_ms_ <= 0.0) return;
  auto it = lease_renew_by_.find(session);
  if (it == lease_renew_by_.end()) return;
  it->second = sim_->now() + lease_ttl_ms_;
  ++lease_renewals_;
  bump(metrics_, m_lease_renewals_, "alloc.lease_renewals");
}

std::optional<sim::Time> AllocationManager::lease_renew_by(
    SessionId session) const {
  auto it = lease_renew_by_.find(session);
  if (it == lease_renew_by_.end()) return std::nullopt;
  return it->second;
}

void AllocationManager::count_lease_reclaim(const std::vector<Grant>& grants) {
  double kbps = 0.0;
  for (const Grant& grant : grants) {
    kbps += grant.kbps * double(grant.links.size());
  }
  lease_reclaimed_kbps_ += kbps;
  ++lease_expirations_;
  bump(metrics_, m_lease_expirations_, "alloc.lease_expirations");
  bump(metrics_, m_lease_reclaimed_kbps_, "alloc.lease_reclaimed_kbps",
       std::uint64_t(std::llround(kbps)));
}

std::size_t AllocationManager::reclaim_expired_leases() {
  if (lease_ttl_ms_ <= 0.0) return 0;
  const sim::Time now = sim_->now();
  std::vector<SessionId> expired;
  for (const auto& [session, renew_by] : lease_renew_by_) {
    if (renew_by <= now) expired.push_back(session);
  }
  // Deterministic reclaim order (the map iterates in hash order).
  std::sort(expired.begin(), expired.end());
  for (SessionId session : expired) {
    if (auto it = grants_.find(session); it != grants_.end()) {
      count_lease_reclaim(it->second);
    }
    release_session(session);
  }
  return expired.size();
}

void AllocationManager::release_hold(HoldId hold_id) {
  auto it = holds_.find(hold_id);
  if (it == holds_.end()) return;
  const Hold& hold = it->second;
  if (hold.peer != overlay::kInvalidPeer) {
    peer_state_[hold.peer].soft.erase(hold_id);
  }
  for (overlay::OverlayLinkId link : hold.links) {
    link_state_[link].soft.erase(hold_id);
  }
  holds_.erase(it);
  if (m_released_ != nullptr) {
    m_released_->inc();
    update_outstanding_gauges();
  }
}

void AllocationManager::release_session(SessionId session) {
  lease_renew_by_.erase(session);
  auto it = grants_.find(session);
  if (it == grants_.end()) return;
  for (const Grant& grant : it->second) {
    if (grant.peer != overlay::kInvalidPeer) {
      peer_state_[grant.peer].confirmed -= grant.peer_amount;
      granted_total_ -= grant.peer_amount;
    }
    for (overlay::OverlayLinkId link : grant.links) {
      link_state_[link].confirmed_kbps -= grant.kbps;
    }
  }
  grants_.erase(it);
  update_outstanding_gauges();
}

bool AllocationManager::grant_direct(
    SessionId session,
    const std::vector<std::pair<PeerId, service::Resources>>& peer_demands,
    const std::vector<std::pair<overlay::OverlayLinkId, double>>& link_demands) {
  // Aggregate duplicate peers/links first so the feasibility check is
  // exact when a graph places several components on one peer.
  std::unordered_map<PeerId, service::Resources> per_peer;
  for (const auto& [peer, amount] : peer_demands) {
    auto [it, inserted] = per_peer.emplace(peer, amount);
    if (!inserted) it->second += amount;
  }
  std::unordered_map<overlay::OverlayLinkId, double> per_link;
  for (const auto& [link, kbps] : link_demands) {
    per_link[link] += kbps;
  }
  for (const auto& [peer, amount] : per_peer) {
    if (!amount.fits_within(peer_available(peer))) {
      if (m_direct_grant_failures_ != nullptr) m_direct_grant_failures_->inc();
      return false;
    }
  }
  for (const auto& [link, kbps] : per_link) {
    if (link_available_kbps(link) < kbps) {
      if (m_direct_grant_failures_ != nullptr) m_direct_grant_failures_->inc();
      return false;
    }
  }
  auto& grant_list = grants_[session];
  for (const auto& [peer, amount] : per_peer) {
    Grant g;
    g.session = session;
    g.peer = peer;
    g.peer_amount = amount;
    peer_state_[peer].confirmed += amount;
    granted_total_ += amount;
    grant_list.push_back(std::move(g));
  }
  for (const auto& [link, kbps] : per_link) {
    Grant g;
    g.session = session;
    g.links = {link};
    g.kbps = kbps;
    link_state_[link].confirmed_kbps += kbps;
    grant_list.push_back(std::move(g));
  }
  stamp_lease(session);
  if (m_direct_grants_ != nullptr) {
    m_direct_grants_->inc();
    update_outstanding_gauges();
  }
  return true;
}

std::vector<SessionId> AllocationManager::granted_sessions() const {
  std::vector<SessionId> ids;
  ids.reserve(grants_.size());
  for (const auto& [session, grant_list] : grants_) ids.push_back(session);
  std::sort(ids.begin(), ids.end());
  return ids;
}

AllocationManager::SessionGrantTotals AllocationManager::session_grant_totals(
    SessionId session) const {
  SessionGrantTotals totals;
  auto it = grants_.find(session);
  if (it == grants_.end()) return totals;
  for (const Grant& grant : it->second) {
    if (grant.peer != overlay::kInvalidPeer) {
      totals.peer_total += grant.peer_amount;
    }
    totals.link_kbps_total += grant.kbps * double(grant.links.size());
    ++totals.grant_count;
  }
  return totals;
}

std::size_t AllocationManager::dangling_soft_entries() const {
  std::size_t dangling = 0;
  for (const PeerState& state : peer_state_) {
    for (const auto& [id, ph] : state.soft) dangling += holds_.count(id) == 0;
  }
  for (const LinkState& state : link_state_) {
    for (const auto& [id, lh] : state.soft) dangling += holds_.count(id) == 0;
  }
  return dangling;
}

}  // namespace spider::core
