// Comparison composers from the paper's evaluation (§6.1):
//
//  * OptimalComposer — "unbounded network flooding, which exhaustively
//    searches all candidate service graphs to find the best qualified
//    service graph."  Implemented as an exhaustive global-view enumeration
//    over patterns × replica choices; its message cost is the number of
//    candidate graphs it would have probed (17³ = 4913 in Fig 11's setup).
//  * RandomComposer — "randomly selects a functionally qualified service
//    component for each function node", ignoring QoS/resources.
//  * StaticComposer — "selects pre-defined service component for each
//    function node" (the lowest-id replica here), ignoring QoS/resources.
//  * CentralizedComposer — a global-view scheme with *periodically
//    refreshed* state: composition decisions are optimal against the last
//    snapshot; admission still runs against reality, so stale decisions
//    can fail.  Refreshes cost one update message per peer, which is the
//    ">10× overhead" the paper attributes to global-state maintenance.
#pragma once

#include <cstdint>

#include "core/allocator.hpp"
#include "core/deployment.hpp"
#include "core/evaluator.hpp"
#include "util/rng.hpp"

namespace spider::core {

struct BaselineResult {
  bool success = false;
  service::ServiceGraph best;
  std::vector<service::ServiceGraph> backups;  ///< other qualified, ψ-ascending
  std::uint64_t messages = 0;
  std::size_t candidates_examined = 0;
  /// True if the exhaustive search hit its candidate cap (the result is
  /// then best-of-examined, not a true global optimum).
  bool truncated = false;
};

/// Objective for exhaustive selection.
enum class Objective {
  kMinPsi,   ///< load balancing (Fig 8's success-ratio runs)
  kMinDelay  ///< end-to-end delay (Fig 11's delay-vs-budget runs)
};

class OptimalComposer {
 public:
  OptimalComposer(Deployment& deployment, AllocationManager& alloc,
                  GraphEvaluator& evaluator, bool use_commutation = true,
                  std::size_t max_patterns = 8,
                  std::size_t max_candidates = 2'000'000)
      : deployment_(&deployment),
        alloc_(&alloc),
        evaluator_(&evaluator),
        use_commutation_(use_commutation),
        max_patterns_(max_patterns),
        max_candidates_(max_candidates) {}

  /// Exhaustive search; `view` overrides the availability used for ranking
  /// and feasibility (the centralized baseline passes its snapshot).
  BaselineResult compose(const service::CompositeRequest& request,
                         Objective objective = Objective::kMinPsi,
                         AvailabilityView* view = nullptr,
                         std::size_t max_backups = 16);

 private:
  Deployment* deployment_;
  AllocationManager* alloc_;
  GraphEvaluator* evaluator_;
  bool use_commutation_;
  std::size_t max_patterns_;
  std::size_t max_candidates_;
};

class RandomComposer {
 public:
  RandomComposer(Deployment& deployment, GraphEvaluator& evaluator)
      : deployment_(&deployment), evaluator_(&evaluator) {}

  /// Random replica per function node; no QoS/resource awareness in the
  /// choice. The returned graph is resolved + evaluated so callers can
  /// measure what the blind choice achieved.
  BaselineResult compose(const service::CompositeRequest& request, Rng& rng);

 private:
  Deployment* deployment_;
  GraphEvaluator* evaluator_;
};

class StaticComposer {
 public:
  StaticComposer(Deployment& deployment, GraphEvaluator& evaluator)
      : deployment_(&deployment), evaluator_(&evaluator) {}

  /// Pre-defined (lowest component id, i.e. first deployed live) replica
  /// per function node.
  BaselineResult compose(const service::CompositeRequest& request);

 private:
  Deployment* deployment_;
  GraphEvaluator* evaluator_;
};

/// Global-view composer operating on a periodically refreshed snapshot.
class CentralizedComposer {
 public:
  CentralizedComposer(Deployment& deployment, AllocationManager& alloc,
                      GraphEvaluator& evaluator)
      : deployment_(&deployment),
        alloc_(&alloc),
        optimal_(deployment, alloc, evaluator),
        snapshot_(deployment.peer_count(),
                  deployment.overlay().link_count()) {}

  /// Pulls fresh availability from every live peer (and link); costs one
  /// update message per live peer. Call on the maintenance period.
  void refresh();

  BaselineResult compose(const service::CompositeRequest& request,
                         Objective objective = Objective::kMinPsi);

  std::uint64_t maintenance_messages() const { return maintenance_messages_; }

 private:
  struct Snapshot : public AvailabilityView {
    Snapshot(std::size_t peers, std::size_t links)
        : peer(peers), link(links, 0.0) {}
    service::Resources peer_available(PeerId p) override { return peer[p]; }
    double link_available_kbps(overlay::OverlayLinkId l) override {
      return link[l];
    }
    std::vector<service::Resources> peer;
    std::vector<double> link;
  };

  Deployment* deployment_;
  AllocationManager* alloc_;
  OptimalComposer optimal_;
  Snapshot snapshot_;
  std::uint64_t maintenance_messages_ = 0;
  bool refreshed_once_ = false;
};

}  // namespace spider::core
