#include "core/deployment.hpp"

#include <string>

#include "util/require.hpp"

namespace spider::core {

namespace {

dht::NodeId peer_node_id(PeerId peer) {
  return dht::NodeId::hash_of("spidernet-peer:" + std::to_string(peer));
}

}  // namespace

Deployment::Deployment(overlay::OverlayNetwork overlay_net, Rng& rng,
                       int leaf_set_size, int replication)
    : overlay_(std::move(overlay_net)),
      dht_(leaf_set_size, replication),
      registry_(dht_, catalog_) {
  (void)rng;  // reserved for randomized join order experiments
  const std::size_t n = overlay_.peer_count();
  by_peer_.resize(n);
  capacity_.assign(n, service::Resources::cpu_mem(100.0, 100.0));
  next_local_id_.assign(n, 0);

  // Pastry locality: contested routing-table cells keep the entry with
  // the lower overlay delay. A proximity *hint* — estimated when the
  // overlay carries a landmark table (exact otherwise), because answering
  // it exactly during 500k joins is the all-pairs Dijkstra this PR
  // retires.
  dht_.set_proximity(
      [this](PeerId a, PeerId b) { return overlay_.estimated_delay_ms(a, b); });

  // Join all peers into the DHT, bootstrapping through peer 0.
  dht_.bootstrap(0, peer_node_id(0));
  for (PeerId p = 1; p < n; ++p) {
    dht_.join(p, peer_node_id(p), 0);
  }
}

const service::ServiceComponent& Deployment::deploy_component(
    service::ServiceComponent component) {
  const PeerId host = component.host;
  SPIDER_REQUIRE(host < peer_count());
  SPIDER_REQUIRE(component.function != service::kInvalidFunction);
  component.id = service::make_component_id(host, next_local_id_[host]++);
  const service::ComponentId id = component.id;
  by_peer_[host].push_back(id);
  by_function_[component.function].push_back(id);
  auto [it, inserted] = components_.emplace(id, std::move(component));
  SPIDER_REQUIRE(inserted);
  registry_.register_component(service::ComponentMetadata::from(it->second));
  return it->second;
}

const service::ServiceComponent& Deployment::component(
    service::ComponentId id) const {
  auto it = components_.find(id);
  SPIDER_REQUIRE_MSG(it != components_.end(), "unknown component");
  return it->second;
}

bool Deployment::component_alive(service::ComponentId id) const {
  auto it = components_.find(id);
  if (it == components_.end()) return false;
  return overlay_.alive(it->second.host);
}

const std::vector<service::ComponentId>& Deployment::components_on(
    PeerId peer) const {
  SPIDER_REQUIRE(peer < peer_count());
  return by_peer_[peer];
}

const std::vector<service::ComponentId>& Deployment::replicas_oracle(
    service::FunctionId function) const {
  static const std::vector<service::ComponentId> kEmpty;
  auto it = by_function_.find(function);
  return it == by_function_.end() ? kEmpty : it->second;
}

void Deployment::set_capacity(PeerId peer, const service::Resources& capacity) {
  SPIDER_REQUIRE(peer < peer_count());
  capacity_[peer] = capacity;
}

const service::Resources& Deployment::capacity(PeerId peer) const {
  SPIDER_REQUIRE(peer < peer_count());
  return capacity_[peer];
}

void Deployment::kill_peer(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_count());
  if (!overlay_.alive(peer)) return;
  ++liveness_epoch_;
  overlay_.set_alive(peer, false);
  dht_.fail(peer);
}

void Deployment::revive_peer(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_count());
  if (overlay_.alive(peer)) return;
  ++liveness_epoch_;
  overlay_.set_alive(peer, true);
  // Fresh DHT identity (a rejoining peer is a new DHT node in practice —
  // its old id may still linger as a dead ring entry).
  PeerId bootstrap = overlay::kInvalidPeer;
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (p != peer && dht_.alive(p)) {
      bootstrap = p;
      break;
    }
  }
  SPIDER_REQUIRE_MSG(bootstrap != overlay::kInvalidPeer,
                     "no live bootstrap peer");
  dht_.join(peer,
            dht::NodeId::hash_of("spidernet-peer:" + std::to_string(peer) +
                                 ":rejoin:" +
                                 std::to_string(revive_counter_++)),
            bootstrap);
  // Re-register this peer's components (soft-state re-announcement).
  for (service::ComponentId id : by_peer_[peer]) {
    registry_.register_component(
        service::ComponentMetadata::from(components_.at(id)));
  }
}

std::vector<PeerId> Deployment::live_peers() const {
  std::vector<PeerId> out;
  out.reserve(peer_count());
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (overlay_.alive(p)) out.push_back(p);
  }
  return out;
}

}  // namespace spider::core
