#include "core/deployment.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/require.hpp"

namespace spider::core {

namespace {

dht::NodeId peer_node_id(PeerId peer) {
  return dht::NodeId::hash_of("spidernet-peer:" + std::to_string(peer));
}

}  // namespace

Deployment::Deployment(overlay::OverlayNetwork overlay_net, Rng& rng,
                       int leaf_set_size, int replication)
    : Deployment(std::move(overlay_net), rng, BuildOptions{}, leaf_set_size,
                 replication) {}

Deployment::Deployment(overlay::OverlayNetwork overlay_net, Rng& rng,
                       const BuildOptions& opts, int leaf_set_size,
                       int replication)
    : overlay_(std::move(overlay_net)),
      dht_(leaf_set_size, replication),
      registry_(dht_, catalog_) {
  (void)rng;  // reserved for randomized join order experiments
  const std::size_t n = overlay_.peer_count();
  by_peer_.resize(n);
  capacity_.assign(n, service::Resources::cpu_mem(100.0, 100.0));
  next_local_id_.assign(n, 0);

  // Pastry locality: contested routing-table cells keep the entry with
  // the lower overlay delay. A proximity *hint* — estimated when the
  // overlay carries a landmark table (exact otherwise, where answering it
  // walks the overlay route cache).
  dht_.set_proximity(
      [this](PeerId a, PeerId b) { return overlay_.estimated_delay_ms(a, b); });

  // Initial world construction bulk-loads canonical routing state from
  // the sorted id space instead of N routed joins. Live join() stays the
  // path for revive_peer/churn. Without an estimator the proximity hint
  // mutates overlay route caches, so the parallel fill must stay serial.
  std::vector<std::pair<dht::NodeId, PeerId>> entries;
  entries.reserve(n);
  for (PeerId p = 0; p < n; ++p) entries.emplace_back(peer_node_id(p), p);
  std::sort(entries.begin(), entries.end());
  if (n > 0) {
    dht_.bulk_load(entries,
                   overlay_.has_estimator() ? opts.build_jobs : std::size_t{1});
  }
}

const service::ServiceComponent& Deployment::deploy_component(
    service::ServiceComponent component) {
  const PeerId host = component.host;
  SPIDER_REQUIRE(host < peer_count());
  SPIDER_REQUIRE(component.function != service::kInvalidFunction);
  component.id = service::make_component_id(host, next_local_id_[host]++);
  const service::ComponentId id = component.id;
  by_peer_[host].push_back(id);
  by_function_[component.function].push_back(id);
  auto [it, inserted] = components_.emplace(id, std::move(component));
  SPIDER_REQUIRE(inserted);
  registry_.register_component(service::ComponentMetadata::from(it->second));
  return it->second;
}

void Deployment::deploy_components(
    std::vector<service::ServiceComponent> components, std::size_t jobs) {
  std::vector<service::ComponentMetadata> metas;
  metas.reserve(components.size());
  for (service::ServiceComponent& component : components) {
    const PeerId host = component.host;
    SPIDER_REQUIRE(host < peer_count());
    SPIDER_REQUIRE(component.function != service::kInvalidFunction);
    component.id = service::make_component_id(host, next_local_id_[host]++);
    const service::ComponentId id = component.id;
    by_peer_[host].push_back(id);
    by_function_[component.function].push_back(id);
    auto [it, inserted] = components_.emplace(id, std::move(component));
    SPIDER_REQUIRE(inserted);
    metas.push_back(service::ComponentMetadata::from(it->second));
  }
  registry_.bulk_register(metas, jobs);
}

const service::ServiceComponent& Deployment::component(
    service::ComponentId id) const {
  auto it = components_.find(id);
  SPIDER_REQUIRE_MSG(it != components_.end(), "unknown component");
  return it->second;
}

bool Deployment::component_alive(service::ComponentId id) const {
  auto it = components_.find(id);
  if (it == components_.end()) return false;
  return overlay_.alive(it->second.host);
}

const std::vector<service::ComponentId>& Deployment::components_on(
    PeerId peer) const {
  SPIDER_REQUIRE(peer < peer_count());
  return by_peer_[peer];
}

const std::vector<service::ComponentId>& Deployment::replicas_oracle(
    service::FunctionId function) const {
  static const std::vector<service::ComponentId> kEmpty;
  auto it = by_function_.find(function);
  return it == by_function_.end() ? kEmpty : it->second;
}

void Deployment::set_capacity(PeerId peer, const service::Resources& capacity) {
  SPIDER_REQUIRE(peer < peer_count());
  capacity_[peer] = capacity;
}

const service::Resources& Deployment::capacity(PeerId peer) const {
  SPIDER_REQUIRE(peer < peer_count());
  return capacity_[peer];
}

void Deployment::kill_peer(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_count());
  if (!overlay_.alive(peer)) return;
  ++liveness_epoch_;
  overlay_.set_alive(peer, false);
  dht_.fail(peer);
}

void Deployment::revive_peer(PeerId peer) {
  SPIDER_REQUIRE(peer < peer_count());
  if (overlay_.alive(peer)) return;
  ++liveness_epoch_;
  overlay_.set_alive(peer, true);
  // Fresh DHT identity (a rejoining peer is a new DHT node in practice —
  // its old id may still linger as a dead ring entry). The bootstrap is
  // the lowest live PeerId — a deterministic choice, so a kill/revive
  // sequence replays bit-for-bit regardless of build parallelism.
  PeerId bootstrap = overlay::kInvalidPeer;
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (p != peer && dht_.alive(p)) {
      bootstrap = p;
      break;
    }
  }
  SPIDER_REQUIRE_MSG(bootstrap != overlay::kInvalidPeer,
                     "no live bootstrap peer");
  dht_.join(peer,
            dht::NodeId::hash_of("spidernet-peer:" + std::to_string(peer) +
                                 ":rejoin:" +
                                 std::to_string(revive_counter_++)),
            bootstrap);
  // Re-register this peer's components (soft-state re-announcement).
  for (service::ComponentId id : by_peer_[peer]) {
    registry_.register_component(
        service::ComponentMetadata::from(components_.at(id)));
  }
}

std::vector<PeerId> Deployment::live_peers() const {
  std::vector<PeerId> out;
  out.reserve(peer_count());
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (overlay_.alive(p)) out.push_back(p);
  }
  return out;
}

}  // namespace spider::core
