// Session management and proactive failure recovery (§5).
//
// After BCP succeeds, the source establishes a session: the best graph's
// soft holds are confirmed into grants, the backup count γ is computed per
// Eq. 2, and backups are selected from the qualified pool per §5.2's
// policy (avoid a target component, maximize overlap with the current
// graph, cover bottleneck components first, then pairs).
//
// At runtime the manager
//  * periodically probes backup graphs (low-rate liveness/QoS checks —
//    the maintenance overhead the paper measures),
//  * reacts to peer failures: a broken active graph is switched to the
//    first backup that is alive, QoS-qualified and admissible — the fast
//    path; if none survives, reactive recovery re-runs BCP (the slow
//    path); if that also fails the session is lost,
//  * prunes/replenishes backups that churn invalidates.
//
// Lifecycle robustness (soft-state story, completing §4.2/§5): every
// session moves through an explicit state machine (kEstablishing →
// kActive → kSwitching/kRecovering → kTornDown) whose control exchanges
// — the establish confirm leg, teardown, backup switch-activation — are
// real messages under the fault model: retried with exponential backoff,
// deduplicated by (session, epoch, seq) so duplicate deliveries are
// idempotent, and bounded so a lossy network degrades to abort-and-
// release instead of hanging. State the control plane fails to release
// (lost teardown, crashed source, confirm whose ack vanished) is
// reclaimed by session-grant leases (allocator) and the anti-entropy
// audit() pass. With no fault model and lease_ttl_ms = 0 all of this is
// inert and behaviour is bit-identical to the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/allocator.hpp"
#include "core/bcp.hpp"
#include "core/deployment.hpp"
#include "core/evaluator.hpp"
#include "util/hash.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace spider::obs

namespace spider::fault {
class LinkFaultModel;
}  // namespace spider::fault

namespace spider::core {

/// How backups are chosen from the qualified pool (ablation A3 compares
/// the paper's policy against naive alternatives).
enum class BackupPolicy {
  kSpiderNet,    ///< §5.2: avoid target components, maximize overlap
  kRandom,       ///< uniform random qualified graphs
  kMostDisjoint  ///< minimize overlap with the current graph
};

struct RecoveryConfig {
  bool proactive = true;  ///< maintain backups (off = the Fig 9 baseline)
  /// U — upper bound on the number of backups per session (Eq. 2).
  int backup_upper_bound = 5;
  /// Scales Eq. 2's quality/failure margin term; 1.0 is the paper's form.
  double backup_aggressiveness = 1.0;
  /// Period of backup liveness probing, in virtual ms.
  double maintenance_period_ms = 1000.0;
  BackupPolicy backup_policy = BackupPolicy::kSpiderNet;
  /// Consecutive liveness-probe misses before a monitored peer is
  /// declared dead. 1 reacts to the first miss (the reliable-network
  /// behavior); under a lossy fault model raise it so a single lost
  /// probe round-trip does not trigger spurious recovery (the false-
  /// positive rate per monitor pass is ~loss^threshold).
  int liveness_miss_threshold = 1;
  /// Retransmissions per lifecycle control leg (confirm / teardown /
  /// switch-activation) before the sender gives up — each leg gets
  /// 1 + ctrl_retry_limit attempts. Only consulted under an active
  /// fault model.
  int ctrl_retry_limit = 4;
  /// Base retransmission timeout for control legs; doubles per retry
  /// (exponential backoff). Only affects latency accounting — lifecycle
  /// exchanges are synchronous in the simulation.
  double ctrl_min_rto_ms = 50.0;
};

/// Lifecycle state of one session (see the file comment's diagram; the
/// transitional states are only observable *during* a manager call —
/// every public call returns with each live session back in kActive or
/// gone, so "stuck" transitional states indicate a bug).
enum class SessionState {
  kEstablishing,  ///< holds confirmed, confirm leg in flight
  kActive,        ///< steady state: grants held, backups maintained
  kSwitching,     ///< fast path: activating a backup graph
  kRecovering,    ///< slow path: reactive BCP re-composition
  kTornDown       ///< terminal; the session is erased on return
};

/// What happened when a peer failure hit a session's active graph.
enum class RecoveryOutcome {
  kNotAffected,        ///< active graph did not use the failed peer
  kSwitchedToBackup,   ///< fast path: proactive switch succeeded
  kReactiveRecovered,  ///< slow path: BCP re-composition succeeded
  kLost,               ///< no backup and reactive BCP failed
  /// The failure notification never reached the session source (fault
  /// model): the session stays broken until the periodic liveness
  /// monitor's timeout-driven detection catches it.
  kNotificationLost
};

struct SessionStats {
  std::uint64_t breaks = 0;              ///< active-graph failures observed
  std::uint64_t backup_switches = 0;     ///< fast recoveries
  std::uint64_t reactive_recoveries = 0; ///< slow recoveries
  std::uint64_t losses = 0;              ///< unrecovered failures
  std::uint64_t maintenance_messages = 0;
  /// Liveness probes that went unanswered (dead peer or lost message).
  std::uint64_t liveness_probe_misses = 0;
  /// Misses whose peer was actually alive (lost probe or lost ack).
  std::uint64_t false_suspicions = 0;
  /// Peer-failure notifications the fault model dropped; the affected
  /// session was left for the monitor's timeout-driven detection.
  std::uint64_t notifications_lost = 0;
  // --- lifecycle control plane (all zero without an active fault model) ---
  std::uint64_t ctrl_retransmits = 0;   ///< control-leg retry attempts
  std::uint64_t ctrl_duplicates = 0;    ///< deduped duplicate deliveries
  double ctrl_backoff_ms = 0.0;         ///< summed retransmission backoff
  /// Establishments aborted because the confirm leg's ack never arrived;
  /// already-applied grants strand until a lease or audit reclaims them.
  std::uint64_t confirms_lost = 0;
  /// Teardowns that never reached the session's peers: the source gave
  /// up and the grants stranded (lease / audit territory).
  std::uint64_t teardowns_lost = 0;
  /// Backup switch-activations abandoned mid-recovery (candidate skipped).
  std::uint64_t switch_activations_lost = 0;
  /// Sessions whose source peer crashed (no teardown possible).
  std::uint64_t source_crashes = 0;
  /// Orphaned grant sets reclaimed by the anti-entropy audit.
  std::uint64_t orphans_reclaimed = 0;
  /// Lease renewal beats piggybacked on maintenance passes.
  std::uint64_t lease_renew_messages = 0;
  double backup_count_sum = 0.0;  ///< for the avg-backups metric (≈2.74)
  std::uint64_t backup_count_samples = 0;
  /// Components replaced per fast switch — the disruption §5.2's overlap
  /// preference minimizes (each fresh component must be initialized).
  double switch_disruption_sum = 0.0;
  double avg_switch_disruption() const {
    return backup_switches == 0 ? 0.0
                                : switch_disruption_sum / double(backup_switches);
  }
  double avg_backups() const {
    return backup_count_samples == 0
               ? 0.0
               : backup_count_sum / double(backup_count_samples);
  }
};

class SessionManager {
 public:
  SessionManager(Deployment& deployment, AllocationManager& alloc,
                 GraphEvaluator& evaluator, BcpEngine& bcp,
                 sim::Simulator& simulator, RecoveryConfig config = {})
      : deployment_(&deployment),
        alloc_(&alloc),
        evaluator_(&evaluator),
        bcp_(&bcp),
        sim_(&simulator),
        config_(config) {}

  /// Establishes a session from a successful compose: confirms the best
  /// graph's holds, sizes and selects backups. Returns kInvalidSession if
  /// a hold expired before confirmation (admission lost).
  SessionId establish(const service::CompositeRequest& request,
                      ComposeResult&& composed);

  /// Establishes a session by direct admission of an already-selected
  /// graph (no prior soft holds — the baselines' and the no-soft-
  /// allocation ablation's path). Returns kInvalidSession if the graph no
  /// longer fits current availability.
  SessionId establish_direct(const service::CompositeRequest& request,
                             service::ServiceGraph graph,
                             std::vector<service::ServiceGraph> backup_pool = {});

  /// Graceful teardown (session completed). Under an active fault model
  /// the teardown message is retried with backoff; if it never gets
  /// through, the source still forgets the session but its grants strand
  /// in the allocator (counted in stats().teardowns_lost) until a lease
  /// expires or an audit reclaims them.
  void teardown(SessionId session);

  /// The source peer of one or more sessions crashed. The sessions die
  /// with it — no teardown exchange is possible — and their grants stay
  /// in the allocator until lease expiry or audit() reclaims them.
  /// Returns the number of sessions erased.
  std::size_t on_source_crashed(PeerId source);

  /// Peer-failure notification: updates every active session. Returns the
  /// per-session outcomes for failure accounting.
  std::vector<RecoveryOutcome> on_peer_failed(PeerId peer, Rng& rng);

  /// Failure detection (the paper omits its design; this implements the
  /// natural one): each source probes the peers of its active graph —
  /// one liveness message per service-link hop, like the backup probes —
  /// and triggers recovery for any session whose graph lost a peer. No
  /// oracle notification is needed; detection latency is the monitoring
  /// period times the miss threshold (under a lossy fault model a peer is
  /// only declared dead after `liveness_miss_threshold` consecutive
  /// unanswered round-trips). Returns the outcomes of every recovery it
  /// triggered.
  std::vector<RecoveryOutcome> monitor_active_sessions(Rng& rng);

  /// Periodic backup maintenance: probe each backup's liveness and QoS,
  /// prune invalid ones, replenish from the session's qualified pool.
  /// When the allocator leases grants (lease_ttl_ms > 0), each pass also
  /// piggybacks one lease-renewal beat per session, so any ttl larger
  /// than the maintenance period keeps live sessions granted forever.
  void run_maintenance();

  /// One anti-entropy pass reconciling allocator state with the live
  /// session set (the backstop for everything the control plane lost).
  struct AuditReport {
    std::size_t expired_holds = 0;     ///< stale soft holds swept
    std::size_t leases_reclaimed = 0;  ///< sessions whose lease lapsed
    std::size_t orphan_sessions = 0;   ///< granted but not live: reclaimed
    double orphan_kbps = 0.0;          ///< link bandwidth freed from orphans
    /// Conservation invariant: every live session's allocator totals
    /// match its active graph's demand (also SPIDER_DCHECKed).
    bool conserved = true;
  };
  AuditReport audit();

  /// Runs audit() every `period_ms` on the simulator, offset by
  /// `first_delay_ms` (defaults to half a period, interleaving with
  /// maintenance timers instead of colliding). Call again to re-arm with
  /// a new period; pass period_ms <= 0 to disable.
  void enable_periodic_audit(double period_ms, double first_delay_ms = -1.0);

  /// Number of backups Eq. 2 prescribes for the given graph vs request.
  int backup_count(const service::ServiceGraph& graph,
                   const service::CompositeRequest& request,
                   std::size_t qualified_total) const;

  /// Backup selection (exposed for tests and ablations). The default
  /// policy is §5.2's; `rng` is only consulted by BackupPolicy::kRandom.
  /// Selected graphs are moved out of `pool` (qualified graphs carry full
  /// per-hop route state — they are never deep-copied here, mirroring the
  /// shared-prefix probe representation they were flattened from); the
  /// graphs not selected are appended to `*leftover` in their original
  /// pool order when a leftover vector is supplied.
  static std::vector<service::ServiceGraph> select_backups(
      const service::ServiceGraph& current,
      std::vector<service::ServiceGraph> pool, std::size_t count,
      BackupPolicy policy = BackupPolicy::kSpiderNet, Rng* rng = nullptr,
      std::vector<service::ServiceGraph>* leftover = nullptr);

  std::size_t active_sessions() const { return sessions_.size(); }
  const SessionStats& stats() const { return stats_; }

  /// Attaches a metrics registry (null detaches). Publishes cumulative
  /// "session.*" counters (establishments, breaks, recovery outcomes,
  /// maintenance traffic) and an active-session gauge.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attaches a fault model (null detaches). When active, session
  /// liveness probes are sampled as round-trip messages over the overlay
  /// route to the monitored peer, and peer-failure notifications can be
  /// lost; detection then falls back to the monitor's miss threshold.
  void set_fault_model(const fault::LinkFaultModel* model) { fault_ = model; }
  const fault::LinkFaultModel* fault_model() const { return fault_; }

  const service::ServiceGraph* active_graph(SessionId session) const;
  std::size_t backup_count_of(SessionId session) const;

  /// Lifecycle state of a live session, or kTornDown if it is gone (a
  /// torn-down session is erased, so "not found" IS the terminal state).
  SessionState session_state(SessionId session) const;

 private:
  struct Session {
    SessionId id = kInvalidSession;
    service::CompositeRequest request;
    service::ServiceGraph active;
    std::vector<service::ServiceGraph> backups;
    std::vector<service::ServiceGraph> pool;  ///< unused qualified graphs
    /// Consecutive liveness-probe misses per monitored peer; reset on a
    /// successful probe and after recovery replaces the active graph.
    std::unordered_map<PeerId, int> probe_misses;
    SessionState state = SessionState::kEstablishing;
    /// Bumped whenever the active graph changes; control messages from
    /// a stale epoch are recognizably stale (part of the dedup key).
    std::uint64_t epoch = 0;
    /// Per-session control-message sequence (next unused).
    std::uint64_t ctrl_seq = 0;
  };

  /// Dedup identity of one lifecycle control operation. A retransmitted
  /// request that already got through is recognized by this key and
  /// re-acked, not re-applied. Deliberately a struct (not a packed
  /// integer): XOR/shift packing of ids aliases, see util/hash.hpp.
  struct CtrlKey {
    SessionId session = kInvalidSession;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    bool operator==(const CtrlKey&) const = default;
  };
  struct CtrlKeyHash {
    std::size_t operator()(const CtrlKey& k) const {
      return std::size_t(util::hash_values(k.session, k.epoch, k.seq));
    }
  };

  /// Outcome of one lifecycle control exchange (request + ack, retried).
  struct CtrlOutcome {
    bool acked = false;    ///< the sender saw an ack: definitely applied
    bool applied = false;  ///< some request leg arrived: receiver acted
    int attempts = 1;
  };
  /// Sends one control message over `links` with retries, backoff and
  /// duplicate dedup. Trivially succeeds (and counts nothing) without an
  /// active fault model. `tag` namespaces the message kind in the fault
  /// sampling key.
  CtrlOutcome send_control(Session& session, std::uint64_t tag,
                           const std::vector<overlay::OverlayLinkId>& links);
  /// Concatenated overlay links of every service hop of `graph` — the
  /// route a source-originated control message traverses.
  static std::vector<overlay::OverlayLinkId> graph_route(
      const service::ServiceGraph& graph);
  /// Erases a session and its control-dedup residue.
  void erase_session(SessionId id);

  /// Grants a graph's demands directly (backup switch / reactive path).
  bool admit(Session& session, service::ServiceGraph graph);
  void refill_backups(Session& session);
  RecoveryOutcome recover(Session& session, Rng& rng);
  void count_established();
  void update_active_gauge();

  /// True if a liveness probe round-trip from `source` reached `peer`
  /// and its ack came back. Dead peers never respond; a live peer's
  /// response can still be lost by the fault model.
  bool probe_responds(PeerId source, PeerId peer);

  Deployment* deployment_;
  AllocationManager* alloc_;
  GraphEvaluator* evaluator_;
  BcpEngine* bcp_;
  sim::Simulator* sim_;
  RecoveryConfig config_;
  const fault::LinkFaultModel* fault_ = nullptr;
  std::unordered_map<SessionId, Session> sessions_;
  /// Control operations the "receiver side" already applied (dedup set);
  /// entries die with their session.
  std::unordered_set<CtrlKey, CtrlKeyHash> ctrl_applied_;
  std::unique_ptr<sim::PeriodicTimer> audit_timer_;
  SessionStats stats_;
  Rng policy_rng_{0x5b5b};  ///< consulted only by BackupPolicy::kRandom
  /// Monotonic message keys for fault sampling of liveness probes and
  /// failure notifications. Deliberately not an Rng: consuming one would
  /// shift every downstream draw and break fault-free byte-identity.
  std::uint64_t probe_nonce_ = 0;
  std::uint64_t notify_nonce_ = 0;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_established_ = nullptr;
  obs::Counter* m_teardowns_ = nullptr;
  obs::Counter* m_breaks_ = nullptr;
  obs::Counter* m_backup_switches_ = nullptr;
  obs::Counter* m_reactive_recoveries_ = nullptr;
  obs::Counter* m_losses_ = nullptr;
  obs::Counter* m_maintenance_messages_ = nullptr;
  obs::Counter* m_probe_misses_ = nullptr;
  obs::Counter* m_false_suspicions_ = nullptr;
  obs::Counter* m_notifications_lost_ = nullptr;
  obs::Counter* m_probe_timeouts_ = nullptr;  ///< shared "probe.timeout"
  // Lifecycle control-plane counters; bind lazily (first event) so runs
  // without faults/leases export exactly the seed's metrics JSON.
  obs::Counter* m_ctrl_retransmits_ = nullptr;
  obs::Counter* m_ctrl_duplicates_ = nullptr;
  obs::Counter* m_confirms_lost_ = nullptr;
  obs::Counter* m_teardowns_lost_ = nullptr;
  obs::Counter* m_switch_activations_lost_ = nullptr;
  obs::Counter* m_source_crashes_ = nullptr;
  obs::Counter* m_orphans_reclaimed_ = nullptr;
  obs::Counter* m_lease_renewals_sent_ = nullptr;
  obs::Gauge* m_active_sessions_ = nullptr;
};

}  // namespace spider::core
