// Shared probe-path state for BCP (DESIGN.md §5g).
//
// A probe's mutable per-hop scalars (arrival time, accumulated QoS,
// remaining budget) are O(1) to copy, but its *prefix* — the components
// chosen so far, the soft holds backing them and the per-leg timing — is
// O(depth), and the seed implementation deep-copied it into every child
// probe at every hop: one request cost O(depth² × fanout) in copies.
//
// Here the prefix is an immutable cons-list of `PathSegment`s: spawning a
// child appends exactly one node and shares the parent's entire tail.
// Segments are never mutated after creation (sibling probes read the same
// nodes), reference-counted, and allocated from a per-request `PathArena`
// with a free list, so a dropped probe's exclusive suffix is recycled
// into the next spawn instead of hitting the general-purpose allocator.
//
// Ownership rules:
//  * every `PathRef` (the probe-held smart pointer) owns one reference on
//    its leaf segment;
//  * every segment owns one reference on its parent;
//  * releasing a leaf therefore walks toward the root, stopping at the
//    first segment still shared with a sibling or an arrived probe.
//
// The arena lives in the engine's per-request ComposeState and must
// outlive every probe of that request — including probes captured in
// in-flight simulator events on the message-level driver, which keep the
// state (and so the arena) alive through their shared_ptr to the run.
// Flattening back to a positional per-hop view happens exactly once, at
// `finalize()`, via `FlatPrefix`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "core/hold_keys.hpp"
#include "service/component.hpp"
#include "util/require.hpp"

namespace spider::core {

/// One hop of a probe's chosen prefix. Immutable once appended; `parent`
/// links toward the request source (nullptr for the first hop).
struct PathSegment {
  service::ComponentMetadata component;  ///< replica chosen at this hop
  /// Soft holds attached at this hop: the incoming service link's
  /// bandwidth hold (if any) then the component-resource hold, in the
  /// order the destination-side union must observe them.
  std::pair<HoldCoverKey, HoldId> holds[2];
  std::uint8_t hold_count = 0;
  double leg_delay_ms = 0.0;  ///< measured network delay of the incoming leg
  double arrival_ms = 0.0;    ///< probe arrival time at this hop
  PathSegment* parent = nullptr;
  std::uint32_t depth = 0;  ///< chain length including this segment
  std::uint32_t refs = 0;   ///< managed by PathArena

  void add_hold(const HoldCoverKey& key, HoldId hold) {
    SPIDER_DCHECK(hold_count < 2);
    holds[hold_count++] = {key, hold};
  }
};

class PathRef;

/// Bump allocator + free list for one request's PathSegments. Node-based
/// storage (std::deque) keeps segment addresses stable for the arena's
/// lifetime; recycled nodes are reused in LIFO order, so the hot spawn
/// path of a deep probing tree runs entirely out of a few cache-warm
/// slabs. Single-threaded by design: a compose run owns its arena the
/// same way it owns its RNG stream.
class PathArena {
 public:
  PathArena() = default;
  PathArena(const PathArena&) = delete;
  PathArena& operator=(const PathArena&) = delete;

  /// Appends one segment under `parent` (which may be null). The returned
  /// ref owns the new leaf; the leaf owns a reference on `parent`.
  PathRef append(const PathSegment* parent,
                 const service::ComponentMetadata& component,
                 double leg_delay_ms, double arrival_ms);

  /// Deep-copies the whole chain ending at `leaf` and appends one fresh
  /// segment, sharing nothing. Byte-for-byte the same protocol state as
  /// append() — only the memory behaviour differs. This is the seed
  /// engine's deep-copy spawn, kept as a test oracle for the
  /// prefix-sharing equivalence suite (BcpConfig::debug_clone_prefixes).
  PathRef clone_append(const PathSegment* leaf,
                       const service::ComponentMetadata& component,
                       double leg_delay_ms, double arrival_ms);

  void retain(PathSegment* seg) {
    if (seg != nullptr) ++seg->refs;
  }

  /// Drops one reference on `seg`; fully released suffixes are walked
  /// toward the root and recycled into the free list.
  void release(PathSegment* seg) {
    while (seg != nullptr && --seg->refs == 0) {
      PathSegment* parent = seg->parent;
      seg->parent = free_;  // dead node: parent doubles as free-list link
      free_ = seg;
      --live_;
      seg = parent;
    }
  }

  /// Fresh nodes constructed (free-list hits excluded).
  std::uint64_t segments_allocated() const { return allocated_; }
  /// Spawns served from the free list instead of fresh storage.
  std::uint64_t freelist_reused() const { return reused_; }
  /// Currently reachable segments.
  std::uint64_t live_segments() const { return live_; }
  /// High-water mark of live segments — with segments_allocated() the
  /// request's peak-RSS proxy: peak bytes ≈ peak_live_segments() ×
  /// sizeof(PathSegment).
  std::uint64_t peak_live_segments() const { return peak_live_; }

 private:
  PathSegment* take() {
    PathSegment* seg;
    if (free_ != nullptr) {
      seg = free_;
      free_ = seg->parent;
      ++reused_;
    } else {
      slabs_.emplace_back();
      seg = &slabs_.back();
      ++allocated_;
    }
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return seg;
  }

  PathSegment* fill(PathSegment* parent,
                    const service::ComponentMetadata& component,
                    double leg_delay_ms, double arrival_ms) {
    PathSegment* seg = take();
    seg->component = component;
    seg->hold_count = 0;
    seg->leg_delay_ms = leg_delay_ms;
    seg->arrival_ms = arrival_ms;
    seg->parent = parent;
    seg->depth = parent == nullptr ? 1 : parent->depth + 1;
    seg->refs = 1;
    retain(parent);
    return seg;
  }

  std::deque<PathSegment> slabs_;
  PathSegment* free_ = nullptr;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t peak_live_ = 0;

  friend class PathRef;
};

/// RAII reference to the leaf of a prefix chain. Copying is O(1) — one
/// refcount increment — which is exactly what makes probe spawn O(1).
class PathRef {
 public:
  PathRef() = default;
  PathRef(const PathRef& o) : arena_(o.arena_), seg_(o.seg_) {
    if (arena_ != nullptr) arena_->retain(seg_);
  }
  PathRef(PathRef&& o) noexcept : arena_(o.arena_), seg_(o.seg_) {
    o.seg_ = nullptr;
  }
  PathRef& operator=(const PathRef& o) {
    if (this != &o) {
      reset();
      arena_ = o.arena_;
      seg_ = o.seg_;
      if (arena_ != nullptr) arena_->retain(seg_);
    }
    return *this;
  }
  PathRef& operator=(PathRef&& o) noexcept {
    if (this != &o) {
      reset();
      arena_ = o.arena_;
      seg_ = o.seg_;
      o.seg_ = nullptr;
    }
    return *this;
  }
  ~PathRef() { reset(); }

  void reset() {
    if (seg_ != nullptr) {
      arena_->release(seg_);
      seg_ = nullptr;
    }
  }

  const PathSegment* get() const { return seg_; }
  PathSegment* leaf() { return seg_; }
  std::uint32_t depth() const { return seg_ == nullptr ? 0 : seg_->depth; }
  explicit operator bool() const { return seg_ != nullptr; }

 private:
  PathRef(PathArena* arena, PathSegment* seg) : arena_(arena), seg_(seg) {}

  PathArena* arena_ = nullptr;
  PathSegment* seg_ = nullptr;

  friend class PathArena;
};

inline PathRef PathArena::append(const PathSegment* parent,
                                 const service::ComponentMetadata& component,
                                 double leg_delay_ms, double arrival_ms) {
  return PathRef(this, fill(const_cast<PathSegment*>(parent), component,
                            leg_delay_ms, arrival_ms));
}

inline PathRef PathArena::clone_append(
    const PathSegment* leaf, const service::ComponentMetadata& component,
    double leg_delay_ms, double arrival_ms) {
  // Rebuild root-first so parent links point at the fresh copies.
  std::vector<const PathSegment*> chain(leaf == nullptr ? 0 : leaf->depth);
  for (const PathSegment* s = leaf; s != nullptr; s = s->parent) {
    chain[s->depth - 1] = s;
  }
  PathSegment* parent = nullptr;
  for (const PathSegment* src : chain) {
    PathSegment* copy =
        fill(parent, src->component, src->leg_delay_ms, src->arrival_ms);
    copy->hold_count = src->hold_count;
    for (std::uint8_t h = 0; h < src->hold_count; ++h) {
      copy->holds[h] = src->holds[h];
    }
    if (parent != nullptr) release(parent);  // child's link now owns it
    parent = copy;
  }
  PathSegment* fresh = fill(parent, component, leg_delay_ms, arrival_ms);
  if (parent != nullptr) release(parent);
  return PathRef(this, fresh);
}

/// Root-first positional view of one probe's prefix chain — the flat-view
/// helper `finalize()` reads prefixes through, so the destination-side
/// merge observes exactly the per-hop vectors the seed engine carried.
class FlatPrefix {
 public:
  FlatPrefix() = default;
  explicit FlatPrefix(const PathSegment* leaf) {
    hops_.resize(leaf == nullptr ? 0 : leaf->depth);
    for (const PathSegment* s = leaf; s != nullptr; s = s->parent) {
      hops_[s->depth - 1] = s;
    }
  }

  std::size_t size() const { return hops_.size(); }
  const PathSegment& segment(std::size_t k) const { return *hops_[k]; }
  const service::ComponentMetadata& component(std::size_t k) const {
    return hops_[k]->component;
  }

 private:
  std::vector<const PathSegment*> hops_;
};

}  // namespace spider::core
