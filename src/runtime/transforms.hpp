// The six multimedia service functions of the paper's prototype (§6.2):
//   (1) embedding a weather forecast ticker,  (2) embedding a stock ticker,
//   (3) up-scaling video frames,              (4) down-scaling video frames,
//   (5) extracting a sub-image,               (6) re-quantifying frames.
//
// Each transform is a pure Frame -> Frame function over real pixel
// buffers; TransformRegistry binds them to catalog function names so a
// composed service graph can be executed by the streaming pipeline.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/adu.hpp"

namespace spider::runtime {

using Transform = std::function<Frame(Frame)>;

/// (1) Overlays a weather forecast ticker: annotation + darkened band at
/// the bottom of the frame.
Frame weather_ticker(Frame frame);

/// (2) Overlays a stock ticker: annotation + darkened band at the top.
Frame stock_ticker(Frame frame);

/// (3) Doubles both dimensions (nearest-neighbor).
Frame up_scale(Frame frame);

/// (4) Halves both dimensions (2x2 box filter average).
Frame down_scale(Frame frame);

/// (5) Extracts the centered sub-image of half the width/height.
Frame sub_image(Frame frame);

/// (6) Re-quantifies pixels to a coarser step (doubles `quant`).
Frame re_quantify(Frame frame);

/// Maps the canonical function names (workload::kMultimediaFunctions) to
/// their transforms.
class TransformRegistry {
 public:
  /// Registry pre-populated with the six prototype functions.
  static TransformRegistry standard();

  void add(const std::string& function_name, Transform transform);
  bool contains(const std::string& function_name) const;
  const Transform& get(const std::string& function_name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, Transform>> entries_;
};

}  // namespace spider::runtime
