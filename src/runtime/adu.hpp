// Application data units (ADUs) and the synthetic video frame model.
//
// The paper's prototype (§6.2) streams video through composed multimedia
// components (tickers, scalers, sub-image extraction, re-quantification).
// We model an ADU as a synthetic frame carrying dimensions, quantization
// level and annotation tags; transforms operate on real pixel buffers so
// the runtime exercises genuine per-frame work, not just metadata edits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spider::runtime {

/// One application data unit: a video frame with a grayscale pixel buffer.
struct Frame {
  std::uint64_t sequence = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  /// Quantization step (1 = full fidelity; larger = coarser).
  std::uint32_t quant = 1;
  /// Text overlays applied by ticker components, in application order.
  std::vector<std::string> annotations;
  /// Row-major grayscale pixels (width * height bytes).
  std::vector<std::uint8_t> pixels;
  /// Wall-clock capture timestamp (ns) for end-to-end latency measurement.
  std::uint64_t capture_ns = 0;
  /// Earliest wall-clock instant (ns) the next consumer may process this
  /// frame — how the pipeline emulates network transit latency on a
  /// service link without throttling throughput (latency, not occupancy).
  std::uint64_t not_before_ns = 0;

  std::size_t byte_size() const { return pixels.size(); }
  std::uint8_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[std::size_t(y) * width + x];
  }
  std::uint8_t& at(std::uint32_t x, std::uint32_t y) {
    return pixels[std::size_t(y) * width + x];
  }
};

/// Deterministic synthetic frame (gradient + sequence-salted pattern).
Frame make_test_frame(std::uint64_t sequence, std::uint32_t width,
                      std::uint32_t height);

/// Simple checksum for end-to-end integrity assertions.
std::uint64_t frame_checksum(const Frame& frame);

}  // namespace spider::runtime
