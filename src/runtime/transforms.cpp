#include "runtime/transforms.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace spider::runtime {

Frame make_test_frame(std::uint64_t sequence, std::uint32_t width,
                      std::uint32_t height) {
  SPIDER_REQUIRE(width > 0 && height > 0);
  Frame f;
  f.sequence = sequence;
  f.width = width;
  f.height = height;
  f.pixels.resize(std::size_t(width) * height);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      // Diagonal gradient salted by the sequence number so consecutive
      // frames differ.
      f.at(x, y) = std::uint8_t((x + 2 * y + 17 * sequence) & 0xff);
    }
  }
  return f;
}

std::uint64_t frame_checksum(const Frame& frame) {
  // FNV-1a over dimensions, quant and pixels.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(frame.width);
  mix(frame.height);
  mix(frame.quant);
  for (std::uint8_t p : frame.pixels) mix(p);
  for (const std::string& a : frame.annotations) {
    for (char c : a) mix(std::uint64_t(std::uint8_t(c)));
  }
  return h;
}

namespace {

/// Darkens a horizontal band — the visual footprint of a ticker overlay.
void darken_band(Frame& frame, std::uint32_t y0, std::uint32_t y1) {
  y1 = std::min(y1, frame.height);
  for (std::uint32_t y = y0; y < y1; ++y) {
    for (std::uint32_t x = 0; x < frame.width; ++x) {
      frame.at(x, y) = std::uint8_t(frame.at(x, y) / 2);
    }
  }
}

}  // namespace

Frame weather_ticker(Frame frame) {
  const std::uint32_t band = std::max<std::uint32_t>(frame.height / 8, 1);
  darken_band(frame, frame.height - band, frame.height);
  frame.annotations.push_back("weather:sunny-21C");
  return frame;
}

Frame stock_ticker(Frame frame) {
  const std::uint32_t band = std::max<std::uint32_t>(frame.height / 8, 1);
  darken_band(frame, 0, band);
  frame.annotations.push_back("stock:SPDR+1.2%");
  return frame;
}

Frame up_scale(Frame frame) {
  Frame out;
  out.sequence = frame.sequence;
  out.quant = frame.quant;
  out.annotations = std::move(frame.annotations);
  out.capture_ns = frame.capture_ns;
  out.width = frame.width * 2;
  out.height = frame.height * 2;
  out.pixels.resize(std::size_t(out.width) * out.height);
  for (std::uint32_t y = 0; y < out.height; ++y) {
    for (std::uint32_t x = 0; x < out.width; ++x) {
      out.at(x, y) = frame.at(x / 2, y / 2);
    }
  }
  return out;
}

Frame down_scale(Frame frame) {
  Frame out;
  out.sequence = frame.sequence;
  out.quant = frame.quant;
  out.annotations = std::move(frame.annotations);
  out.capture_ns = frame.capture_ns;
  out.width = std::max<std::uint32_t>(frame.width / 2, 1);
  out.height = std::max<std::uint32_t>(frame.height / 2, 1);
  out.pixels.resize(std::size_t(out.width) * out.height);
  for (std::uint32_t y = 0; y < out.height; ++y) {
    for (std::uint32_t x = 0; x < out.width; ++x) {
      // 2x2 box filter (clamped at the source edges).
      const std::uint32_t sx = std::min(2 * x, frame.width - 1);
      const std::uint32_t sy = std::min(2 * y, frame.height - 1);
      const std::uint32_t sx1 = std::min(sx + 1, frame.width - 1);
      const std::uint32_t sy1 = std::min(sy + 1, frame.height - 1);
      const std::uint32_t sum = frame.at(sx, sy) + frame.at(sx1, sy) +
                                frame.at(sx, sy1) + frame.at(sx1, sy1);
      out.at(x, y) = std::uint8_t(sum / 4);
    }
  }
  return out;
}

Frame sub_image(Frame frame) {
  Frame out;
  out.sequence = frame.sequence;
  out.quant = frame.quant;
  out.annotations = std::move(frame.annotations);
  out.capture_ns = frame.capture_ns;
  out.width = std::max<std::uint32_t>(frame.width / 2, 1);
  out.height = std::max<std::uint32_t>(frame.height / 2, 1);
  out.pixels.resize(std::size_t(out.width) * out.height);
  const std::uint32_t x0 = (frame.width - out.width) / 2;
  const std::uint32_t y0 = (frame.height - out.height) / 2;
  for (std::uint32_t y = 0; y < out.height; ++y) {
    for (std::uint32_t x = 0; x < out.width; ++x) {
      out.at(x, y) = frame.at(x0 + x, y0 + y);
    }
  }
  return out;
}

Frame re_quantify(Frame frame) {
  frame.quant *= 2;
  const std::uint32_t step = std::min<std::uint32_t>(frame.quant, 128);
  for (std::uint8_t& p : frame.pixels) {
    p = std::uint8_t((p / step) * step);
  }
  return frame;
}

TransformRegistry TransformRegistry::standard() {
  TransformRegistry r;
  r.add("media/weather-ticker", weather_ticker);
  r.add("media/stock-ticker", stock_ticker);
  r.add("media/up-scale", up_scale);
  r.add("media/down-scale", down_scale);
  r.add("media/sub-image", sub_image);
  r.add("media/re-quantify", re_quantify);
  return r;
}

void TransformRegistry::add(const std::string& name, Transform transform) {
  SPIDER_REQUIRE(transform != nullptr);
  entries_.emplace_back(name, std::move(transform));
}

bool TransformRegistry::contains(const std::string& name) const {
  for (const auto& [n, t] : entries_) {
    if (n == name) return true;
  }
  return false;
}

const Transform& TransformRegistry::get(const std::string& name) const {
  for (const auto& [n, t] : entries_) {
    if (n == name) return t;
  }
  SPIDER_REQUIRE_MSG(false, "unknown transform");
  __builtin_unreachable();
}

std::vector<std::string> TransformRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [n, t] : entries_) out.push_back(n);
  return out;
}

}  // namespace spider::runtime
