// Bounded MPMC queue — the "input queue" of the service component model
// (§2.2, Figure 3): components buffer incoming ADUs and process them as
// they drain. Blocking push gives natural backpressure along a pipeline;
// close() lets a finished upstream wake all consumers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/require.hpp"

namespace spider::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    SPIDER_REQUIRE(capacity > 0);
  }

  /// Blocks until space is available or the queue is closed.
  /// Returns false (dropping the item) if closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// True when closed and fully drained (no item will ever arrive).
  bool finished() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_ && items_.empty();
  }

  /// Blocks until an item arrives; nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then end.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spider::runtime
