#include "runtime/pipeline.hpp"

#include <chrono>
#include <set>
#include <memory>
#include <thread>

#include "runtime/bounded_queue.hpp"
#include "util/require.hpp"

namespace spider::runtime {

namespace {

std::uint64_t now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

}  // namespace

StreamingPipeline::StreamingPipeline(service::FunctionGraph pattern,
                                     std::vector<std::string> node_functions,
                                     TransformRegistry registry,
                                     PipelineConfig config)
    : pattern_(std::move(pattern)),
      node_functions_(std::move(node_functions)),
      registry_(std::move(registry)),
      config_(config) {
  SPIDER_REQUIRE(pattern_.is_dag());
  SPIDER_REQUIRE(pattern_.node_count() == node_functions_.size());
  for (const std::string& name : node_functions_) {
    SPIDER_REQUIRE_MSG(registry_.contains(name), "unknown transform name");
  }
  SPIDER_REQUIRE(config_.edge_delay_ms.empty() ||
                 config_.edge_delay_ms.size() ==
                     pattern_.dependencies().size());
  classify_joins();
}

void StreamingPipeline::classify_joins() {
  const std::size_t n = pattern_.node_count();
  any_join_.assign(n, false);

  // Reachability sets (inclusive) per node; n is small.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  const auto order = pattern_.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const service::FnNode u = *it;
    reach[u][u] = true;
    for (service::FnNode v : pattern_.successors(u)) {
      for (std::size_t w = 0; w < n; ++w) {
        if (reach[v][w]) reach[u][w] = true;
      }
    }
  }

  for (service::FnNode join = 0; join < n; ++join) {
    const auto preds = pattern_.predecessors(join);
    if (preds.size() < 2) continue;
    for (service::FnNode split : pattern_.conditionals()) {
      const auto branches = pattern_.successors(split);
      if (branches.size() < 2) continue;
      // Classify each pred: which branch heads reach it?
      std::size_t full = 0, on_single_branch = 0;
      std::set<service::FnNode> distinct_branches;
      for (service::FnNode pred : preds) {
        std::vector<service::FnNode> heads;
        for (service::FnNode head : branches) {
          if (reach[head][pred]) heads.push_back(head);
        }
        if (heads.empty() || heads.size() == branches.size()) {
          ++full;  // sees the whole flow w.r.t. this split
        } else if (heads.size() == 1) {
          ++on_single_branch;
          distinct_branches.insert(heads[0]);
        } else {
          SPIDER_REQUIRE_MSG(false,
                             "partial branch reconvergence is unsupported");
        }
      }
      if (on_single_branch > 0) {
        // A join mixing branch-restricted inputs with full-flow inputs
        // would starve its all-join; reject the topology.
        SPIDER_REQUIRE_MSG(full == 0,
                           "mixed conditional-branch and full-flow inputs "
                           "at a join");
        if (distinct_branches.size() >= 2) any_join_[join] = true;
      }
    }
  }
}

PipelineReport StreamingPipeline::run() {
  using Queue = BoundedQueue<Frame>;
  const std::size_t n = pattern_.node_count();

  // One queue per dependency edge, plus one per entry node (fed by the
  // source) and one shared sink queue.
  struct Edge {
    service::FnNode from, to;
    double delay_ms;
    std::unique_ptr<Queue> queue;
  };
  std::vector<Edge> edges;
  for (std::size_t ei = 0; ei < pattern_.dependencies().size(); ++ei) {
    const auto& [u, v] = pattern_.dependencies()[ei];
    const double delay =
        config_.edge_delay_ms.empty() ? 0.0 : config_.edge_delay_ms[ei];
    edges.push_back(
        Edge{u, v, delay, std::make_unique<Queue>(config_.queue_capacity)});
  }
  std::vector<std::unique_ptr<Queue>> entry_queues;
  const auto sources = pattern_.sources();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    entry_queues.push_back(std::make_unique<Queue>(config_.queue_capacity));
  }
  Queue sink_queue(config_.queue_capacity * 2);

  PipelineReport report;
  report.processed.assign(n, 0);

  // Worker per node.
  std::vector<std::thread> workers;
  const auto sinks = pattern_.sinks();
  for (service::FnNode node = 0; node < n; ++node) {
    // Gather this node's input queues (entry queue if it is a source).
    std::vector<Queue*> inputs;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i] == node) inputs.push_back(entry_queues[i].get());
    }
    for (Edge& e : edges) {
      if (e.to == node) inputs.push_back(e.queue.get());
    }
    // Output descriptors carry the simulated transit latency of the
    // service link they stand for.
    struct Out {
      Queue* queue;
      double delay_ms;
    };
    std::vector<Out> outputs;
    for (Edge& e : edges) {
      if (e.from == node) outputs.push_back(Out{e.queue.get(), e.delay_ms});
    }
    const bool is_sink =
        std::find(sinks.begin(), sinks.end(), node) != sinks.end();
    // Edge queues each have exactly one producer, so their worker owns
    // (and closes) them; the shared sink queue is closed by the main
    // thread once every worker has joined.
    std::vector<Out> owned_outputs = outputs;
    if (is_sink) outputs.push_back(Out{&sink_queue, 0.0});

    // Conditional split (§8 semantics): each output ADU takes exactly one
    // outgoing edge instead of being replicated to all successors.
    const bool conditional =
        pattern_.is_conditional(node) && !owned_outputs.empty();
    // Join mode computed at construction (classify_joins).
    const bool any_join = any_join_[node];

    const Transform& transform = registry_.get(node_functions_[node]);
    workers.emplace_back([node, inputs, outputs, owned_outputs, conditional,
                          any_join, is_sink, &sink_queue, &transform,
                          &report] {
      auto stamp_and_push = [](const Out& out_desc, Frame frame) {
        if (out_desc.delay_ms > 0.0) {
          frame.not_before_ns =
              now_ns() + std::uint64_t(out_desc.delay_ms * 1e6);
        } else {
          frame.not_before_ns = 0;
        }
        out_desc.queue->push(std::move(frame));
      };
      auto emit = [&](Frame out) {
        ++report.processed[node];  // only this worker writes this slot
        if (conditional) {
          // Dispatch to exactly one successor edge (content-based; we
          // hash the sequence number as the dispatch predicate).
          const Out& chosen =
              owned_outputs[std::size_t(out.sequence) % owned_outputs.size()];
          stamp_and_push(chosen, std::move(out));
          // A conditional node cannot also be a sink (sinks have no
          // outgoing edges), so nothing else to feed.
          (void)is_sink;
          (void)sink_queue;
          return;
        }
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          if (i + 1 == outputs.size()) {
            stamp_and_push(outputs[i], std::move(out));
            break;
          }
          stamp_and_push(outputs[i], out);  // copy for fanout
        }
      };
      // Simulated transit: a popped frame may not be processed before its
      // link latency has elapsed (keeps frames pipelined — latency, not
      // occupancy).
      auto wait_transit = [](const Frame& frame) {
        const std::uint64_t now = now_ns();
        if (frame.not_before_ns > now) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(frame.not_before_ns - now));
        }
      };

      if (any_join) {
        // One ADU from any input per iteration.
        for (;;) {
          bool got = false, all_finished = true;
          for (Queue* q : inputs) {
            if (auto frame = q->try_pop(); frame.has_value()) {
              got = true;
              all_finished = false;
              wait_transit(*frame);
              emit(transform(std::move(*frame)));
            } else if (!q->finished()) {
              all_finished = false;
            }
          }
          if (!got) {
            if (all_finished) break;
            std::this_thread::yield();
          }
        }
      } else {
        // All-join: one ADU from each input per iteration.
        for (;;) {
          std::vector<Frame> ins;
          ins.reserve(inputs.size());
          bool ended = false;
          for (Queue* q : inputs) {
            auto frame = q->pop();
            if (!frame.has_value()) {
              ended = true;
              break;
            }
            ins.push_back(std::move(*frame));
          }
          if (ended || ins.empty()) break;
          for (const Frame& in : ins) wait_transit(in);
          // Merge: primary input transformed; sibling inputs contribute
          // their annotations (mixing semantics for multi-input nodes).
          Frame merged = std::move(ins.front());
          for (std::size_t i = 1; i < ins.size(); ++i) {
            for (auto& a : ins[i].annotations) {
              merged.annotations.push_back(std::move(a));
            }
          }
          emit(transform(std::move(merged)));
        }
      }
      for (const Out& out_desc : owned_outputs) out_desc.queue->close();
    });
  }

  // Sink collector.
  double latency_sum_us = 0.0;
  std::thread collector([&] {
    std::size_t expected_closes = 0;
    (void)expected_closes;
    while (auto frame = sink_queue.pop()) {
      ++report.frames_out;
      const double lat_us = double(now_ns() - frame->capture_ns) / 1000.0;
      latency_sum_us += lat_us;
      report.max_latency_us = std::max(report.max_latency_us, lat_us);
      report.out_width = frame->width;
      report.out_height = frame->height;
      report.out_quant = frame->quant;
      report.annotations = frame->annotations;
    }
  });

  // Source: paced synthetic frames into every entry queue.
  const auto start = std::chrono::steady_clock::now();
  const auto frame_interval =
      config_.fps > 0.0
          ? std::chrono::duration<double>(1.0 / config_.fps)
          : std::chrono::duration<double>(0.0);
  for (std::size_t i = 0; i < config_.frame_count; ++i) {
    Frame frame = make_test_frame(i, config_.width, config_.height);
    frame.capture_ns = now_ns();
    if (config_.ingress_delay_ms > 0.0) {
      frame.not_before_ns =
          frame.capture_ns + std::uint64_t(config_.ingress_delay_ms * 1e6);
    }
    ++report.frames_in;
    for (std::size_t q = 0; q < entry_queues.size(); ++q) {
      if (q + 1 == entry_queues.size()) {
        entry_queues[q]->push(std::move(frame));
        break;
      }
      entry_queues[q]->push(frame);
    }
    if (config_.fps > 0.0) std::this_thread::sleep_for(frame_interval);
  }
  for (auto& q : entry_queues) q->close();

  for (std::thread& w : workers) w.join();
  sink_queue.close();
  collector.join();

  const auto end = std::chrono::steady_clock::now();
  report.wall_time_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  if (report.frames_out > 0) {
    report.mean_latency_us = latency_sum_us / double(report.frames_out);
    report.throughput_fps =
        double(report.frames_out) / (report.wall_time_ms / 1000.0);
  }
  return report;
}

}  // namespace spider::runtime
