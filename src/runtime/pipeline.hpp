// Multithreaded streaming pipeline — the in-process equivalent of the
// paper's prototype node runtime (§6.2).
//
// A composed service graph is executed by one worker thread per function
// node, connected by bounded ADU queues along the dependency edges
// (Figure 3's input-queue model):
//
//   * a source thread generates synthetic frames at a configurable rate,
//   * each worker pops one ADU from EACH input queue (join semantics for
//     DAG merge nodes), applies its transform, and pushes the result to
//     every successor queue,
//   * the sink thread collects delivered frames and measures end-to-end
//     latency and throughput.
//
// Backpressure is inherent: bounded queues block fast producers. Closing
// cascades: when the source finishes, close() ripples downstream and all
// threads join. This mirrors the real deployment's code path (queue →
// process → forward) with threads standing in for peers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/adu.hpp"
#include "runtime/transforms.hpp"
#include "service/function_graph.hpp"

namespace spider::runtime {

struct PipelineConfig {
  std::size_t frame_count = 100;
  std::uint32_t width = 64;
  std::uint32_t height = 48;
  std::size_t queue_capacity = 8;
  /// Source pacing in frames/second; 0 = unpaced (as fast as possible).
  double fps = 0.0;
  /// Per-dependency-edge network transit latency in milliseconds, aligned
  /// with pattern.dependencies() order (empty = no simulated transit).
  /// Models the overlay path delay of a composed service graph: frames
  /// remain pipelined (latency, not occupancy), so throughput is
  /// unaffected while end-to-end latency reflects the WAN path.
  std::vector<double> edge_delay_ms;
  /// Transit latency from the stream source into the entry component(s).
  double ingress_delay_ms = 0.0;
};

struct PipelineReport {
  std::size_t frames_in = 0;
  std::size_t frames_out = 0;
  double mean_latency_us = 0.0;
  double max_latency_us = 0.0;
  double wall_time_ms = 0.0;
  double throughput_fps = 0.0;
  /// Final frame geometry (after scaling/cropping transforms).
  std::uint32_t out_width = 0;
  std::uint32_t out_height = 0;
  std::uint32_t out_quant = 0;
  /// Annotations observed on the last delivered frame.
  std::vector<std::string> annotations;
  /// Per-node processed counts, indexed by function-graph node.
  std::vector<std::size_t> processed;
};

/// Executes a function-graph pattern whose nodes are bound to transform
/// names (typically the catalog names of a composed ServiceGraph mapping).
class StreamingPipeline {
 public:
  /// `node_functions[n]` is the transform name for pattern node n; every
  /// name must exist in `registry`. The pattern must be a DAG. The
  /// registry is copied, so passing a temporary is safe.
  StreamingPipeline(service::FunctionGraph pattern,
                    std::vector<std::string> node_functions,
                    TransformRegistry registry, PipelineConfig config = {});

  /// Runs the pipeline to completion (blocking) and reports.
  PipelineReport run();

 private:
  /// Determines, per node, whether its multi-input join consumes one ADU
  /// from ANY input (branches diverged at a conditional split upstream)
  /// or one from EACH input. Rejects topologies mixing branch-restricted
  /// and full-flow inputs at one join.
  void classify_joins();

  service::FunctionGraph pattern_;
  std::vector<std::string> node_functions_;
  TransformRegistry registry_;
  PipelineConfig config_;
  std::vector<bool> any_join_;
};

}  // namespace spider::runtime
