#include "util/parallel.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace spider::util {

WorkerPool::WorkerPool(std::size_t threads) {
  SPIDER_REQUIRE(threads >= 1);
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || next_ < batch_n_; });
    if (stop_) return;
    while (next_ < batch_n_) {
      const std::size_t index = next_++;
      const std::function<void(std::size_t)>* fn = batch_fn_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn)(index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err != nullptr && error_ == nullptr) error_ = err;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  SPIDER_REQUIRE_MSG(batch_fn_ == nullptr,
                     "WorkerPool::for_each_index is not reentrant");
  batch_fn_ = &fn;
  batch_n_ = n;
  next_ = 0;
  remaining_ = n;
  error_ = nullptr;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  batch_fn_ = nullptr;
  batch_n_ = 0;
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void parallel_for_each(std::size_t jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool pool(std::min(jobs, n));
  pool.for_each_index(n, fn);
}

}  // namespace spider::util
