// Deterministic pseudo-random number generation for SpiderNet.
//
// Every stochastic decision in the simulator (topology wiring, component
// placement, request arrivals, peer churn, probe tie-breaking) flows from a
// seeded Rng so that simulation runs are exactly reproducible.  The engine
// is xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period
// and passes BigCrush; seeding goes through splitmix64 so that small seeds
// (0, 1, 2, ...) still yield well-mixed state.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/require.hpp"

namespace spider {

/// xoshiro256** engine with convenience sampling helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// be plugged into <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Normally distributed value (Box–Muller; one value per call).
  double next_normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double next_lognormal(double mu, double sigma);

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0.
  /// Used for power-law degree sequences.
  double next_pareto(double xm, double alpha);

  /// Zipf-like rank in [0, n): probability of rank r proportional to
  /// 1/(r+1)^s. O(1) amortized via rejection-inversion (Hörmann).
  std::uint64_t next_zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element (by reference). Requires !v.empty().
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    SPIDER_REQUIRE(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Samples k distinct indices from [0, n) uniformly (reservoir-free,
  /// Floyd's algorithm). Returned order is unspecified. Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator (e.g. one per peer) whose
  /// stream does not overlap with the parent for any practical run length.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace spider
