// Hash combining for composite keys.
//
// The soft-hold dedup maps in core key on multi-field tuples (function
// nodes, peers, component ids). Bit-packing those fields into one word is
// collision-prone (overlapping shifts silently alias distinct tuples —
// the bug family fixed in PR 1); instead, composite keys are structs with
// field-wise equality and a mixed hash built from these helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace spider::util {

/// splitmix64 finalizer — a strong 64-bit mixer.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds `value` into `seed` (boost-style, with the stronger mixer).
inline std::size_t hash_combine(std::size_t seed, std::uint64_t value) {
  return std::size_t(mix64(std::uint64_t(seed) ^ mix64(value)));
}

/// Hash of an arbitrary-arity tuple of integer-convertible fields. Every
/// field contributes its full width — distinct tuples cannot cancel each
/// other the way XOR-packed fields can.
template <typename... Ts>
std::size_t hash_values(const Ts&... fields) {
  std::size_t seed = 0x51de7a11u;
  ((seed = hash_combine(seed, std::uint64_t(fields))), ...);
  return seed;
}

}  // namespace spider::util
