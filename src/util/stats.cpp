#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/require.hpp"

namespace spider {

void SampleStats::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_.clear();  // invalidate the percentile cache
}

double SampleStats::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  SPIDER_REQUIRE(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  SPIDER_REQUIRE(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::percentile(double p) const {
  SPIDER_REQUIRE(!samples_.empty());
  SPIDER_REQUIRE(p >= 0.0 && p <= 100.0);
  // Sort a private copy: samples() keeps exposing insertion order even
  // after summary()/percentile() calls.
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string SampleStats::summary() const {
  if (empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f n=%zu", mean(),
                percentile(50), percentile(99), min(), max(), count());
  return buf;
}

void TimeSeriesCounter::add(std::size_t bucket, std::uint64_t delta) {
  SPIDER_REQUIRE(bucket < counts_.size());
  counts_[bucket] += delta;
}

std::uint64_t TimeSeriesCounter::total() const {
  std::uint64_t acc = 0;
  for (auto c : counts_) acc += c;
  return acc;
}

}  // namespace spider
