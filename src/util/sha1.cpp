#include "util/sha1.hpp"

#include <cstring>

namespace spider {
namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

struct Sha1State {
  std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                        0xC3D2E1F0u};

  void process_block(const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(block[i * 4]) << 24) |
             (std::uint32_t(block[i * 4 + 1]) << 16) |
             (std::uint32_t(block[i * 4 + 2]) << 8) |
             std::uint32_t(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl32(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

Sha1Digest sha1(std::string_view data) {
  Sha1State state;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();
  while (remaining >= 64) {
    state.process_block(bytes);
    bytes += 64;
    remaining -= 64;
  }
  // Final block(s): message || 0x80 || zero pad || 64-bit bit length.
  std::uint8_t tail[128] = {};
  std::memcpy(tail, bytes, remaining);
  tail[remaining] = 0x80;
  const std::size_t tail_len = (remaining + 1 + 8 <= 64) ? 64 : 128;
  const std::uint64_t bit_len = std::uint64_t(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = std::uint8_t(bit_len >> (8 * i));
  }
  state.process_block(tail);
  if (tail_len == 128) state.process_block(tail + 64);

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = std::uint8_t(state.h[i] >> 24);
    digest[i * 4 + 1] = std::uint8_t(state.h[i] >> 16);
    digest[i * 4 + 2] = std::uint8_t(state.h[i] >> 8);
    digest[i * 4 + 3] = std::uint8_t(state.h[i]);
  }
  return digest;
}

std::uint64_t sha1_prefix64(std::string_view data) {
  const Sha1Digest d = sha1(data);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | d[static_cast<size_t>(i)];
  return out;
}

}  // namespace spider
