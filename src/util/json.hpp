// Minimal JSON support for the observability layer: a streaming writer
// (used to export metrics snapshots and probe traces) and a small
// recursive-descent parser (used to round-trip traces back in, e.g. for
// offline analysis tools and the obs tests).
//
// Deliberately tiny: UTF-8 pass-through, no comments, doubles only for
// numbers (exact for the integer ranges the metrics layer emits, which
// stay below 2^53).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spider::util {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Streaming JSON writer producing compact output. The caller is
/// responsible for well-formedness (begin/end pairing); commas and key
/// quoting are handled here.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Starts a key inside an object; follow with a value or begin_*.
  void key(const std::string& name);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void null();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parsed JSON value (null / bool / number / string / array / object).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& name) const;
  /// Convenience getters with defaults (no throw).
  double number_or(const std::string& name, double fallback) const;
  std::string string_or(const std::string& name,
                        const std::string& fallback) const;
};

/// Parses a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(const std::string& text);

}  // namespace spider::util
