#include "util/procstat.hpp"

#include <cstdio>

namespace spider::util {

std::uint64_t vm_hwm_bytes() {
#ifdef __linux__
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", (unsigned long long*)&kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

std::uint64_t attributed_hwm_delta(std::uint64_t before, std::uint64_t after) {
  return after > before ? after - before : 0;
}

}  // namespace spider::util
