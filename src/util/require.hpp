// Lightweight contract-checking macros used across SpiderNet.
//
// SPIDER_REQUIRE is always on (it guards protocol invariants whose violation
// would silently corrupt a simulation run); SPIDER_DCHECK compiles out in
// release builds and is meant for hot-path sanity checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace spider::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "SPIDER_REQUIRE failed: (%s) at %s:%d%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace spider::detail

#define SPIDER_REQUIRE(expr)                                               \
  do {                                                                     \
    if (!(expr))                                                           \
      ::spider::detail::require_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SPIDER_REQUIRE_MSG(expr, msg)                                   \
  do {                                                                  \
    if (!(expr))                                                        \
      ::spider::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SPIDER_DCHECK(expr) ((void)0)
#else
#define SPIDER_DCHECK(expr) SPIDER_REQUIRE(expr)
#endif
