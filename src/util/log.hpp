// Minimal leveled logger.
//
// The simulator is silent by default (benches print their own tables);
// raise the level to kDebug to trace protocol decisions.  Thread-safe at
// line granularity so the multithreaded runtime can share it.
#pragma once

#include <cstdarg>
#include <string>

namespace spider {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log {

/// Global threshold; messages below it are dropped.
void set_level(LogLevel level);
LogLevel level();

void write(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace log

#define SPIDER_LOG_DEBUG(...) \
  ::spider::log::write(::spider::LogLevel::kDebug, __VA_ARGS__)
#define SPIDER_LOG_INFO(...) \
  ::spider::log::write(::spider::LogLevel::kInfo, __VA_ARGS__)
#define SPIDER_LOG_WARN(...) \
  ::spider::log::write(::spider::LogLevel::kWarn, __VA_ARGS__)
#define SPIDER_LOG_ERROR(...) \
  ::spider::log::write(::spider::LogLevel::kError, __VA_ARGS__)

}  // namespace spider
