// Deterministic fan-out of independent tasks over a fixed-size worker
// pool — the parallel campaign runner's execution backbone.
//
// The pool follows the same mutex + condition-variable discipline as
// runtime::BoundedQueue: a guarded batch descriptor plus two wait
// conditions (work available / batch drained). It is intentionally *not*
// a general task scheduler: one batch of n index-addressed tasks runs at
// a time, workers claim indices dynamically, and the caller blocks until
// the batch drains. Determinism is the caller's contract — each task must
// touch only its own isolated state (its own simulator, RNG stream,
// metrics registry) and write results into its own pre-allocated slot, so
// the merged output is byte-identical regardless of thread count or
// scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spider::util {

class WorkerPool {
 public:
  /// Spawns `threads` (>= 1) workers. The pool is fixed-size for its
  /// whole lifetime; the destructor joins them.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t thread_count() const { return threads_.size(); }

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until every
  /// index has completed. Indices are claimed dynamically (work-stealing
  /// by index), so long cells do not serialize behind short ones. The
  /// first exception thrown by any task is rethrown here after the batch
  /// drains. Not reentrant: one batch at a time per pool.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait: batch or stop
  std::condition_variable done_cv_;  ///< caller waits: batch drained
  std::vector<std::thread> threads_;
  // Current batch (guarded by mutex_).
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;     ///< batch size
  std::size_t next_ = 0;        ///< next unclaimed index
  std::size_t remaining_ = 0;   ///< claimed-but-unfinished + unclaimed
  std::exception_ptr error_;    ///< first task failure of the batch
  bool stop_ = false;
};

/// Convenience entry point for `--jobs`-style call sites: `jobs <= 1` (or
/// a trivial batch) runs the plain serial loop on the calling thread —
/// bit-for-bit the pre-pool behavior with zero threading machinery —
/// while `jobs > 1` drives a temporary WorkerPool of min(jobs, n)
/// threads.
void parallel_for_each(std::size_t jobs, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace spider::util
