// Summary statistics helpers used by the benchmark harnesses and by the
// simulator's instrumentation (setup time breakdowns, success counters,
// failure frequency series, message-overhead accounting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spider {

/// Accumulates samples and reports mean / min / max / stddev / percentiles.
///
/// Samples are kept (the figure benches report percentiles over a few
/// thousand values at most), so memory is proportional to sample count.
class SampleStats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for < 2 samples.
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires !empty().
  double percentile(double p) const;

  /// "mean=… p50=… p99=… min=… max=… n=…" one-line summary.
  std::string summary() const;

  /// Samples in insertion order — percentile()/summary() never reorder
  /// them (they sort a lazily maintained private copy instead).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;           ///< insertion order, never sorted
  mutable std::vector<double> sorted_;    ///< lazy sorted copy for percentiles
  double sum_ = 0.0;
};

/// Fixed-bin counter keyed by an integer time bucket; used for the
/// failure-frequency-over-time series (Fig 9).
class TimeSeriesCounter {
 public:
  explicit TimeSeriesCounter(std::size_t buckets) : counts_(buckets, 0) {}

  void add(std::size_t bucket, std::uint64_t delta = 1);
  std::uint64_t at(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const;

 private:
  std::vector<std::uint64_t> counts_;
};

/// Ratio counter: successes over attempts.
struct RatioCounter {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;

  void record(bool success) {
    ++total;
    hits += success ? 1 : 0;
  }
  double ratio() const { return total == 0 ? 0.0 : double(hits) / double(total); }
};

}  // namespace spider
