// SHA-1 — the secure hash the paper uses to map service function names to
// DHT keys (§3: "applying a secure hash function on the function name").
//
// SHA-1 is no longer collision-resistant for adversarial inputs, but it is
// exactly what Pastry-era systems used for key derivation and its 160-bit
// output is what our 128-bit NodeId truncates from.  Self-contained
// implementation (FIPS 180-1), no external dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace spider {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// One-shot SHA-1 of a byte string.
Sha1Digest sha1(std::string_view data);

/// First 8 bytes of the digest as a big-endian uint64 (convenience for
/// hash-table style uses).
std::uint64_t sha1_prefix64(std::string_view data);

}  // namespace spider
