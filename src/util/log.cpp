#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spider::log {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void write(LogLevel lvl, const char* fmt, ...) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] ", tag(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace spider::log
