#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace spider {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SPIDER_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  SPIDER_REQUIRE(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  SPIDER_REQUIRE(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  SPIDER_REQUIRE(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  // Box–Muller. We draw a fresh pair each call; the discarded second value
  // keeps the generator state trajectory simple and reproducible.
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(next_normal(mu, sigma));
}

double Rng::next_pareto(double xm, double alpha) {
  SPIDER_REQUIRE(xm > 0.0 && alpha > 0.0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  SPIDER_REQUIRE(n > 0);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) over ranks
  // 1..n, returned 0-based. Valid for s != 1; nudge s away from exactly 1.
  if (std::abs(s - 1.0) < 1e-9) s = 1.0 + 1e-9;
  const double nd = static_cast<double>(n);
  // H(x) = integral of x^-s = (x^(1-s) - 1) / (1 - s).
  auto h_integral = [s](double x) {
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_integral_inv = [s](double x) {
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  auto h = [s](double x) { return std::pow(x, -s); };
  const double h_int_x1 = h_integral(1.5) - 1.0;
  const double h_int_n = h_integral(nd + 0.5);
  const double squeeze = 2.0 - h_integral_inv(h_integral(2.5) - h(2.0));
  for (;;) {
    const double u = h_int_n + next_double() * (h_int_x1 - h_int_n);
    const double x = h_integral_inv(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > nd) kd = nd;
    if (kd - x <= squeeze || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<std::uint64_t>(kd) - 1;
    }
  }
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  SPIDER_REQUIRE(k <= n);
  // Floyd's algorithm: O(k) expected draws, O(k) memory.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::size_t>(next_below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::split() {
  Rng child(0);
  // Child state derived by jumping through splitmix64 seeded from fresh
  // output words; distinct draws guarantee a different stream.
  std::uint64_t sm = (*this)();
  for (auto& word : child.s_) word = splitmix64(sm);
  return child;
}

}  // namespace spider
