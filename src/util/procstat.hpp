// Process self-inspection helpers for benchmarks and budget checks.
#pragma once

#include <cstdint>

namespace spider::util {

/// Peak RSS (Linux VmHWM) of this process in bytes; 0 where unsupported.
std::uint64_t vm_hwm_bytes();

/// Portion of a VmHWM reading attributable to work done between two
/// snapshots. VmHWM is a process-wide monotone high-water mark: it never
/// decreases, and work that stays below an earlier peak moves it not at
/// all — so the delta is a *lower bound* on the work's own peak, valid
/// as attribution only when nothing else ran concurrently. Clamps to 0
/// (never underflows) when `after < before`, which only a misuse or a
/// /proc read failure can produce.
std::uint64_t attributed_hwm_delta(std::uint64_t before, std::uint64_t after);

}  // namespace spider::util
