#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spider::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma, no first-flag touch
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ += ',';
    first_in_scope_.back() = false;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return;
  }
  // Round-trippable and compact: integers print without a fraction.
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

const JsonValue* JsonValue::find(const std::string& name) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(name);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& name, double fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::string_or(const std::string& name,
                                 const std::string& fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* lit) {
    const char* q = p;
    while (*lit != '\0') {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end - p < 5) return false;
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= unsigned(c - '0');
              else if (c >= 'a' && c <= 'f') code |= unsigned(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= unsigned(c - 'A' + 10);
              else return false;
            }
            p += 4;
            // UTF-8 encode (BMP only; surrogate pairs are not produced by
            // our writer and are rejected here).
            if (code >= 0xD800 && code <= 0xDFFF) return false;
            if (code < 0x80) {
              *out += char(code);
            } else if (code < 0x800) {
              *out += char(0xC0 | (code >> 6));
              *out += char(0x80 | (code & 0x3F));
            } else {
              *out += char(0xE0 | (code >> 12));
              *out += char(0x80 | ((code >> 6) & 0x3F));
              *out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        *out += *p;
        ++p;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': {
        ++p;
        out->kind = JsonValue::Kind::kObject;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        while (true) {
          skip_ws();
          std::string name;
          if (!parse_string(&name)) return false;
          skip_ws();
          if (p >= end || *p != ':') return false;
          ++p;
          JsonValue member;
          if (!parse_value(&member)) return false;
          out->object.emplace(std::move(name), std::move(member));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++p;
        out->kind = JsonValue::Kind::kArray;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        while (true) {
          JsonValue item;
          if (!parse_value(&item)) return false;
          out->array.push_back(std::move(item));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return false;
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default: {
        char* num_end = nullptr;
        out->kind = JsonValue::Kind::kNumber;
        out->number = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return false;
        p = num_end;
        return true;
      }
    }
  }
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  JsonValue value;
  if (!parser.parse_value(&value)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace spider::util
