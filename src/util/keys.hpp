// Composite map keys as structs, not packed words.
//
// Shift-packing two fields into one uint64 is the bug family behind the
// PR 1 soft-hold aliasing and the PR 4 discovery-cache collisions: the
// packing is only collision-free while every field fits its slice, and
// nothing enforces that as types grow. These two tiny templates replace
// every remaining `(a << 32) | b` key in the tree with field-wise
// equality plus a `util::hash_values` mix (each field contributes its
// full width — distinct tuples cannot cancel).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/hash.hpp"

namespace spider::util {

/// Ordered (first, second) composite key.
template <typename A, typename B>
struct PairKey {
  A first{};
  B second{};

  friend bool operator==(const PairKey&, const PairKey&) = default;
};

struct PairKeyHash {
  template <typename A, typename B>
  std::size_t operator()(const PairKey<A, B>& k) const {
    return hash_values(std::uint64_t(k.first), std::uint64_t(k.second));
  }
};

/// Unordered {a, b} composite key: construction normalizes so that
/// {a, b} == {b, a} — the undirected-edge dedup key.
template <typename T>
struct UnorderedPairKey {
  T lo{};
  T hi{};

  UnorderedPairKey() = default;
  UnorderedPairKey(T a, T b) : lo(std::min(a, b)), hi(std::max(a, b)) {}

  friend bool operator==(const UnorderedPairKey&,
                         const UnorderedPairKey&) = default;
};

struct UnorderedPairKeyHash {
  template <typename T>
  std::size_t operator()(const UnorderedPairKey<T>& k) const {
    return hash_values(std::uint64_t(k.lo), std::uint64_t(k.hi));
  }
};

}  // namespace spider::util
