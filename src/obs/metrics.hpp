// Lightweight metrics registry: named counters, gauges and fixed-bucket
// histograms, with JSON snapshot export.
//
// Design constraints (ROADMAP observability item):
//  * no dependencies beyond util;
//  * zero cost when disabled — instrumented components hold a nullable
//    `MetricsRegistry*` plus instrument pointers resolved once at wiring
//    time, so a disabled hot path pays exactly one null check;
//  * instrument references are stable for the registry's lifetime
//    (node-based storage), so callers may cache them.
//
// Threading model: a registry (and every instrument in it) belongs to one
// thread at a time. The parallel campaign runner gives each cell its own
// registry on its worker thread and merge()s the cells into an aggregate
// afterwards; nothing here is locked. Debug builds enforce the contract:
// every mutation lazily binds the instrument to the mutating thread and
// aborts if a second thread mutates it later. Const reads (value(),
// to_json(), merge()'s source) are exempt — they are only safe after the
// owning thread is done writing, which the campaign runner guarantees by
// joining workers before merging.
//
// Naming convention: dotted lowercase paths grouped by subsystem, e.g.
// "bcp.probes_spawned", "alloc.holds_outstanding", "discovery.lookup_hops".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#ifndef NDEBUG
#include <thread>

#include "util/require.hpp"
#endif

namespace spider::obs {

namespace detail {

/// Debug-build single-writer check: binds to the first mutating thread
/// and aborts when a different thread mutates the same instrument.
/// Compiles to an empty no-op member in release builds.
class DebugThreadOwner {
 public:
#ifndef NDEBUG
  void check_mutation() {
    const std::thread::id self = std::this_thread::get_id();
    if (owner_ == std::thread::id{}) {
      owner_ = self;
      return;
    }
    SPIDER_REQUIRE_MSG(owner_ == self,
                       "metrics instrument mutated from two threads — give "
                       "each worker its own MetricsRegistry and merge()");
  }

 private:
  std::thread::id owner_{};
#else
  void check_mutation() {}
#endif
};

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    owner_.check_mutation();
    value_ += delta;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
  [[no_unique_address]] detail::DebugThreadOwner owner_;
};

/// Point-in-time level (outstanding holds, active sessions, ...).
class Gauge {
 public:
  void set(double v) {
    owner_.check_mutation();
    value_ = v;
  }
  void add(double delta) {
    owner_.check_mutation();
    value_ += delta;
  }
  void sub(double delta) {
    owner_.check_mutation();
    value_ -= delta;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
  [[no_unique_address]] detail::DebugThreadOwner owner_;
};

/// Histogram over fixed, caller-supplied upper bounds (ascending). A
/// sample lands in the first bucket whose bound is >= the sample; values
/// above the last bound land in the implicit overflow bucket, so
/// `counts()` has `bounds().size() + 1` entries.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  /// Adds `other`'s samples into this histogram. Requires identical
  /// bounds (the aggregate registry re-creates each histogram with the
  /// source's bounds, so merging per-cell registries always matches).
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_{0};  // overflow-only when unbounded
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  [[no_unique_address]] detail::DebugThreadOwner owner_;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime. A histogram's bounds are fixed by its first
  /// registration; later lookups ignore the argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Read-side lookups that never create the instrument — tests and
  /// report code can check "was this ever counted?" without perturbing
  /// the exported JSON. Return nullptr when the name was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;

  /// Folds `other` into this registry: counters add their totals, gauges
  /// add their levels (disjoint worlds' levels sum), histograms add their
  /// bucket counts (bounds must match), and instruments missing here are
  /// created. Merging per-cell registries in cell order reproduces, byte
  /// for byte, the snapshot a single registry shared by serially executed
  /// cells would have produced.
  void merge(const MetricsRegistry& other);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Full snapshot as a JSON object:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"bounds": [...], "counts": [...],
  ///                          "count": n, "sum": s}, ...}}
  std::string to_json() const;

  /// Writes to_json() to `path` (newline-terminated). Returns false on
  /// I/O failure.
  bool write_json(const std::string& path) const;

 private:
  // std::map: stable references, deterministic (sorted) export order.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace spider::obs
