// Per-request probe trace: a structured event log of one composition's
// life — seeds spawned, hops taken, drops with reasons, soft-hold
// acquire/reuse/release, destination-side merge and selection. Attached
// to a BcpEngine via set_observability(); exportable to JSON and parsable
// back (offline analysis, tests).
//
// The trace is bounded (`max_events`) so a runaway request cannot exhaust
// memory; `dropped_events()` reports how many records the cap swallowed —
// a truncated trace is explicit, never silent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spider::obs {

enum class TraceEvent : std::uint8_t {
  kSeedSpawned,      ///< a (pattern, branch) seed probe created at source
  kHopTaken,         ///< a probe advanced to a next-hop component
  kProbeDropped,     ///< a probe terminated; note carries the reason
  kCandidateSkipped, ///< a next-hop candidate rejected before spawning
  kHoldAcquired,     ///< fresh soft reservation made
  kHoldReused,       ///< an existing hold covered a sibling probe's need
  kHoldReleased,     ///< hold cancelled at finalize (non-best graphs)
  kCandidateMerged,  ///< destination joined branch probes into a graph
  kGraphQualified,   ///< a merged graph passed QoS qualification
  kGraphSelected,    ///< the best graph chosen
};

/// Stable wire names ("seed_spawned", "hop_taken", ...).
const char* trace_event_name(TraceEvent event);
std::optional<TraceEvent> trace_event_from_name(const std::string& name);

/// One trace record. Field meaning varies by event (see the emit sites in
/// core/bcp.cpp); unused int fields stay -1, unused doubles 0.
struct TraceRecord {
  TraceEvent event = TraceEvent::kSeedSpawned;
  double time_ms = 0.0;        ///< virtual ms since the request started
  std::int64_t pattern = -1;   ///< composition pattern index
  std::int64_t branch = -1;    ///< branch index within the pattern
  std::int64_t node = -1;      ///< function-graph node
  std::int64_t peer = -1;      ///< overlay peer involved
  double value = 0.0;          ///< event-specific magnitude (kbps, ψ, ...)
  std::string note;            ///< drop/skip reason or free-form detail

  bool operator==(const TraceRecord& other) const;
};

class ProbeTrace {
 public:
  explicit ProbeTrace(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void record(TraceRecord record);
  void clear();

  const std::vector<TraceRecord>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_; }

  /// Counts records of one kind (test/report convenience).
  std::size_t count(TraceEvent event) const;

  /// {"events": [{"event": "...", "t": ..., ...}, ...], "dropped": n}
  /// Fields at defaults are omitted for compactness.
  std::string to_json() const;

  /// Inverse of to_json(); nullopt on malformed input or unknown events.
  static std::optional<ProbeTrace> from_json(const std::string& text);

 private:
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> events_;
};

}  // namespace spider::obs
