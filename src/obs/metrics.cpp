#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/json.hpp"
#include "util/require.hpp"

namespace spider::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SPIDER_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  owner_.check_mutation();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[std::size_t(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  owner_.check_mutation();
  SPIDER_REQUIRE_MSG(bounds_ == other.bounds_,
                     "Histogram::merge requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bounds()).merge(h);
  }
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name);
    w.value(c.value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.value(g.value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::uint64_t c : h.counts()) w.value(c);
    w.end_array();
    w.key("count");
    w.value(h.count());
    w.key("sum");
    w.value(h.sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

}  // namespace spider::obs
