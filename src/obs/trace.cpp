#include "obs/trace.hpp"

#include "util/json.hpp"

namespace spider::obs {

namespace {

struct EventName {
  TraceEvent event;
  const char* name;
};

constexpr EventName kEventNames[] = {
    {TraceEvent::kSeedSpawned, "seed_spawned"},
    {TraceEvent::kHopTaken, "hop_taken"},
    {TraceEvent::kProbeDropped, "probe_dropped"},
    {TraceEvent::kCandidateSkipped, "candidate_skipped"},
    {TraceEvent::kHoldAcquired, "hold_acquired"},
    {TraceEvent::kHoldReused, "hold_reused"},
    {TraceEvent::kHoldReleased, "hold_released"},
    {TraceEvent::kCandidateMerged, "candidate_merged"},
    {TraceEvent::kGraphQualified, "graph_qualified"},
    {TraceEvent::kGraphSelected, "graph_selected"},
};

}  // namespace

const char* trace_event_name(TraceEvent event) {
  for (const EventName& e : kEventNames) {
    if (e.event == event) return e.name;
  }
  return "?";
}

std::optional<TraceEvent> trace_event_from_name(const std::string& name) {
  for (const EventName& e : kEventNames) {
    if (name == e.name) return e.event;
  }
  return std::nullopt;
}

bool TraceRecord::operator==(const TraceRecord& other) const {
  return event == other.event && time_ms == other.time_ms &&
         pattern == other.pattern && branch == other.branch &&
         node == other.node && peer == other.peer && value == other.value &&
         note == other.note;
}

void ProbeTrace::record(TraceRecord record) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(record));
}

void ProbeTrace::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t ProbeTrace::count(TraceEvent event) const {
  std::size_t n = 0;
  for (const TraceRecord& r : events_) n += r.event == event ? 1 : 0;
  return n;
}

std::string ProbeTrace::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("events");
  w.begin_array();
  for (const TraceRecord& r : events_) {
    w.begin_object();
    w.key("event");
    w.value(trace_event_name(r.event));
    w.key("t");
    w.value(r.time_ms);
    if (r.pattern >= 0) {
      w.key("pattern");
      w.value(r.pattern);
    }
    if (r.branch >= 0) {
      w.key("branch");
      w.value(r.branch);
    }
    if (r.node >= 0) {
      w.key("node");
      w.value(r.node);
    }
    if (r.peer >= 0) {
      w.key("peer");
      w.value(r.peer);
    }
    if (r.value != 0.0) {
      w.key("value");
      w.value(r.value);
    }
    if (!r.note.empty()) {
      w.key("note");
      w.value(r.note);
    }
    w.end_object();
  }
  w.end_array();
  w.key("dropped");
  w.value(dropped_);
  w.end_object();
  return w.take();
}

std::optional<ProbeTrace> ProbeTrace::from_json(const std::string& text) {
  const std::optional<util::JsonValue> root = util::json_parse(text);
  if (!root.has_value() || !root->is_object()) return std::nullopt;
  const util::JsonValue* events = root->find("events");
  if (events == nullptr || !events->is_array()) return std::nullopt;

  ProbeTrace trace(events->array.size());
  for (const util::JsonValue& e : events->array) {
    if (!e.is_object()) return std::nullopt;
    const std::optional<TraceEvent> event =
        trace_event_from_name(e.string_or("event", ""));
    if (!event.has_value()) return std::nullopt;
    TraceRecord r;
    r.event = *event;
    r.time_ms = e.number_or("t", 0.0);
    r.pattern = std::int64_t(e.number_or("pattern", -1.0));
    r.branch = std::int64_t(e.number_or("branch", -1.0));
    r.node = std::int64_t(e.number_or("node", -1.0));
    r.peer = std::int64_t(e.number_or("peer", -1.0));
    r.value = e.number_or("value", 0.0);
    r.note = e.string_or("note", "");
    trace.record(std::move(r));
  }
  trace.dropped_ = std::uint64_t(root->number_or("dropped", 0.0));
  return trace;
}

}  // namespace spider::obs
