#include "discovery/registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace spider::discovery {

using service::ComponentMetadata;

void ServiceRegistry::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_lookups_ = m_lookup_hops_ = m_lookup_failures_ = m_cache_hits_ =
        m_cache_misses_ = m_cache_evictions_ = nullptr;
    return;
  }
  m_lookups_ = &metrics->counter("discovery.lookups");
  m_lookup_hops_ = &metrics->counter("discovery.lookup_hops");
  m_lookup_failures_ = &metrics->counter("discovery.lookup_failures");
  m_cache_hits_ = &metrics->counter("discovery.cache_hits");
  m_cache_misses_ = &metrics->counter("discovery.cache_misses");
}

void ServiceRegistry::note_evictions(std::size_t count) {
  if (count == 0) return;
  cache_evictions_ += count;
  // Lazily registered so cache-free runs keep their exact metric exports.
  if (metrics_ != nullptr && m_cache_evictions_ == nullptr) {
    m_cache_evictions_ = &metrics_->counter("discovery.cache_evictions");
  }
  if (m_cache_evictions_ != nullptr) m_cache_evictions_->inc(count);
}

std::size_t ServiceRegistry::sweep_expired() {
  if (sim_ == nullptr || cache_ttl_ <= 0.0) return 0;
  const double now = sim_->now();
  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.expires_at <= now) {
      it = cache_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  note_evictions(evicted);
  return evicted;
}

std::string serialize(const ComponentMetadata& meta) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu|%u|%u|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%u|%u",
                static_cast<unsigned long long>(meta.id), meta.function,
                meta.host, meta.perf.delay_ms(), meta.perf.loss_log(),
                meta.perf.jitter_ms(), meta.required.cpu(),
                meta.required.memory(), meta.failure_prob, meta.input_level,
                meta.output_level);
  return buf;
}

std::optional<ComponentMetadata> deserialize(const std::string& data) {
  unsigned long long id = 0;
  unsigned function = 0, host = 0, in_level = 0, out_level = 0;
  double delay = 0, loss = 0, jitter = 0, cpu = 0, mem = 0, fail = 0;
  const int matched = std::sscanf(
      data.c_str(), "%llu|%u|%u|%lg|%lg|%lg|%lg|%lg|%lg|%u|%u", &id,
      &function, &host, &delay, &loss, &jitter, &cpu, &mem, &fail, &in_level,
      &out_level);
  if (matched != 11) return std::nullopt;
  ComponentMetadata meta;
  meta.id = id;
  meta.function = function;
  meta.host = host;
  meta.perf = jitter > 0.0
                  ? service::Qos::delay_loss_jitter(delay, loss, jitter)
                  : service::Qos::delay_loss(delay, loss);
  meta.required = service::Resources::cpu_mem(cpu, mem);
  meta.failure_prob = fail;
  meta.input_level = in_level;
  meta.output_level = out_level;
  return meta;
}

dht::NodeId ServiceRegistry::key_for(service::FunctionId function) const {
  // Hash the function *name* (the paper's secure-hash-of-name scheme), so
  // independently computed keys agree across peers.
  return dht::NodeId::hash_of(catalog_->name(function));
}

dht::RouteResult ServiceRegistry::register_component(
    const ComponentMetadata& meta) {
  SPIDER_REQUIRE(meta.function != service::kInvalidFunction);
  return dht_->put(meta.host, key_for(meta.function), serialize(meta));
}

void ServiceRegistry::bulk_register(
    const std::vector<ComponentMetadata>& metas, std::size_t jobs) {
  std::vector<dht::PastryNetwork::BulkPutItem> items;
  items.reserve(metas.size());
  for (const ComponentMetadata& meta : metas) {
    SPIDER_REQUIRE(meta.function != service::kInvalidFunction);
    items.push_back({meta.host, key_for(meta.function), serialize(meta)});
  }
  dht_->bulk_put(items, jobs);
}

void ServiceRegistry::unregister_component(const ComponentMetadata& meta) {
  dht_->erase(key_for(meta.function), serialize(meta));
}

DiscoveryResult ServiceRegistry::discover(dht::PeerId from,
                                          service::FunctionId function) {
  if (m_lookups_ != nullptr) m_lookups_->inc();
  const DiscoveryCacheKey cache_key{from, function};
  if (sim_ != nullptr && cache_ttl_ > 0.0) {
    // Amortized purge: entries whose (peer, function) is never queried
    // again are not reachable through touch-eviction below, so sweep the
    // whole map every kCacheSweepInterval cached lookups.
    if (++cached_lookups_since_sweep_ >= kCacheSweepInterval) {
      cached_lookups_since_sweep_ = 0;
      sweep_expired();
    }
    if (auto it = cache_.find(cache_key); it != cache_.end()) {
      if (it->second.expires_at > sim_->now()) {
        ++cache_hits_;
        if (m_cache_hits_ != nullptr) m_cache_hits_->inc();
        DiscoveryResult cached = it->second.result;
        cached.path.assign(1, from);  // no DHT hops: answered locally
        return cached;
      }
      // Expired: evict on touch (re-inserted below after the DHT round).
      cache_.erase(it);
      note_evictions(1);
    }
    ++cache_misses_;
    if (m_cache_misses_ != nullptr) m_cache_misses_->inc();
  }

  DiscoveryResult result;
  dht::GetResult got = dht_->get(from, key_for(function));
  result.path = std::move(got.path);
  result.found = got.found;
  for (const std::string& blob : got.values) {
    if (auto meta = deserialize(blob); meta.has_value()) {
      result.components.push_back(*meta);
    }
  }
  if (result.components.empty()) result.found = false;
  if (m_lookup_hops_ != nullptr) m_lookup_hops_->inc(result.hops());
  if (!result.found && m_lookup_failures_ != nullptr) {
    m_lookup_failures_->inc();
  }

  if (sim_ != nullptr && cache_ttl_ > 0.0) {
    cache_[cache_key] = CacheEntry{result, sim_->now() + cache_ttl_};
  }
  return result;
}

void ServiceRegistry::reannounce_all(const std::vector<ComponentMetadata>& live) {
  for (const ComponentMetadata& meta : live) {
    if (dht_->alive(meta.host)) register_component(meta);
  }
}

}  // namespace spider::discovery
