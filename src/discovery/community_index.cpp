#include "discovery/community_index.hpp"

#include <algorithm>

#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::discovery {

CommunityIndex CommunityIndex::build(
    const std::vector<service::ComponentMetadata>& components,
    const overlay::CommunityMap& map, std::size_t jobs) {
  CommunityIndex index;
  index.buckets_.assign(map.community_count(), Bucket{});
  // One slot per community; each task filters the shared component list
  // by its own community, so no two tasks touch the same bucket.
  util::parallel_for_each(jobs, map.community_count(), [&](std::size_t c) {
    Bucket& bucket = index.buckets_[c];
    for (const auto& meta : components) {
      SPIDER_DCHECK(meta.host < map.peer_count());
      if (map.community_of(meta.host) != overlay::CommunityId(c)) continue;
      Entry& entry = bucket[meta.function];
      entry.metas.push_back(meta);
    }
    for (auto& [fn, entry] : bucket) {
      std::sort(entry.metas.begin(), entry.metas.end(),
                [](const auto& a, const auto& b) { return a.id < b.id; });
      CommunitySummary s;
      s.replicas = std::uint32_t(entry.metas.size());
      s.min_perf_delay_ms = entry.metas.front().perf[service::Qos::kDelay];
      s.min_failure_prob = entry.metas.front().failure_prob;
      for (const auto& meta : entry.metas) {
        s.min_perf_delay_ms =
            std::min(s.min_perf_delay_ms, meta.perf[service::Qos::kDelay]);
        s.min_failure_prob = std::min(s.min_failure_prob, meta.failure_prob);
      }
      entry.summary = s;
    }
  });
  return index;
}

const CommunityIndex::Entry* CommunityIndex::find(
    overlay::CommunityId c, service::FunctionId fn) const {
  const Bucket& bucket = buckets_.at(c);
  auto it = bucket.find(fn);
  return it == bucket.end() ? nullptr : &it->second;
}

std::span<const service::ComponentMetadata> CommunityIndex::replicas(
    overlay::CommunityId c, service::FunctionId fn) const {
  const Entry* entry = find(c, fn);
  if (entry == nullptr) return {};
  return entry->metas;
}

const CommunitySummary* CommunityIndex::summary(
    overlay::CommunityId c, service::FunctionId fn) const {
  const Entry* entry = find(c, fn);
  return entry == nullptr ? nullptr : &entry->summary;
}

}  // namespace spider::discovery
