// Decentralized service discovery (§3).
//
// A meta-data layer on top of the Pastry DHT: a peer sharing a service
// component registers the component's static meta-data under the key
// SHA-1(function name).  All replicas of a function share the name, hence
// the key, hence the DHT node — so one lookup returns the meta-data list
// of *all* functionally duplicated components, exactly what BCP's per-hop
// next-component selection needs (§4.2 step 2.3).
//
// Registrations are soft state: owners re-register periodically
// (`reannounce_all` models the refresh round) so churn-displaced keys heal.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include <unordered_map>

#include "dht/pastry.hpp"
#include "sim/simulator.hpp"
#include "service/component.hpp"
#include "util/hash.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
}  // namespace spider::obs

namespace spider::discovery {

/// Binary-free, debuggable wire format for component meta-data.
std::string serialize(const service::ComponentMetadata& meta);
std::optional<service::ComponentMetadata> deserialize(const std::string& data);

/// Result of a discovery lookup.
struct DiscoveryResult {
  std::vector<service::ComponentMetadata> components;
  std::vector<dht::PeerId> path;  ///< DHT route taken (for latency models)
  bool found = false;
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

/// Lookup-cache key: which peer resolved which function. A struct key
/// with field-wise equality, not a bit-packed word — the seed packed
/// `(peer << 32) | function` into one uint64, the same overlapping-shift
/// aliasing class PR 1 purged from the soft-hold dedup maps
/// (core/hold_keys.hpp): any future widening of either id (64-bit peer
/// ids, namespaced function ids) silently aliases distinct tuples and
/// serves one peer's cached replica list to another. The struct carries
/// both fields at full width whatever their type becomes.
struct DiscoveryCacheKey {
  dht::PeerId peer = 0;
  service::FunctionId function = service::kInvalidFunction;

  bool operator==(const DiscoveryCacheKey& o) const {
    return peer == o.peer && function == o.function;
  }
};

struct DiscoveryCacheKeyHash {
  std::size_t operator()(const DiscoveryCacheKey& k) const {
    return util::hash_values(k.peer, k.function);
  }
};

class ServiceRegistry {
 public:
  ServiceRegistry(dht::PastryNetwork& dht, service::FunctionCatalog& catalog)
      : dht_(&dht), catalog_(&catalog) {}

  /// Enables per-peer lookup caching: a peer that resolved a function
  /// within the last `ttl` (virtual time) reuses the result without a DHT
  /// round trip. Staleness is bounded by the TTL — cached replica lists
  /// may briefly include dead hosts (BCP filters liveness) or miss
  /// newly registered ones. Pass ttl <= 0 to disable.
  void enable_cache(sim::Simulator& simulator, double ttl) {
    sim_ = &simulator;
    cache_ttl_ = ttl;
    cache_.clear();
  }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  /// Entries dropped because their TTL lapsed (touched-on-lookup or via
  /// sweep_expired); invalidate_cache() drops are not counted.
  std::uint64_t cache_evictions() const { return cache_evictions_; }
  std::size_t cache_size() const { return cache_.size(); }
  /// Drops all cached entries (e.g. after bulk re-registration).
  void invalidate_cache() { cache_.clear(); }

  /// Evicts every entry whose TTL has lapsed and returns how many were
  /// dropped. Lookups already evict the expired entry they touch, but
  /// entries for (peer, function) pairs that are never queried again
  /// would otherwise pin their replica lists forever — long soaks grow
  /// the map without bound. discover() piggybacks a full sweep every
  /// `kCacheSweepInterval` lookups; call this directly for prompt
  /// reclamation (mirrors the allocator's sweep_expired()).
  std::size_t sweep_expired();

  /// Attaches a metrics registry (null detaches). Publishes cumulative
  /// "discovery.*" counters: lookups, per-lookup DHT hops, cache outcomes.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Key under which a function's replicas are registered.
  dht::NodeId key_for(service::FunctionId function) const;

  /// Registers a component from its hosting peer. Returns the DHT route.
  dht::RouteResult register_component(const service::ComponentMetadata& meta);

  /// Registers a batch in one shot via PastryNetwork::bulk_put — same
  /// stored state and message totals as register_component() called in
  /// order, with the route computations spread over `jobs` workers.
  /// Requires an all-live DHT (initial world construction).
  void bulk_register(const std::vector<service::ComponentMetadata>& metas,
                     std::size_t jobs = 1);

  /// Removes a component's registration from all replicas.
  void unregister_component(const service::ComponentMetadata& meta);

  /// Looks up all replicas of `function`, querying from `from`.
  DiscoveryResult discover(dht::PeerId from, service::FunctionId function);

  /// Soft-state refresh: re-registers every component in `live_components`
  /// (the owners' periodic re-announcements after churn).
  void reannounce_all(const std::vector<service::ComponentMetadata>& live);

 private:
  struct CacheEntry {
    DiscoveryResult result;
    double expires_at = 0.0;
  };

  /// Cached lookups between piggybacked full sweeps in discover().
  static constexpr std::uint64_t kCacheSweepInterval = 256;

  void note_evictions(std::size_t count);

  dht::PastryNetwork* dht_;
  service::FunctionCatalog* catalog_;
  sim::Simulator* sim_ = nullptr;
  double cache_ttl_ = 0.0;
  std::unordered_map<DiscoveryCacheKey, CacheEntry, DiscoveryCacheKeyHash>
      cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t cached_lookups_since_sweep_ = 0;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_lookups_ = nullptr;
  obs::Counter* m_lookup_hops_ = nullptr;
  obs::Counter* m_lookup_failures_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
};

}  // namespace spider::discovery
