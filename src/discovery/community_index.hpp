// Per-community discovery index for two-tier BCP (§3.2 adapted to the
// partitioned overlay of overlay::CommunityMap).
//
// Flat discovery answers "who implements f?" over the whole overlay via
// the DHT registry. The coarse tier instead needs two cheaper answers
// per community: a QoS *summary* of f's replicas inside the community
// (for inter-community candidate selection) and the replica list itself
// restricted to the community (for intra-community fine probing). This
// index precomputes both from the deployed component metadata — the same
// advertisement payload the DHT registry stores — bucketed by the host
// peer's community.
//
// Construction is deterministic at any job count: communities are
// indexed into preallocated per-community slots under
// util::parallel_for_each, each slot scanning the (host-ascending,
// id-ascending) component list independently, so replica spans come out
// id-ascending and byte-identical regardless of scheduling.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "overlay/community.hpp"
#include "service/component.hpp"

namespace spider::discovery {

/// Coarse QoS summary of one function's replicas within one community —
/// what an inter-community probe carries back.
struct CommunitySummary {
  std::uint32_t replicas = 0;
  double min_perf_delay_ms = 0.0;   ///< best advertised processing delay
  double min_failure_prob = 1.0;    ///< most reliable replica's estimate
};

class CommunityIndex {
 public:
  /// Indexes `components` (any order; entries are re-sorted per bucket by
  /// ComponentId) against the community assignment in `map`.
  static CommunityIndex build(
      const std::vector<service::ComponentMetadata>& components,
      const overlay::CommunityMap& map, std::size_t jobs = 1);

  std::size_t community_count() const { return buckets_.size(); }

  /// Replicas of `fn` hosted inside community `c`, ascending ComponentId
  /// (empty span if none).
  std::span<const service::ComponentMetadata> replicas(
      overlay::CommunityId c, service::FunctionId fn) const;

  /// Summary of `fn` inside community `c`, or nullptr if the community
  /// hosts no replica.
  const CommunitySummary* summary(overlay::CommunityId c,
                                  service::FunctionId fn) const;

 private:
  CommunityIndex() = default;

  struct Entry {
    std::vector<service::ComponentMetadata> metas;
    CommunitySummary summary;
  };
  using Bucket = std::unordered_map<service::FunctionId, Entry>;

  const Entry* find(overlay::CommunityId c, service::FunctionId fn) const;

  std::vector<Bucket> buckets_;
};

}  // namespace spider::discovery
