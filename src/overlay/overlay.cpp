#include "overlay/overlay.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/require.hpp"

namespace spider::overlay {
namespace {

std::uint64_t pair_key(PeerId a, PeerId b) {
  return (std::uint64_t(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

OverlayNetwork OverlayNetwork::from_topology(const net::Topology& topo,
                                             net::Router& router,
                                             std::vector<net::NodeIdx> peer_nodes,
                                             OverlayKind kind,
                                             std::size_t degree, Rng& rng) {
  SPIDER_REQUIRE(peer_nodes.size() >= 2);
  SPIDER_REQUIRE(degree >= 1);
  for (net::NodeIdx node : peer_nodes) {
    SPIDER_REQUIRE(node < topo.node_count());
  }
  const std::size_t n = peer_nodes.size();

  OverlayNetwork net;
  net.peer_node_ = std::move(peer_nodes);
  std::unordered_set<std::uint64_t> seen;

  auto add_link = [&](PeerId a, PeerId b) {
    if (a == b) return;
    if (!seen.insert(pair_key(a, b)).second) return;
    const net::PathMetrics m =
        router.metrics(net.peer_node_[a], net.peer_node_[b]);
    SPIDER_REQUIRE_MSG(m.reachable(), "IP topology must be connected");
    net.links_.push_back(OverlayLink{a, b, m.delay_ms, m.bottleneck_kbps,
                                     std::max<std::uint32_t>(m.hops, 1)});
  };

  if (kind == OverlayKind::kNearestMesh) {
    // Topology-aware mesh: each peer connects to its `degree` nearest peers
    // by underlying IP delay.
    for (PeerId p = 0; p < n; ++p) {
      const auto& tree = router.from(net.peer_node_[p]);
      std::vector<std::pair<double, PeerId>> by_delay;
      by_delay.reserve(n - 1);
      for (PeerId q = 0; q < n; ++q) {
        if (q == p) continue;
        by_delay.emplace_back(tree.delay_to(net.peer_node_[q]), q);
      }
      const std::size_t k = std::min(degree, by_delay.size());
      std::partial_sort(by_delay.begin(), by_delay.begin() + long(k),
                        by_delay.end());
      for (std::size_t i = 0; i < k; ++i) add_link(p, by_delay[i].second);
    }
  } else {
    for (PeerId p = 0; p < n; ++p) {
      std::size_t added = 0, guard = 0;
      while (added < degree && guard++ < degree * 64 + 16) {
        const auto q = PeerId(rng.next_below(n));
        if (q == p || seen.count(pair_key(p, q)) > 0) continue;
        add_link(p, q);
        ++added;
      }
    }
  }
  // A ring over a random permutation guarantees connectivity: pure
  // nearest-neighbor meshes can fragment into proximity cliques, and real
  // topology-aware meshes blend in long links for exactly this reason [20].
  {
    std::vector<PeerId> order(n);
    for (PeerId p = 0; p < n; ++p) order[p] = p;
    rng.shuffle(order);
    for (std::size_t i = 0; i < n; ++i) {
      add_link(order[i], order[(i + 1) % n]);
    }
  }

  net.build_adjacency();
  return net;
}

OverlayNetwork OverlayNetwork::from_planetlab(const net::PlanetLabModel& model,
                                              OverlayKind kind,
                                              std::size_t degree, Rng& rng) {
  const std::size_t n = model.host_count();
  SPIDER_REQUIRE(n >= 2);
  OverlayNetwork net;
  net.peer_node_.resize(n);
  for (std::size_t i = 0; i < n; ++i) net.peer_node_[i] = net::NodeIdx(i);

  std::unordered_set<std::uint64_t> seen;
  auto add_link = [&](PeerId a, PeerId b) {
    if (a == b) return;
    if (!seen.insert(pair_key(a, b)).second) return;
    net.links_.push_back(OverlayLink{a, b, model.delay_ms(a, b),
                                     model.bandwidth_kbps(), 1});
  };

  if (kind == OverlayKind::kNearestMesh) {
    for (PeerId p = 0; p < n; ++p) {
      std::vector<std::pair<double, PeerId>> by_delay;
      for (PeerId q = 0; q < n; ++q) {
        if (q != p) by_delay.emplace_back(model.delay_ms(p, q), q);
      }
      const std::size_t k = std::min(degree, by_delay.size());
      std::partial_sort(by_delay.begin(), by_delay.begin() + long(k),
                        by_delay.end());
      for (std::size_t i = 0; i < k; ++i) add_link(p, by_delay[i].second);
    }
  } else {
    for (PeerId p = 0; p < n; ++p) {
      std::size_t added = 0, guard = 0;
      while (added < degree && guard++ < degree * 64 + 16) {
        const auto q = PeerId(rng.next_below(n));
        if (q == p || seen.count(pair_key(p, q)) > 0) continue;
        add_link(p, q);
        ++added;
      }
    }
  }
  // Connectivity ring, as in from_topology.
  {
    std::vector<PeerId> order(n);
    for (PeerId p = 0; p < n; ++p) order[p] = p;
    rng.shuffle(order);
    for (std::size_t i = 0; i < n; ++i) add_link(order[i], order[(i + 1) % n]);
  }

  net.build_adjacency();
  return net;
}

void OverlayNetwork::build_adjacency() {
  const std::size_t n = peer_node_.size();
  offsets_.assign(n + 1, 0);
  for (const OverlayLink& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  adj_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (OverlayLinkId li = 0; li < links_.size(); ++li) {
    const OverlayLink& l = links_[li];
    adj_[cursor[l.a]++] = OverlayAdjacency{l.b, li};
    adj_[cursor[l.b]++] = OverlayAdjacency{l.a, li};
  }
  alive_.assign(n, true);
  live_count_ = n;
}

std::span<const OverlayAdjacency> OverlayNetwork::neighbors(PeerId p) const {
  SPIDER_REQUIRE(p < peer_node_.size());
  return std::span<const OverlayAdjacency>(adj_.data() + offsets_[p],
                                           offsets_[p + 1] - offsets_[p]);
}

bool OverlayNetwork::are_neighbors(PeerId a, PeerId b,
                                   double* out_delay) const {
  for (const OverlayAdjacency& adj : neighbors(a)) {
    if (adj.neighbor == b) {
      if (out_delay != nullptr) *out_delay = links_[adj.link].delay_ms;
      return true;
    }
  }
  return false;
}

double OverlayNetwork::mean_neighbor_delay(PeerId p) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const OverlayAdjacency& adj : neighbors(p)) {
    if (!alive_[adj.neighbor]) continue;
    sum += links_[adj.link].delay_ms;
    ++count;
  }
  return count == 0 ? 0.0 : sum / double(count);
}

void OverlayNetwork::set_alive(PeerId p, bool alive) {
  SPIDER_REQUIRE(p < alive_.size());
  if (alive_[p] == alive) return;
  alive_[p] = alive;
  live_count_ += alive ? 1 : std::size_t(-1);
  route_cache_.clear();
}

void OverlayNetwork::compute_routes_from(PeerId src) {
  const std::size_t n = peer_count();
  std::vector<OverlayPath>& paths =
      route_cache_.emplace(src, std::vector<OverlayPath>(n)).first->second;
  if (!alive_[src]) return;  // all invalid

  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<OverlayLinkId> parent(n, kInvalidOverlayLink);
  using QItem = std::pair<double, PeerId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const OverlayAdjacency& adj : neighbors(u)) {
      if (!alive_[adj.neighbor]) continue;
      const double nd = d + links_[adj.link].delay_ms;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        parent[adj.neighbor] = adj.link;
        pq.emplace(nd, adj.neighbor);
      }
    }
  }

  for (PeerId dst = 0; dst < n; ++dst) {
    OverlayPath& path = paths[dst];
    if (dist[dst] == std::numeric_limits<double>::infinity()) continue;
    path.valid = true;
    path.delay_ms = dist[dst];
    PeerId cur = dst;
    while (cur != src) {
      const OverlayLinkId li = parent[cur];
      path.links.push_back(li);
      path.capacity_kbps =
          std::min(path.capacity_kbps, links_[li].capacity_kbps);
      cur = links_[li].other(cur);
    }
    std::reverse(path.links.begin(), path.links.end());
  }
}

const OverlayPath& OverlayNetwork::route(PeerId src, PeerId dst) {
  SPIDER_REQUIRE(src < peer_count() && dst < peer_count());
  auto it = route_cache_.find(src);
  if (it == route_cache_.end()) {
    if (route_cache_.size() >= route_cache_limit_) route_cache_.clear();
    compute_routes_from(src);
    it = route_cache_.find(src);
  }
  return it->second[dst];
}

double OverlayNetwork::delay_ms(PeerId src, PeerId dst) {
  if (src == dst) return 0.0;
  return route(src, dst).delay_ms;
}

bool OverlayNetwork::live_connected() const {
  if (live_count_ == 0) return false;
  PeerId start = kInvalidPeer;
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (alive_[p]) {
      start = p;
      break;
    }
  }
  std::vector<bool> visited(peer_count(), false);
  std::vector<PeerId> stack{start};
  visited[start] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const PeerId u = stack.back();
    stack.pop_back();
    for (const OverlayAdjacency& adj : neighbors(u)) {
      if (alive_[adj.neighbor] && !visited[adj.neighbor]) {
        visited[adj.neighbor] = true;
        ++reached;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return reached == live_count_;
}

}  // namespace spider::overlay
