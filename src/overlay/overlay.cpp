#include "overlay/overlay.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::overlay {
namespace {

using SeenSet = std::unordered_set<PeerPairKey, PeerPairKeyHash>;

/// Random k-neighbor wiring shared by every builder. The rejection loop
/// draws exactly the sequence the legacy code drew; when it exhausts its
/// collision guard (dense small worlds) it no longer silently
/// under-provisions the peer — a deterministic scan of unused partners
/// (no RNG) tops the degree up, and only a peer already adjacent to
/// every other peer counts as underwired.
template <typename AddLink>
void wire_random(std::size_t n, std::size_t degree, Rng& rng,
                 const SeenSet& seen, AddLink&& add_link,
                 std::size_t* underwired_peers) {
  for (PeerId p = 0; p < n; ++p) {
    std::size_t added = 0, guard = 0;
    while (added < degree && guard++ < degree * 64 + 16) {
      const auto q = PeerId(rng.next_below(n));
      if (q == p || seen.count(PeerPairKey(p, q)) > 0) continue;
      add_link(p, q);
      ++added;
    }
    if (added >= degree) continue;
    for (std::size_t step = 1; step < n && added < degree; ++step) {
      const auto q = PeerId((p + step) % n);
      if (seen.count(PeerPairKey(p, q)) > 0) continue;
      add_link(p, q);
      ++added;
    }
    if (added < degree) ++*underwired_peers;
  }
}

/// Connectivity ring over a random permutation: pure nearest-neighbor
/// meshes can fragment into proximity cliques, and real topology-aware
/// meshes blend in long links for exactly this reason [20].
template <typename AddLink>
void add_connectivity_ring(std::size_t n, Rng& rng, AddLink&& add_link) {
  std::vector<PeerId> order(n);
  for (PeerId p = 0; p < n; ++p) order[p] = p;
  rng.shuffle(order);
  for (std::size_t i = 0; i < n; ++i) {
    add_link(order[i], order[(i + 1) % n]);
  }
}

}  // namespace

OverlayNetwork OverlayNetwork::from_topology(const net::Topology& topo,
                                             net::Router& router,
                                             std::vector<net::NodeIdx> peer_nodes,
                                             OverlayKind kind,
                                             std::size_t degree, Rng& rng) {
  SPIDER_REQUIRE(peer_nodes.size() >= 2);
  SPIDER_REQUIRE(degree >= 1);
  for (net::NodeIdx node : peer_nodes) {
    SPIDER_REQUIRE(node < topo.node_count());
  }
  const std::size_t n = peer_nodes.size();

  OverlayNetwork net;
  net.peer_node_ = std::move(peer_nodes);
  SeenSet seen;

  auto add_link = [&](PeerId a, PeerId b) {
    if (a == b) return;
    if (!seen.insert(PeerPairKey(a, b)).second) return;
    const net::PathMetrics m =
        router.metrics(net.peer_node_[a], net.peer_node_[b]);
    SPIDER_REQUIRE_MSG(m.reachable(), "IP topology must be connected");
    net.links_.push_back(OverlayLink{a, b, m.delay_ms, m.bottleneck_kbps,
                                     std::max<std::uint32_t>(m.hops, 1)});
  };

  if (kind == OverlayKind::kNearestMesh) {
    // Topology-aware mesh: each peer connects to its `degree` nearest peers
    // by underlying IP delay. Exact — one IP Dijkstra and a full n-element
    // scan per peer, which is why large worlds go through
    // from_topology_estimated instead.
    for (PeerId p = 0; p < n; ++p) {
      const auto& tree = router.from(net.peer_node_[p]);
      std::vector<std::pair<double, PeerId>> by_delay;
      by_delay.reserve(n - 1);
      for (PeerId q = 0; q < n; ++q) {
        if (q == p) continue;
        by_delay.emplace_back(tree.delay_to(net.peer_node_[q]), q);
      }
      const std::size_t k = std::min(degree, by_delay.size());
      std::partial_sort(by_delay.begin(), by_delay.begin() + long(k),
                        by_delay.end());
      for (std::size_t i = 0; i < k; ++i) add_link(p, by_delay[i].second);
    }
  } else {
    wire_random(n, degree, rng, seen, add_link, &net.underwired_peers_);
  }
  add_connectivity_ring(n, rng, add_link);

  net.build_adjacency();
  return net;
}

OverlayNetwork OverlayNetwork::from_topology_estimated(
    const net::Topology& topo, std::vector<net::NodeIdx> peer_nodes,
    OverlayKind kind, std::size_t degree, Rng& rng,
    std::size_t landmark_count, std::size_t jobs) {
  SPIDER_REQUIRE(peer_nodes.size() >= 2);
  SPIDER_REQUIRE(degree >= 1);
  SPIDER_REQUIRE(landmark_count >= 1);
  for (net::NodeIdx node : peer_nodes) {
    SPIDER_REQUIRE(node < topo.node_count());
  }
  const std::size_t n = peer_nodes.size();

  OverlayNetwork net;
  net.peer_node_ = std::move(peer_nodes);
  const net::LandmarkTable table =
      net::build_ip_landmarks(topo, net.peer_node_, landmark_count, jobs);

  SeenSet seen;
  auto add_link = [&](PeerId a, PeerId b) {
    if (a == b) return;
    if (!seen.insert(PeerPairKey(a, b)).second) return;
    // Metrics of the real a -> landmark -> b path realizing the
    // triangulation upper bound: admissible delay, real bottleneck.
    const net::PathMetrics m = table.through_metrics(a, b);
    SPIDER_REQUIRE_MSG(m.reachable(), "IP topology must be connected");
    net.links_.push_back(OverlayLink{a, b, m.delay_ms, m.bottleneck_kbps,
                                     std::max<std::uint32_t>(m.hops, 1)});
  };

  if (kind == OverlayKind::kNearestMesh) {
    // Sharded proximity mesh: peers bucket by their nearest landmark and
    // sort within the bucket by distance to it; each peer ranks only a
    // small window of its sorted neighborhood by the full triangulation
    // estimate and links to the best `degree`. O(n·degree·k) total — no
    // per-peer full scan, no per-peer Dijkstra. Every per-peer step
    // (bucket assignment, window ranking, link pricing) writes its own
    // pre-sized slot, so the worker fan-out below is order-free; only the
    // final seen-set merge is serial, and it runs in slot order.
    struct Slot {
      std::uint32_t bucket = 0;
      double dist = 0.0;
      PeerId peer = 0;
    };
    std::vector<Slot> slots(n);
    util::parallel_for_each(jobs, n, [&](std::size_t pi) {
      const PeerId p = PeerId(pi);
      std::uint32_t best_l = 0;
      double best = table.landmark_delay_ms(0, p);
      for (std::size_t l = 1; l < table.landmark_count(); ++l) {
        const double d = table.landmark_delay_ms(l, p);
        if (d < best) {
          best = d;
          best_l = std::uint32_t(l);
        }
      }
      slots[pi] = Slot{best_l, best, p};
    });
    std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
      if (a.bucket != b.bucket) return a.bucket < b.bucket;
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.peer < b.peer;
    });
    // Window over the global bucket-major order (not clamped to bucket
    // boundaries): tiny buckets then borrow candidates from adjacent
    // buckets instead of starving a peer below its degree. Ranking and
    // through-landmark pricing are pure table reads, so each position
    // selects and prices its links concurrently.
    const std::size_t window = degree + 8;
    struct Pick {
      PeerId peer;
      net::PathMetrics metrics;
    };
    std::vector<std::vector<Pick>> picks(n);
    util::parallel_for_each(jobs, n, [&](std::size_t i) {
      const PeerId p = slots[i].peer;
      std::vector<std::pair<double, PeerId>> ranked;
      const std::size_t from = i > window ? i - window : 0;
      const std::size_t to = std::min(n, i + window + 1);
      for (std::size_t j = from; j < to; ++j) {
        if (j == i) continue;
        const PeerId q = slots[j].peer;
        ranked.emplace_back(table.estimate_ms(p, q), q);
      }
      const std::size_t k = std::min(degree, ranked.size());
      std::partial_sort(ranked.begin(), ranked.begin() + long(k),
                        ranked.end());
      picks[i].reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        picks[i].push_back(
            Pick{ranked[j].second, table.through_metrics(p, ranked[j].second)});
      }
    });
    // Serial merge in slot order: dedup against the seen set and append —
    // identical link order to the all-serial loop (pricing is pure, so
    // pre-pricing deduped picks changes nothing but wasted work).
    for (std::size_t i = 0; i < n; ++i) {
      const PeerId p = slots[i].peer;
      for (const Pick& pick : picks[i]) {
        if (p == pick.peer) continue;
        if (!seen.insert(PeerPairKey(p, pick.peer)).second) continue;
        const net::PathMetrics& m = pick.metrics;
        SPIDER_REQUIRE_MSG(m.reachable(), "IP topology must be connected");
        net.links_.push_back(OverlayLink{p, pick.peer, m.delay_ms,
                                         m.bottleneck_kbps,
                                         std::max<std::uint32_t>(m.hops, 1)});
      }
    }
  } else {
    wire_random(n, degree, rng, seen, add_link, &net.underwired_peers_);
  }
  add_connectivity_ring(n, rng, add_link);

  net.build_adjacency();
  return net;
}

OverlayNetwork OverlayNetwork::from_planetlab(const net::PlanetLabModel& model,
                                              OverlayKind kind,
                                              std::size_t degree, Rng& rng) {
  const std::size_t n = model.host_count();
  SPIDER_REQUIRE(n >= 2);
  OverlayNetwork net;
  net.peer_node_.resize(n);
  for (std::size_t i = 0; i < n; ++i) net.peer_node_[i] = net::NodeIdx(i);

  SeenSet seen;
  auto add_link = [&](PeerId a, PeerId b) {
    if (a == b) return;
    if (!seen.insert(PeerPairKey(a, b)).second) return;
    net.links_.push_back(OverlayLink{a, b, model.delay_ms(a, b),
                                     model.bandwidth_kbps(), 1});
  };

  if (kind == OverlayKind::kNearestMesh) {
    for (PeerId p = 0; p < n; ++p) {
      std::vector<std::pair<double, PeerId>> by_delay;
      for (PeerId q = 0; q < n; ++q) {
        if (q != p) by_delay.emplace_back(model.delay_ms(p, q), q);
      }
      const std::size_t k = std::min(degree, by_delay.size());
      std::partial_sort(by_delay.begin(), by_delay.begin() + long(k),
                        by_delay.end());
      for (std::size_t i = 0; i < k; ++i) add_link(p, by_delay[i].second);
    }
  } else {
    wire_random(n, degree, rng, seen, add_link, &net.underwired_peers_);
  }
  add_connectivity_ring(n, rng, add_link);

  net.build_adjacency();
  return net;
}

void OverlayNetwork::build_adjacency() {
  const std::size_t n = peer_node_.size();
  offsets_.assign(n + 1, 0);
  for (const OverlayLink& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  adj_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (OverlayLinkId li = 0; li < links_.size(); ++li) {
    const OverlayLink& l = links_[li];
    adj_[cursor[l.a]++] = OverlayAdjacency{l.b, li};
    adj_[cursor[l.b]++] = OverlayAdjacency{l.a, li};
  }
  alive_.assign(n, true);
  live_count_ = n;
}

std::span<const OverlayAdjacency> OverlayNetwork::neighbors(PeerId p) const {
  SPIDER_REQUIRE(p < peer_node_.size());
  return std::span<const OverlayAdjacency>(adj_.data() + offsets_[p],
                                           offsets_[p + 1] - offsets_[p]);
}

bool OverlayNetwork::are_neighbors(PeerId a, PeerId b,
                                   double* out_delay) const {
  for (const OverlayAdjacency& adj : neighbors(a)) {
    if (adj.neighbor == b) {
      if (out_delay != nullptr) *out_delay = links_[adj.link].delay_ms;
      return true;
    }
  }
  return false;
}

double OverlayNetwork::mean_neighbor_delay(PeerId p) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const OverlayAdjacency& adj : neighbors(p)) {
    if (!alive_[adj.neighbor]) continue;
    sum += links_[adj.link].delay_ms;
    ++count;
  }
  return count == 0 ? 0.0 : sum / double(count);
}

void OverlayNetwork::set_alive(PeerId p, bool alive) {
  SPIDER_REQUIRE(p < alive_.size());
  if (alive_[p] == alive) return;
  alive_[p] = alive;
  live_count_ += alive ? 1 : std::size_t(-1);
  clear_route_caches();
}

void OverlayNetwork::clear_route_caches() {
  tree_cache_.clear();
  tree_lru_.clear();
  path_cache_.clear();
  path_lru_.clear();
  ++route_epoch_;  // every outstanding OverlayPathRef is now invalid
}

OverlayNetwork::RouteTree OverlayNetwork::compute_tree(PeerId src) const {
  const std::size_t n = peer_count();
  RouteTree tree;
  tree.dist.assign(n, std::numeric_limits<double>::infinity());
  tree.parent.assign(n, kInvalidOverlayLink);
  if (!alive_[src]) return tree;  // all invalid

  using QItem = std::pair<double, PeerId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  tree.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > tree.dist[u]) continue;
    for (const OverlayAdjacency& adj : neighbors(u)) {
      if (!alive_[adj.neighbor]) continue;
      const double nd = d + links_[adj.link].delay_ms;
      if (nd < tree.dist[adj.neighbor]) {
        tree.dist[adj.neighbor] = nd;
        tree.parent[adj.neighbor] = adj.link;
        pq.emplace(nd, adj.neighbor);
      }
    }
  }
  return tree;
}

const OverlayNetwork::RouteTree& OverlayNetwork::tree_for(PeerId src) {
  auto it = tree_cache_.find(src);
  if (it != tree_cache_.end()) {
    tree_lru_.splice(tree_lru_.begin(), tree_lru_, it->second.lru);
    return it->second;
  }
  // LRU, never the queried source: `src` is not cached, so the evicted
  // back of the recency list cannot be it. Tree eviction does not bump
  // the epoch — materialized paths own their data.
  while (tree_cache_.size() >= tree_cache_limit_ && !tree_lru_.empty()) {
    tree_cache_.erase(tree_lru_.back());
    tree_lru_.pop_back();
  }
  ++trees_computed_;
  tree_lru_.push_front(src);
  it = tree_cache_.emplace(src, compute_tree(src)).first;
  it->second.lru = tree_lru_.begin();
  return it->second;
}

OverlayPath OverlayNetwork::materialize(PeerId src, PeerId dst,
                                        const RouteTree& tree) const {
  OverlayPath path;
  if (tree.dist[dst] == std::numeric_limits<double>::infinity()) return path;
  path.valid = true;
  path.delay_ms = tree.dist[dst];
  PeerId cur = dst;
  while (cur != src) {
    const OverlayLinkId li = tree.parent[cur];
    path.links.push_back(li);
    path.capacity_kbps = std::min(path.capacity_kbps, links_[li].capacity_kbps);
    cur = links_[li].other(cur);
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

OverlayPathRef OverlayNetwork::route(PeerId src, PeerId dst) {
  SPIDER_REQUIRE(src < peer_count() && dst < peer_count());
  const util::PairKey<PeerId, PeerId> key{src, dst};
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) {
    path_lru_.splice(path_lru_.begin(), path_lru_, it->second.lru);
    return OverlayPathRef(&it->second.path, this, route_epoch_);
  }
  OverlayPath path = materialize(src, dst, tree_for(src));
  ++paths_built_;
  // Second-chance-free bounded LRU: evict the coldest pair(s). The cap is
  // >= 2 and the new entry lands at the front, so the path handed back is
  // never evicted by a subsequent insertion alone.
  while (path_cache_.size() >= path_cache_limit_ && !path_lru_.empty()) {
    path_cache_.erase(path_lru_.back());
    path_lru_.pop_back();
    ++route_epoch_;  // outstanding refs may now dangle: debug-check them
  }
  path_lru_.push_front(key);
  it = path_cache_.emplace(key, CachedPath{std::move(path), path_lru_.begin()})
           .first;
  return OverlayPathRef(&it->second.path, this, route_epoch_);
}

double OverlayNetwork::delay_ms(PeerId src, PeerId dst) {
  if (src == dst) return 0.0;
  return route(src, dst)->delay_ms;
}

double OverlayNetwork::estimated_delay_ms(PeerId src, PeerId dst) {
  if (src == dst) return 0.0;
  if (estimator_ != nullptr) {
    // Staleness invariant: the table was built over the full overlay and is
    // deliberately churn-oblivious — kill/revive does not refresh columns,
    // so hints for dead peers keep answering build-time delays. That is
    // sound because estimates only ever order/time *hints* (DHT locality,
    // discovery timing); candidate liveness is filtered per-probe and every
    // path that reaches a service graph goes through route(), which is
    // liveness-exact. The table must still cover the current peer space.
    SPIDER_DCHECK(estimator_->target_count() == peer_count());
    return estimator_->estimate_ms(src, dst);
  }
  return delay_ms(src, dst);
}

net::LandmarkTable::Column OverlayNetwork::overlay_sssp_column(
    std::uint32_t target) const {
  const RouteTree tree = compute_tree(PeerId(target));
  net::LandmarkTable::Column col;
  col.target = target;
  col.delay_ms = tree.dist;  // overlay layer: delays only
  return col;
}

void OverlayNetwork::build_estimator(std::size_t landmark_count,
                                     std::size_t jobs) {
  SPIDER_REQUIRE(landmark_count >= 1);
  // overlay_sssp_column computes a fresh tree without touching the route
  // caches, so concurrent columns are safe.
  estimator_ = std::make_unique<net::LandmarkTable>(net::LandmarkTable::build(
      peer_count(), landmark_count,
      [this](std::uint32_t target) { return overlay_sssp_column(target); },
      jobs));
}

bool OverlayNetwork::live_connected() const {
  if (live_count_ == 0) return false;
  PeerId start = kInvalidPeer;
  for (PeerId p = 0; p < peer_count(); ++p) {
    if (alive_[p]) {
      start = p;
      break;
    }
  }
  std::vector<bool> visited(peer_count(), false);
  std::vector<PeerId> stack{start};
  visited[start] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const PeerId u = stack.back();
    stack.pop_back();
    for (const OverlayAdjacency& adj : neighbors(u)) {
      if (alive_[adj.neighbor] && !visited[adj.neighbor]) {
        visited[adj.neighbor] = true;
        ++reached;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return reached == live_count_;
}

}  // namespace spider::overlay
