// Peer-to-peer service overlay (§2.3).
//
// The overlay is a directed-graph abstraction G = (V, E) over a set of
// peers.  Each overlay link corresponds to an IP-layer path; its delay is
// the underlying shortest-path delay and its capacity is the bottleneck
// bandwidth of that path.  The paper notes the composition system is
// orthogonal to the overlay topology (§2.3); we provide the two topologies
// it names — a topologically-aware mesh (k nearest peers by IP delay, after
// Ratnasamy et al. [20]) and a random/power-law wiring — plus a full mesh
// for prototype-scale (PlanetLab) runs.
//
// Peers can be marked dead (churn).  Overlay routing is min-delay Dijkstra
// over live peers; route caches are invalidated on liveness changes.
// Bandwidth *capacity* lives here; availability accounting (soft/confirmed
// reservations) is the core allocator's job.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/planetlab.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace spider::overlay {

/// Dense overlay peer index (not the IP node index).
using PeerId = std::uint32_t;
using OverlayLinkId = std::uint32_t;

constexpr PeerId kInvalidPeer = static_cast<PeerId>(-1);
constexpr OverlayLinkId kInvalidOverlayLink = static_cast<OverlayLinkId>(-1);

/// Undirected overlay link with metrics inherited from the IP path.
struct OverlayLink {
  PeerId a = kInvalidPeer;
  PeerId b = kInvalidPeer;
  double delay_ms = 0.0;
  double capacity_kbps = 0.0;
  std::uint32_t ip_hops = 1;

  PeerId other(PeerId p) const { return p == a ? b : a; }
};

struct OverlayAdjacency {
  PeerId neighbor = kInvalidPeer;
  OverlayLinkId link = kInvalidOverlayLink;
};

/// An overlay path: ordered link list plus aggregate metrics.
struct OverlayPath {
  std::vector<OverlayLinkId> links;  ///< empty for src == dst
  double delay_ms = std::numeric_limits<double>::infinity();
  double capacity_kbps = std::numeric_limits<double>::infinity();
  bool valid = false;
};

enum class OverlayKind {
  kNearestMesh,  ///< k nearest live peers by IP delay (topology-aware mesh)
  kRandom,       ///< k random neighbors
};

class OverlayNetwork {
 public:
  /// Builds an overlay over `peer_nodes` (IP node index per peer) using the
  /// given wiring; overlay link metrics come from shortest IP paths.
  static OverlayNetwork from_topology(const net::Topology& topo,
                                      net::Router& router,
                                      std::vector<net::NodeIdx> peer_nodes,
                                      OverlayKind kind, std::size_t degree,
                                      Rng& rng);

  /// Builds a degree-bounded overlay over a PlanetLab-style delay matrix
  /// (hosts == peers; IP hop count is 1 per link).
  static OverlayNetwork from_planetlab(const net::PlanetLabModel& model,
                                       OverlayKind kind, std::size_t degree,
                                       Rng& rng);

  std::size_t peer_count() const { return peer_node_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// IP node this peer sits on (peer index itself for PlanetLab builds).
  net::NodeIdx ip_node(PeerId p) const { return peer_node_.at(p); }

  const OverlayLink& link(OverlayLinkId l) const { return links_.at(l); }
  std::span<const OverlayAdjacency> neighbors(PeerId p) const;

  bool alive(PeerId p) const { return alive_.at(p); }

  /// True if a and b share an overlay link; returns the link's delay via
  /// `out_delay` when provided.
  bool are_neighbors(PeerId a, PeerId b, double* out_delay = nullptr) const;

  /// Mean delay of a peer's live overlay links (0 if none) — the coarse
  /// "how far is the world" yardstick a peer can derive locally.
  double mean_neighbor_delay(PeerId p) const;
  std::size_t live_count() const { return live_count_; }
  /// Marks a peer dead/alive and invalidates route caches.
  void set_alive(PeerId p, bool alive);

  /// Min-delay overlay path across live peers. Dead endpoints or a
  /// partitioned pair yield `valid == false`. Results are cached per
  /// source until liveness changes.
  const OverlayPath& route(PeerId src, PeerId dst);

  /// Caps the number of sources with cached routes (default: unbounded,
  /// preserving exact historical behaviour). At the cap the whole cache
  /// is dropped before the next source is computed — memory/recompute
  /// cost changes only, never path results. With a cap set, a reference
  /// returned by route() stays valid only until the next route() call
  /// for an uncached source (every route() call while one probe hop is
  /// processed shares that hop's source, so BCP is unaffected); the
  /// unbounded default never invalidates.
  void set_route_cache_limit(std::size_t max_sources) {
    route_cache_limit_ = max_sources;
  }

  /// Direct-delay lookup: delay of overlay link if adjacent, otherwise the
  /// routed path delay (infinity if unreachable).
  double delay_ms(PeerId src, PeerId dst);

  /// True if the overlay graph restricted to live peers is connected.
  bool live_connected() const;

 private:
  OverlayNetwork() = default;
  void build_adjacency();
  void compute_routes_from(PeerId src);

  std::vector<net::NodeIdx> peer_node_;
  std::vector<OverlayLink> links_;
  std::vector<std::uint32_t> offsets_;
  std::vector<OverlayAdjacency> adj_;
  std::vector<bool> alive_;
  std::size_t live_count_ = 0;

  // Per-source routed paths; invalidated wholesale on liveness changes.
  std::unordered_map<PeerId, std::vector<OverlayPath>> route_cache_;
  std::size_t route_cache_limit_ = std::size_t(-1);
};

}  // namespace spider::overlay
