// Peer-to-peer service overlay (§2.3).
//
// The overlay is a directed-graph abstraction G = (V, E) over a set of
// peers.  Each overlay link corresponds to an IP-layer path; its delay is
// the underlying shortest-path delay and its capacity is the bottleneck
// bandwidth of that path.  The paper notes the composition system is
// orthogonal to the overlay topology (§2.3); we provide the two topologies
// it names — a topologically-aware mesh (k nearest peers by IP delay, after
// Ratnasamy et al. [20]) and a random/power-law wiring — plus a full mesh
// for prototype-scale (PlanetLab) runs.
//
// Two-tier latency API (§5h): `estimated_delay_ms` answers cheap
// triangulated estimates from a k-landmark table (exact when no estimator
// is attached — the byte-identical legacy mode); `route` computes exact
// min-delay paths lazily, per source, caching Dijkstra *trees* in a
// bounded LRU and materializing per-(src,dst) paths on demand.  Million-
// peer worlds are built through `from_topology_estimated`, which never
// runs a per-peer IP Dijkstra: overlay link metrics come from real
// through-landmark paths and the nearest-mesh scan is sharded by nearest
// landmark instead of scanning all n peers.
//
// Peers can be marked dead (churn).  Overlay routing is min-delay Dijkstra
// over live peers; route caches are invalidated on liveness changes.
// Bandwidth *capacity* lives here; availability accounting (soft/confirmed
// reservations) is the core allocator's job.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/landmark.hpp"
#include "net/planetlab.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "util/keys.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace spider::overlay {

/// Dense overlay peer index (not the IP node index).
using PeerId = std::uint32_t;
using OverlayLinkId = std::uint32_t;

constexpr PeerId kInvalidPeer = static_cast<PeerId>(-1);
constexpr OverlayLinkId kInvalidOverlayLink = static_cast<OverlayLinkId>(-1);

/// Undirected {a, b} dedup key for overlay links (struct key, not the
/// shift-packed uint64 of the PR 1 / PR 4 collision family).
using PeerPairKey = util::UnorderedPairKey<PeerId>;
using PeerPairKeyHash = util::UnorderedPairKeyHash;

/// Undirected overlay link with metrics inherited from the IP path.
struct OverlayLink {
  PeerId a = kInvalidPeer;
  PeerId b = kInvalidPeer;
  double delay_ms = 0.0;
  double capacity_kbps = 0.0;
  std::uint32_t ip_hops = 1;

  PeerId other(PeerId p) const { return p == a ? b : a; }
};

struct OverlayAdjacency {
  PeerId neighbor = kInvalidPeer;
  OverlayLinkId link = kInvalidOverlayLink;
};

/// An overlay path: ordered link list plus aggregate metrics.
struct OverlayPath {
  std::vector<OverlayLinkId> links;  ///< empty for src == dst
  double delay_ms = std::numeric_limits<double>::infinity();
  double capacity_kbps = std::numeric_limits<double>::infinity();
  bool valid = false;
};

class OverlayNetwork;

/// Checked handle to a cached OverlayPath returned by route(). The
/// pointee lives in the overlay's bounded path cache: it stays valid
/// until the cache evicts it, which cannot happen while the handle is
/// the most recently returned one (the LRU never evicts the entry just
/// touched) but can once enough *other* pairs are routed. The handle
/// snapshots the cache epoch and checks it on every dereference (one
/// integer compare — noise next to the cache lookup that produced it),
/// so holding a handle across an eviction aborts in every build type
/// instead of silently reading freed memory — the footgun the old
/// `const OverlayPath&` return invited.
class OverlayPathRef {
 public:
  OverlayPathRef() = default;

  const OverlayPath& get() const;
  const OverlayPath& operator*() const { return get(); }
  const OverlayPath* operator->() const { return &get(); }
  bool has_value() const { return path_ != nullptr; }

 private:
  friend class OverlayNetwork;
  OverlayPathRef(const OverlayPath* path, const OverlayNetwork* net,
                 std::uint64_t epoch)
      : path_(path), net_(net), epoch_(epoch) {}

  const OverlayPath* path_ = nullptr;
  const OverlayNetwork* net_ = nullptr;
  std::uint64_t epoch_ = 0;  // path cache epoch at hand-out time
};

enum class OverlayKind {
  kNearestMesh,  ///< k nearest live peers by IP delay (topology-aware mesh)
  kRandom,       ///< k random neighbors
};

class OverlayNetwork {
 public:
  /// Builds an overlay over `peer_nodes` (IP node index per peer) using the
  /// given wiring; overlay link metrics come from shortest IP paths.
  static OverlayNetwork from_topology(const net::Topology& topo,
                                      net::Router& router,
                                      std::vector<net::NodeIdx> peer_nodes,
                                      OverlayKind kind, std::size_t degree,
                                      Rng& rng);

  /// Landmark-estimated build for large worlds: no per-peer IP Dijkstra
  /// is ever run. `landmark_count` IP-layer landmarks are sampled over
  /// the peer nodes; overlay link metrics are the real through-landmark
  /// paths (triangulation upper bound — admissible, never optimistic),
  /// and the nearest-mesh candidate scan is sharded by nearest landmark
  /// so construction is O(n · degree · k) instead of O(n²).
  /// `jobs > 1` shards construction across a WorkerPool — landmark SSSP
  /// columns in speculative waves, then nearest-landmark bucket
  /// assignment, candidate ranking and link pricing in per-peer slots
  /// merged in bucket order — with byte-identical links at any job count
  /// (DESIGN.md §5k). Random wiring and the connectivity ring stay serial
  /// (they consume the sequential RNG stream).
  static OverlayNetwork from_topology_estimated(
      const net::Topology& topo, std::vector<net::NodeIdx> peer_nodes,
      OverlayKind kind, std::size_t degree, Rng& rng,
      std::size_t landmark_count, std::size_t jobs = 1);

  /// Builds a degree-bounded overlay over a PlanetLab-style delay matrix
  /// (hosts == peers; IP hop count is 1 per link).
  static OverlayNetwork from_planetlab(const net::PlanetLabModel& model,
                                       OverlayKind kind, std::size_t degree,
                                       Rng& rng);

  std::size_t peer_count() const { return peer_node_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// IP node this peer sits on (peer index itself for PlanetLab builds).
  net::NodeIdx ip_node(PeerId p) const { return peer_node_.at(p); }

  const OverlayLink& link(OverlayLinkId l) const { return links_.at(l); }
  std::span<const OverlayAdjacency> neighbors(PeerId p) const;

  bool alive(PeerId p) const { return alive_.at(p); }

  /// True if a and b share an overlay link; returns the link's delay via
  /// `out_delay` when provided.
  bool are_neighbors(PeerId a, PeerId b, double* out_delay = nullptr) const;

  /// Mean delay of a peer's live overlay links (0 if none) — the coarse
  /// "how far is the world" yardstick a peer can derive locally.
  double mean_neighbor_delay(PeerId p) const;
  std::size_t live_count() const { return live_count_; }
  /// Marks a peer dead/alive and invalidates route caches.
  void set_alive(PeerId p, bool alive);

  /// Peers whose random wiring ended up below the requested degree even
  /// after the deterministic unused-pair fallback (i.e. they were already
  /// adjacent to every other peer). Zero in every non-degenerate world.
  std::size_t underwired_peers() const { return underwired_peers_; }

  /// Min-delay overlay path across live peers. Dead endpoints or a
  /// partitioned pair yield `valid == false`. The handle points into a
  /// bounded per-pair LRU cache; see OverlayPathRef for its lifetime.
  OverlayPathRef route(PeerId src, PeerId dst);

  /// Caps the number of sources with cached Dijkstra trees (default:
  /// unbounded, preserving exact historical route results). Eviction is
  /// LRU — never the source being queried, never the whole cache (the
  /// old epoch-clear evicted its own hot source, thrashing on
  /// alternating sources). Memory/recompute cost only, never results.
  void set_route_cache_limit(std::size_t max_sources) {
    tree_cache_limit_ = max_sources == 0 ? 1 : max_sources;
  }

  /// Caps the per-(src,dst) materialized-path LRU (min 2, so the path
  /// just returned is never evicted by its own insertion).
  void set_route_path_cache_limit(std::size_t max_paths) {
    path_cache_limit_ = max_paths < 2 ? 2 : max_paths;
  }

  /// Recompute/regression counters: Dijkstra trees built and paths
  /// materialized since construction. A thrashing capped cache shows up
  /// as trees_computed growing with queries instead of distinct sources.
  std::uint64_t route_trees_computed() const { return trees_computed_; }
  std::uint64_t route_paths_materialized() const { return paths_built_; }
  /// Epoch of the path cache: bumped whenever a cached path is evicted or
  /// the caches are cleared. OverlayPathRef DCHECKs against it.
  std::uint64_t route_epoch() const { return route_epoch_; }

  /// Exact direct-delay lookup: the routed min-delay path's delay
  /// (infinity if unreachable). Computes a Dijkstra tree on a cache miss.
  double delay_ms(PeerId src, PeerId dst);

  /// Two-tier estimate: with an estimator attached, the O(k) landmark
  /// triangulation upper bound (the delay of a real path through the
  /// best landmark, computed over the full overlay at build time and
  /// unaware of later churn); without one, exactly delay_ms(). This is
  /// the call for proximity hints (DHT locality, discovery timing) —
  /// anything that ends up in a candidate service graph must route().
  double estimated_delay_ms(PeerId src, PeerId dst);

  /// Attaches a k-landmark estimator over the *overlay* graph (farthest-
  /// point sampling over peers, one overlay Dijkstra per landmark).
  /// `jobs > 1` computes columns in parallel speculative waves — same
  /// table at any job count (the per-column Dijkstra is const and touches
  /// no caches).
  void build_estimator(std::size_t landmark_count, std::size_t jobs = 1);
  bool has_estimator() const { return estimator_ != nullptr; }
  const net::LandmarkTable* estimator() const { return estimator_.get(); }

  /// Single-source min-delay column over live peers. Computes a fresh
  /// Dijkstra tree without touching the route caches, so concurrent calls
  /// are safe; build_estimator and CommunityMap::build both feed it to
  /// net::LandmarkTable::build.
  net::LandmarkTable::Column sssp_column(PeerId target) const {
    return overlay_sssp_column(target);
  }

  /// True if the overlay graph restricted to live peers is connected.
  bool live_connected() const;

 private:
  OverlayNetwork() = default;
  void build_adjacency();

  /// Single-source Dijkstra over live peers: parallel dist/parent arrays.
  struct RouteTree {
    std::vector<double> dist;
    std::vector<OverlayLinkId> parent;
    std::list<PeerId>::iterator lru;
  };

  const RouteTree& tree_for(PeerId src);
  RouteTree compute_tree(PeerId src) const;
  OverlayPath materialize(PeerId src, PeerId dst, const RouteTree& tree) const;
  void clear_route_caches();
  net::LandmarkTable::Column overlay_sssp_column(std::uint32_t target) const;

  std::vector<net::NodeIdx> peer_node_;
  std::vector<OverlayLink> links_;
  std::vector<std::uint32_t> offsets_;
  std::vector<OverlayAdjacency> adj_;
  std::vector<bool> alive_;
  std::size_t live_count_ = 0;
  std::size_t underwired_peers_ = 0;

  // Lazy exact routing state: per-source Dijkstra trees (12 bytes/peer,
  // not n OverlayPath objects) in a source-LRU, plus a bounded LRU of
  // materialized per-pair paths. Both invalidated on liveness changes.
  std::unordered_map<PeerId, RouteTree> tree_cache_;
  std::list<PeerId> tree_lru_;  // most-recently-queried source first
  std::size_t tree_cache_limit_ = std::size_t(-1);

  struct CachedPath {
    OverlayPath path;
    std::list<util::PairKey<PeerId, PeerId>>::iterator lru;
  };
  std::unordered_map<util::PairKey<PeerId, PeerId>, CachedPath,
                     util::PairKeyHash>
      path_cache_;
  std::list<util::PairKey<PeerId, PeerId>> path_lru_;
  std::size_t path_cache_limit_ = 1u << 16;

  std::uint64_t trees_computed_ = 0;
  std::uint64_t paths_built_ = 0;
  std::uint64_t route_epoch_ = 0;

  std::unique_ptr<net::LandmarkTable> estimator_;
};

inline const OverlayPath& OverlayPathRef::get() const {
  SPIDER_REQUIRE(path_ != nullptr);
  SPIDER_REQUIRE_MSG(net_ == nullptr || epoch_ == net_->route_epoch(),
                     "OverlayPathRef outlived a route-cache eviction");
  return *path_;
}

}  // namespace spider::overlay
