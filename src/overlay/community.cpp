#include "overlay/community.hpp"

#include <limits>

#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::overlay {

CommunityMap CommunityMap::build(const OverlayNetwork& net,
                                 std::size_t community_count,
                                 std::size_t jobs) {
  const std::size_t n = net.peer_count();
  SPIDER_REQUIRE(n >= 1);
  std::size_t count = community_count < 1 ? 1 : community_count;
  if (count > n) count = n;

  CommunityMap map;
  // Head selection: farthest-point sampling over overlay SSSP columns —
  // the exact machinery (and determinism argument) of build_estimator.
  map.heads_ = net::LandmarkTable::build(
      n, count, [&net](std::uint32_t target) { return net.sssp_column(target); },
      jobs);

  // Peer assignment: nearest head by overlay delay, lowest community id
  // on ties, community 0 for peers no head reaches. Pure function of the
  // head columns, one preallocated slot per peer — byte-identical at any
  // job count.
  map.community_of_.assign(n, 0);
  const std::size_t heads = map.heads_.landmark_count();
  util::parallel_for_each(jobs, n, [&](std::size_t p) {
    double best = std::numeric_limits<double>::infinity();
    CommunityId best_c = 0;
    for (std::size_t c = 0; c < heads; ++c) {
      const double d = map.heads_.landmark_delay_ms(c, std::uint32_t(p));
      if (d < best) {
        best = d;
        best_c = CommunityId(c);
      }
    }
    map.community_of_[p] = best_c;
  });

  // Member lists folded serially in peer order: ascending PeerId within
  // each community, independent of assignment scheduling.
  map.members_.assign(heads, {});
  for (PeerId p = 0; p < n; ++p) {
    map.members_[map.community_of_[p]].push_back(p);
  }
  return map;
}

std::uint64_t CommunityMap::fingerprint() const {
  std::uint64_t acc = 0x51de9c05ULL;
  for (std::size_t p = 0; p < community_of_.size(); ++p) {
    acc = util::mix64(acc ^ util::mix64((std::uint64_t(p) << 32) |
                                        community_of_[p]));
  }
  return acc;
}

}  // namespace spider::overlay
