// Deterministic overlay partitioning into latency communities (§2.3 + the
// community-composition line of work in PAPERS.md).
//
// A CommunityMap clusters the peers of an OverlayNetwork around k
// community heads chosen by the same deterministic farthest-point
// sampling the landmark estimator uses (net::LandmarkTable::build over
// overlay SSSP columns): head 0 is peer 0, each further head is the peer
// farthest (max-min delay) from the heads chosen so far, ties toward the
// lowest index. Every peer then joins the community whose head is
// nearest by overlay delay (argmin over head columns, lowest community id
// on ties, community 0 when unreachable from every head) — the same
// nearest-landmark bucket rule from_topology_estimated shards by, so a
// community is a latency-coherent neighborhood, not an arbitrary hash
// bucket.
//
// Determinism recipe (DESIGN.md §5l): head selection reuses the
// speculative-wave LandmarkTable builder (byte-identical at any job
// count); peer assignment writes one preallocated slot per peer under
// util::parallel_for_each and is a pure function of the head columns;
// member lists are folded serially in peer order afterwards. The result
// is byte-identical at any `jobs`, which `fingerprint()` pins in tests
// and bench output.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/landmark.hpp"
#include "overlay/overlay.hpp"

namespace spider::overlay {

/// Dense community index, 0..community_count-1.
using CommunityId = std::uint32_t;

class CommunityMap {
 public:
  /// Partitions `net`'s peers into (up to) `community_count` communities.
  /// The count is clamped to [1, peer_count]. `jobs > 1` parallelizes
  /// both head selection and peer assignment with byte-identical output.
  static CommunityMap build(const OverlayNetwork& net,
                            std::size_t community_count, std::size_t jobs = 1);

  std::size_t community_count() const { return members_.size(); }
  std::size_t peer_count() const { return community_of_.size(); }

  CommunityId community_of(PeerId p) const { return community_of_.at(p); }

  /// Members of community `c`, ascending by PeerId.
  std::span<const PeerId> members(CommunityId c) const {
    return members_.at(c);
  }

  /// The community's head peer (its landmark/rendezvous point).
  PeerId head(CommunityId c) const {
    return PeerId(heads_.landmark_target(c));
  }

  /// Build-time overlay delay from community `c`'s head to peer `p` —
  /// the coarse tier's QoS yardstick (churn-oblivious, like every
  /// estimator column; see OverlayNetwork::estimated_delay_ms).
  double head_delay_ms(CommunityId c, PeerId p) const {
    return heads_.landmark_delay_ms(c, p);
  }

  /// Order-sensitive digest of the full assignment vector; equal at any
  /// job count by construction, and pinned by determinism tests and the
  /// bench_communities output rows.
  std::uint64_t fingerprint() const;

 private:
  CommunityMap() = default;

  net::LandmarkTable heads_;             // head columns (delays per peer)
  std::vector<CommunityId> community_of_;
  std::vector<std::vector<PeerId>> members_;
};

}  // namespace spider::overlay
