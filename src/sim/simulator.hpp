// Discrete-event simulation engine.
//
// SpiderNet's protocols (DHT routing, composition probing, backup liveness
// probing, churn) all execute as events over virtual time.  The engine is a
// single-threaded priority-queue DES:
//
//   * Virtual time is a double in milliseconds; nothing reads wall clock.
//   * Events at equal timestamps fire in schedule order (a monotonically
//     increasing sequence number breaks ties), so runs are deterministic.
//   * Cancellation is O(1) via tombstones; cancelled events are skipped and
//     reclaimed lazily when popped.
//
// This mirrors the paper's "event-driven P2P service overlay simulator
// using C++" (§6.1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/require.hpp"

namespace spider::sim {

/// Virtual time in milliseconds.
using Time = double;

/// Handle for a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

constexpr EventId kInvalidEvent = 0;

/// Single-threaded deterministic discrete-event simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. 0 before any event has run.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` after a relative delay `dt` (must be >= 0).
  EventId schedule_after(Time dt, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or invalid id is
  /// a no-op (returns false).
  bool cancel(EventId id);

  /// Runs until the event queue drains. Returns the final virtual time.
  Time run();

  /// Runs events with timestamp <= `deadline`; leaves later events queued
  /// and advances now() to `deadline`.
  Time run_until(Time deadline);

  /// Executes at most `max_events` additional events. Returns number run.
  std::size_t step(std::size_t max_events = 1);

  bool empty() const { return pending_ids_.empty(); }
  std::size_t pending() const { return pending_ids_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;  // FIFO within a timestamp
    }
  };

  bool pop_and_run();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> pending_ids_;  // live (not fired, not cancelled)
  std::unordered_set<EventId> cancelled_;    // tombstones awaiting pop
  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

/// Repeating timer built on the simulator.
///
/// Used for periodic processes: backup-graph liveness probing, centralized
/// global-state refresh, churn ticks.  The callback may call stop(); the
/// timer object must outlive its scheduled events or be stopped first.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& simulator, Time period,
                std::function<void()> callback)
      : sim_(simulator), period_(period), callback_(std::move(callback)) {
    SPIDER_REQUIRE(period_ > 0);
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Schedules the first tick one period from now. No-op if running.
  void start();
  /// Schedules the first tick `first_delay` from now (>= 0), then every
  /// `period`. Lets co-periodic processes be phase-shifted so their ticks
  /// interleave deterministically instead of colliding. No-op if running.
  void start(Time first_delay);
  /// Cancels the pending tick. Safe to call from inside the callback.
  void stop();
  bool running() const { return running_; }

 private:
  void tick();

  Simulator& sim_;
  Time period_;
  std::function<void()> callback_;
  EventId pending_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace spider::sim
