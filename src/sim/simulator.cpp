#include "sim/simulator.hpp"

#include <utility>

namespace spider::sim {

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  SPIDER_REQUIRE_MSG(t >= now_, "cannot schedule into the past");
  SPIDER_REQUIRE(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Time dt, std::function<void()> fn) {
  SPIDER_REQUIRE(dt >= 0);
  return schedule_at(now_ + dt, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // We cannot remove from the middle of a binary heap; tombstone instead.
  // Only ids that are still pending accept a tombstone, so double-cancel
  // and cancel-after-fire are safe no-ops.
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the handler is moved out via const_cast
    // which is safe because we pop the entry immediately afterwards.
    auto& top = const_cast<Entry&>(queue_.top());
    const Time at = top.at;
    const EventId id = top.id;
    std::function<void()> fn = std::move(top.fn);
    queue_.pop();
    if (cancelled_.erase(id) > 0) continue;  // tombstoned
    now_ = at;
    pending_ids_.erase(id);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

Time Simulator::run() {
  while (pop_and_run()) {
  }
  return now_;
}

Time Simulator::run_until(Time deadline) {
  SPIDER_REQUIRE(deadline >= now_);
  while (!queue_.empty()) {
    // Skip tombstones at the head so the deadline check sees a live event.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > deadline) break;
    pop_and_run();
  }
  now_ = deadline;
  return now_;
}

std::size_t Simulator::step(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && pop_and_run()) ++ran;
  return ran;
}

void PeriodicTimer::start() { start(period_); }

void PeriodicTimer::start(Time first_delay) {
  SPIDER_REQUIRE(first_delay >= 0);
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_after(first_delay, [this] { tick(); });
}

void PeriodicTimer::stop() {
  running_ = false;
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void PeriodicTimer::tick() {
  pending_ = kInvalidEvent;
  callback_();
  // The callback may have called stop(); only re-arm while running.
  if (running_ && pending_ == kInvalidEvent) {
    pending_ = sim_.schedule_after(period_, [this] { tick(); });
  }
}

}  // namespace spider::sim
