#include "dht/node_id.hpp"

#include "util/require.hpp"
#include "util/sha1.hpp"

namespace spider::dht {

NodeId NodeId::hash_of(std::string_view text) {
  const Sha1Digest d = sha1(text);
  std::uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | d[std::size_t(i)];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | d[std::size_t(i)];
  return from_parts(hi, lo);
}

NodeId NodeId::random(Rng& rng) { return from_parts(rng(), rng()); }

int NodeId::digit(int i) const {
  SPIDER_DCHECK(i >= 0 && i < kDigitsPerId);
  const int shift = (kDigitsPerId - 1 - i) * kDigitBits;
  return int((value_ >> shift) & (kDigitRadix - 1));
}

int NodeId::shared_prefix(const NodeId& other) const {
  for (int i = 0; i < kDigitsPerId; ++i) {
    if (digit(i) != other.digit(i)) return i;
  }
  return kDigitsPerId;
}

unsigned __int128 NodeId::ring_distance(const NodeId& a, const NodeId& b) {
  const unsigned __int128 diff = a.value_ > b.value_ ? a.value_ - b.value_
                                                     : b.value_ - a.value_;
  const unsigned __int128 wrap = ~diff + 1;  // 2^128 - diff (mod 2^128)
  return diff < wrap ? diff : wrap;
}

unsigned __int128 NodeId::clockwise(const NodeId& a, const NodeId& b) {
  return b.value_ - a.value_;  // mod 2^128 wraparound is exactly what we want
}

std::string NodeId::to_string() const {
  static const char* hex = "0123456789abcdef";
  std::string out(kDigitsPerId, '0');
  for (int i = 0; i < kDigitsPerId; ++i) out[std::size_t(i)] = hex[digit(i)];
  return out;
}

}  // namespace spider::dht
