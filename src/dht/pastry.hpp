// Pastry DHT network (§3's decentralized service discovery substrate).
//
// PastryNetwork simulates a population of Pastry nodes, one per overlay
// peer, and executes the protocol's control flows:
//
//  * prefix routing with leaf-set delivery (route),
//  * the join protocol (routing-table rows harvested from the join path,
//    leaf set copied from the numerically closest node, announcements to
//    all acquired contacts),
//  * graceful leave (key handoff + removal notices) and abrupt failure
//    (lazy detection and repair during subsequent routing),
//  * replicated key/value storage (put/get with k-replication to leaf-set
//    successors, soft-state `refresh_replicas` for post-churn healing).
//
// Simulation shortcut (documented in DESIGN.md): protocol state changes
// are applied synchronously; *latency* is derived by the caller from the
// returned hop paths (each hop is one overlay message).  Message counts
// are tracked for the overhead experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dht/routing_state.hpp"
#include "overlay/overlay.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
}  // namespace spider::obs

namespace spider::dht {

using overlay::PeerId;

/// Result of a routed operation: the peer hop sequence, starting at the
/// requester and ending at the delivery node.
struct RouteResult {
  std::vector<PeerId> path;
  bool ok = false;
  PeerId target() const { return path.empty() ? overlay::kInvalidPeer : path.back(); }
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

struct GetResult {
  std::vector<std::string> values;
  std::vector<PeerId> path;
  bool found = false;
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

class PastryNetwork {
 public:
  /// leaf_set_size is L (split into L/2 per side); replication is the
  /// number of nodes holding each key (owner + replicas).
  explicit PastryNetwork(int leaf_set_size = 16, int replication = 3);

  /// Enables Pastry's proximity-aware routing table maintenance: when a
  /// canonical cell is contested, the entry closer to the owner (by this
  /// metric, e.g. overlay delay) wins. Routing stays prefix-correct; the
  /// heuristic only lowers per-hop transit cost.
  void set_proximity(std::function<double(PeerId, PeerId)> proximity_fn) {
    proximity_fn_ = std::move(proximity_fn);
  }

  // ----- membership -----

  /// Adds the first node (no routing possible yet).
  void bootstrap(PeerId peer, NodeId id);

  /// Joins `peer` through `bootstrap_peer`. Returns the join route.
  RouteResult join(PeerId peer, NodeId id, PeerId bootstrap_peer);

  /// Offline world construction: loads every (id, peer) pair at once and
  /// builds canonical routing state straight from the sorted id space —
  /// leaf sets are the exact L/2 ring-closest per side, and each routing
  /// cell holds the proximity-argmin (first-in-id-order without a
  /// proximity metric) over its candidate subrange — instead of N routed
  /// joins. Construction is out-of-band, so no protocol messages are
  /// counted. Requires an empty network and ids sorted ascending,
  /// distinct.
  ///
  /// `jobs > 1` fills per-node state on a WorkerPool (each node writes
  /// only itself; the sorted array is shared read-only) — identical state
  /// at any job count, but the proximity callback must then be
  /// thread-safe. `candidate_budget` caps how many candidates a contested
  /// cell scans (the window of the subrange numerically closest to the
  /// owner); 0 scans the full subrange, which is what the join-parity
  /// oracle test uses.
  void bulk_load(const std::vector<std::pair<NodeId, PeerId>>& entries,
                 std::size_t jobs = 1, std::size_t candidate_budget = 8);

  /// Graceful departure: keys handed to the ring successor, contacts
  /// notified.
  void leave(PeerId peer);

  /// Abrupt failure: state and stored keys on `peer` are lost; other nodes
  /// discover the failure lazily while routing.
  void fail(PeerId peer);

  bool alive(PeerId peer) const;
  std::size_t live_count() const { return live_count_; }
  NodeId id_of(PeerId peer) const;
  std::optional<PeerId> peer_of(NodeId id) const;

  // ----- routing -----

  /// Routes a message from `from` toward `key`; delivers at the live node
  /// numerically closest to the key (per protocol state). Repairs stale
  /// entries encountered on the way.
  RouteResult route(PeerId from, NodeId key);

  /// Route computation with no side effects — no lazy repair, no message
  /// or metric accounting. On an all-live network route() mutates no
  /// protocol state either, so both return identical paths there; this
  /// variant is additionally safe to call concurrently. bulk_put's
  /// parallel phase runs on it.
  RouteResult route_readonly(PeerId from, NodeId key) const;

  // ----- replicated storage -----

  /// Appends `value` to the list stored under `key` (idempotent for equal
  /// values), replicating to the owner's leaf-set successors.
  RouteResult put(PeerId from, NodeId key, const std::string& value);

  /// Fetches the value list under `key`. Falls back to the delivery node's
  /// leaf set replicas if the owner lost the key to churn.
  GetResult get(PeerId from, NodeId key);

  struct BulkPutItem {
    PeerId from = 0;
    NodeId key;
    std::string value;
  };

  /// Byte-equivalent to calling put() for each item in order — same
  /// stores, same message and metric totals — but the route computations
  /// run read-only across `jobs` workers first (routing state never
  /// depends on stores, so precomputed routes equal the sequential ones).
  /// Requires every node alive: lazy repair must have nothing to do.
  void bulk_put(const std::vector<BulkPutItem>& items, std::size_t jobs = 1);

  /// Removes `value` from `key`'s list on all live replicas holding it.
  void erase(NodeId key, const std::string& value);

  /// Soft-state anti-entropy: every live node re-replicates the keys it
  /// stores to the current owner + successors and drops keys it no longer
  /// has any claim to. Call periodically under churn (the paper's service
  /// registrations are soft state refreshed by their owners).
  void refresh_replicas();

  /// Periodic leaf-set maintenance (Pastry's leaf set exchange): every
  /// live node prunes dead entries and pulls replacements from surviving
  /// members' leaf sets for `rounds` gossip rounds. Heals the routing
  /// state after bursts of simultaneous failures that lazy per-lookup
  /// repair alone cannot absorb.
  void stabilize(int rounds = 2);

  // ----- introspection / verification -----

  /// Ground-truth owner: live node numerically closest to the key. Used by
  /// tests to validate protocol routing; never used by the protocol.
  PeerId owner_oracle(NodeId key) const;

  std::uint64_t messages_sent() const { return messages_; }
  void reset_message_counter() { messages_ = 0; }

  /// Attaches a metrics registry (null detaches). Publishes cumulative
  /// "dht.*" counters: routed operations and the hops they took.
  void set_metrics(obs::MetricsRegistry* metrics);

  const LeafSet& leaf_set(PeerId peer) const;
  const RoutingTable& routing_table(PeerId peer) const;

 private:
  struct Node {
    NodeId id;
    PeerId peer;
    bool alive = true;
    LeafSet leaves;
    RoutingTable table;
    // key -> list of distinct values (the paper's metadata lists).
    std::unordered_map<NodeId, std::vector<std::string>, NodeIdHash> store;

    Node(NodeId node_id, PeerId p, int leaf_half)
        : id(node_id), peer(p), leaves(node_id, leaf_half), table(node_id) {}
  };

  Node& node(PeerId peer);
  const Node& node(PeerId peer) const;
  Node& node_by_id(NodeId id);
  bool alive_id(NodeId id) const;

  /// One protocol routing step at `cur` toward `key`; returns the next
  /// node id or nullopt when `cur` is the delivery node. Removes dead
  /// entries it trips over (lazy repair).
  std::optional<NodeId> next_hop(Node& cur, NodeId key);
  /// next_hop minus the repair writes; identical decisions when every
  /// node is alive (the repair branches are then unreachable).
  std::optional<NodeId> next_hop_readonly(const Node& cur, NodeId key) const;
  /// Fills one bulk-loaded node's leaf set and routing table from the
  /// sorted id array (bulk_load's per-node worker body).
  void bulk_fill_node(Node& x,
                      const std::vector<std::pair<NodeId, PeerId>>& entries,
                      std::size_t index, std::size_t candidate_budget);

  /// Inserts `who` into `target`'s routing table, applying the proximity
  /// preference when the canonical cell is already occupied.
  void table_insert(Node& target, NodeId who);
  /// Introduces `who` into `target`'s leaf set and routing table.
  void introduce(Node& target, NodeId who);
  /// Removes `who` from `target`'s state and repairs the leaf set from
  /// surviving members' leaf sets.
  void expel(Node& target, NodeId who);
  void repair_leafset(Node& n);

  /// Stores value at the owner node and its replication-1 successors.
  void store_at_replicas(Node& owner, NodeId key, const std::string& value);
  static void append_unique(std::vector<std::string>& list,
                            const std::string& value);

  int leaf_half_;
  int replication_;
  std::function<double(PeerId, PeerId)> proximity_fn_;
  std::unordered_map<PeerId, Node> nodes_;
  std::map<NodeId, PeerId> ring_;  // all (incl. dead) for oracle + id map
  std::size_t live_count_ = 0;
  std::uint64_t messages_ = 0;

  // Observability (all null when no registry is attached).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_routes_ = nullptr;
  obs::Counter* m_route_hops_ = nullptr;
};

}  // namespace spider::dht
