// Per-node Pastry routing state: leaf set and routing table.
//
// The leaf set holds the L/2 numerically closest smaller and L/2 closest
// larger node ids on the ring — the state that guarantees correct delivery.
// The routing table holds, for each prefix length `row` and digit `col`, a
// node sharing `row` digits with the owner and whose next digit is `col` —
// the state that gives O(log N) hops.
//
// Both structures are pure containers: liveness checks and repair live in
// PastryNetwork, which simulates the RPC layer.
#pragma once

#include <optional>
#include <vector>

#include "dht/node_id.hpp"

namespace spider::dht {

/// The L/2 + L/2 ring-closest neighbors of a node.
class LeafSet {
 public:
  LeafSet(NodeId self, int half_size) : self_(self), half_(half_size) {
    SPIDER_REQUIRE(half_size >= 1);
  }

  NodeId self() const { return self_; }

  /// Inserts a node id; keeps only the half_ closest per side. Self and
  /// duplicates are ignored. Returns true if the set changed.
  bool insert(NodeId id);
  /// Removes an id from either side. Returns true if present.
  bool remove(NodeId id);
  bool contains(NodeId id) const;

  /// All members (both sides), unsorted.
  std::vector<NodeId> members() const;
  std::size_t size() const { return cw_.size() + ccw_.size(); }
  bool full_side(bool clockwise) const {
    return (clockwise ? cw_ : ccw_).size() >= std::size_t(half_);
  }

  /// True if `key` falls within the id range spanned by the leaf set
  /// (including self). A side with spare capacity spans to infinity on
  /// that side — with < L/2 members the node knows the entire ring arc.
  bool covers(NodeId key) const;

  /// Member (or self) numerically closest to `key` on the ring.
  NodeId closest(NodeId key) const;

  /// Closest clockwise successor (smallest clockwise distance from self),
  /// if any.
  std::optional<NodeId> successor() const;

 private:
  NodeId self_;
  int half_;
  // Sorted ascending by clockwise distance from self_ (cw_) or to self_
  // (ccw_).
  std::vector<NodeId> cw_;
  std::vector<NodeId> ccw_;
};

/// Prefix routing table: kDigitsPerId rows × kDigitRadix columns.
/// Rows are allocated lazily on first insert: a node only ever populates
/// ~log16(N) of its 32 rows, so half-million-peer worlds keep tables at a
/// few hundred bytes instead of 512 eagerly-allocated cells each.
class RoutingTable {
 public:
  explicit RoutingTable(NodeId self) : self_(self), rows_(kDigitsPerId) {}

  NodeId self() const { return self_; }

  /// Inserts `id` into its canonical cell if the cell is empty or `prefer`
  /// is true. Self is ignored. Returns true if stored.
  bool insert(NodeId id, bool prefer = false);
  /// Clears the cell holding `id`, if any. Returns true if present.
  bool remove(NodeId id);

  /// Entry for a given prefix row / next digit, if populated.
  std::optional<NodeId> at(int row, int col) const;

  /// The canonical next hop for `key`: cell [shared_prefix][next digit].
  std::optional<NodeId> next_hop(NodeId key) const;

  /// All populated entries.
  std::vector<NodeId> entries() const;

 private:
  /// Mutable access allocates the row on first touch.
  std::optional<NodeId>& cell(int row, int col) {
    auto& r = rows_[std::size_t(row)];
    if (r.empty()) r.assign(kDigitRadix, std::nullopt);
    return r[std::size_t(col)];
  }
  /// Read access never allocates; unallocated rows read as empty cells.
  const std::optional<NodeId>* cell_if(int row, int col) const {
    const auto& r = rows_[std::size_t(row)];
    return r.empty() ? nullptr : &r[std::size_t(col)];
  }

  NodeId self_;
  std::vector<std::vector<std::optional<NodeId>>> rows_;
};

}  // namespace spider::dht
