#include "dht/routing_state.hpp"

#include <algorithm>

namespace spider::dht {
namespace {

/// Ascending comparator by clockwise distance from a pivot.
struct CwCloser {
  NodeId pivot;
  bool operator()(NodeId a, NodeId b) const {
    return NodeId::clockwise(pivot, a) < NodeId::clockwise(pivot, b);
  }
};

/// Ascending comparator by counterclockwise distance from a pivot.
struct CcwCloser {
  NodeId pivot;
  bool operator()(NodeId a, NodeId b) const {
    return NodeId::clockwise(a, pivot) < NodeId::clockwise(b, pivot);
  }
};

}  // namespace

bool LeafSet::insert(NodeId id) {
  if (id == self_) return false;
  // Each side is maintained independently: every node has both a
  // clockwise and a counterclockwise distance from self, and on a sparse
  // ring the same id may legitimately sit among the closest on BOTH arcs.
  // (Coupling the sides loses neighbors: a ccw-close node parked on a
  // half-empty cw side would be evicted later and vanish entirely.)
  bool changed = false;
  if (std::find(cw_.begin(), cw_.end(), id) == cw_.end()) {
    auto pos = std::lower_bound(cw_.begin(), cw_.end(), id, CwCloser{self_});
    if (pos != cw_.end() || cw_.size() < std::size_t(half_)) {
      cw_.insert(pos, id);
      if (cw_.size() > std::size_t(half_)) cw_.pop_back();
      changed = true;
    }
  }
  if (std::find(ccw_.begin(), ccw_.end(), id) == ccw_.end()) {
    auto pos = std::lower_bound(ccw_.begin(), ccw_.end(), id, CcwCloser{self_});
    if (pos != ccw_.end() || ccw_.size() < std::size_t(half_)) {
      ccw_.insert(pos, id);
      if (ccw_.size() > std::size_t(half_)) ccw_.pop_back();
      changed = true;
    }
  }
  return changed;
}

bool LeafSet::remove(NodeId id) {
  bool removed = false;
  auto cw_it = std::find(cw_.begin(), cw_.end(), id);
  if (cw_it != cw_.end()) {
    cw_.erase(cw_it);
    removed = true;
  }
  auto ccw_it = std::find(ccw_.begin(), ccw_.end(), id);
  if (ccw_it != ccw_.end()) {
    ccw_.erase(ccw_it);
    removed = true;
  }
  return removed;
}

bool LeafSet::contains(NodeId id) const {
  return std::find(cw_.begin(), cw_.end(), id) != cw_.end() ||
         std::find(ccw_.begin(), ccw_.end(), id) != ccw_.end();
}

std::vector<NodeId> LeafSet::members() const {
  std::vector<NodeId> out = cw_;
  for (NodeId id : ccw_) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

bool LeafSet::covers(NodeId key) const {
  // A side that is not full means we know every node on that arc, so the
  // leaf set's span extends across it.
  const bool cw_full = full_side(true);
  const bool ccw_full = full_side(false);
  if (!cw_full || !ccw_full) return true;
  const unsigned __int128 cw_span = NodeId::clockwise(self_, cw_.back());
  const unsigned __int128 ccw_span = NodeId::clockwise(ccw_.back(), self_);
  const unsigned __int128 cw_key = NodeId::clockwise(self_, key);
  const unsigned __int128 ccw_key = NodeId::clockwise(key, self_);
  return cw_key <= cw_span || ccw_key <= ccw_span;
}

NodeId LeafSet::closest(NodeId key) const {
  NodeId best = self_;
  unsigned __int128 best_d = NodeId::ring_distance(self_, key);
  for (NodeId id : members()) {
    const unsigned __int128 d = NodeId::ring_distance(id, key);
    if (d < best_d || (d == best_d && id < best)) {
      best = id;
      best_d = d;
    }
  }
  return best;
}

std::optional<NodeId> LeafSet::successor() const {
  if (cw_.empty()) return std::nullopt;
  return cw_.front();
}

bool RoutingTable::insert(NodeId id, bool prefer) {
  if (id == self_) return false;
  const int row = self_.shared_prefix(id);
  if (row >= kDigitsPerId) return false;  // equal ids
  const int col = id.digit(row);
  auto& c = cell(row, col);
  if (!c.has_value() || prefer) {
    c = id;
    return true;
  }
  return false;
}

bool RoutingTable::remove(NodeId id) {
  if (id == self_) return false;
  const int row = self_.shared_prefix(id);
  if (row >= kDigitsPerId) return false;
  auto& r = rows_[std::size_t(row)];
  if (r.empty()) return false;
  auto& c = r[std::size_t(id.digit(row))];
  if (c.has_value() && *c == id) {
    c.reset();
    return true;
  }
  return false;
}

std::optional<NodeId> RoutingTable::at(int row, int col) const {
  SPIDER_REQUIRE(row >= 0 && row < kDigitsPerId);
  SPIDER_REQUIRE(col >= 0 && col < kDigitRadix);
  const auto* c = cell_if(row, col);
  return c == nullptr ? std::nullopt : *c;
}

std::optional<NodeId> RoutingTable::next_hop(NodeId key) const {
  const int row = self_.shared_prefix(key);
  if (row >= kDigitsPerId) return std::nullopt;  // key == self
  const auto* c = cell_if(row, key.digit(row));
  return c == nullptr ? std::nullopt : *c;
}

std::vector<NodeId> RoutingTable::entries() const {
  std::vector<NodeId> out;
  for (const auto& row : rows_) {
    for (const auto& c : row) {
      if (c.has_value()) out.push_back(*c);
    }
  }
  return out;
}

}  // namespace spider::dht
