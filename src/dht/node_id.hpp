// Pastry node identifiers (Rowstron & Druschel, Middleware 2001).
//
// Ids are 128-bit values on a circular space, interpreted as a sequence of
// base-2^b digits (b = 4 here: 32 hex digits).  Service discovery derives
// keys by hashing a function name with SHA-1 and truncating to 128 bits
// (§3: "applying a secure hash function on the function name").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace spider::dht {

/// Digit width in bits (2^b columns per routing table row).
constexpr int kDigitBits = 4;
constexpr int kDigitsPerId = 128 / kDigitBits;  // 32
constexpr int kDigitRadix = 1 << kDigitBits;    // 16

/// 128-bit circular identifier.
class NodeId {
 public:
  constexpr NodeId() : value_(0) {}
  constexpr explicit NodeId(unsigned __int128 value) : value_(value) {}
  static NodeId from_parts(std::uint64_t hi, std::uint64_t lo) {
    return NodeId((static_cast<unsigned __int128>(hi) << 64) | lo);
  }

  /// SHA-1 of `text`, truncated to 128 bits.
  static NodeId hash_of(std::string_view text);

  /// Uniformly random id.
  static NodeId random(Rng& rng);

  unsigned __int128 value() const { return value_; }
  std::uint64_t hi() const { return std::uint64_t(value_ >> 64); }
  std::uint64_t lo() const { return std::uint64_t(value_); }

  /// Digit `i` counting from the most significant (i in [0, 32)).
  int digit(int i) const;

  /// Number of leading base-16 digits shared with `other` (0..32).
  int shared_prefix(const NodeId& other) const;

  /// Distance on the circular id space: min(|a-b|, 2^128 - |a-b|).
  static unsigned __int128 ring_distance(const NodeId& a, const NodeId& b);

  /// Clockwise (increasing, wrapping) distance from `a` to `b`.
  static unsigned __int128 clockwise(const NodeId& a, const NodeId& b);

  /// 32-hex-digit string, most significant first.
  std::string to_string() const;

  friend bool operator==(const NodeId& a, const NodeId& b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const NodeId& a, const NodeId& b) {
    return a.value_ != b.value_;
  }
  friend bool operator<(const NodeId& a, const NodeId& b) {
    return a.value_ < b.value_;
  }
  friend bool operator<=(const NodeId& a, const NodeId& b) {
    return a.value_ <= b.value_;
  }
  friend bool operator>(const NodeId& a, const NodeId& b) {
    return a.value_ > b.value_;
  }

 private:
  unsigned __int128 value_;
};

struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const {
    // Mix halves; the ids are themselves hash outputs so this is enough.
    return std::hash<std::uint64_t>()(id.hi() ^ (id.lo() * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace spider::dht
