#include "dht/pastry.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::dht {

void PastryNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_routes_ = m_route_hops_ = nullptr;
    return;
  }
  m_routes_ = &metrics->counter("dht.routes");
  m_route_hops_ = &metrics->counter("dht.route_hops");
}

PastryNetwork::PastryNetwork(int leaf_set_size, int replication)
    : leaf_half_(leaf_set_size / 2), replication_(replication) {
  SPIDER_REQUIRE(leaf_set_size >= 2 && leaf_set_size % 2 == 0);
  SPIDER_REQUIRE(replication >= 1);
  SPIDER_REQUIRE_MSG(replication <= leaf_half_ + 1,
                     "replicas must fit in the leaf set");
}

PastryNetwork::Node& PastryNetwork::node(PeerId peer) {
  auto it = nodes_.find(peer);
  SPIDER_REQUIRE_MSG(it != nodes_.end(), "unknown peer");
  return it->second;
}

const PastryNetwork::Node& PastryNetwork::node(PeerId peer) const {
  auto it = nodes_.find(peer);
  SPIDER_REQUIRE_MSG(it != nodes_.end(), "unknown peer");
  return it->second;
}

PastryNetwork::Node& PastryNetwork::node_by_id(NodeId id) {
  auto it = ring_.find(id);
  SPIDER_REQUIRE_MSG(it != ring_.end(), "unknown node id");
  return node(it->second);
}

bool PastryNetwork::alive_id(NodeId id) const {
  auto it = ring_.find(id);
  if (it == ring_.end()) return false;
  return node(it->second).alive;
}

void PastryNetwork::bootstrap(PeerId peer, NodeId id) {
  SPIDER_REQUIRE(nodes_.empty());
  SPIDER_REQUIRE(ring_.emplace(id, peer).second);
  nodes_.emplace(peer, Node(id, peer, leaf_half_));
  live_count_ = 1;
}

RouteResult PastryNetwork::join(PeerId peer, NodeId id, PeerId bootstrap_peer) {
  // A peer that failed earlier may rejoin under a fresh id; its stale ring
  // entry is dropped so lazy repair cannot resurrect the old identity.
  if (auto existing = nodes_.find(peer); existing != nodes_.end()) {
    SPIDER_REQUIRE_MSG(!existing->second.alive, "peer already joined");
    ring_.erase(existing->second.id);
    nodes_.erase(existing);
  }
  SPIDER_REQUIRE_MSG(ring_.find(id) == ring_.end(), "node id collision");
  SPIDER_REQUIRE(alive(bootstrap_peer));

  // Route the join message from the bootstrap node toward the new id; the
  // delivery node Z is numerically closest to it.
  RouteResult route_result = route(bootstrap_peer, id);
  SPIDER_REQUIRE(route_result.ok);

  ring_.emplace(id, peer);
  auto [it, inserted] = nodes_.emplace(peer, Node(id, peer, leaf_half_));
  SPIDER_REQUIRE(inserted);
  Node& x = it->second;
  ++live_count_;

  // Routing table: row i comes from the i-th node on the join path (its
  // row i entries share i digits with the new id as well); in practice we
  // offer every entry and let canonical placement sort them out.
  for (PeerId hop : route_result.path) {
    Node& h = node(hop);
    table_insert(x, h.id);
    x.leaves.insert(h.id);
    for (NodeId entry : h.table.entries()) {
      if (alive_id(entry)) table_insert(x, entry);
    }
  }
  // Leaf set: copied from Z (the numerically closest node) and adjusted.
  Node& z = node(route_result.target());
  for (NodeId member : z.leaves.members()) {
    if (alive_id(member)) {
      x.leaves.insert(member);
      table_insert(x, member);
    }
  }

  // Announce the new node to everyone it learned about (they add X), and
  // count one message per announcement.
  std::vector<NodeId> contacts = x.table.entries();
  for (NodeId member : x.leaves.members()) contacts.push_back(member);
  std::sort(contacts.begin(), contacts.end());
  contacts.erase(std::unique(contacts.begin(), contacts.end()), contacts.end());
  for (NodeId contact : contacts) {
    if (!alive_id(contact)) continue;
    introduce(node_by_id(contact), id);
    ++messages_;
  }

  // Key handoff: the new node may now be owner or replica for keys held by
  // its leaf-set neighborhood.
  for (NodeId member : x.leaves.members()) {
    if (!alive_id(member)) continue;
    Node& m = node_by_id(member);
    for (const auto& [key, values] : m.store) {
      // X takes a copy if it is among the replication_ closest ids to the
      // key within m's view.
      const unsigned __int128 dx = NodeId::ring_distance(id, key);
      int closer = 0;
      for (NodeId other : m.leaves.members()) {
        if (other != id && alive_id(other) &&
            NodeId::ring_distance(other, key) < dx) {
          ++closer;
        }
      }
      if (NodeId::ring_distance(m.id, key) < dx) ++closer;
      if (closer < replication_) {
        auto& mine = x.store[key];
        for (const std::string& v : values) append_unique(mine, v);
        ++messages_;
      }
    }
  }
  return route_result;
}

void PastryNetwork::bulk_fill_node(
    Node& x, const std::vector<std::pair<NodeId, PeerId>>& entries,
    std::size_t index, std::size_t candidate_budget) {
  const std::size_t n = entries.size();

  // Leaf set: ascending sorted ids are clockwise ring order, so the
  // canonical members are the nearest `leaf_half_` indices on each side
  // (mod n). LeafSet::insert places every candidate on whichever sides it
  // belongs to, so feeding it exactly this union yields the exact
  // half-closest per side.
  const std::size_t span =
      std::min<std::size_t>(std::size_t(leaf_half_), n - 1);
  for (std::size_t s = 1; s <= span; ++s) {
    x.leaves.insert(entries[(index + s) % n].first);
    x.leaves.insert(entries[(index + n - s) % n].first);
  }

  // Routing table: walk the prefix rows. At row r, [lo, hi) spans the ids
  // sharing the first r digits with x (ids there sort by digit r), so
  // every sibling digit's candidates form a contiguous subrange found by
  // binary search. Cell choice is the proximity-argmin over a bounded
  // candidate window — prefix-correctness doesn't care which candidate
  // wins, the budget only caps per-cell work at scale.
  const auto begin = entries.begin();
  std::size_t lo = 0, hi = n;
  for (int row = 0; row < kDigitsPerId && hi - lo > 1; ++row) {
    const int self_digit = x.id.digit(row);
    std::size_t next_lo = lo, next_hi = lo;
    for (int c = 0; c < kDigitRadix; ++c) {
      const auto first = std::lower_bound(
          begin + long(lo), begin + long(hi), c,
          [row](const std::pair<NodeId, PeerId>& e, int digit) {
            return e.first.digit(row) < digit;
          });
      const auto last = std::lower_bound(
          first, begin + long(hi), c + 1,
          [row](const std::pair<NodeId, PeerId>& e, int digit) {
            return e.first.digit(row) < digit;
          });
      if (c == self_digit) {
        next_lo = std::size_t(first - begin);
        next_hi = std::size_t(last - begin);
        continue;
      }
      if (first == last) continue;
      std::size_t cand_lo = std::size_t(first - begin);
      std::size_t cand_hi = std::size_t(last - begin);
      if (candidate_budget > 0 && cand_hi - cand_lo > candidate_budget) {
        // Keep the window numerically closest to x: the whole subrange
        // sits on one side of x's id (it differs at digit `row`).
        if (c < self_digit) {
          cand_lo = cand_hi - candidate_budget;
        } else {
          cand_hi = cand_lo + candidate_budget;
        }
      }
      NodeId best = entries[cand_lo].first;
      if (proximity_fn_) {
        double best_d = proximity_fn_(x.peer, entries[cand_lo].second);
        for (std::size_t j = cand_lo + 1; j < cand_hi; ++j) {
          const double d = proximity_fn_(x.peer, entries[j].second);
          if (d < best_d) {
            best_d = d;
            best = entries[j].first;
          }
        }
      }
      x.table.insert(best);
    }
    lo = next_lo;
    hi = next_hi;
  }
}

void PastryNetwork::bulk_load(
    const std::vector<std::pair<NodeId, PeerId>>& entries, std::size_t jobs,
    std::size_t candidate_budget) {
  SPIDER_REQUIRE_MSG(nodes_.empty(), "bulk_load needs an empty network");
  const std::size_t n = entries.size();
  SPIDER_REQUIRE(n >= 1);
  for (std::size_t i = 1; i < n; ++i) {
    SPIDER_REQUIRE_MSG(entries[i - 1].first < entries[i].first,
                       "bulk_load ids must be sorted and distinct");
  }
  // Serial membership pass: node storage must not rehash while workers
  // hold pointers, so all nodes exist before any fill starts.
  std::vector<Node*> slot(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [id, peer] = entries[i];
    ring_.emplace_hint(ring_.end(), id, peer);
    auto [it, inserted] = nodes_.emplace(peer, Node(id, peer, leaf_half_));
    SPIDER_REQUIRE_MSG(inserted, "duplicate peer in bulk_load");
    slot[i] = &it->second;
  }
  live_count_ = n;
  // Per-node fill: each worker writes only its own node and reads the
  // shared sorted array, so the result is identical at any job count.
  util::parallel_for_each(jobs, n, [&](std::size_t i) {
    bulk_fill_node(*slot[i], entries, i, candidate_budget);
  });
}

void PastryNetwork::leave(PeerId peer) {
  Node& n = node(peer);
  SPIDER_REQUIRE(n.alive);
  // Hand stored keys to the ring successor (which re-replicates lazily via
  // refresh_replicas).
  std::optional<NodeId> succ = n.leaves.successor();
  if (succ.has_value() && alive_id(*succ)) {
    Node& s = node_by_id(*succ);
    for (const auto& [key, values] : n.store) {
      auto& theirs = s.store[key];
      for (const std::string& v : values) append_unique(theirs, v);
      ++messages_;
    }
  }
  n.store.clear();
  n.alive = false;
  --live_count_;
  // Notify contacts so they do not need lazy repair.
  for (NodeId member : n.leaves.members()) {
    if (alive_id(member)) {
      expel(node_by_id(member), n.id);
      ++messages_;
    }
  }
  for (NodeId entry : n.table.entries()) {
    if (alive_id(entry)) {
      expel(node_by_id(entry), n.id);
      ++messages_;
    }
  }
}

void PastryNetwork::fail(PeerId peer) {
  Node& n = node(peer);
  SPIDER_REQUIRE(n.alive);
  n.alive = false;
  n.store.clear();
  --live_count_;
  // Nobody is notified: survivors discover the failure lazily.
}

bool PastryNetwork::alive(PeerId peer) const {
  auto it = nodes_.find(peer);
  return it != nodes_.end() && it->second.alive;
}

NodeId PastryNetwork::id_of(PeerId peer) const { return node(peer).id; }

std::optional<PeerId> PastryNetwork::peer_of(NodeId id) const {
  auto it = ring_.find(id);
  if (it == ring_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> PastryNetwork::next_hop(Node& cur, NodeId key) {
  if (cur.id == key) return std::nullopt;

  // (1) Leaf-set delivery: if the key is within the leaf set span, the
  // closest member (or self) is the destination / next hop.
  if (cur.leaves.covers(key)) {
    for (;;) {
      const NodeId best = cur.leaves.closest(key);
      if (best == cur.id) break;
      if (alive_id(best)) return best;
      cur.leaves.remove(best);  // lazy repair
      cur.table.remove(best);
      repair_leafset(cur);
    }
    // Self looks closest per the leaf set — but after heavy churn the
    // leaf set may be thin/stale. Forward to any known strictly-closer
    // live node before accepting delivery.
    const unsigned __int128 self_dist = NodeId::ring_distance(cur.id, key);
    std::optional<NodeId> closer;
    unsigned __int128 closer_dist = self_dist;
    for (NodeId entry : cur.table.entries()) {
      if (!alive_id(entry)) continue;
      const unsigned __int128 d = NodeId::ring_distance(entry, key);
      if (d < closer_dist) {
        closer = entry;
        closer_dist = d;
      }
    }
    return closer;  // nullopt -> deliver here
  }

  // (2) Prefix routing.
  const int row = cur.id.shared_prefix(key);
  if (auto entry = cur.table.next_hop(key); entry.has_value()) {
    if (alive_id(*entry)) return *entry;
    cur.table.remove(*entry);  // lazy repair
    cur.leaves.remove(*entry);
  }

  // (3) Rare case: forward to any known live node that shares at least as
  // long a prefix and is strictly closer to the key.
  const unsigned __int128 self_dist = NodeId::ring_distance(cur.id, key);
  std::optional<NodeId> fallback;
  unsigned __int128 fallback_dist = self_dist;
  auto consider = [&](NodeId candidate) {
    if (!alive_id(candidate)) return;
    if (candidate.shared_prefix(key) < row) return;
    const unsigned __int128 d = NodeId::ring_distance(candidate, key);
    if (d < fallback_dist) {
      fallback = candidate;
      fallback_dist = d;
    }
  };
  for (NodeId member : cur.leaves.members()) consider(member);
  for (NodeId entry : cur.table.entries()) consider(entry);
  return fallback;  // nullopt -> deliver here (best effort)
}

std::optional<NodeId> PastryNetwork::next_hop_readonly(const Node& cur,
                                                       NodeId key) const {
  if (cur.id == key) return std::nullopt;

  // (1) Leaf-set delivery. All-alive precondition: the repair loop in
  // next_hop() never fires, so one closest() call decides.
  if (cur.leaves.covers(key)) {
    const NodeId best = cur.leaves.closest(key);
    if (best != cur.id && alive_id(best)) return best;
    const unsigned __int128 self_dist = NodeId::ring_distance(cur.id, key);
    std::optional<NodeId> closer;
    unsigned __int128 closer_dist = self_dist;
    for (NodeId entry : cur.table.entries()) {
      if (!alive_id(entry)) continue;
      const unsigned __int128 d = NodeId::ring_distance(entry, key);
      if (d < closer_dist) {
        closer = entry;
        closer_dist = d;
      }
    }
    return closer;  // nullopt -> deliver here
  }

  // (2) Prefix routing.
  const int row = cur.id.shared_prefix(key);
  if (auto entry = cur.table.next_hop(key); entry.has_value()) {
    if (alive_id(*entry)) return *entry;
  }

  // (3) Fallback: any known live node sharing at least as long a prefix
  // and strictly closer to the key.
  const unsigned __int128 self_dist = NodeId::ring_distance(cur.id, key);
  std::optional<NodeId> fallback;
  unsigned __int128 fallback_dist = self_dist;
  auto consider = [&](NodeId candidate) {
    if (!alive_id(candidate)) return;
    if (candidate.shared_prefix(key) < row) return;
    const unsigned __int128 d = NodeId::ring_distance(candidate, key);
    if (d < fallback_dist) {
      fallback = candidate;
      fallback_dist = d;
    }
  };
  for (NodeId member : cur.leaves.members()) consider(member);
  for (NodeId entry : cur.table.entries()) consider(entry);
  return fallback;  // nullopt -> deliver here (best effort)
}

RouteResult PastryNetwork::route_readonly(PeerId from, NodeId key) const {
  RouteResult result;
  SPIDER_REQUIRE(alive(from));
  result.path.push_back(from);
  const Node* cur = &node(from);
  for (int guard = 0; guard < 2 * kDigitsPerId + int(leaf_half_) * 4;
       ++guard) {
    std::optional<NodeId> nxt = next_hop_readonly(*cur, key);
    if (!nxt.has_value()) break;
    auto it = ring_.find(*nxt);
    SPIDER_REQUIRE_MSG(it != ring_.end(), "unknown node id");
    cur = &node(it->second);
    result.path.push_back(cur->peer);
  }
  result.ok = true;
  return result;
}

void PastryNetwork::bulk_put(const std::vector<BulkPutItem>& items,
                             std::size_t jobs) {
  SPIDER_REQUIRE_MSG(live_count_ == nodes_.size(),
                     "bulk_put requires an all-live network");
  std::vector<RouteResult> routes(items.size());
  util::parallel_for_each(jobs, items.size(), [&](std::size_t i) {
    routes[i] = route_readonly(items[i].from, items[i].key);
  });
  // Serial application in item order replays what sequential put() calls
  // would have done, message/metric accounting included.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const RouteResult& r = routes[i];
    messages_ += r.hops();
    if (m_routes_ != nullptr) {
      m_routes_->inc();
      m_route_hops_->inc(r.hops());
    }
    if (r.ok) store_at_replicas(node(r.target()), items[i].key, items[i].value);
  }
}

RouteResult PastryNetwork::route(PeerId from, NodeId key) {
  RouteResult result;
  SPIDER_REQUIRE(alive(from));
  result.path.push_back(from);
  Node* cur = &node(from);
  for (int guard = 0; guard < 2 * kDigitsPerId + int(leaf_half_) * 4; ++guard) {
    std::optional<NodeId> nxt = next_hop(*cur, key);
    if (!nxt.has_value()) break;
    cur = &node_by_id(*nxt);
    result.path.push_back(cur->peer);
    ++messages_;
  }
  // If the loop guard tripped, deliver best effort at the current node.
  result.ok = true;
  if (m_routes_ != nullptr) {
    m_routes_->inc();
    m_route_hops_->inc(result.hops());
  }
  return result;
}

void PastryNetwork::append_unique(std::vector<std::string>& list,
                                  const std::string& value) {
  if (std::find(list.begin(), list.end(), value) == list.end()) {
    list.push_back(value);
  }
}

void PastryNetwork::store_at_replicas(Node& owner, NodeId key,
                                      const std::string& value) {
  append_unique(owner.store[key], value);
  // Replicate to the owner's closest leaf-set members (ring neighbors).
  std::vector<NodeId> members = owner.leaves.members();
  std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
    return NodeId::ring_distance(a, owner.id) <
           NodeId::ring_distance(b, owner.id);
  });
  int placed = 1;
  for (NodeId member : members) {
    if (placed >= replication_) break;
    if (!alive_id(member)) continue;
    append_unique(node_by_id(member).store[key], value);
    ++messages_;
    ++placed;
  }
}

RouteResult PastryNetwork::put(PeerId from, NodeId key,
                               const std::string& value) {
  RouteResult r = route(from, key);
  if (r.ok) store_at_replicas(node(r.target()), key, value);
  return r;
}

GetResult PastryNetwork::get(PeerId from, NodeId key) {
  GetResult result;
  RouteResult r = route(from, key);
  result.path = std::move(r.path);
  if (!r.ok) return result;
  Node& owner = node(result.path.back());
  if (auto it = owner.store.find(key); it != owner.store.end()) {
    result.values = it->second;
    result.found = true;
    return result;
  }
  // Replica fallback: one extra hop to a leaf-set member holding the key.
  for (NodeId member : owner.leaves.members()) {
    if (!alive_id(member)) continue;
    Node& m = node_by_id(member);
    ++messages_;
    if (auto it = m.store.find(key); it != m.store.end()) {
      result.path.push_back(m.peer);
      result.values = it->second;
      result.found = true;
      return result;
    }
  }
  return result;
}

void PastryNetwork::erase(NodeId key, const std::string& value) {
  for (auto& [peer, n] : nodes_) {
    if (!n.alive) continue;
    auto it = n.store.find(key);
    if (it == n.store.end()) continue;
    auto& list = it->second;
    list.erase(std::remove(list.begin(), list.end(), value), list.end());
    if (list.empty()) n.store.erase(it);
  }
}

void PastryNetwork::refresh_replicas() {
  // Gather (key, value, holder) snapshots, then re-place each value at the
  // current owner + successors per protocol routing from the holder.
  struct Item {
    PeerId holder;
    NodeId key;
    std::string value;
  };
  std::vector<Item> items;
  for (auto& [peer, n] : nodes_) {
    if (!n.alive) continue;
    for (auto& [key, values] : n.store) {
      for (const std::string& v : values) items.push_back({peer, key, v});
    }
  }
  for (auto& [peer, n] : nodes_) {
    if (n.alive) n.store.clear();
  }
  for (const Item& item : items) {
    if (!alive(item.holder)) continue;
    put(item.holder, item.key, item.value);
  }
}

void PastryNetwork::stabilize(int rounds) {
  for (int round = 0; round < rounds; ++round) {
    for (auto& [peer, n] : nodes_) {
      if (!n.alive) continue;
      repair_leafset(n);
      // When an entire leaf-set side fails at once, the surviving members
      // all sit on the other side and member gossip cannot rediscover the
      // lost neighborhood. Pastry's prescription: recruit replacements
      // through routing table entries, whose prefix structure spans the
      // whole ring.
      for (NodeId entry : n.table.entries()) {
        if (!alive_id(entry)) {
          n.table.remove(entry);
          continue;
        }
        ++messages_;
        Node& e = node_by_id(entry);
        n.leaves.insert(entry);
        for (NodeId candidate : e.leaves.members()) {
          if (candidate != n.id && alive_id(candidate)) {
            n.leaves.insert(candidate);
            table_insert(n, candidate);
          }
        }
        e.leaves.insert(n.id);
        table_insert(e, n.id);
      }
    }
  }
}

PeerId PastryNetwork::owner_oracle(NodeId key) const {
  PeerId best = overlay::kInvalidPeer;
  unsigned __int128 best_d = 0;
  bool first = true;
  for (const auto& [id, peer] : ring_) {
    const Node& n = node(peer);
    if (!n.alive) continue;
    const unsigned __int128 d = NodeId::ring_distance(id, key);
    if (first || d < best_d) {
      best = peer;
      best_d = d;
      first = false;
    }
  }
  return best;
}

void PastryNetwork::table_insert(Node& target, NodeId who) {
  if (target.table.insert(who)) return;  // empty cell: stored
  if (!proximity_fn_ || who == target.id) return;
  // Contested cell: Pastry's locality heuristic keeps the closer entry.
  const int row = target.id.shared_prefix(who);
  if (row >= kDigitsPerId) return;
  const auto incumbent = target.table.at(row, who.digit(row));
  if (!incumbent.has_value() || *incumbent == who) return;
  const auto incumbent_peer = peer_of(*incumbent);
  const auto who_peer = peer_of(who);
  if (!incumbent_peer.has_value() || !who_peer.has_value()) return;
  if (proximity_fn_(target.peer, *who_peer) <
      proximity_fn_(target.peer, *incumbent_peer)) {
    target.table.insert(who, /*prefer=*/true);
  }
}

void PastryNetwork::introduce(Node& target, NodeId who) {
  target.leaves.insert(who);
  table_insert(target, who);
}

void PastryNetwork::expel(Node& target, NodeId who) {
  target.leaves.remove(who);
  target.table.remove(who);
  repair_leafset(target);
}

void PastryNetwork::repair_leafset(Node& n) {
  // Push-pull with surviving members: pull their members as replacement
  // candidates and push ourselves into their state (a one-sided exchange
  // leaves asymmetric knowledge gaps after correlated failures).
  std::vector<NodeId> members = n.leaves.members();
  for (NodeId member : members) {
    if (!alive_id(member)) {
      n.leaves.remove(member);
      continue;
    }
    ++messages_;
    Node& m = node_by_id(member);
    for (NodeId candidate : m.leaves.members()) {
      if (candidate != n.id && alive_id(candidate)) {
        n.leaves.insert(candidate);
        table_insert(n, candidate);
      }
    }
    m.leaves.insert(n.id);
    table_insert(m, n.id);
  }
}

const LeafSet& PastryNetwork::leaf_set(PeerId peer) const {
  return node(peer).leaves;
}

const RoutingTable& PastryNetwork::routing_table(PeerId peer) const {
  return node(peer).table;
}

}  // namespace spider::dht
