// Fault injection: lossy links, delay jitter and reordering.
//
// The paper's recovery claims (§5, Fig 9) are only meaningful when the
// network misbehaves: a BCP probe can vanish, a liveness probe can time
// out without the peer being dead, a failure notification can get lost.
// The LinkFaultModel gives every overlay link a fault profile — message
// loss probability, uniform delay jitter, and a reorder probability that
// delays a message into a bounded window so later messages can overtake
// it — and the protocol layers (BCP probing, session liveness probing)
// consult it per message.
//
// Determinism: outcomes are NOT drawn from a shared RNG stream. Every
// sample is a pure hash of (model seed, caller-supplied message key,
// link id), so the outcome of a given message is independent of the
// order messages are sampled in. This keeps BCP's synchronous and
// message-level modes byte-identical (same guarantee the engine's
// hashed metric noise provides, see core/bcp.cpp) and makes runs
// reproducible under refactors that reorder event processing.
//
// Zero-cost when clean: `active()` is false while every profile is
// all-zero, and callers skip sampling entirely — a run with a clean
// model attached is bit-identical to a run with no model at all.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "overlay/overlay.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
}  // namespace spider::obs

namespace spider::fault {

using overlay::OverlayLinkId;
using overlay::PeerId;

/// Fault knobs of one overlay link (or the model-wide default).
struct LinkFaultProfile {
  /// Probability a message traversing the link is dropped.
  double loss = 0.0;
  /// Max uniform extra one-way delay added by the link, in ms.
  double jitter_ms = 0.0;
  /// Probability the link delays a message into the reorder window,
  /// letting messages sent later overtake it.
  double reorder = 0.0;
  /// Extra delay (uniform in [0, window]) applied to reordered messages.
  double reorder_window_ms = 50.0;

  bool clean() const { return loss <= 0.0 && jitter_ms <= 0.0 && reorder <= 0.0; }
};

/// Outcome of one sampled message transmission.
struct DeliveryOutcome {
  bool delivered = true;
  double extra_delay_ms = 0.0;  ///< jitter + reorder delay (0 when lost)
  bool reordered = false;
};

/// Per-overlay-link fault model with deterministic hash-based sampling.
class LinkFaultModel {
 public:
  LinkFaultModel() = default;
  explicit LinkFaultModel(LinkFaultProfile default_profile,
                          std::uint64_t seed = 0xfa17u)
      : default_(default_profile), seed_(seed) {}

  /// Convenience: uniform loss on every link, no jitter/reorder.
  static LinkFaultModel uniform_loss(double loss, std::uint64_t seed = 0xfa17u) {
    LinkFaultProfile p;
    p.loss = loss;
    return LinkFaultModel(p, seed);
  }

  void set_default(const LinkFaultProfile& profile) { default_ = profile; }
  const LinkFaultProfile& default_profile() const { return default_; }

  /// Overrides the profile of one link (wins over the default).
  void set_link(OverlayLinkId link, const LinkFaultProfile& profile) {
    overrides_[link] = profile;
  }
  void clear_link(OverlayLinkId link) { overrides_.erase(link); }
  const LinkFaultProfile& profile(OverlayLinkId link) const {
    auto it = overrides_.find(link);
    return it == overrides_.end() ? default_ : it->second;
  }

  /// True if any profile can affect a message. Callers skip sampling
  /// (and therefore behave bit-identically to a fault-free run) when
  /// this is false.
  bool active() const;

  /// Samples delivery of one message across an overlay path. `msg_key`
  /// must identify the message (and transmission attempt) uniquely to
  /// the caller; the same key always yields the same outcome. An empty
  /// path (local delivery) always succeeds.
  DeliveryOutcome sample_path(std::span<const OverlayLinkId> links,
                              std::uint64_t msg_key) const;

  /// Single-link convenience.
  DeliveryOutcome sample_link(OverlayLinkId link, std::uint64_t msg_key) const {
    return sample_path(std::span<const OverlayLinkId>(&link, 1), msg_key);
  }

  /// One request/response round trip over `links`: the request and its
  /// ack are independent transmissions (ack key derived from `msg_key`).
  /// `delivered` means both legs survived; `extra_delay_ms` sums both
  /// legs' jitter. Used by session liveness probes and the lifecycle
  /// control legs (confirm / teardown / switch-activation).
  DeliveryOutcome sample_round_trip(std::span<const OverlayLinkId> links,
                                    std::uint64_t msg_key) const;

  /// Samples one message over a single virtual link carrying the default
  /// profile — for traffic whose concrete route is not modeled, e.g. a
  /// failure notification originating at a crashed peer's neighborhood
  /// (the crashed peer itself has no routable path).
  DeliveryOutcome sample_default(std::uint64_t msg_key) const;

  /// Publishes "fault.msg_*" counters (null detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  LinkFaultProfile default_;
  std::unordered_map<OverlayLinkId, LinkFaultProfile> overrides_;
  std::uint64_t seed_ = 0xfa17u;

  // Cached instruments (sample_path is logically const; counting
  // delivery outcomes does not change the model).
  mutable obs::Counter* m_delivered_ = nullptr;
  mutable obs::Counter* m_lost_ = nullptr;
  mutable obs::Counter* m_delayed_ = nullptr;
  mutable obs::Counter* m_reordered_ = nullptr;
};

}  // namespace spider::fault
