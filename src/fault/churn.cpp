#include "fault/churn.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace spider::fault {

ChurnDriver::ChurnDriver(sim::Simulator& sim, Rng& rng, ChurnPlan plan,
                         Hooks hooks)
    : sim_(&sim), rng_(&rng), plan_(std::move(plan)), hooks_(std::move(hooks)) {
  SPIDER_REQUIRE_MSG(hooks_.kill != nullptr, "ChurnDriver needs a kill hook");
  if (plan_.period_ms > 0.0 && plan_.ticks > 0) {
    SPIDER_REQUIRE_MSG(hooks_.live_peers != nullptr,
                       "random churn needs a live_peers hook");
    SPIDER_REQUIRE_MSG(hooks_.revive != nullptr,
                       "random churn needs a revive hook");
    SPIDER_REQUIRE_MSG(plan_.mean_downtime > 0.0,
                       "random churn needs a positive mean downtime");
  }
}

void ChurnDriver::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_crashes_ = m_revives_ = nullptr;
    return;
  }
  m_crashes_ = &metrics->counter("fault.crashes");
  m_revives_ = &metrics->counter("fault.revives");
}

void ChurnDriver::do_kill(PeerId peer, std::size_t tick) {
  hooks_.kill(peer);
  ++crashes_;
  if (m_crashes_ != nullptr) m_crashes_->inc();
  if (hooks_.on_kill) hooks_.on_kill(peer, tick);
}

void ChurnDriver::do_revive(PeerId peer) {
  SPIDER_REQUIRE_MSG(hooks_.revive != nullptr,
                     "plan recovers a peer but no revive hook is set");
  hooks_.revive(peer);
  ++revives_;
  if (m_revives_ != nullptr) m_revives_->inc();
}

void ChurnDriver::run_tick(std::size_t tick) {
  const auto live = hooks_.live_peers();
  const auto kill_count = std::max<std::size_t>(
      1, std::size_t(double(live.size()) * plan_.fail_fraction));
  for (std::size_t k = 0; k < kill_count; ++k) {
    const auto survivors = hooks_.live_peers();
    if (survivors.size() <= plan_.min_live) break;
    const PeerId victim = survivors[rng_->next_below(survivors.size())];
    do_kill(victim, tick);
    const double downtime =
        rng_->next_exponential(plan_.mean_downtime) * plan_.downtime_scale_ms;
    sim_->schedule_after(downtime, [this, victim] { do_revive(victim); });
  }
  if (hooks_.on_tick_end) hooks_.on_tick_end(tick);
}

void ChurnDriver::schedule() {
  for (const ChurnEvent& ev : plan_.events) {
    if (ev.crash) {
      sim_->schedule_at(ev.at_ms, [this, peer = ev.peer] {
        do_kill(peer, std::size_t(-1));
      });
    } else {
      sim_->schedule_at(ev.at_ms, [this, peer = ev.peer] { do_revive(peer); });
    }
  }
  if (plan_.period_ms > 0.0) {
    for (std::size_t tick = 0; tick < plan_.ticks; ++tick) {
      sim_->schedule_at(double(tick + 1) * plan_.period_ms,
                        [this, tick] { run_tick(tick); });
    }
  }
}

}  // namespace spider::fault
