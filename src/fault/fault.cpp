#include "fault/fault.hpp"

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace spider::fault {
namespace {

/// mix64 output folded to a uniform double in [0, 1).
double unit_hash(std::uint64_t x) {
  return double(util::mix64(x) >> 11) * 0x1.0p-53;
}

}  // namespace

bool LinkFaultModel::active() const {
  if (!default_.clean()) return true;
  for (const auto& [link, profile] : overrides_) {
    if (!profile.clean()) return true;
  }
  return false;
}

DeliveryOutcome LinkFaultModel::sample_path(
    std::span<const OverlayLinkId> links, std::uint64_t msg_key) const {
  DeliveryOutcome out;
  const std::uint64_t base = seed_ ^ util::mix64(msg_key);
  for (OverlayLinkId link : links) {
    const LinkFaultProfile& p = profile(link);
    if (p.clean()) continue;
    // Three independent draws per (message, link): loss, jitter, reorder.
    const std::uint64_t k =
        base ^ (std::uint64_t(link) + 1) * 0x9e3779b97f4a7c15ULL;
    if (p.loss > 0.0 && unit_hash(k) < p.loss) {
      out.delivered = false;
      out.extra_delay_ms = 0.0;
      out.reordered = false;
      if (m_lost_ != nullptr) m_lost_->inc();
      return out;
    }
    if (p.jitter_ms > 0.0) {
      const double extra = p.jitter_ms * unit_hash(k + 1);
      out.extra_delay_ms += extra;
      if (extra > 0.0 && m_delayed_ != nullptr) m_delayed_->inc();
    }
    if (p.reorder > 0.0 && unit_hash(k + 2) < p.reorder) {
      out.extra_delay_ms += p.reorder_window_ms * unit_hash(k + 3);
      out.reordered = true;
    }
  }
  if (out.reordered && m_reordered_ != nullptr) m_reordered_->inc();
  if (m_delivered_ != nullptr) m_delivered_->inc();
  return out;
}

DeliveryOutcome LinkFaultModel::sample_round_trip(
    std::span<const OverlayLinkId> links, std::uint64_t msg_key) const {
  // Request and ack legs are independent transmissions. The ack is only
  // sampled when the request survives (the receiver never saw it
  // otherwise), which also keeps fault.msg_* counts identical to callers
  // that short-circuited the two sample_path calls by hand.
  DeliveryOutcome request = sample_path(links, msg_key);
  if (!request.delivered) return request;
  DeliveryOutcome ack =
      sample_path(links, util::hash_values(msg_key, std::uint64_t{0xacu}));
  ack.extra_delay_ms += request.extra_delay_ms;
  ack.reordered = ack.reordered || request.reordered;
  return ack;
}

DeliveryOutcome LinkFaultModel::sample_default(std::uint64_t msg_key) const {
  DeliveryOutcome out;
  const LinkFaultProfile& p = default_;
  if (p.clean()) return out;
  // Same draw layout as sample_path, with a link-independent key.
  const std::uint64_t k = seed_ ^ util::mix64(msg_key);
  if (p.loss > 0.0 && unit_hash(k) < p.loss) {
    out.delivered = false;
    if (m_lost_ != nullptr) m_lost_->inc();
    return out;
  }
  if (p.jitter_ms > 0.0) {
    const double extra = p.jitter_ms * unit_hash(k + 1);
    out.extra_delay_ms += extra;
    if (extra > 0.0 && m_delayed_ != nullptr) m_delayed_->inc();
  }
  if (p.reorder > 0.0 && unit_hash(k + 2) < p.reorder) {
    out.extra_delay_ms += p.reorder_window_ms * unit_hash(k + 3);
    out.reordered = true;
    if (m_reordered_ != nullptr) m_reordered_->inc();
  }
  if (m_delivered_ != nullptr) m_delivered_->inc();
  return out;
}

void LinkFaultModel::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_delivered_ = m_lost_ = m_delayed_ = m_reordered_ = nullptr;
    return;
  }
  m_delivered_ = &metrics->counter("fault.msg_delivered");
  m_lost_ = &metrics->counter("fault.msg_lost");
  m_delayed_ = &metrics->counter("fault.msg_delayed");
  m_reordered_ = &metrics->counter("fault.msg_reordered");
}

}  // namespace spider::fault
