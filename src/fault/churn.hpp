// Scheduled peer churn: crash/recover scripts and random churn plans.
//
// Benches and tests used to hand-roll churn ticks (kill a random 1% of
// live peers per time unit, revive after an exponential downtime). The
// ChurnPlan captures that as data — an explicit event script plus an
// optional random-churn process — and the ChurnDriver executes it on the
// discrete-event simulator through caller-supplied hooks, so the fault
// layer stays below core (it never sees a Deployment or SessionManager;
// the bench wires kill_peer / on_peer_failed / maintenance in).
//
// The random process is deterministic in the caller's Rng and draws in a
// fixed order (victim, then downtime, per kill), so replacing an ad-hoc
// churn loop with an equivalent plan reproduces the run bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "overlay/overlay.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
}  // namespace spider::obs

namespace spider::fault {

using overlay::PeerId;

/// One scripted lifecycle event.
struct ChurnEvent {
  double at_ms = 0.0;
  PeerId peer = overlay::kInvalidPeer;
  bool crash = true;  ///< false = recover
};

/// Declarative churn description: an explicit script, an optional random
/// process, or both.
struct ChurnPlan {
  /// Explicit crash/recover script (scheduled verbatim).
  std::vector<ChurnEvent> events;

  // Random churn: every `period_ms` (ticks 1..`ticks`, the first at
  // t = period_ms), kill max(1, ⌊live · fail_fraction⌋) random live
  // peers; each rejoins after Exp(mean_downtime) · downtime_scale_ms.
  // Downtime is split into a mean and a scale so plans written in
  // abstract time units (mean in units, scale = unit length in ms)
  // reproduce pre-existing hand-rolled churn loops bit-for-bit. A tick
  // never reduces the live population to `min_live` or fewer.
  double period_ms = 0.0;  ///< 0 disables the random process
  std::size_t ticks = 0;
  double fail_fraction = 0.0;
  double mean_downtime = 0.0;       ///< mean of the exponential draw
  double downtime_scale_ms = 1.0;   ///< ms per downtime unit
  std::size_t min_live = 2;
};

/// Executes a ChurnPlan on the simulator via environment hooks.
class ChurnDriver {
 public:
  struct Hooks {
    /// Current live peers (random-process victim pool). Required when the
    /// plan has a random process.
    std::function<std::vector<PeerId>()> live_peers;
    /// Marks a peer dead (e.g. Deployment::kill_peer). Required.
    std::function<void(PeerId)> kill;
    /// Brings a peer back (e.g. Deployment::revive_peer). Required when
    /// any peer can recover.
    std::function<void(PeerId)> revive;
    /// Called right after `kill` for each victim — the place to run
    /// failure handling/accounting. `tick` is the random-process tick
    /// index (0-based), or SIZE_MAX for scripted crashes.
    std::function<void(PeerId, std::size_t)> on_kill;
    /// Called at the end of each random-process tick (after all kills) —
    /// the place for periodic maintenance / workload top-up.
    std::function<void(std::size_t)> on_tick_end;
  };

  /// `rng` must outlive the driver; it is consulted only by the random
  /// process (victim choice, downtime), never by scripted events.
  ChurnDriver(sim::Simulator& sim, Rng& rng, ChurnPlan plan, Hooks hooks);

  /// Schedules the whole plan onto the simulator (call once, before
  /// running it). Scripted events first, then the random-process ticks.
  void schedule();

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t revives() const { return revives_; }

  /// Publishes "fault.crashes" / "fault.revives" counters (null detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void do_kill(PeerId peer, std::size_t tick);
  void do_revive(PeerId peer);
  void run_tick(std::size_t tick);

  sim::Simulator* sim_;
  Rng* rng_;
  ChurnPlan plan_;
  Hooks hooks_;
  std::uint64_t crashes_ = 0;
  std::uint64_t revives_ = 0;
  obs::Counter* m_crashes_ = nullptr;
  obs::Counter* m_revives_ = nullptr;
};

}  // namespace spider::fault
