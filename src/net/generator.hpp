// Topology generators.
//
// The paper uses the degree-based Inet-3.0 generator to produce a 10,000
// node power-law IP graph (§6.1).  Inet-3.0 is a standalone research tool
// we cannot ship, so `power_law` implements a Barabási–Albert style
// preferential-attachment process (each new node attaches to `m` existing
// nodes with probability proportional to degree), which reproduces the
// properties the experiments actually depend on: a heavy-tailed degree
// distribution and O(log n) path lengths.  Waxman and uniform random
// generators are provided for sensitivity runs; all generated graphs are
// connected by construction or by spanning-tree augmentation.
#pragma once

#include <cstddef>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace spider::net {

/// Ranges for per-link properties, sampled uniformly.
struct LinkProfile {
  double min_delay_ms = 2.0;
  double max_delay_ms = 30.0;
  double min_bandwidth_kbps = 10'000.0;   // 10 Mbps
  double max_bandwidth_kbps = 100'000.0;  // 100 Mbps
};

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `links_per_node` distinct existing nodes with
/// degree-proportional probability. Always connected.
Topology power_law(std::size_t nodes, std::size_t links_per_node, Rng& rng,
                   const LinkProfile& profile = {});

/// Waxman random geometric graph on the unit square: P(edge) =
/// alpha * exp(-d / (beta * sqrt(2))). Link delay is proportional to
/// Euclidean distance. A random spanning tree guarantees connectivity.
Topology waxman(std::size_t nodes, double alpha, double beta, Rng& rng,
                const LinkProfile& profile = {});

/// G(n, m) uniform random graph over a random spanning tree (connected).
Topology random_graph(std::size_t nodes, std::size_t extra_links, Rng& rng,
                      const LinkProfile& profile = {});

}  // namespace spider::net
