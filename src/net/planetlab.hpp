// Synthetic PlanetLab-like wide-area delay model.
//
// The paper's prototype runs on 102 PlanetLab hosts spread across the US
// and Europe (§6.2).  We cannot access PlanetLab (it was retired in 2020),
// so this module synthesizes a host set with the latency structure the
// experiments depend on: hosts are assigned to geographic sites; intra-site
// RTTs are a few milliseconds, intra-continent RTTs tens of milliseconds,
// and trans-atlantic RTTs ~80–150 ms, each with log-normal jitter.  The
// result is a symmetric one-way-delay matrix used to drive the DES for the
// Fig 10 / Fig 11 prototype-scale experiments.  See DESIGN.md S12.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace spider::net {

struct PlanetLabConfig {
  std::size_t hosts = 102;  ///< paper's testbed size
  std::size_t sites = 24;   ///< distinct institutions
  double us_fraction = 0.7; ///< fraction of sites in North America
  double intra_site_ms = 1.0;
  double regional_ms = 18.0;        ///< mean one-way within a continent
  double transatlantic_ms = 55.0;   ///< mean one-way across continents
  double jitter_sigma = 0.35;       ///< log-normal sigma applied to means
  double bandwidth_kbps = 5'000.0;  ///< conservative per-path available bw
};

/// Dense symmetric delay matrix over a synthetic PlanetLab host set.
class PlanetLabModel {
 public:
  PlanetLabModel(const PlanetLabConfig& config, Rng& rng);

  std::size_t host_count() const { return delay_.size(); }

  /// One-way delay between hosts in milliseconds (0 for i == j).
  double delay_ms(std::size_t i, std::size_t j) const;

  /// Per-path available bandwidth (uniform in this model).
  double bandwidth_kbps() const { return config_.bandwidth_kbps; }

  /// Site index of a host (for tests asserting latency structure).
  std::size_t site_of(std::size_t host) const { return site_.at(host); }
  bool site_in_us(std::size_t site) const { return site_us_.at(site); }

 private:
  PlanetLabConfig config_;
  std::vector<std::size_t> site_;
  std::vector<bool> site_us_;
  std::vector<std::vector<double>> delay_;
};

}  // namespace spider::net
