// Shortest-path IP routing (Dijkstra, by propagation delay).
//
// The simulator routes both IP-layer and overlay-layer traffic with
// shortest-path routing, as in the paper (§6.1).  For a 10,000-node IP
// graph with 1,000 overlay peers we never need all-pairs state: the overlay
// layer asks for one source node's metrics to a target *set*, and the
// Router caches per-source trees only when asked to.
#pragma once

#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"

namespace spider::net {

/// Metrics of a shortest (min-delay) path.
struct PathMetrics {
  double delay_ms = std::numeric_limits<double>::infinity();
  double bottleneck_kbps = 0.0;  ///< min link bandwidth along the path
  std::uint32_t hops = 0;
  bool reachable() const { return delay_ms < std::numeric_limits<double>::infinity(); }
};

/// Full single-source shortest path tree (delays + parent links).
class SingleSourcePaths {
 public:
  SingleSourcePaths(const Topology& topo, NodeIdx source);

  NodeIdx source() const { return source_; }
  double delay_to(NodeIdx dst) const { return dist_.at(dst); }
  bool reachable(NodeIdx dst) const {
    return dist_.at(dst) < std::numeric_limits<double>::infinity();
  }

  /// Metrics (delay / bottleneck bw / hops) of the tree path to `dst`.
  PathMetrics metrics_to(NodeIdx dst) const;

  /// Node sequence source..dst (inclusive); empty if unreachable.
  std::vector<NodeIdx> path_to(NodeIdx dst) const;

 private:
  const Topology* topo_;
  NodeIdx source_;
  std::vector<double> dist_;
  std::vector<LinkIdx> parent_link_;  // link taken into each node
};

/// Lazy per-source cache of shortest-path trees.
class Router {
 public:
  explicit Router(const Topology& topo) : topo_(&topo) {}

  /// Shortest-path tree from `src`, computing and caching on first use.
  const SingleSourcePaths& from(NodeIdx src);

  /// Convenience: metrics of the min-delay path src -> dst.
  PathMetrics metrics(NodeIdx src, NodeIdx dst) { return from(src).metrics_to(dst); }

  /// Drops all cached trees (e.g. between benchmark repetitions).
  void clear_cache() { cache_.clear(); }
  std::size_t cached_sources() const { return cache_.size(); }

  /// Caps the number of cached per-source trees (default: unbounded,
  /// preserving exact historical behaviour). At the cap the whole cache
  /// is dropped before the next insert — an epoch policy: deterministic,
  /// no per-entry bookkeeping, and the hot working set refills at once.
  /// Affects memory and recompute cost only, never routing results.
  /// With a cap set, a reference returned by from() stays valid only
  /// until the next from() call for an uncached source; the unbounded
  /// default never invalidates.
  void set_cache_limit(std::size_t max_sources) { cache_limit_ = max_sources; }

 private:
  const Topology* topo_;
  std::unordered_map<NodeIdx, SingleSourcePaths> cache_;
  std::size_t cache_limit_ = std::size_t(-1);
};

}  // namespace spider::net
