// Shortest-path IP routing (Dijkstra, by propagation delay).
//
// The simulator routes both IP-layer and overlay-layer traffic with
// shortest-path routing, as in the paper (§6.1).  For a 10,000-node IP
// graph with 1,000 overlay peers we never need all-pairs state: the overlay
// layer asks for one source node's metrics to a target *set*, and the
// Router caches per-source trees only when asked to.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"

namespace spider::net {

/// Metrics of a shortest (min-delay) path.
struct PathMetrics {
  double delay_ms = std::numeric_limits<double>::infinity();
  double bottleneck_kbps = 0.0;  ///< min link bandwidth along the path
  std::uint32_t hops = 0;
  bool reachable() const { return delay_ms < std::numeric_limits<double>::infinity(); }
};

/// Full single-source shortest path tree (delays + parent links).
class SingleSourcePaths {
 public:
  SingleSourcePaths(const Topology& topo, NodeIdx source);

  NodeIdx source() const { return source_; }
  double delay_to(NodeIdx dst) const { return dist_.at(dst); }
  bool reachable(NodeIdx dst) const {
    return dist_.at(dst) < std::numeric_limits<double>::infinity();
  }

  /// Metrics (delay / bottleneck bw / hops) of the tree path to `dst`.
  PathMetrics metrics_to(NodeIdx dst) const;

  /// Node sequence source..dst (inclusive); empty if unreachable.
  std::vector<NodeIdx> path_to(NodeIdx dst) const;

 private:
  const Topology* topo_;
  NodeIdx source_;
  std::vector<double> dist_;
  std::vector<LinkIdx> parent_link_;  // link taken into each node
};

/// Lazy per-source cache of shortest-path trees.
class Router {
 public:
  explicit Router(const Topology& topo) : topo_(&topo) {}

  /// Shortest-path tree from `src`, computing and caching on first use.
  const SingleSourcePaths& from(NodeIdx src);

  /// Convenience: metrics of the min-delay path src -> dst.
  PathMetrics metrics(NodeIdx src, NodeIdx dst) { return from(src).metrics_to(dst); }

  /// Drops all cached trees (e.g. between benchmark repetitions).
  void clear_cache() {
    cache_.clear();
    lru_.clear();
  }
  std::size_t cached_sources() const { return cache_.size(); }
  /// Trees computed (cache misses) since construction — the recompute
  /// regression counter: a capped cache that thrashes shows up here.
  std::uint64_t recomputes() const { return recomputes_; }

  /// Caps the number of cached per-source trees (default: unbounded,
  /// preserving exact historical behaviour). Eviction is true LRU: at
  /// the cap the least-recently-queried source is dropped — never the
  /// source being queried, and never the whole cache (the old epoch
  /// policy evicted its own hot working set, so alternating sources
  /// recomputed every call). Affects memory and recompute cost only,
  /// never routing results. With a cap set, a reference returned by
  /// from() stays valid until `max_sources` *other* distinct sources
  /// have been queried; the unbounded default never invalidates.
  void set_cache_limit(std::size_t max_sources) {
    cache_limit_ = max_sources == 0 ? 1 : max_sources;
  }

 private:
  struct Entry {
    SingleSourcePaths paths;
    std::list<NodeIdx>::iterator lru;  // position in lru_ (front = hottest)
  };

  const Topology* topo_;
  std::unordered_map<NodeIdx, Entry> cache_;
  std::list<NodeIdx> lru_;  // most-recently-queried source first
  std::size_t cache_limit_ = std::size_t(-1);
  std::uint64_t recomputes_ = 0;
};

}  // namespace spider::net
