// IP-layer network topology.
//
// The paper builds its simulation on a 10,000-node power-law graph produced
// by the Inet-3.0 degree-based topology generator (§6.1).  Inet-3.0 is not
// available offline, so `src/net/generator.hpp` provides a
// preferential-attachment power-law generator with the same relevant
// properties (heavy-tailed degree distribution, low diameter) plus Waxman
// and uniform-random generators for comparison; see DESIGN.md S3.
//
// A Topology is an immutable undirected multigraph-free graph: nodes are
// dense indices, links carry propagation delay and bandwidth capacity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace spider::net {

using NodeIdx = std::uint32_t;
using LinkIdx = std::uint32_t;

constexpr NodeIdx kInvalidNode = static_cast<NodeIdx>(-1);
constexpr LinkIdx kInvalidLink = static_cast<LinkIdx>(-1);

/// Undirected IP-layer link with static capacity.
struct Link {
  NodeIdx a = kInvalidNode;
  NodeIdx b = kInvalidNode;
  double delay_ms = 0.0;        ///< one-way propagation delay
  double bandwidth_kbps = 0.0;  ///< capacity (availability is tracked at the
                                ///< overlay layer; see overlay/README note)

  NodeIdx other(NodeIdx n) const {
    SPIDER_DCHECK(n == a || n == b);
    return n == a ? b : a;
  }
};

/// Half-edge in a node's adjacency list.
struct Adjacency {
  NodeIdx neighbor = kInvalidNode;
  LinkIdx link = kInvalidLink;
};

/// Immutable undirected graph with per-link delay and bandwidth.
class Topology {
 public:
  /// Builds from a node count and link list. Duplicate and self links are
  /// rejected.
  Topology(std::size_t node_count, std::vector<Link> links);

  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkIdx l) const { return links_.at(l); }
  std::span<const Link> links() const { return links_; }

  std::span<const Adjacency> neighbors(NodeIdx n) const;
  std::size_t degree(NodeIdx n) const { return neighbors(n).size(); }

  /// True if every node can reach every other node.
  bool connected() const;

 private:
  std::size_t node_count_;
  std::vector<Link> links_;
  // CSR-style adjacency: offsets_[n]..offsets_[n+1] indexes into adj_.
  std::vector<std::uint32_t> offsets_;
  std::vector<Adjacency> adj_;
};

}  // namespace spider::net
