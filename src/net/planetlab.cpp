#include "net/planetlab.hpp"

#include <cmath>

#include "util/require.hpp"

namespace spider::net {

PlanetLabModel::PlanetLabModel(const PlanetLabConfig& config, Rng& rng)
    : config_(config) {
  SPIDER_REQUIRE(config.hosts >= 2);
  SPIDER_REQUIRE(config.sites >= 1);
  const std::size_t n = config.hosts;

  site_us_.resize(config.sites);
  for (std::size_t s = 0; s < config.sites; ++s) {
    site_us_[s] = rng.next_bool(config.us_fraction);
  }
  site_.resize(n);
  for (std::size_t h = 0; h < n; ++h) {
    site_[h] = rng.next_below(config.sites);
  }

  // Log-normal multiplier with mean ~1: exp(N(-sigma^2/2, sigma)).
  const double mu = -config.jitter_sigma * config.jitter_sigma / 2.0;
  auto jitter = [&] { return rng.next_lognormal(mu, config.jitter_sigma); };

  delay_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double base;
      if (site_[i] == site_[j]) {
        base = config.intra_site_ms;
      } else if (site_us_[site_[i]] == site_us_[site_[j]]) {
        base = config.regional_ms;
      } else {
        base = config.transatlantic_ms;
      }
      const double d = base * jitter();
      delay_[i][j] = d;
      delay_[j][i] = d;
    }
  }
}

double PlanetLabModel::delay_ms(std::size_t i, std::size_t j) const {
  SPIDER_REQUIRE(i < delay_.size() && j < delay_.size());
  return delay_[i][j];
}

}  // namespace spider::net
