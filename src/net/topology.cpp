#include "net/topology.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/keys.hpp"

namespace spider::net {

Topology::Topology(std::size_t node_count, std::vector<Link> links)
    : node_count_(node_count), links_(std::move(links)) {
  SPIDER_REQUIRE(node_count_ > 0);
  // Validate links and reject self loops / duplicates.
  std::unordered_set<util::UnorderedPairKey<NodeIdx>,
                     util::UnorderedPairKeyHash>
      seen;
  seen.reserve(links_.size() * 2);
  for (const Link& l : links_) {
    SPIDER_REQUIRE(l.a < node_count_ && l.b < node_count_);
    SPIDER_REQUIRE_MSG(l.a != l.b, "self loop");
    SPIDER_REQUIRE(l.delay_ms >= 0.0 && l.bandwidth_kbps >= 0.0);
    SPIDER_REQUIRE_MSG(
        seen.insert(util::UnorderedPairKey<NodeIdx>(l.a, l.b)).second,
        "duplicate link");
  }

  // Build CSR adjacency.
  offsets_.assign(node_count_ + 1, 0);
  for (const Link& l : links_) {
    ++offsets_[l.a + 1];
    ++offsets_[l.b + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i) offsets_[i] += offsets_[i - 1];
  adj_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (LinkIdx li = 0; li < links_.size(); ++li) {
    const Link& l = links_[li];
    adj_[cursor[l.a]++] = Adjacency{l.b, li};
    adj_[cursor[l.b]++] = Adjacency{l.a, li};
  }
}

std::span<const Adjacency> Topology::neighbors(NodeIdx n) const {
  SPIDER_REQUIRE(n < node_count_);
  return std::span<const Adjacency>(adj_.data() + offsets_[n],
                                    offsets_[n + 1] - offsets_[n]);
}

bool Topology::connected() const {
  std::vector<bool> visited(node_count_, false);
  std::vector<NodeIdx> stack{0};
  visited[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeIdx n = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : neighbors(n)) {
      if (!visited[adj.neighbor]) {
        visited[adj.neighbor] = true;
        ++reached;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return reached == node_count_;
}

}  // namespace spider::net
