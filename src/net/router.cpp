#include "net/router.hpp"

#include <algorithm>
#include <queue>

namespace spider::net {

SingleSourcePaths::SingleSourcePaths(const Topology& topo, NodeIdx source)
    : topo_(&topo), source_(source) {
  SPIDER_REQUIRE(source < topo.node_count());
  const auto n = topo.node_count();
  dist_.assign(n, std::numeric_limits<double>::infinity());
  parent_link_.assign(n, kInvalidLink);

  using QItem = std::pair<double, NodeIdx>;  // (dist, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist_[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist_[u]) continue;  // stale entry
    for (const Adjacency& adj : topo.neighbors(u)) {
      const double nd = d + topo.link(adj.link).delay_ms;
      if (nd < dist_[adj.neighbor]) {
        dist_[adj.neighbor] = nd;
        parent_link_[adj.neighbor] = adj.link;
        pq.emplace(nd, adj.neighbor);
      }
    }
  }
}

PathMetrics SingleSourcePaths::metrics_to(NodeIdx dst) const {
  SPIDER_REQUIRE(dst < topo_->node_count());
  PathMetrics m;
  if (!reachable(dst)) return m;
  m.delay_ms = dist_[dst];
  m.bottleneck_kbps = std::numeric_limits<double>::infinity();
  NodeIdx cur = dst;
  while (cur != source_) {
    const Link& l = topo_->link(parent_link_[cur]);
    m.bottleneck_kbps = std::min(m.bottleneck_kbps, l.bandwidth_kbps);
    ++m.hops;
    cur = l.other(cur);
  }
  if (m.hops == 0) m.bottleneck_kbps = std::numeric_limits<double>::infinity();
  return m;
}

std::vector<NodeIdx> SingleSourcePaths::path_to(NodeIdx dst) const {
  SPIDER_REQUIRE(dst < topo_->node_count());
  if (!reachable(dst)) return {};
  std::vector<NodeIdx> rev{dst};
  NodeIdx cur = dst;
  while (cur != source_) {
    cur = topo_->link(parent_link_[cur]).other(cur);
    rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

const SingleSourcePaths& Router::from(NodeIdx src) {
  auto it = cache_.find(src);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh recency
    return it->second.paths;
  }
  // LRU eviction: drop the coldest source — `src` is not yet cached, so
  // the source being queried can never be the one evicted.
  while (cache_.size() >= cache_limit_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  ++recomputes_;
  lru_.push_front(src);
  it = cache_.emplace(src, Entry{SingleSourcePaths(*topo_, src), lru_.begin()})
           .first;
  return it->second.paths;
}

}  // namespace spider::net
