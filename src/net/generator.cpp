#include "net/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/keys.hpp"

namespace spider::net {
namespace {

double sample_delay(Rng& rng, const LinkProfile& p) {
  return rng.next_double(p.min_delay_ms, p.max_delay_ms);
}

double sample_bandwidth(Rng& rng, const LinkProfile& p) {
  return rng.next_double(p.min_bandwidth_kbps, p.max_bandwidth_kbps);
}

using NodePairKey = util::UnorderedPairKey<NodeIdx>;
using NodePairSet =
    std::unordered_set<NodePairKey, util::UnorderedPairKeyHash>;

/// Adds a uniformly random spanning tree (random permutation + attach each
/// node to a random earlier node) so the graph is connected.
void add_spanning_tree(std::size_t nodes, Rng& rng, const LinkProfile& profile,
                       std::vector<Link>& links,
                       NodePairSet& seen) {
  std::vector<NodeIdx> order(nodes);
  for (std::size_t i = 0; i < nodes; ++i) order[i] = NodeIdx(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < nodes; ++i) {
    const NodeIdx a = order[i];
    const NodeIdx b = order[rng.next_below(i)];
    if (seen.insert(NodePairKey(a, b)).second) {
      links.push_back(
          Link{a, b, sample_delay(rng, profile), sample_bandwidth(rng, profile)});
    }
  }
}

}  // namespace

Topology power_law(std::size_t nodes, std::size_t links_per_node, Rng& rng,
                   const LinkProfile& profile) {
  SPIDER_REQUIRE(nodes >= 2);
  SPIDER_REQUIRE(links_per_node >= 1);
  const std::size_t m = std::min(links_per_node, nodes - 1);

  std::vector<Link> links;
  links.reserve(nodes * m);
  NodePairSet seen;

  // Seed clique of m+1 nodes.
  const std::size_t seed = m + 1;
  for (std::size_t i = 0; i < seed; ++i) {
    for (std::size_t j = i + 1; j < seed; ++j) {
      links.push_back(Link{NodeIdx(i), NodeIdx(j), sample_delay(rng, profile),
                           sample_bandwidth(rng, profile)});
      seen.insert(NodePairKey(NodeIdx(i), NodeIdx(j)));
    }
  }

  // `targets` holds one entry per half-edge endpoint, so a uniform draw is
  // a degree-proportional draw — the classic O(1) BA sampling trick.
  std::vector<NodeIdx> targets;
  targets.reserve(nodes * m * 2);
  for (const Link& l : links) {
    targets.push_back(l.a);
    targets.push_back(l.b);
  }

  for (std::size_t v = seed; v < nodes; ++v) {
    std::unordered_set<NodeIdx> chosen;
    std::size_t guard = 0;
    while (chosen.size() < m && guard++ < 64 * m) {
      const NodeIdx t = targets[rng.next_below(targets.size())];
      if (t != NodeIdx(v)) chosen.insert(t);
    }
    // Fallback for pathological draws: attach to lowest-index unused nodes.
    for (NodeIdx t = 0; chosen.size() < m; ++t) {
      if (t != NodeIdx(v)) chosen.insert(t);
    }
    for (NodeIdx t : chosen) {
      links.push_back(Link{NodeIdx(v), t, sample_delay(rng, profile),
                           sample_bandwidth(rng, profile)});
      seen.insert(NodePairKey(NodeIdx(v), t));
      targets.push_back(NodeIdx(v));
      targets.push_back(t);
    }
  }
  return Topology(nodes, std::move(links));
}

Topology waxman(std::size_t nodes, double alpha, double beta, Rng& rng,
                const LinkProfile& profile) {
  SPIDER_REQUIRE(nodes >= 2);
  SPIDER_REQUIRE(alpha > 0.0 && beta > 0.0);

  struct Point {
    double x, y;
  };
  std::vector<Point> pos(nodes);
  for (auto& p : pos) p = Point{rng.next_double(), rng.next_double()};

  const double max_dist = std::sqrt(2.0);
  std::vector<Link> links;
  NodePairSet seen;
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      const double dx = pos[i].x - pos[j].x;
      const double dy = pos[i].y - pos[j].y;
      const double d = std::sqrt(dx * dx + dy * dy);
      if (rng.next_bool(alpha * std::exp(-d / (beta * max_dist)))) {
        // Delay scales with geometric distance across the profile's range.
        const double delay =
            profile.min_delay_ms +
            (profile.max_delay_ms - profile.min_delay_ms) * (d / max_dist);
        links.push_back(Link{NodeIdx(i), NodeIdx(j), delay,
                             sample_bandwidth(rng, profile)});
        seen.insert(NodePairKey(NodeIdx(i), NodeIdx(j)));
      }
    }
  }
  add_spanning_tree(nodes, rng, profile, links, seen);
  return Topology(nodes, std::move(links));
}

Topology random_graph(std::size_t nodes, std::size_t extra_links, Rng& rng,
                      const LinkProfile& profile) {
  SPIDER_REQUIRE(nodes >= 2);
  std::vector<Link> links;
  NodePairSet seen;
  add_spanning_tree(nodes, rng, profile, links, seen);

  const std::size_t max_extra =
      nodes * (nodes - 1) / 2 - links.size();
  std::size_t to_add = std::min(extra_links, max_extra);
  std::size_t guard = 0;
  while (to_add > 0 && guard++ < extra_links * 64 + 1024) {
    const auto a = NodeIdx(rng.next_below(nodes));
    const auto b = NodeIdx(rng.next_below(nodes));
    if (a == b) continue;
    if (!seen.insert(NodePairKey(a, b)).second) continue;
    links.push_back(
        Link{a, b, sample_delay(rng, profile), sample_bandwidth(rng, profile)});
    --to_add;
  }
  return Topology(nodes, std::move(links));
}

}  // namespace spider::net
