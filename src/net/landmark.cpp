#include "net/landmark.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

LandmarkTable LandmarkTable::build(
    std::size_t target_count, std::size_t landmark_count,
    const std::function<Column(std::uint32_t target)>& sssp,
    std::size_t jobs) {
  SPIDER_REQUIRE(target_count >= 1);
  SPIDER_REQUIRE(landmark_count >= 1);
  LandmarkTable table;
  table.targets_ = target_count;
  const std::size_t k = std::min(landmark_count, target_count);
  table.cols_.reserve(k);

  // min over chosen landmarks of delay to each target; drives the
  // farthest-point selection of the next landmark.
  std::vector<double> min_delay(target_count, kInf);

  // Merge a column into the frontier and append it to the table.
  auto commit = [&](Column col, std::uint32_t expect) {
    SPIDER_REQUIRE(col.target == expect);
    SPIDER_REQUIRE(col.delay_ms.size() == target_count);
    for (std::size_t t = 0; t < target_count; ++t) {
      min_delay[t] = std::min(min_delay[t], col.delay_ms[t]);
    }
    table.cols_.push_back(std::move(col));
  };
  // Farthest reachable target from the current landmark set; ties go to
  // the lowest index. Unreachable targets (min inf) are skipped — a
  // landmark there could never triangulate the connected component.
  auto select_next = [&](std::uint32_t fallback, double* best_out) {
    double best = -1.0;
    std::uint32_t arg = fallback;
    for (std::size_t t = 0; t < target_count; ++t) {
      if (min_delay[t] == kInf) continue;
      if (min_delay[t] > best) {
        best = min_delay[t];
        arg = std::uint32_t(t);
      }
    }
    *best_out = best;
    return arg;
  };

  std::uint32_t next = 0;  // landmark 0 is target 0 (deterministic)
  if (jobs <= 1) {
    for (std::size_t l = 0; l < k; ++l) {
      commit(sssp(next), next);
      double best = -1.0;
      const std::uint32_t arg = select_next(next, &best);
      if (best <= 0.0) break;  // every target is itself a landmark already
      next = arg;
    }
    return table;
  }

  // Speculative waves: the exact next column plus up to jobs-1 guesses run
  // concurrently, each into its own pre-sized slot. A guess commits only
  // if, after the previous commit merged, it equals the serial selection
  // rule's pick — otherwise the rest of the wave is discarded. Commits
  // therefore replay the serial loop exactly, whatever the hit rate.
  std::size_t committed = 0;
  bool done = false;
  while (committed < k && !done) {
    std::vector<std::uint32_t> wave{next};
    if (committed > 0) {
      // Rank guesses by the current frontier (descending, lowest index on
      // ties): the committed column mostly lowers min_delay near its own
      // landmark, so today's runners-up are likely tomorrow's argmax.
      std::vector<std::pair<double, std::uint32_t>> ranked;
      for (std::size_t t = 0; t < target_count; ++t) {
        if (std::uint32_t(t) == next) continue;
        if (min_delay[t] == kInf || min_delay[t] <= 0.0) continue;
        ranked.emplace_back(min_delay[t], std::uint32_t(t));
      }
      const std::size_t guesses =
          std::min({jobs - 1, k - committed - 1, ranked.size()});
      std::partial_sort(
          ranked.begin(), ranked.begin() + long(guesses), ranked.end(),
          [](const auto& a, const auto& b) {
            if (a.first != b.first) return a.first > b.first;
            return a.second < b.second;
          });
      for (std::size_t g = 0; g < guesses; ++g) {
        wave.push_back(ranked[g].second);
      }
    }
    std::vector<Column> slots(wave.size());
    util::parallel_for_each(jobs, wave.size(), [&](std::size_t i) {
      slots[i] = sssp(wave[i]);
    });
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (i > 0 && wave[i] != next) break;  // misprediction: discard rest
      commit(std::move(slots[i]), wave[i]);
      ++committed;
      double best = -1.0;
      const std::uint32_t arg = select_next(wave[i], &best);
      if (best <= 0.0) {
        done = true;
        break;
      }
      next = arg;
    }
  }
  return table;
}

double LandmarkTable::upper_bound_ms(std::uint32_t u, std::uint32_t v) const {
  SPIDER_REQUIRE(u < targets_ && v < targets_);
  if (u == v) return 0.0;
  double best = kInf;
  for (const Column& col : cols_) {
    best = std::min(best, col.delay_ms[u] + col.delay_ms[v]);
  }
  return best;
}

double LandmarkTable::lower_bound_ms(std::uint32_t u, std::uint32_t v) const {
  SPIDER_REQUIRE(u < targets_ && v < targets_);
  if (u == v) return 0.0;
  double best = 0.0;
  for (const Column& col : cols_) {
    if (col.delay_ms[u] == kInf || col.delay_ms[v] == kInf) continue;
    best = std::max(best, std::abs(col.delay_ms[u] - col.delay_ms[v]));
  }
  return best;
}

PathMetrics LandmarkTable::through_metrics(std::uint32_t u,
                                           std::uint32_t v) const {
  SPIDER_REQUIRE(u < targets_ && v < targets_);
  PathMetrics m;
  if (u == v) {
    m.delay_ms = 0.0;
    m.bottleneck_kbps = kInf;
    m.hops = 0;
    return m;
  }
  std::size_t best_l = cols_.size();
  double best = kInf;
  for (std::size_t l = 0; l < cols_.size(); ++l) {
    const double d = cols_[l].delay_ms[u] + cols_[l].delay_ms[v];
    if (d < best) {
      best = d;
      best_l = l;
    }
  }
  if (best_l == cols_.size()) return m;  // unreachable: default metrics
  const Column& col = cols_[best_l];
  SPIDER_REQUIRE_MSG(!col.bottleneck_kbps.empty() && !col.hops.empty(),
                     "through_metrics needs bottleneck/hop columns");
  m.delay_ms = best;
  m.bottleneck_kbps =
      std::min(col.bottleneck_kbps[u], col.bottleneck_kbps[v]);
  m.hops = col.hops[u] + col.hops[v];
  return m;
}

LandmarkTable build_ip_landmarks(const Topology& topo,
                                 std::span<const NodeIdx> targets,
                                 std::size_t landmark_count,
                                 std::size_t jobs) {
  SPIDER_REQUIRE(!targets.empty());
  const std::size_t n = topo.node_count();
  for (NodeIdx t : targets) SPIDER_REQUIRE(t < n);

  // One Dijkstra over the whole topology per landmark; bottleneck and hop
  // counts ride along the relaxation (strict `<`, so they describe the
  // same tree path plain Dijkstra would pick), and only the target
  // columns are kept.
  auto sssp = [&](std::uint32_t target) {
    const NodeIdx source = targets[target];
    std::vector<double> dist(n, kInf);
    std::vector<double> btl(n, 0.0);
    std::vector<std::uint32_t> hops(n, 0);
    using QItem = std::pair<double, NodeIdx>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    dist[source] = 0.0;
    btl[source] = kInf;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;  // stale entry
      for (const Adjacency& adj : topo.neighbors(u)) {
        const Link& link = topo.link(adj.link);
        const double nd = d + link.delay_ms;
        if (nd < dist[adj.neighbor]) {
          dist[adj.neighbor] = nd;
          btl[adj.neighbor] = std::min(btl[u], link.bandwidth_kbps);
          hops[adj.neighbor] = hops[u] + 1;
          pq.emplace(nd, adj.neighbor);
        }
      }
    }
    LandmarkTable::Column col;
    col.target = target;
    col.delay_ms.reserve(targets.size());
    col.bottleneck_kbps.reserve(targets.size());
    col.hops.reserve(targets.size());
    for (NodeIdx t : targets) {
      col.delay_ms.push_back(dist[t]);
      col.bottleneck_kbps.push_back(btl[t]);
      col.hops.push_back(hops[t]);
    }
    return col;
  };
  return LandmarkTable::build(targets.size(), landmark_count, sssp, jobs);
}

}  // namespace spider::net
