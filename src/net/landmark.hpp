// Landmark-based latency estimation (k-landmark triangulation).
//
// Exact all-pairs shortest-path state is O(N²) and is what capped
// bench_scale at 50k peers. A LandmarkTable replaces it with k columns:
// pick k landmarks by deterministic farthest-point sampling over a target
// set, run one single-source Dijkstra per landmark at build time, and
// answer delay queries between any two targets from the triangle
// inequality:
//
//     max_l |d(l,u) - d(l,v)|  <=  d(u,v)  <=  min_l d(l,u) + d(l,v)
//
// The upper bound is the length of a real path (u -> l -> v through the
// best landmark), so `estimate_ms` returns it: estimates are always
// admissible routes, never optimistic fabrications, and the same
// through-landmark path supplies bottleneck bandwidth and hop counts for
// overlay-link metrics. Exact paths are still computed — lazily, per
// source, only for pairs that end up in a candidate service graph (see
// overlay::OverlayNetwork::route).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/router.hpp"
#include "net/topology.hpp"

namespace spider::net {

/// k landmark distance columns over a dense target index space 0..n-1.
/// Layer-agnostic: targets are IP nodes hosting peers at the IP layer and
/// overlay peers at the overlay layer; only the SSSP callback differs.
class LandmarkTable {
 public:
  /// One landmark's view of every target. `bottleneck_kbps` / `hops` may
  /// be empty when the layer has no meaningful per-path values (the
  /// overlay-layer estimator only needs delays).
  struct Column {
    std::uint32_t target = 0;  ///< the landmark's own target index
    std::vector<double> delay_ms;
    std::vector<double> bottleneck_kbps;
    std::vector<std::uint32_t> hops;
  };

  /// Builds the table: landmark 0 is target 0, every further landmark is
  /// the target farthest (max-min delay) from the landmarks chosen so far
  /// — deterministic farthest-point sampling, ties broken toward the
  /// lowest index. `sssp(t)` must return the full Column for target `t`.
  ///
  /// `jobs > 1` computes columns in speculative waves on a WorkerPool:
  /// each wave runs the exact next landmark's column alongside up to
  /// jobs-1 guesses ranked by the current min-delay frontier, and a guess
  /// is committed only if it matches what the serial selection rule would
  /// pick after the preceding commit — so the chosen landmarks and their
  /// columns are byte-identical at any job count (mispredicted columns
  /// are discarded). `sssp` must be safe to call concurrently.
  static LandmarkTable build(
      std::size_t target_count, std::size_t landmark_count,
      const std::function<Column(std::uint32_t target)>& sssp,
      std::size_t jobs = 1);

  std::size_t landmark_count() const { return cols_.size(); }
  std::size_t target_count() const { return targets_; }
  std::uint32_t landmark_target(std::size_t l) const {
    return cols_.at(l).target;
  }
  /// Delay from landmark `l` to target `t` (one table cell).
  double landmark_delay_ms(std::size_t l, std::uint32_t t) const {
    return cols_.at(l).delay_ms.at(t);
  }

  /// Triangulation upper bound min_l d(l,u)+d(l,v): the delay of a real
  /// u -> l -> v path (infinity if no landmark reaches both).
  double upper_bound_ms(std::uint32_t u, std::uint32_t v) const;
  /// Triangulation lower bound max_l |d(l,u)-d(l,v)|.
  double lower_bound_ms(std::uint32_t u, std::uint32_t v) const;
  /// The estimate served to callers: the admissible upper bound.
  double estimate_ms(std::uint32_t u, std::uint32_t v) const {
    return upper_bound_ms(u, v);
  }

  /// Metrics of the through-landmark path realizing upper_bound_ms:
  /// delay is the bound itself, bottleneck the min of the two legs, hops
  /// their sum. Requires the columns to carry bottleneck/hop data.
  PathMetrics through_metrics(std::uint32_t u, std::uint32_t v) const;

 private:
  std::size_t targets_ = 0;
  std::vector<Column> cols_;
};

/// IP-layer builder: landmarks are drawn from `targets` (the IP nodes
/// hosting overlay peers); each landmark runs one Dijkstra over the full
/// topology and keeps the columns restricted to the targets. Bottleneck
/// bandwidth and hop counts are propagated along the shortest-path tree
/// during relaxation, so through_metrics describes real IP paths.
LandmarkTable build_ip_landmarks(const Topology& topo,
                                 std::span<const NodeIdx> targets,
                                 std::size_t landmark_count,
                                 std::size_t jobs = 1);

}  // namespace spider::net
