// Decentralized trust management — the paper's stated future work (§8):
// "we will integrate decentralized trust management into the current
// service composition framework to support secure service composition."
//
// This module implements a beta-reputation system over the existing DHT:
//
//  * after a session, the source peer reports each involved peer's
//    behaviour (did its component deliver, did the peer vanish
//    mid-session) as a positive/negative interaction;
//  * per-subject feedback records are stored decentralized under the key
//    SHA-1("trust:<peer>") with the DHT's normal replication, one record
//    per rater (a rater updates its own record rather than appending, so
//    a single rater cannot inflate counts by repetition);
//  * the trust score of a peer is the expected value of the Beta
//    posterior over its aggregated interaction counts,
//        t = (α₀ + Σpos) / (α₀ + β₀ + Σpos + Σneg),
//    fetched on demand via a DHT lookup — the same on-demand selective
//    state collection philosophy as BCP itself.
//
// Composition integrates trust through BcpConfig::trust_fn: candidates
// hosted by low-trust peers are penalized in the next-hop metric, so a
// few bad experiences steer probes away from unreliable or misbehaving
// providers without any centralized authority.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "core/deployment.hpp"
#include "sim/simulator.hpp"
#include "util/keys.hpp"

namespace spider::obs {
class MetricsRegistry;
class Counter;
}  // namespace spider::obs

namespace spider::trust {

using overlay::PeerId;

struct TrustConfig {
  /// Beta prior (α₀, β₀). The default (1, 1) is the uniform prior: an
  /// unknown peer scores 0.5.
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  /// Cache TTL for fetched scores, in simulator time units; 0 disables
  /// caching (every query hits the DHT).
  double cache_ttl = 0.0;
};

/// Aggregated interaction counts for one subject peer.
struct TrustRecord {
  double positive = 0.0;
  double negative = 0.0;
  std::size_t raters = 0;
};

class TrustManager {
 public:
  TrustManager(core::Deployment& deployment, sim::Simulator& simulator,
               TrustConfig config = {})
      : deployment_(&deployment), sim_(&simulator), config_(config) {}

  /// Records an interaction outcome observed by `rater` about `subject`
  /// and publishes the rater's updated record to the DHT.
  void report(PeerId rater, PeerId subject, bool positive);

  /// Trust score in (0, 1): Beta-posterior mean over all raters' records
  /// fetched from the DHT by `requester`. Unknown peers get the prior
  /// mean. Counts DHT messages like any other lookup.
  double trust(PeerId requester, PeerId subject);

  /// Aggregated counts as stored (for tests/inspection).
  TrustRecord record(PeerId requester, PeerId subject);

  /// Convenience: a trust function bound to a querying peer, suitable for
  /// BcpConfig::trust_fn.
  std::function<double(PeerId)> trust_fn(PeerId requester);

  std::uint64_t reports_published() const { return reports_; }

  std::size_t cache_size() const { return cache_.size(); }
  /// Entries dropped because their TTL lapsed (touched-on-lookup or via
  /// sweep_expired); report()'s invalidation drops are not counted.
  std::uint64_t cache_evictions() const { return cache_evictions_; }

  /// Evicts every cached score whose TTL has lapsed and returns how many
  /// were dropped. trust() already evicts the expired entry it touches,
  /// but scores for subjects never queried again would otherwise pin the
  /// map forever — the PR 4 discovery-cache bug family. trust()
  /// piggybacks a full sweep every kCacheSweepInterval cached lookups;
  /// call this directly for prompt reclamation.
  std::size_t sweep_expired();

  /// Attaches a metrics registry (null detaches). The only counter,
  /// "trust.cache_evictions", is registered lazily on the first eviction
  /// so cache-free runs keep their exact metric exports.
  void set_metrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    m_cache_evictions_ = nullptr;
  }

 private:
  struct CacheEntry {
    double score;
    double expires_at;
  };

  /// Cached lookups between piggybacked full sweeps in trust().
  static constexpr std::uint64_t kCacheSweepInterval = 256;

  void note_evictions(std::size_t count);

  static dht::NodeId key_for(PeerId subject);
  static std::string serialize(PeerId rater, std::uint32_t pos,
                               std::uint32_t neg);

  core::Deployment* deployment_;
  sim::Simulator* sim_;
  TrustConfig config_;
  // Each rater's local interaction counts per subject (its own ground
  // truth; the DHT holds the published copies).
  std::unordered_map<util::PairKey<PeerId, PeerId>,
                     std::pair<std::uint32_t, std::uint32_t>,
                     util::PairKeyHash>
      own_counts_;
  std::unordered_map<PeerId, CacheEntry> cache_;
  std::uint64_t reports_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t cached_lookups_since_sweep_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
};

}  // namespace spider::trust
