#include "trust/trust.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/require.hpp"

namespace spider::trust {

dht::NodeId TrustManager::key_for(PeerId subject) {
  return dht::NodeId::hash_of("trust:" + std::to_string(subject));
}

std::string TrustManager::serialize(PeerId rater, std::uint32_t pos,
                                    std::uint32_t neg) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u|%u|%u", rater, pos, neg);
  return buf;
}

void TrustManager::report(PeerId rater, PeerId subject, bool positive) {
  SPIDER_REQUIRE(rater < deployment_->peer_count());
  SPIDER_REQUIRE(subject < deployment_->peer_count());
  if (!deployment_->dht().alive(rater)) return;

  auto& counts = own_counts_[util::PairKey<PeerId, PeerId>{rater, subject}];
  const std::string old_record =
      serialize(rater, counts.first, counts.second);
  if (positive) {
    ++counts.first;
  } else {
    ++counts.second;
  }
  // Replace the rater's published record: erase the stale copy, publish
  // the updated one. One record per rater bounds self-promotion.
  auto& dht = deployment_->dht();
  const dht::NodeId key = key_for(subject);
  if (counts.first + counts.second > 1) dht.erase(key, old_record);
  dht.put(rater, key, serialize(rater, counts.first, counts.second));
  ++reports_;
  cache_.erase(subject);  // invalidate the aggregate cache
}

TrustRecord TrustManager::record(PeerId requester, PeerId subject) {
  TrustRecord out;
  if (!deployment_->dht().alive(requester)) return out;
  const dht::GetResult got =
      deployment_->dht().get(requester, key_for(subject));
  for (const std::string& blob : got.values) {
    unsigned rater = 0, pos = 0, neg = 0;
    if (std::sscanf(blob.c_str(), "%u|%u|%u", &rater, &pos, &neg) == 3) {
      out.positive += pos;
      out.negative += neg;
      ++out.raters;
    }
  }
  return out;
}

void TrustManager::note_evictions(std::size_t count) {
  if (count == 0) return;
  cache_evictions_ += count;
  // Lazily registered so cache-free runs keep their exact metric exports.
  if (metrics_ != nullptr && m_cache_evictions_ == nullptr) {
    m_cache_evictions_ = &metrics_->counter("trust.cache_evictions");
  }
  if (m_cache_evictions_ != nullptr) m_cache_evictions_->inc(count);
}

std::size_t TrustManager::sweep_expired() {
  if (config_.cache_ttl <= 0.0) return 0;
  const double now = sim_->now();
  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.expires_at <= now) {
      it = cache_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  note_evictions(evicted);
  return evicted;
}

double TrustManager::trust(PeerId requester, PeerId subject) {
  if (config_.cache_ttl > 0.0) {
    // Amortized reclamation for subjects never queried again: sweep the
    // whole map every kCacheSweepInterval cached lookups.
    if (++cached_lookups_since_sweep_ >= kCacheSweepInterval) {
      cached_lookups_since_sweep_ = 0;
      sweep_expired();
    }
    auto it = cache_.find(subject);
    if (it != cache_.end()) {
      if (it->second.expires_at > sim_->now()) {
        return it->second.score;
      }
      // Expired: evict on touch (re-inserted below after the DHT fetch).
      cache_.erase(it);
      note_evictions(1);
    }
  }
  const TrustRecord rec = record(requester, subject);
  const double score =
      (config_.prior_alpha + rec.positive) /
      (config_.prior_alpha + config_.prior_beta + rec.positive + rec.negative);
  if (config_.cache_ttl > 0.0) {
    cache_[subject] = CacheEntry{score, sim_->now() + config_.cache_ttl};
  }
  return score;
}

std::function<double(PeerId)> TrustManager::trust_fn(PeerId requester) {
  return [this, requester](PeerId subject) {
    return trust(requester, subject);
  };
}

}  // namespace spider::trust
