#include "service/function_graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/require.hpp"

namespace spider::service {

FunctionId FunctionCatalog::intern(const std::string& name) {
  const FunctionId existing = find(name);
  if (existing != kInvalidFunction) return existing;
  names_.push_back(name);
  return FunctionId(names_.size() - 1);
}

FunctionId FunctionCatalog::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return FunctionId(i);
  }
  return kInvalidFunction;
}

const std::string& FunctionCatalog::name(FunctionId id) const {
  SPIDER_REQUIRE(id < names_.size());
  return names_[id];
}

FnNode FunctionGraph::add_function(FunctionId function) {
  SPIDER_REQUIRE(function != kInvalidFunction);
  functions_.push_back(function);
  return FnNode(functions_.size() - 1);
}

void FunctionGraph::add_dependency(FnNode u, FnNode v) {
  SPIDER_REQUIRE(u < functions_.size() && v < functions_.size());
  SPIDER_REQUIRE_MSG(u != v, "self dependency");
  deps_.emplace_back(u, v);
}

void FunctionGraph::add_commutation(FnNode u, FnNode v) {
  SPIDER_REQUIRE(u < functions_.size() && v < functions_.size());
  SPIDER_REQUIRE_MSG(u != v, "self commutation");
  comms_.emplace_back(u, v);
}

void FunctionGraph::mark_conditional(FnNode n) {
  SPIDER_REQUIRE(n < functions_.size());
  if (!is_conditional(n)) conditionals_.push_back(n);
}

bool FunctionGraph::is_conditional(FnNode n) const {
  return std::find(conditionals_.begin(), conditionals_.end(), n) !=
         conditionals_.end();
}

std::vector<FnNode> FunctionGraph::successors(FnNode n) const {
  std::vector<FnNode> out;
  for (const auto& [u, v] : deps_) {
    if (u == n) out.push_back(v);
  }
  return out;
}

std::vector<FnNode> FunctionGraph::predecessors(FnNode n) const {
  std::vector<FnNode> out;
  for (const auto& [u, v] : deps_) {
    if (v == n) out.push_back(u);
  }
  return out;
}

std::vector<FnNode> FunctionGraph::sources() const {
  std::vector<bool> has_pred(node_count(), false);
  for (const auto& [u, v] : deps_) {
    (void)u;
    has_pred[v] = true;
  }
  std::vector<FnNode> out;
  for (FnNode n = 0; n < node_count(); ++n) {
    if (!has_pred[n]) out.push_back(n);
  }
  return out;
}

std::vector<FnNode> FunctionGraph::sinks() const {
  std::vector<bool> has_succ(node_count(), false);
  for (const auto& [u, v] : deps_) {
    (void)v;
    has_succ[u] = true;
  }
  std::vector<FnNode> out;
  for (FnNode n = 0; n < node_count(); ++n) {
    if (!has_succ[n]) out.push_back(n);
  }
  return out;
}

bool FunctionGraph::is_dag() const {
  // Kahn's algorithm: a DAG iff all nodes drain.
  std::vector<std::uint32_t> in_deg(node_count(), 0);
  for (const auto& [u, v] : deps_) {
    (void)u;
    ++in_deg[v];
  }
  std::vector<FnNode> stack;
  for (FnNode n = 0; n < node_count(); ++n) {
    if (in_deg[n] == 0) stack.push_back(n);
  }
  std::size_t drained = 0;
  while (!stack.empty()) {
    const FnNode n = stack.back();
    stack.pop_back();
    ++drained;
    for (const auto& [u, v] : deps_) {
      if (u == n && --in_deg[v] == 0) stack.push_back(v);
    }
  }
  return drained == node_count();
}

std::vector<FnNode> FunctionGraph::topological_order() const {
  std::vector<std::uint32_t> in_deg(node_count(), 0);
  for (const auto& [u, v] : deps_) {
    (void)u;
    ++in_deg[v];
  }
  // Min-index-first drain keeps the order deterministic.
  std::vector<FnNode> ready;
  for (FnNode n = 0; n < node_count(); ++n) {
    if (in_deg[n] == 0) ready.push_back(n);
  }
  std::vector<FnNode> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), std::greater<>());
    const FnNode n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (const auto& [u, v] : deps_) {
      if (u == n && --in_deg[v] == 0) ready.push_back(v);
    }
  }
  SPIDER_REQUIRE_MSG(order.size() == node_count(), "graph has a cycle");
  return order;
}

bool FunctionGraph::is_linear() const {
  std::vector<std::uint32_t> in_deg(node_count(), 0), out_deg(node_count(), 0);
  for (const auto& [u, v] : deps_) {
    ++out_deg[u];
    ++in_deg[v];
  }
  for (FnNode n = 0; n < node_count(); ++n) {
    if (in_deg[n] > 1 || out_deg[n] > 1) return false;
  }
  return true;
}

namespace {

/// Signature of a pattern up to node relabeling by topological order, so
/// that exchanging two nodes carrying the SAME function dedupes to one
/// pattern (the composition is functionally identical).
std::string canonical_pattern_signature(const FunctionGraph& g) {
  const std::vector<FnNode> order = g.topological_order();
  std::vector<FnNode> rank(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) rank[order[i]] = FnNode(i);

  std::string sig;
  for (FnNode n : order) {
    sig += std::to_string(g.function(n));
    sig += ',';
  }
  sig += '|';
  std::vector<std::pair<FnNode, FnNode>> edges;
  for (const auto& [u, v] : g.dependencies()) {
    edges.emplace_back(rank[u], rank[v]);
  }
  std::sort(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) {
    sig += std::to_string(u);
    sig += '>';
    sig += std::to_string(v);
    sig += ',';
  }
  return sig;
}

}  // namespace

std::vector<FunctionGraph> FunctionGraph::patterns(
    std::size_t max_patterns) const {
  SPIDER_REQUIRE(is_dag());
  std::vector<FunctionGraph> out;
  std::unordered_set<std::string> seen;

  // A commutation exchange is a transposition of two node positions: edges
  // are relabelled through the swap while each node keeps its function.
  // Enumerate all subsets of commutation links, applied left to right.
  const std::size_t subsets = std::size_t(1)
                              << std::min<std::size_t>(comms_.size(), 16);
  for (std::size_t mask = 0; mask < subsets && out.size() < max_patterns;
       ++mask) {
    // Build the node permutation for this subset.
    std::vector<FnNode> perm(node_count());
    for (FnNode n = 0; n < node_count(); ++n) perm[n] = n;
    for (std::size_t i = 0; i < comms_.size(); ++i) {
      if ((mask >> i) & 1) std::swap(perm[comms_[i].first], perm[comms_[i].second]);
    }
    FunctionGraph g;
    g.functions_ = functions_;
    g.comms_ = comms_;
    g.conditionals_ = conditionals_;
    g.deps_.reserve(deps_.size());
    for (const auto& [u, v] : deps_) g.deps_.emplace_back(perm[u], perm[v]);
    if (!g.is_dag()) continue;  // defensive; transpositions preserve DAG-ness
    if (seen.insert(canonical_pattern_signature(g)).second) {
      out.push_back(std::move(g));
    }
  }
  SPIDER_REQUIRE(!out.empty());
  return out;
}

std::vector<std::vector<FnNode>> FunctionGraph::branches() const {
  SPIDER_REQUIRE(is_dag());
  std::vector<std::vector<FnNode>> out;
  std::vector<FnNode> path;

  // Iterative DFS enumerating all source->sink paths.
  struct Frame {
    FnNode node;
    std::vector<FnNode> succ;
    std::size_t next = 0;
  };
  for (FnNode source : sources()) {
    std::vector<Frame> stack;
    stack.push_back(Frame{source, successors(source), 0});
    path.assign(1, source);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.succ.empty()) {
        out.push_back(path);  // sink reached
      }
      if (frame.next >= frame.succ.size()) {
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const FnNode nxt = frame.succ[frame.next++];
      path.push_back(nxt);
      stack.push_back(Frame{nxt, successors(nxt), 0});
    }
  }
  return out;
}

std::string FunctionGraph::signature() const {
  std::vector<std::pair<FnNode, FnNode>> edges = deps_;
  std::sort(edges.begin(), edges.end());
  std::string sig;
  for (FunctionId f : functions_) {
    sig += std::to_string(f);
    sig += ',';
  }
  sig += '|';
  for (const auto& [u, v] : edges) {
    sig += std::to_string(u);
    sig += '>';
    sig += std::to_string(v);
    sig += ',';
  }
  return sig;
}

FunctionGraph make_linear_graph(const std::vector<FunctionId>& functions) {
  SPIDER_REQUIRE(!functions.empty());
  FunctionGraph g;
  for (FunctionId f : functions) g.add_function(f);
  for (std::size_t i = 0; i + 1 < functions.size(); ++i) {
    g.add_dependency(FnNode(i), FnNode(i + 1));
  }
  return g;
}

}  // namespace spider::service
