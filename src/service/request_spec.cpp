#include "service/request_spec.hpp"

#include <cstdio>
#include <sstream>

#include "service/qos.hpp"

namespace spider::service {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + what;
  }
  return what;
}

/// Splits "a -> b -> c" (or "a ~ b") on the given arrow token.
std::vector<std::string> split_on(const std::string& text,
                                  const std::string& token) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  for (;;) {
    const auto next = text.find(token, pos);
    if (next == std::string::npos) {
      parts.push_back(trim(text.substr(pos)));
      return parts;
    }
    parts.push_back(trim(text.substr(pos, next - pos)));
    pos = next + token.size();
  }
}

bool parse_number(const std::string& text, double* out) {
  char extra = 0;
  return std::sscanf(text.c_str(), "%lg %c", out, &extra) == 1;
}

}  // namespace

std::optional<ParsedRequest> parse_request_spec(const std::string& text,
                                                FunctionCatalog& catalog,
                                                std::string* error) {
  ParsedRequest out;
  // Builder state: nodes by name (interned lazily, one node per name).
  std::vector<std::string> node_names;
  std::vector<std::pair<std::string, std::string>> edges;
  std::vector<std::pair<std::string, std::string>> commutes;
  std::vector<std::string> conditionals;
  double delay = -1.0, loss = 0.0, bandwidth = 0.0, failure = 1.0;
  double source_level = 0.0, dest_level = 0.0;
  bool have_delay = false;

  auto node_index = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < node_names.size(); ++i) {
      if (node_names[i] == name) return int(i);
    }
    node_names.push_back(name);
    return int(node_names.size()) - 1;
  };

  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      fail(error, line_no, "expected 'key: value'");
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));
    if (value.empty()) {
      fail(error, line_no, "empty value for '" + key + "'");
      return std::nullopt;
    }

    if (key == "edges") {
      const auto chain = split_on(value, "->");
      if (chain.size() < 2) {
        fail(error, line_no, "edge chain needs at least two functions");
        return std::nullopt;
      }
      for (const std::string& name : chain) {
        if (name.empty()) {
          fail(error, line_no, "empty function name in edge chain");
          return std::nullopt;
        }
      }
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        if (chain[i] == chain[i + 1]) {
          fail(error, line_no, "self edge on '" + chain[i] + "'");
          return std::nullopt;
        }
        node_index(chain[i]);
        node_index(chain[i + 1]);
        edges.emplace_back(chain[i], chain[i + 1]);
      }
    } else if (key == "commute") {
      const auto pair = split_on(value, "~");
      if (pair.size() != 2 || pair[0].empty() || pair[1].empty()) {
        fail(error, line_no, "commute expects 'a ~ b'");
        return std::nullopt;
      }
      commutes.emplace_back(pair[0], pair[1]);
    } else if (key == "conditional") {
      conditionals.push_back(value);
    } else if (key == "delay") {
      if (!parse_number(value, &delay) || delay <= 0.0) {
        fail(error, line_no, "delay must be a positive number (ms)");
        return std::nullopt;
      }
      have_delay = true;
    } else if (key == "loss") {
      if (!parse_number(value, &loss) || loss < 0.0 || loss >= 1.0) {
        fail(error, line_no, "loss must be in [0, 1)");
        return std::nullopt;
      }
    } else if (key == "bandwidth") {
      if (!parse_number(value, &bandwidth) || bandwidth < 0.0) {
        fail(error, line_no, "bandwidth must be >= 0 (kbps)");
        return std::nullopt;
      }
    } else if (key == "failure") {
      if (!parse_number(value, &failure) || failure <= 0.0 || failure > 1.0) {
        fail(error, line_no, "failure must be in (0, 1]");
        return std::nullopt;
      }
    } else if (key == "source-level") {
      if (!parse_number(value, &source_level) || source_level < 0.0) {
        fail(error, line_no, "source-level must be >= 0");
        return std::nullopt;
      }
    } else if (key == "dest-level") {
      if (!parse_number(value, &dest_level) || dest_level < 0.0) {
        fail(error, line_no, "dest-level must be >= 0");
        return std::nullopt;
      }
    } else {
      fail(error, line_no, "unknown key '" + key + "'");
      return std::nullopt;
    }
  }

  if (node_names.empty()) {
    fail(error, line_no, "no edges declared");
    return std::nullopt;
  }
  if (!have_delay) {
    fail(error, line_no, "missing required 'delay' bound");
    return std::nullopt;
  }

  // Resolve commutation/conditional names against declared nodes.
  auto find_node = [&](const std::string& name) -> int {
    for (std::size_t i = 0; i < node_names.size(); ++i) {
      if (node_names[i] == name) return int(i);
    }
    return -1;
  };

  FunctionGraph graph;
  for (const std::string& name : node_names) {
    graph.add_function(catalog.intern(name));
  }
  for (const auto& [u, v] : edges) {
    graph.add_dependency(FnNode(find_node(u)), FnNode(find_node(v)));
  }
  for (const auto& [u, v] : commutes) {
    const int iu = find_node(u), iv = find_node(v);
    if (iu < 0 || iv < 0) {
      fail(error, line_no,
           "commute references undeclared function '" + (iu < 0 ? u : v) + "'");
      return std::nullopt;
    }
    graph.add_commutation(FnNode(iu), FnNode(iv));
  }
  for (const std::string& name : conditionals) {
    const int idx = find_node(name);
    if (idx < 0) {
      fail(error, line_no,
           "conditional references undeclared function '" + name + "'");
      return std::nullopt;
    }
    graph.mark_conditional(FnNode(idx));
  }
  if (!graph.is_dag()) {
    fail(error, line_no, "dependency edges form a cycle");
    return std::nullopt;
  }

  out.request.graph = std::move(graph);
  out.request.qos_req = Qos::delay_loss(delay, loss_to_additive(loss));
  out.request.bandwidth_kbps = bandwidth;
  out.request.max_failure_prob = failure;
  out.request.source_level = std::uint32_t(source_level);
  out.request.min_dest_level = std::uint32_t(dest_level);
  out.function_names = std::move(node_names);
  return out;
}

}  // namespace spider::service
