// Service component model (§2.2, Figure 3).
//
// A service component is a self-contained application unit hosted by a
// peer.  It consumes application data units at an input quality level,
// produces outputs at an output quality level, adds a performance quality
// Q_p (e.g. processing delay), and requires resources R (CPU, memory) on
// its host for the duration of a session.  Components providing the same
// *function* are functionally duplicated replicas with possibly different
// QoS and resource properties — the redundancy that the two-dimensional
// mapping (Figure 4) exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/overlay.hpp"
#include "service/qos.hpp"

namespace spider::service {

/// Identity of a service *function* (e.g. "video/down-scale"). Derived
/// from the function name; replicas of a function share the id.
using FunctionId = std::uint32_t;
constexpr FunctionId kInvalidFunction = static_cast<FunctionId>(-1);

/// Globally unique component instance id: (host peer << 32) | local index.
using ComponentId = std::uint64_t;
constexpr ComponentId kInvalidComponent = static_cast<ComponentId>(-1);

inline ComponentId make_component_id(overlay::PeerId host, std::uint32_t local) {
  return (std::uint64_t(host) << 32) | local;
}
inline overlay::PeerId component_host(ComponentId id) {
  return overlay::PeerId(id >> 32);
}

/// A deployed service component instance.
struct ServiceComponent {
  ComponentId id = kInvalidComponent;
  FunctionId function = kInvalidFunction;
  overlay::PeerId host = overlay::kInvalidPeer;

  Qos perf = Qos::delay_loss(0.0);  ///< Q_p: performance quality added per hop
  Resources required;               ///< R: per-session host resources
  double failure_prob = 0.0;        ///< per-time-unit failure probability
                                    ///< estimate of the hosting peer

  /// Application-level I/O quality levels (Q_in / Q_out). The built-in
  /// scenarios model them as abstract level indices; a component accepts
  /// inputs at quality >= input_level and emits output_level.
  std::uint32_t input_level = 0;
  std::uint32_t output_level = 0;
};

/// Static meta-data stored in the discovery substrate (§3): everything a
/// remote peer needs to evaluate a replica without contacting it.
struct ComponentMetadata {
  ComponentId id = kInvalidComponent;
  FunctionId function = kInvalidFunction;
  overlay::PeerId host = overlay::kInvalidPeer;
  Qos perf = Qos::delay_loss(0.0);
  Resources required;
  /// Advertised failure-probability estimate of the hosting peer — BCP's
  /// next-hop metric and §5.2's bottleneck ordering both consume it.
  double failure_prob = 0.0;
  std::uint32_t input_level = 0;
  std::uint32_t output_level = 0;

  static ComponentMetadata from(const ServiceComponent& c) {
    return ComponentMetadata{c.id,           c.function,    c.host,
                             c.perf,         c.required,    c.failure_prob,
                             c.input_level,  c.output_level};
  }
};

/// Catalog of functions known to a deployment: maps names to dense ids.
class FunctionCatalog {
 public:
  /// Returns the id for `name`, interning it on first use.
  FunctionId intern(const std::string& name);
  /// Id for an existing name; kInvalidFunction if unknown.
  FunctionId find(const std::string& name) const;
  const std::string& name(FunctionId id) const;
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace spider::service
