#include "service/qos.hpp"

#include <cmath>
#include <cstdio>

namespace spider::service {

Qos& Qos::operator+=(const Qos& other) {
  SPIDER_REQUIRE(size_ == other.size_);
  for (std::size_t i = 0; i < size_; ++i) v_[i] += other.v_[i];
  return *this;
}

bool Qos::within(const Qos& bound) const {
  SPIDER_REQUIRE(size_ == bound.size_);
  for (std::size_t i = 0; i < size_; ++i) {
    if (v_[i] > bound.v_[i]) return false;
  }
  return true;
}

double Qos::ratio_sum(const Qos& bound) const {
  SPIDER_REQUIRE(size_ == bound.size_);
  double acc = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (bound.v_[i] > 0.0) {
      acc += v_[i] / bound.v_[i];
    } else if (v_[i] > 0.0) {
      acc += 1e9;  // a zero bound with a nonzero metric is unmeetable
    }
  }
  return acc;
}

std::string Qos::to_string() const {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < size_; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.3f", i ? ", " : "", v_[i]);
    out += buf;
  }
  return out + "]";
}

std::string Resources::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{cpu=%.2f, mem=%.2f}", cpu(), memory());
  return buf;
}

double loss_to_additive(double loss_rate) {
  SPIDER_REQUIRE(loss_rate >= 0.0 && loss_rate < 1.0);
  return -std::log(1.0 - loss_rate);
}

double additive_to_loss(double loss_log) {
  SPIDER_REQUIRE(loss_log >= 0.0);
  return 1.0 - std::exp(-loss_log);
}

}  // namespace spider::service
