// QoS and resource vectors (§2.1, §2.2).
//
// The paper assumes all QoS metrics are *additive*: a multiplicative metric
// such as loss rate is transformed via -log(1 - loss) so that it accumulates
// by addition along a service graph (footnote 2).  `Qos` is a fixed-capacity
// vector of additive metrics with two conventional slots (end-to-end delay
// in ms, transformed loss) that the built-in scenarios use; callers may use
// up to kMaxMetrics custom dimensions.
//
// Bandwidth is *not* a QoS metric: the paper treats it as a resource on
// service links (its availability is a min along a path, not a sum), so it
// lives in the request / allocator instead.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

#include "util/require.hpp"

namespace spider::service {

/// Additive QoS metric vector.
class Qos {
 public:
  static constexpr std::size_t kMaxMetrics = 4;
  /// Conventional slot indices used by built-in scenarios.
  static constexpr std::size_t kDelay = 0;    ///< milliseconds
  static constexpr std::size_t kLossLog = 1;  ///< -log(1 - loss rate)
  static constexpr std::size_t kJitter = 2;   ///< ms of delay variation

  /// Zero vector of `n` metrics (default: delay + loss).
  explicit Qos(std::size_t n = 2) : size_(n) {
    SPIDER_REQUIRE(n >= 1 && n <= kMaxMetrics);
    v_.fill(0.0);
  }

  /// Convenience two-metric constructor.
  static Qos delay_loss(double delay_ms, double loss_log = 0.0) {
    Qos q(2);
    q.v_[kDelay] = delay_ms;
    q.v_[kLossLog] = loss_log;
    return q;
  }

  /// Three-metric constructor for multi-constrained scenarios (the QSC
  /// problem is NP-hard precisely because of multiple additive
  /// constraints, §2.4).
  static Qos delay_loss_jitter(double delay_ms, double loss_log,
                               double jitter_ms) {
    Qos q(3);
    q.v_[kDelay] = delay_ms;
    q.v_[kLossLog] = loss_log;
    q.v_[kJitter] = jitter_ms;
    return q;
  }

  double jitter_ms() const { return size_ > kJitter ? v_[kJitter] : 0.0; }

  /// Returns a copy widened (or narrowed) to `n` metrics; new slots are 0.
  Qos resized(std::size_t n) const {
    Qos q(n);
    for (std::size_t i = 0; i < std::min(n, size_); ++i) q.v_[i] = v_[i];
    return q;
  }

  std::size_t size() const { return size_; }
  double operator[](std::size_t i) const {
    SPIDER_DCHECK(i < size_);
    return v_[i];
  }
  double& operator[](std::size_t i) {
    SPIDER_DCHECK(i < size_);
    return v_[i];
  }
  double delay_ms() const { return v_[kDelay]; }
  double loss_log() const { return size_ > kLossLog ? v_[kLossLog] : 0.0; }

  /// Component-wise accumulation; both operands must have equal size.
  Qos& operator+=(const Qos& other);
  friend Qos operator+(Qos lhs, const Qos& rhs) { return lhs += rhs; }

  /// True if every metric is <= the corresponding bound (the user's Q^req
  /// is an upper bound on each additive metric).
  bool within(const Qos& bound) const;

  /// Sum of per-metric ratios q_i / bound_i, the Σ qᵢ^λ/qᵢ^req term in the
  /// paper's backup-count formula (Eq. 2). Zero-valued bounds contribute 0
  /// when the metric is also 0, else a large penalty.
  double ratio_sum(const Qos& bound) const;

  std::string to_string() const;

 private:
  std::array<double, kMaxMetrics> v_;
  std::size_t size_;
};

/// End-system resource vector (the paper's R: e.g. CPU, memory).
///
/// Units are abstract capacity points; the workload generator picks
/// component requirements and peer capacities in consistent units.
struct Resources {
  static constexpr std::size_t kTypes = 2;
  static constexpr std::size_t kCpu = 0;
  static constexpr std::size_t kMemory = 1;

  std::array<double, kTypes> v{0.0, 0.0};

  static Resources cpu_mem(double cpu, double mem) {
    Resources r;
    r.v[kCpu] = cpu;
    r.v[kMemory] = mem;
    return r;
  }

  double cpu() const { return v[kCpu]; }
  double memory() const { return v[kMemory]; }

  Resources& operator+=(const Resources& o) {
    for (std::size_t i = 0; i < kTypes; ++i) v[i] += o.v[i];
    return *this;
  }
  Resources& operator-=(const Resources& o) {
    for (std::size_t i = 0; i < kTypes; ++i) v[i] -= o.v[i];
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) { return a -= b; }

  /// True if every type fits under the corresponding availability.
  bool fits_within(const Resources& avail) const {
    for (std::size_t i = 0; i < kTypes; ++i) {
      if (v[i] > avail.v[i]) return false;
    }
    return true;
  }

  bool non_negative() const {
    for (double x : v) {
      if (x < 0.0) return false;
    }
    return true;
  }

  std::string to_string() const;
};

/// Transforms a loss *rate* in [0, 1) into the additive log domain.
double loss_to_additive(double loss_rate);
/// Inverse transform: additive value back to a loss rate.
double additive_to_loss(double loss_log);

}  // namespace spider::service
