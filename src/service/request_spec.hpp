// Composite-request specification parser.
//
// The paper has users author function graphs in QoSTalk, an XML-based
// visual environment [13, 23]. As an offline stand-in we provide a
// compact line-oriented text format covering the same request surface:
//
//   # comments and blank lines are ignored
//   edges: ingest -> denoise -> report      # chains expand pairwise
//   edges: ingest -> calibrate -> report    # repeatable; names intern nodes
//   commute: denoise ~ calibrate            # commutation link
//   conditional: ingest                     # §8 conditional split mark
//   delay: 2000                             # ms bound (required)
//   loss: 0.05                              # loss-rate bound in [0,1)
//   bandwidth: 300                          # kbps on service links
//   failure: 0.2                            # F^req
//   source-level: 2                         # §2.2 quality levels
//   dest-level: 1
//
// Each distinct function name becomes one graph node (a composite request
// uses a function at most once, matching the workload model). Unknown
// keys, malformed lines, repeated nodes in an edge, or a cyclic result
// produce a descriptive error instead of a partially parsed request.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "service/service_graph.hpp"

namespace spider::service {

struct ParsedRequest {
  /// Graph + QoS bounds; source/dest peers are left unset (the caller
  /// binds them to a deployment).
  CompositeRequest request;
  /// Function name per graph node (node index order), as interned.
  std::vector<std::string> function_names;
};

/// Parses `text`; on success the named functions are interned into
/// `catalog`. On failure returns nullopt and sets `*error` (if non-null)
/// to a one-line description including the offending line number.
std::optional<ParsedRequest> parse_request_spec(const std::string& text,
                                                FunctionCatalog& catalog,
                                                std::string* error = nullptr);

}  // namespace spider::service
