// Function graph (§2.1) — the abstract half of the composite service
// request.
//
// Nodes are required service functions; *dependency* links say the output
// of one function feeds its successor; *commutation* links mark pairs of
// functions whose composition order may be exchanged (e.g. color filter vs
// image scaling in Figure 4).  The graph must be a DAG.
//
// Two derived views drive the composition machinery:
//  * `patterns()` — the set of composition patterns reachable by applying
//    commutation exchanges (dimension 1 of the two-dimensional mapping
//    problem, Figure 4);
//  * `branches()` — the source→sink paths of a pattern; BCP probes walk
//    one branch each and the destination merges them (§4.3).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/component.hpp"

namespace spider::service {

/// Index of a node within a FunctionGraph (not a FunctionId).
using FnNode = std::uint32_t;

/// Directed acyclic graph of required functions.
class FunctionGraph {
 public:
  FunctionGraph() = default;

  /// Appends a node requiring `function`; returns its node index.
  FnNode add_function(FunctionId function);

  /// Adds a dependency edge u -> v (u's output feeds v).
  void add_dependency(FnNode u, FnNode v);

  /// Declares that the composition order of u and v may be exchanged.
  void add_commutation(FnNode u, FnNode v);

  /// Marks `n` as a *conditional split* (the paper's §8 future-work
  /// semantics): at runtime each ADU leaving `n` takes exactly ONE of its
  /// outgoing dependency edges (content-based dispatch), instead of being
  /// replicated to all successors. Composition still provisions and
  /// QoS-qualifies every alternative (any ADU may take any branch);
  /// downstream joins consume one ADU from ANY input. Commutation
  /// exchanges do not move conditional marks.
  void mark_conditional(FnNode n);
  bool is_conditional(FnNode n) const;
  const std::vector<FnNode>& conditionals() const { return conditionals_; }

  std::size_t node_count() const { return functions_.size(); }
  FunctionId function(FnNode n) const { return functions_.at(n); }
  const std::vector<std::pair<FnNode, FnNode>>& dependencies() const {
    return deps_;
  }
  const std::vector<std::pair<FnNode, FnNode>>& commutations() const {
    return comms_;
  }

  std::vector<FnNode> successors(FnNode n) const;
  std::vector<FnNode> predecessors(FnNode n) const;
  /// Nodes with no predecessors / successors.
  std::vector<FnNode> sources() const;
  std::vector<FnNode> sinks() const;

  /// True if the dependency edges form a DAG over all nodes.
  bool is_dag() const;

  /// Topological order of nodes; requires is_dag().
  std::vector<FnNode> topological_order() const;

  /// True if the graph is a single chain (each node <=1 pred, <=1 succ).
  bool is_linear() const;

  /// All composition patterns derivable by exchanging commutable pairs:
  /// each pattern keeps this graph's node set but may swap the positions
  /// of commutable nodes in the dependency structure.  The original graph
  /// is always patterns()[0]; duplicates are removed.  The pattern count
  /// is bounded by 2^|commutations| and additionally by `max_patterns`.
  std::vector<FunctionGraph> patterns(std::size_t max_patterns = 64) const;

  /// All source→sink dependency paths (node-index sequences).
  /// Requires is_dag(). For a linear graph there is exactly one branch.
  std::vector<std::vector<FnNode>> branches() const;

  /// Canonical signature of the dependency structure (function ids +
  /// edges), used to deduplicate patterns.
  std::string signature() const;

 private:
  std::vector<FunctionId> functions_;
  std::vector<std::pair<FnNode, FnNode>> deps_;
  std::vector<std::pair<FnNode, FnNode>> comms_;
  std::vector<FnNode> conditionals_;
};

/// Convenience: linear chain over the given function ids, in order.
FunctionGraph make_linear_graph(const std::vector<FunctionId>& functions);

}  // namespace spider::service
