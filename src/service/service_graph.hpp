// Service graph (§2.2) and composite service request (§2.1).
//
// A service graph is the concrete half of the two-dimensional mapping: a
// composition pattern (function graph variant) whose nodes are bound to
// specific component replicas on specific peers, with every service link
// resolved to an overlay network path.  Aggregate QoS / failure / cost
// fields are filled in by the evaluator in `core` (they depend on overlay
// metrics and current resource availability).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "overlay/overlay.hpp"
#include "service/component.hpp"
#include "service/function_graph.hpp"
#include "service/qos.hpp"

namespace spider::service {

/// The user's composite service request: function graph + QoS and resource
/// requirements (§2.1).
struct CompositeRequest {
  FunctionGraph graph;
  Qos qos_req = Qos::delay_loss(0.0);  ///< upper bound per additive metric
  double bandwidth_kbps = 0.0;         ///< stream bandwidth on service links
  double max_failure_prob = 1.0;       ///< F^req for backup sizing (Eq. 2)
  overlay::PeerId source = overlay::kInvalidPeer;
  overlay::PeerId dest = overlay::kInvalidPeer;
  /// Application quality level of the raw stream the source provides
  /// (§2.2's Q_in/Q_out model: a component accepts inputs whose level is
  /// >= its input_level and emits its output_level).
  std::uint32_t source_level = 0;
  /// Minimum quality level the destination accepts.
  std::uint32_t min_dest_level = 0;
};

/// One resolved data link of a service graph: either between two function
/// nodes, from the source peer into an entry node, or from an exit node to
/// the destination peer.
struct ServiceLinkHop {
  static constexpr FnNode kEndpoint = static_cast<FnNode>(-1);
  FnNode from = kEndpoint;  ///< kEndpoint == the session source peer
  FnNode to = kEndpoint;    ///< kEndpoint == the session destination peer
  overlay::PeerId from_peer = overlay::kInvalidPeer;
  overlay::PeerId to_peer = overlay::kInvalidPeer;
  overlay::OverlayPath path;  ///< resolved overlay route (may be empty if
                              ///< from_peer == to_peer)
};

/// A fully instantiated composition candidate.
struct ServiceGraph {
  FunctionGraph pattern;                   ///< composition pattern used
  std::vector<ComponentMetadata> mapping;  ///< per function node
  overlay::PeerId source = overlay::kInvalidPeer;
  overlay::PeerId dest = overlay::kInvalidPeer;
  std::vector<ServiceLinkHop> hops;  ///< all resolved data links

  // --- filled by core::GraphEvaluator ---
  Qos qos = Qos::delay_loss(0.0);  ///< accumulated end-to-end QoS
  double failure_prob = 0.0;       ///< estimated session failure probability
  double psi_cost = 0.0;           ///< Eq. 1 load-balancing cost
  bool evaluated = false;

  /// Set of component instances used (for backup disjointness tests).
  std::unordered_set<ComponentId> component_set() const;
  bool uses_component(ComponentId id) const;
  bool uses_peer(overlay::PeerId peer) const;
  /// Number of components shared with `other`.
  std::size_t overlap(const ServiceGraph& other) const;
  /// True when both graphs bind every shared function to the same replica.
  bool same_mapping(const ServiceGraph& other) const;
};

}  // namespace spider::service
