#include "service/service_graph.hpp"

namespace spider::service {

std::unordered_set<ComponentId> ServiceGraph::component_set() const {
  std::unordered_set<ComponentId> out;
  out.reserve(mapping.size());
  for (const ComponentMetadata& m : mapping) out.insert(m.id);
  return out;
}

bool ServiceGraph::uses_component(ComponentId id) const {
  for (const ComponentMetadata& m : mapping) {
    if (m.id == id) return true;
  }
  return false;
}

bool ServiceGraph::uses_peer(overlay::PeerId peer) const {
  for (const ComponentMetadata& m : mapping) {
    if (m.host == peer) return true;
  }
  return false;
}

std::size_t ServiceGraph::overlap(const ServiceGraph& other) const {
  const auto theirs = other.component_set();
  std::size_t shared = 0;
  for (const ComponentMetadata& m : mapping) {
    shared += theirs.count(m.id);
  }
  return shared;
}

bool ServiceGraph::same_mapping(const ServiceGraph& other) const {
  if (mapping.size() != other.mapping.size()) return false;
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (mapping[i].id != other.mapping[i].id) return false;
  }
  return true;
}

}  // namespace spider::service
