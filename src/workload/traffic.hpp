// Open-loop steady-state workload (DESIGN.md §5i).
//
// Every bench before this subsystem was a *closed* request sweep: fire a
// fixed batch of setups, measure, exit. Production serving is open-loop —
// arrivals keep coming whether or not the system kept up — and that is
// the regime where the lease/renewal/reclaim machinery (§5e) and the
// admission gate (allocator) actually earn their keep. Three pieces:
//
//  * PhaseSchedule — a scripted load shape (warmup → steady →
//    flash-crowd → diurnal ramp) as piecewise-linear arrival rates over
//    virtual time, with exact phase boundaries and a closed-form
//    cumulative intensity Λ(t) and its inverse.
//  * ArrivalProcess — deterministic arrival streams: a non-homogeneous
//    Poisson process (unit-rate exponential increments mapped through
//    Λ⁻¹, so any rate shape — including ramps — stays exactly
//    reproducible per seed), or a trace of explicit arrival times.
//  * TrafficDriver — runs the open loop on a Scenario over the existing
//    DES clock: per arrival it consults the allocator's admission gate
//    (admit / queue / reject), composes via BCP, establishes through the
//    SessionManager, and schedules the session's natural completion from
//    a configurable lifetime distribution. Queued setups drain FIFO as
//    completions free capacity; maintenance/audit timers renew leases
//    and reclaim what the control plane loses. Everything is driven off
//    the simulator, so results are byte-identical at any --jobs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

namespace spider::workload {

/// One scripted load phase. The arrival rate is linear from
/// rate_begin_hz at the phase's start to rate_end_hz at its end
/// (rate_end_hz < 0 means constant); rates are arrivals per virtual
/// second.
struct LoadPhase {
  std::string name;
  double duration_ms = 0.0;
  double rate_begin_hz = 0.0;
  double rate_end_hz = -1.0;
  double rate_end() const {
    return rate_end_hz < 0.0 ? rate_begin_hz : rate_end_hz;
  }
};

/// Piecewise-linear arrival-rate script over virtual time.
///
/// Phase boundaries are half-open: time t belongs to phase i iff
/// begin_i <= t < begin_{i+1}; phase_at() clamps times at or beyond the
/// total duration to the last phase (the drain window after the script
/// ends is accounted there).
class PhaseSchedule {
 public:
  PhaseSchedule() = default;
  explicit PhaseSchedule(std::vector<LoadPhase> phases);

  /// The canonical serving script: warmup ramping 0.25×→1× of
  /// `steady_hz`, a constant steady phase, a flash crowd at
  /// `flash_multiplier`×, and a diurnal ramp back down to
  /// `ramp_end_fraction`×.
  static PhaseSchedule serving_profile(double steady_hz, double warmup_ms,
                                       double steady_ms, double flash_ms,
                                       double flash_multiplier, double ramp_ms,
                                       double ramp_end_fraction);

  const std::vector<LoadPhase>& phases() const { return phases_; }
  std::size_t phase_count() const { return phases_.size(); }
  double total_duration_ms() const { return begin_ms_.back(); }
  double phase_begin_ms(std::size_t i) const { return begin_ms_.at(i); }
  double phase_end_ms(std::size_t i) const { return begin_ms_.at(i + 1); }

  /// Phase owning virtual time t (clamped to the last phase).
  std::size_t phase_at(sim::Time t) const;
  /// Instantaneous arrival rate at t, in arrivals per second (0 outside
  /// the script).
  double rate_hz_at(sim::Time t) const;
  /// Cumulative intensity Λ(t): expected arrivals in [0, t] (t clamped
  /// to the script). Piecewise quadratic, exact.
  double cumulative_arrivals(sim::Time t) const;
  /// Smallest t with Λ(t) >= lambda, or nullopt once lambda exceeds
  /// Λ(total): the time-rescaling inverse the Poisson process samples
  /// through.
  std::optional<sim::Time> inverse_cumulative(double lambda) const;

 private:
  std::vector<LoadPhase> phases_;
  std::vector<double> begin_ms_;  ///< begin per phase + total at the back
  std::vector<double> cum_;       ///< Λ at each begin + Λ(total) at the back
};

/// A deterministic stream of arrival times (virtual ms, strictly
/// increasing). Exhaustion is permanent.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next arrival time, or nullopt when the stream is exhausted.
  virtual std::optional<sim::Time> next_arrival() = 0;
};

/// Non-homogeneous Poisson arrivals over a PhaseSchedule, by time
/// rescaling: unit-rate exponential increments accumulated in Λ-space
/// and mapped back through Λ⁻¹. Deterministic per seed for any rate
/// shape; a zero-rate stretch simply produces no arrivals inside it.
class PoissonProcess : public ArrivalProcess {
 public:
  PoissonProcess(PhaseSchedule schedule, std::uint64_t seed)
      : schedule_(std::move(schedule)), rng_(seed) {}
  std::optional<sim::Time> next_arrival() override;

 private:
  PhaseSchedule schedule_;
  Rng rng_;
  double cum_ = 0.0;  ///< position in Λ-space
};

/// Trace-driven arrivals: an explicit, sorted list of times.
class TraceProcess : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<sim::Time> arrivals);
  std::optional<sim::Time> next_arrival() override;

 private:
  std::vector<sim::Time> arrivals_;
  std::size_t next_ = 0;
};

/// Session-lifetime distribution: how long an admitted session streams
/// before tearing down gracefully.
struct SessionLifetime {
  enum class Kind { kFixed, kExponential, kLogNormal };
  Kind kind = Kind::kExponential;
  double mean_ms = 10000.0;
  /// kLogNormal only: sigma of the underlying normal (the mean stays
  /// mean_ms; larger sigma = heavier tail of long-lived sessions).
  double sigma = 1.0;

  double sample(Rng& rng) const;
};

/// Per-phase accounting of one open-loop run. Arrival-side fields are
/// attributed to the phase the arrival happened in; completion-side
/// fields to the phase of the completion (drain-window events land in
/// the last phase). Retries count as fresh submissions in the phase the
/// backoff timer fired in (they are new load on the gate), but never as
/// arrivals — `arrivals` stays the offered first-contact load.
struct PhaseStats {
  std::string name;
  double begin_ms = 0.0, end_ms = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t retries = 0;          ///< backoff re-submissions fired here
  std::uint64_t retry_gaveups = 0;    ///< requests whose retry budget ran out
  std::uint64_t admitted = 0;         ///< setups attempted immediately
  std::uint64_t queued = 0;           ///< held back by the admission gate
  std::uint64_t rejected = 0;         ///< admission rejects (never probed)
  std::uint64_t queue_served = 0;     ///< queued setups later attempted
  std::uint64_t queue_timeouts = 0;   ///< queued setups that waited too long
  /// BCP found no qualified graph, or a hold expired before confirm.
  std::uint64_t compose_failures = 0;
  std::uint64_t established = 0;
  std::uint64_t completed = 0;        ///< natural lifetime teardowns
  SampleStats setup_ms;               ///< virtual setup latency (successes)
  SampleStats queue_wait_ms;          ///< virtual wait of served queue entries
  double util_peak = 0.0;             ///< peak grant utilization observed
  /// Effective admission mark when the phase was snapshotted (the static
  /// high-water constant, or the AIMD controller's value; -1 when
  /// admission is disabled).
  double admission_mark = -1.0;
  // SessionManager recovery deltas over the phase window.
  std::uint64_t breaks = 0, backup_switches = 0, reactive_recoveries = 0,
                losses = 0;
  std::uint64_t probe_messages = 0;   ///< BCP messages spent in this phase
};

/// Per-admission-class totals over a whole run (slices of the same events
/// the PhaseStats count; `arrivals` excludes retries, like the phases).
struct ClassTrafficStats {
  std::uint64_t arrivals = 0;
  std::uint64_t retries = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  std::uint64_t queue_served = 0;
  std::uint64_t queue_timeouts = 0;
  std::uint64_t retry_gaveups = 0;
  std::uint64_t established = 0;
};

/// Whole-run accounting (see PhaseStats for the per-phase slices).
struct TrafficStats {
  std::vector<PhaseStats> phases;
  /// One entry per admission class (a single entry when no classes were
  /// configured).
  std::vector<ClassTrafficStats> classes;
  std::uint64_t forced_teardowns = 0;  ///< alive past the drain window
  double quiesced_at_ms = 0.0;         ///< virtual time the world went quiet
  core::SessionManager::AuditReport final_audit;
  /// Conservation audit at quiesce: both must be zero. Every first-contact
  /// arrival reaches exactly one terminal outcome (established, compose
  /// failure, final reject/timeout, or retry give-up), and no backoff
  /// timer is still pending.
  std::uint64_t open_requests_at_quiesce = 0;
  std::uint64_t retries_inflight_at_quiesce = 0;
};

/// Client retry behaviour for rejected and queue-timed-out setups:
/// truncated exponential backoff with a bounded budget. Disabled by
/// default (max_retries == 0), in which case rejects and timeouts are
/// final — bit-for-bit the historical behaviour.
struct RetryPolicy {
  /// Re-submissions allowed per request beyond its first attempt; once
  /// exhausted the request is counted as a retry_gaveup.
  std::size_t max_retries = 0;
  /// Backoff before retry k (1-based) is drawn uniformly from
  /// [0.5, 1.0) · min(base_backoff_ms · multiplier^(k-1), max_backoff_ms):
  /// exponential growth, truncated, with deterministic half-jitter from a
  /// dedicated RNG stream so synchronized retry waves decorrelate without
  /// perturbing any other draw.
  double base_backoff_ms = 500.0;
  double multiplier = 2.0;
  double max_backoff_ms = 8000.0;
  bool enabled() const { return max_retries > 0; }
};

/// Drives one open-loop serving run on a fully wired Scenario.
class TrafficDriver {
 public:
  struct Config {
    PhaseSchedule schedule;
    std::uint64_t seed = 1;
    RequestProfile profile;
    SessionLifetime lifetime;
    /// Maintenance cadence: backup upkeep + lease renewal + queue-wait
    /// expiry, via SessionManager::run_maintenance and
    /// monitor_active_sessions.
    double maintenance_period_ms = 1000.0;
    /// Periodic anti-entropy audit cadence; 0 disables (the final audit
    /// still runs).
    double audit_period_ms = 0.0;
    /// Max virtual time a setup may sit in the admission queue before it
    /// is abandoned (counted as a queue timeout).
    double queue_timeout_ms = 8000.0;
    /// Post-schedule drain window: sessions still streaming when the
    /// script ends get this long to finish naturally before being torn
    /// down forcibly.
    double drain_ms = 30000.0;
    /// Optional per-maintenance-tick hook (e.g. bench-side churn). Runs
    /// before the tick's maintenance pass.
    std::function<void(std::size_t tick)> on_maintenance_tick;
    /// Client retry-with-backoff for rejected / queue-timed-out setups.
    RetryPolicy retry;
    /// Relative probability weights assigning each arrival an admission
    /// class (index = class id). Size must match the allocator's
    /// configured class count; empty (the default) sends everything to
    /// class 0 without consuming any randomness.
    std::vector<double> class_mix;
  };

  /// `arrivals` defaults to a PoissonProcess over config.schedule seeded
  /// from config.seed.
  TrafficDriver(Scenario& scenario, core::BcpEngine& bcp,
                core::SessionManager& sessions, Config config,
                std::unique_ptr<ArrivalProcess> arrivals = nullptr);

  /// Runs the full script plus the drain window, force-tears-down any
  /// stragglers, sweeps expired holds and runs a final audit. Returns
  /// when the allocator should hold nothing (the caller asserts that).
  const TrafficStats& run();

  const TrafficStats& stats() const { return stats_; }
  std::size_t live_sessions() const { return live_.size(); }

 private:
  /// One request making its way through the gate, possibly across
  /// several submissions (admission retries). The request content is
  /// sampled lazily at the first kAdmit/kQueue decision, so a request
  /// that only ever got rejected consumes no scenario randomness —
  /// exactly as before retries existed.
  struct PendingSetup {
    std::optional<GeneratedRequest> gen;
    std::size_t cls = 0;
    std::size_t submissions = 0;  ///< completed admit_setup() calls
  };
  struct QueuedSetup {
    PendingSetup pending;
    sim::Time enqueued_at = 0.0;
    std::size_t phase = 0;
  };

  void schedule_next_arrival();
  void on_arrival();
  std::size_t draw_class();
  /// Runs one submission (first or retry) of `p` through the admission
  /// gate and dispatches on the decision.
  void submit(PendingSetup p, bool is_retry);
  /// Handles a terminal-for-this-submission reject/timeout: schedules a
  /// backoff retry while budget remains, otherwise closes the request
  /// (counting a retry_gaveup when retries are enabled).
  void finish_or_retry(PendingSetup p);
  void give_up(const PendingSetup& p, std::size_t phase);
  /// Composes + establishes one setup, attributing results to phase
  /// `phase` (queue accounting is the dequeuer's job, not this one's).
  void attempt_setup(PendingSetup p, std::size_t phase);
  void complete_session(core::SessionId id);
  /// Admits queued setups while the gate is open, in the allocator's
  /// deficit-weighted class order (plain FIFO with one class).
  void drain_queue();
  /// Abandons queue entries older than queue_timeout_ms.
  void expire_queue_waits();
  void maintenance_tick();
  void observe_utilization();
  /// Records the recovery/probe-message deltas accumulated since the
  /// previous snapshot into phase `i` (scheduled at each phase end and
  /// once after the drain).
  void snapshot_phase_deltas(std::size_t i);

  Scenario* scenario_;
  core::BcpEngine* bcp_;
  core::SessionManager* sessions_;
  Config config_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng rng_;  ///< lifetimes (request content draws from scenario_->rng)
  /// Class assignment and backoff jitter each get a dedicated stream:
  /// neither is touched in single-class / no-retry runs, so legacy
  /// replays stay byte-identical.
  Rng class_rng_;
  Rng retry_rng_;
  std::vector<std::deque<QueuedSetup>> queues_;  ///< one per admission class
  std::set<core::SessionId> live_;  ///< ordered: deterministic force-teardown
  TrafficStats stats_;
  std::uint64_t open_requests_ = 0;     ///< arrivals without a terminal outcome
  std::uint64_t retries_inflight_ = 0;  ///< backoff timers pending
  std::unique_ptr<sim::PeriodicTimer> maintenance_;
  std::size_t maintenance_ticks_ = 0;
  bool accepting_ = false;  ///< arrivals/queue still being served
  // Previous snapshot values for per-phase deltas.
  std::uint64_t prev_breaks_ = 0, prev_switches_ = 0, prev_reactive_ = 0,
                prev_losses_ = 0;
  std::uint64_t probe_messages_total_ = 0, prev_probe_messages_ = 0;
};

}  // namespace spider::workload
