#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/hash.hpp"
#include "util/require.hpp"

namespace spider::workload {

// ---------------------------------------------------------------------------
// PhaseSchedule
// ---------------------------------------------------------------------------

PhaseSchedule::PhaseSchedule(std::vector<LoadPhase> phases)
    : phases_(std::move(phases)) {
  SPIDER_REQUIRE(!phases_.empty());
  begin_ms_.reserve(phases_.size() + 1);
  cum_.reserve(phases_.size() + 1);
  double t = 0.0, lambda = 0.0;
  for (const LoadPhase& p : phases_) {
    SPIDER_REQUIRE(p.duration_ms > 0.0);
    SPIDER_REQUIRE(p.rate_begin_hz >= 0.0 && p.rate_end() >= 0.0);
    begin_ms_.push_back(t);
    cum_.push_back(lambda);
    t += p.duration_ms;
    // Rates are per second, time in ms: expected arrivals over the phase
    // are the trapezoid mean rate times duration / 1000.
    lambda += 0.5 * (p.rate_begin_hz + p.rate_end()) * p.duration_ms / 1000.0;
  }
  begin_ms_.push_back(t);
  cum_.push_back(lambda);
}

PhaseSchedule PhaseSchedule::serving_profile(double steady_hz, double warmup_ms,
                                             double steady_ms, double flash_ms,
                                             double flash_multiplier,
                                             double ramp_ms,
                                             double ramp_end_fraction) {
  SPIDER_REQUIRE(steady_hz > 0.0 && flash_multiplier >= 1.0);
  std::vector<LoadPhase> phases;
  phases.push_back({"warmup", warmup_ms, 0.25 * steady_hz, steady_hz});
  phases.push_back({"steady", steady_ms, steady_hz});
  phases.push_back({"flash", flash_ms, flash_multiplier * steady_hz});
  phases.push_back({"ramp", ramp_ms, steady_hz, ramp_end_fraction * steady_hz});
  return PhaseSchedule(std::move(phases));
}

std::size_t PhaseSchedule::phase_at(sim::Time t) const {
  SPIDER_REQUIRE(!phases_.empty());
  // Largest i with begin_ms_[i] <= t (half-open phases), clamped into
  // [0, N-1]: times at or past the total land in the last phase.
  const auto first = begin_ms_.begin();
  const auto last = begin_ms_.end() - 1;  // exclude the total sentinel
  auto it = std::upper_bound(first, last, t);
  if (it == first) return 0;
  return std::min(std::size_t(it - first - 1), phases_.size() - 1);
}

double PhaseSchedule::rate_hz_at(sim::Time t) const {
  if (t < 0.0 || t >= total_duration_ms()) return 0.0;
  const std::size_t i = phase_at(t);
  const LoadPhase& p = phases_[i];
  const double frac = (t - begin_ms_[i]) / p.duration_ms;
  return p.rate_begin_hz + (p.rate_end() - p.rate_begin_hz) * frac;
}

double PhaseSchedule::cumulative_arrivals(sim::Time t) const {
  if (t <= 0.0) return 0.0;
  if (t >= total_duration_ms()) return cum_.back();
  const std::size_t i = phase_at(t);
  const LoadPhase& p = phases_[i];
  const double dt = t - begin_ms_[i];
  const double r0 = p.rate_begin_hz / 1000.0;  // per ms
  const double slope = (p.rate_end() - p.rate_begin_hz) / 1000.0 / p.duration_ms;
  return cum_[i] + r0 * dt + 0.5 * slope * dt * dt;
}

std::optional<sim::Time> PhaseSchedule::inverse_cumulative(
    double lambda) const {
  SPIDER_REQUIRE(lambda >= 0.0);
  if (lambda > cum_.back()) return std::nullopt;
  // Largest i with cum_[i] <= lambda; ties across zero-rate phases
  // resolve to the latest such phase, whose begin is the correct time.
  const auto first = cum_.begin();
  const auto last = cum_.end() - 1;  // exclude the Λ(total) sentinel
  auto it = std::upper_bound(first, last, lambda);
  std::size_t i = it == first ? 0 : std::size_t(it - first - 1);
  i = std::min(i, phases_.size() - 1);
  const LoadPhase& p = phases_[i];
  const double x = lambda - cum_[i];  // Λ still to accumulate inside phase i
  const double r0 = p.rate_begin_hz / 1000.0;
  const double slope = (p.rate_end() - p.rate_begin_hz) / 1000.0 / p.duration_ms;
  double dt;
  if (std::abs(slope) < 1e-15) {
    if (r0 <= 0.0) return begin_ms_[i];  // zero-rate phase: x must be ~0
    dt = x / r0;
  } else {
    // Solve 0.5·slope·dt² + r0·dt = x for the smallest non-negative root.
    const double disc = r0 * r0 + 2.0 * slope * x;
    dt = (-r0 + std::sqrt(std::max(disc, 0.0))) / slope;
  }
  dt = std::clamp(dt, 0.0, p.duration_ms);
  return begin_ms_[i] + dt;
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

std::optional<sim::Time> PoissonProcess::next_arrival() {
  cum_ += rng_.next_exponential(1.0);
  return schedule_.inverse_cumulative(cum_);
}

TraceProcess::TraceProcess(std::vector<sim::Time> arrivals)
    : arrivals_(std::move(arrivals)) {
  SPIDER_REQUIRE(std::is_sorted(arrivals_.begin(), arrivals_.end()));
}

std::optional<sim::Time> TraceProcess::next_arrival() {
  if (next_ >= arrivals_.size()) return std::nullopt;
  return arrivals_[next_++];
}

// ---------------------------------------------------------------------------
// SessionLifetime
// ---------------------------------------------------------------------------

double SessionLifetime::sample(Rng& rng) const {
  SPIDER_REQUIRE(mean_ms > 0.0);
  switch (kind) {
    case Kind::kFixed:
      return mean_ms;
    case Kind::kExponential:
      return rng.next_exponential(mean_ms);
    case Kind::kLogNormal: {
      // mu chosen so the distribution's mean is mean_ms for any sigma.
      const double mu = std::log(mean_ms) - 0.5 * sigma * sigma;
      return rng.next_lognormal(mu, sigma);
    }
  }
  SPIDER_REQUIRE(false);
  return mean_ms;
}

// ---------------------------------------------------------------------------
// TrafficDriver
// ---------------------------------------------------------------------------

TrafficDriver::TrafficDriver(Scenario& scenario, core::BcpEngine& bcp,
                             core::SessionManager& sessions, Config config,
                             std::unique_ptr<ArrivalProcess> arrivals)
    : scenario_(&scenario),
      bcp_(&bcp),
      sessions_(&sessions),
      config_(std::move(config)),
      arrivals_(std::move(arrivals)),
      // Lifetime draws get their own stream: arrival counts must not
      // perturb request sampling (scenario rng) or vice versa.
      rng_(util::hash_values(config_.seed, std::uint64_t(0x11f37a))),
      class_rng_(util::hash_values(config_.seed, std::uint64_t(0xc1a55))),
      retry_rng_(util::hash_values(config_.seed, std::uint64_t(0x4e712))) {
  SPIDER_REQUIRE(config_.schedule.phase_count() > 0);
  SPIDER_REQUIRE(config_.maintenance_period_ms > 0.0);
  if (config_.retry.enabled()) {
    SPIDER_REQUIRE(config_.retry.base_backoff_ms > 0.0);
    SPIDER_REQUIRE(config_.retry.multiplier >= 1.0);
    SPIDER_REQUIRE(config_.retry.max_backoff_ms >= config_.retry.base_backoff_ms);
  }
  if (arrivals_ == nullptr) {
    arrivals_ =
        std::make_unique<PoissonProcess>(config_.schedule, config_.seed);
  }
  stats_.phases.resize(config_.schedule.phase_count());
  for (std::size_t i = 0; i < stats_.phases.size(); ++i) {
    PhaseStats& ps = stats_.phases[i];
    ps.name = config_.schedule.phases()[i].name;
    ps.begin_ms = config_.schedule.phase_begin_ms(i);
    ps.end_ms = config_.schedule.phase_end_ms(i);
  }
}

const TrafficStats& TrafficDriver::run() {
  SPIDER_REQUIRE_MSG(maintenance_ == nullptr, "run() is one-shot");
  auto& sim = scenario_->sim;
  auto& alloc = *scenario_->alloc;
  // Refresh the allocator's capacity snapshot so grant_utilization() is
  // meaningful even when the caller never armed the admission gate.
  alloc.set_admission(alloc.admission());
  const std::size_t n_classes = alloc.admission_class_count();
  if (!config_.class_mix.empty()) {
    SPIDER_REQUIRE_MSG(config_.class_mix.size() == n_classes,
                       "class_mix size must match the allocator's classes");
    for (double w : config_.class_mix) SPIDER_REQUIRE(w >= 0.0);
  }
  queues_.resize(n_classes);
  stats_.classes.resize(n_classes);

  accepting_ = true;
  maintenance_ = std::make_unique<sim::PeriodicTimer>(
      sim, config_.maintenance_period_ms, [this] { maintenance_tick(); });
  maintenance_->start();
  if (config_.audit_period_ms > 0.0) {
    sessions_->enable_periodic_audit(config_.audit_period_ms);
  }
  // Phase-boundary snapshots. Scheduled before any arrival event exists,
  // so at a shared timestamp the snapshot fires first — and an arrival at
  // exactly the boundary belongs to the *next* phase (half-open), so the
  // ordering is the correct one.
  for (std::size_t i = 0; i < config_.schedule.phase_count(); ++i) {
    sim.schedule_at(config_.schedule.phase_end_ms(i),
                    [this, i] { snapshot_phase_deltas(i); });
  }
  schedule_next_arrival();

  const double total = config_.schedule.total_duration_ms();
  sim.run_until(total);
  // Drain window: no new arrivals (the Poisson stream is exhausted past
  // Λ(total); trace arrivals are gated off below), but queued setups may
  // still be served as completions free capacity.
  sim.run_until(total + config_.drain_ms);
  accepting_ = false;
  maintenance_->stop();
  sessions_->enable_periodic_audit(0.0);

  // Whatever still waits in the admission queues was never served.
  for (std::size_t cls = 0; cls < queues_.size(); ++cls) {
    auto& q = queues_[cls];
    while (!q.empty()) {
      QueuedSetup entry = std::move(q.front());
      q.pop_front();
      alloc.admission_dequeued(sim.now() - entry.enqueued_at, cls);
      ++stats_.phases[entry.phase].queue_timeouts;
      ++stats_.classes[cls].queue_timeouts;
      // accepting_ is already false, so this is a give-up (retries on) or
      // a plain close (retries off) — never a new backoff timer.
      finish_or_retry(std::move(entry.pending));
    }
  }
  // Sessions that outlived the drain window are torn down forcibly, in
  // session-id order (live_ is an ordered set) for determinism.
  const std::vector<core::SessionId> stragglers(live_.begin(), live_.end());
  live_.clear();
  for (core::SessionId id : stragglers) {
    if (sessions_->session_state(id) == core::SessionState::kTornDown) {
      continue;  // already lost to an unrecovered failure
    }
    ++stats_.forced_teardowns;
    sessions_->teardown(id);
  }
  // Flush residual completion events (now no-ops: their sessions are gone
  // from live_); this may advance virtual time well past the drain.
  sim.run();
  alloc.sweep_expired();
  stats_.final_audit = sessions_->audit();
  stats_.quiesced_at_ms = sim.now();
  // Conservation: every arrival must have reached a terminal outcome and
  // every backoff timer must have fired (pending ones give up above once
  // accepting_ went false). The caller asserts both are zero.
  stats_.open_requests_at_quiesce = open_requests_;
  stats_.retries_inflight_at_quiesce = retries_inflight_;
  // Recovery activity during the drain window lands in the last phase.
  snapshot_phase_deltas(stats_.phases.size() - 1);
  return stats_;
}

void TrafficDriver::schedule_next_arrival() {
  const std::optional<sim::Time> t = arrivals_->next_arrival();
  if (!t.has_value()) return;
  scenario_->sim.schedule_at(std::max(*t, scenario_->sim.now()),
                             [this] { on_arrival(); });
}

void TrafficDriver::on_arrival() {
  schedule_next_arrival();
  if (!accepting_) return;
  PendingSetup p;
  p.cls = draw_class();
  ++open_requests_;
  submit(std::move(p), /*is_retry=*/false);
  observe_utilization();
}

std::size_t TrafficDriver::draw_class() {
  if (config_.class_mix.size() < 2) return 0;
  double total = 0.0;
  for (double w : config_.class_mix) total += w;
  SPIDER_REQUIRE(total > 0.0);
  double x = class_rng_.next_double() * total;
  for (std::size_t i = 0; i + 1 < config_.class_mix.size(); ++i) {
    x -= config_.class_mix[i];
    if (x < 0.0) return i;
  }
  return config_.class_mix.size() - 1;
}

void TrafficDriver::submit(PendingSetup p, bool is_retry) {
  const sim::Time now = scenario_->sim.now();
  const std::size_t phase = config_.schedule.phase_at(now);
  PhaseStats& ps = stats_.phases[phase];
  ClassTrafficStats& cs = stats_.classes[p.cls];
  if (is_retry) {
    ++ps.retries;
    ++cs.retries;
  } else {
    ++ps.arrivals;
    ++cs.arrivals;
  }
  ++p.submissions;
  switch (scenario_->alloc->admit_setup(p.cls)) {
    case core::AllocationManager::AdmissionDecision::kAdmit:
      ++ps.admitted;
      ++cs.admitted;
      if (!p.gen.has_value()) {
        p.gen = sample_request(*scenario_, config_.profile);
      }
      attempt_setup(std::move(p), phase);
      break;
    case core::AllocationManager::AdmissionDecision::kQueue:
      ++ps.queued;
      ++cs.queued;
      // Sample at enqueue time: the request's content draws stay in
      // decision order no matter when the queue drains.
      if (!p.gen.has_value()) {
        p.gen = sample_request(*scenario_, config_.profile);
      }
      queues_[p.cls].push_back({std::move(p), now, phase});
      break;
    case core::AllocationManager::AdmissionDecision::kReject:
      // Never sampled, never probed — the cheapest possible outcome,
      // which is the whole point of gating before composition.
      ++ps.rejected;
      ++cs.rejected;
      finish_or_retry(std::move(p));
      break;
  }
}

void TrafficDriver::finish_or_retry(PendingSetup p) {
  const bool budget_left =
      config_.retry.enabled() && p.submissions <= config_.retry.max_retries;
  if (budget_left && accepting_) {
    const double cap = config_.retry.max_backoff_ms;
    double backoff = config_.retry.base_backoff_ms;
    for (std::size_t i = 1; i < p.submissions && backoff < cap; ++i) {
      backoff *= config_.retry.multiplier;
    }
    backoff = std::min(backoff, cap);
    const double delay = backoff * retry_rng_.next_double(0.5, 1.0);
    ++retries_inflight_;
    scenario_->sim.schedule_after(delay, [this, p]() mutable {
      --retries_inflight_;
      if (!accepting_) {
        // The world quiesced while this timer was pending: the retry
        // never happens, and the request closes as a give-up.
        give_up(p, config_.schedule.phase_at(scenario_->sim.now()));
        return;
      }
      submit(std::move(p), /*is_retry=*/true);
      observe_utilization();
    });
  } else if (config_.retry.enabled()) {
    give_up(p, config_.schedule.phase_at(scenario_->sim.now()));
  } else {
    --open_requests_;  // final reject/timeout: the seed-era terminal outcome
  }
}

void TrafficDriver::give_up(const PendingSetup& p, std::size_t phase) {
  ++stats_.phases[phase].retry_gaveups;
  ++stats_.classes[p.cls].retry_gaveups;
  --open_requests_;
}

void TrafficDriver::attempt_setup(PendingSetup p, std::size_t phase) {
  SPIDER_REQUIRE(p.gen.has_value());
  PhaseStats& ps = stats_.phases[phase];
  auto& alloc = *scenario_->alloc;
  core::ComposeResult result = bcp_->compose(p.gen->request, scenario_->rng);
  probe_messages_total_ +=
      result.stats.probe_messages + result.stats.discovery_messages;
  if (!result.success) {
    ++ps.compose_failures;
    alloc.admission_observe_setup(false, 0.0);
    --open_requests_;  // compose failures are terminal (no retry)
    return;
  }
  const double setup_ms = result.stats.setup_time_ms;
  const core::SessionId id =
      sessions_->establish(p.gen->request, std::move(result));
  if (id == core::kInvalidSession) {
    ++ps.compose_failures;  // hold expired before confirm: admission lost
    alloc.admission_observe_setup(false, 0.0);
    --open_requests_;
    return;
  }
  ++ps.established;
  ++stats_.classes[p.cls].established;
  ps.setup_ms.add(setup_ms);
  alloc.admission_observe_setup(true, setup_ms);
  --open_requests_;
  live_.insert(id);
  const double lifetime = std::max(config_.lifetime.sample(rng_), 0.0);
  scenario_->sim.schedule_after(lifetime, [this, id] { complete_session(id); });
  observe_utilization();
}

void TrafficDriver::complete_session(core::SessionId id) {
  if (live_.erase(id) == 0) return;  // already force-torn-down
  const std::size_t phase =
      config_.schedule.phase_at(scenario_->sim.now());
  if (sessions_->session_state(id) == core::SessionState::kTornDown) {
    // Lost to an unrecovered failure before its natural end; the loss is
    // already in the recovery deltas, so it is not a completion.
    return;
  }
  ++stats_.phases[phase].completed;
  sessions_->teardown(id);
  drain_queue();
  observe_utilization();
}

void TrafficDriver::drain_queue() {
  if (!accepting_) return;
  auto& alloc = *scenario_->alloc;
  const sim::Time now = scenario_->sim.now();
  // The allocator picks the class to serve next (deficit-weighted round
  // robin; plain FIFO with one class) and stops when the gate closes.
  while (std::optional<std::size_t> cls = alloc.admission_next_class()) {
    auto& q = queues_[*cls];
    SPIDER_REQUIRE_MSG(!q.empty(), "allocator/driver queue depth mismatch");
    QueuedSetup entry = std::move(q.front());
    q.pop_front();
    const double wait = now - entry.enqueued_at;
    alloc.admission_dequeued(wait, *cls);
    const std::size_t phase = config_.schedule.phase_at(now);
    PhaseStats& ps = stats_.phases[phase];
    ++ps.queue_served;
    ++stats_.classes[*cls].queue_served;
    ps.queue_wait_ms.add(wait);
    attempt_setup(std::move(entry.pending), phase);
  }
}

void TrafficDriver::expire_queue_waits() {
  auto& alloc = *scenario_->alloc;
  const sim::Time now = scenario_->sim.now();
  for (std::size_t cls = 0; cls < queues_.size(); ++cls) {
    auto& q = queues_[cls];
    while (!q.empty() &&
           now - q.front().enqueued_at >= config_.queue_timeout_ms) {
      QueuedSetup entry = std::move(q.front());
      q.pop_front();
      alloc.admission_dequeued(now - entry.enqueued_at, cls);
      // Attributed to the phase that enqueued it: that arrival is the one
      // that experienced the abandonment.
      ++stats_.phases[entry.phase].queue_timeouts;
      ++stats_.classes[cls].queue_timeouts;
      finish_or_retry(std::move(entry.pending));
    }
  }
}

void TrafficDriver::maintenance_tick() {
  ++maintenance_ticks_;
  if (config_.on_maintenance_tick) config_.on_maintenance_tick(maintenance_ticks_);
  sessions_->monitor_active_sessions(scenario_->rng);
  sessions_->run_maintenance();
  // One deterministic controller step per tick, before the queue drains
  // against the (possibly moved) mark. A no-op for static gates.
  scenario_->alloc->admission_controller_tick();
  expire_queue_waits();
  drain_queue();  // recovery losses may have freed capacity
  observe_utilization();
}

void TrafficDriver::observe_utilization() {
  const double util = scenario_->alloc->grant_utilization();
  PhaseStats& ps =
      stats_.phases[config_.schedule.phase_at(scenario_->sim.now())];
  ps.util_peak = std::max(ps.util_peak, util);
}

void TrafficDriver::snapshot_phase_deltas(std::size_t i) {
  const core::SessionStats& st = sessions_->stats();
  PhaseStats& ps = stats_.phases.at(i);
  ps.admission_mark = scenario_->alloc->admission_mark();
  ps.breaks += st.breaks - prev_breaks_;
  ps.backup_switches += st.backup_switches - prev_switches_;
  ps.reactive_recoveries += st.reactive_recoveries - prev_reactive_;
  ps.losses += st.losses - prev_losses_;
  ps.probe_messages += probe_messages_total_ - prev_probe_messages_;
  prev_breaks_ = st.breaks;
  prev_switches_ = st.backup_switches;
  prev_reactive_ = st.reactive_recoveries;
  prev_losses_ = st.losses;
  prev_probe_messages_ = probe_messages_total_;
}

}  // namespace spider::workload
