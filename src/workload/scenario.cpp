#include "workload/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace spider::workload {

const char* const kMultimediaFunctions[6] = {
    "media/weather-ticker", "media/stock-ticker", "media/up-scale",
    "media/down-scale",     "media/sub-image",    "media/re-quantify",
};

namespace {

using BuildClock = std::chrono::steady_clock;

double ms_since(BuildClock::time_point start) {
  return std::chrono::duration<double, std::milli>(BuildClock::now() - start)
      .count();
}

/// Component sampling runs in fixed 1024-peer shards, each drawing from
/// its own RNG stream derived from (seed, tag, shard). The shard size and
/// tag are part of the output contract: components depend only on the
/// scenario seed, never on build_jobs or worker scheduling.
constexpr std::size_t kComponentShardPeers = 1024;
constexpr std::uint64_t kComponentStreamTag = 0xc0317ull;

service::ServiceComponent sample_component(Rng& rng, overlay::PeerId host,
                                           service::FunctionId fn,
                                           double min_delay, double max_delay,
                                           double min_loss, double max_loss,
                                           double min_cpu, double max_cpu,
                                           double min_mem, double max_mem,
                                           double min_fail, double max_fail) {
  service::ServiceComponent c;
  c.host = host;
  c.function = fn;
  c.perf = service::Qos::delay_loss(
      rng.next_double(min_delay, max_delay),
      service::loss_to_additive(rng.next_double(min_loss, max_loss)));
  c.required = service::Resources::cpu_mem(rng.next_double(min_cpu, max_cpu),
                                           rng.next_double(min_mem, max_mem));
  c.failure_prob = rng.next_double(min_fail, max_fail);
  return c;
}

}  // namespace

std::unique_ptr<Scenario> build_sim_scenario(const SimScenarioConfig& config) {
  auto s = std::make_unique<Scenario>();
  s->rng.reseed(config.seed);

  auto t0 = BuildClock::now();
  s->topology = std::make_unique<net::Topology>(
      net::power_law(config.ip_nodes, config.ip_links_per_node, s->rng));
  s->router = std::make_unique<net::Router>(*s->topology);
  s->router->set_cache_limit(config.router_cache_limit);
  s->build_timings.topology_ms = ms_since(t0);

  // Pick the overlay peers among the IP nodes.
  SPIDER_REQUIRE(config.peers >= 2 && config.peers <= config.ip_nodes);
  std::vector<net::NodeIdx> peer_nodes;
  for (std::size_t idx :
       s->rng.sample_indices(config.ip_nodes, config.peers)) {
    peer_nodes.push_back(net::NodeIdx(idx));
  }
  std::sort(peer_nodes.begin(), peer_nodes.end());

  t0 = BuildClock::now();
  overlay::OverlayNetwork ov =
      config.use_latency_estimator
          ? overlay::OverlayNetwork::from_topology_estimated(
                *s->topology, std::move(peer_nodes), config.overlay_kind,
                config.overlay_degree, s->rng, config.landmark_count,
                config.build_jobs)
          : overlay::OverlayNetwork::from_topology(
                *s->topology, *s->router, std::move(peer_nodes),
                config.overlay_kind, config.overlay_degree, s->rng);
  ov.set_route_cache_limit(config.route_cache_limit);
  ov.set_route_path_cache_limit(config.route_path_cache_limit);
  s->build_timings.overlay_ms = ms_since(t0);
  if (config.use_latency_estimator) {
    // Overlay-layer landmarks for delay hints (DHT proximity, discovery
    // timing); built before the Deployment so the DHT bulk load sees them.
    t0 = BuildClock::now();
    ov.build_estimator(config.landmark_count, config.build_jobs);
    s->build_timings.estimator_ms = ms_since(t0);
  }
  t0 = BuildClock::now();
  s->deployment = std::make_unique<core::Deployment>(
      std::move(ov), s->rng, core::Deployment::BuildOptions{config.build_jobs});
  s->build_timings.dht_ms = ms_since(t0);
  s->alloc =
      std::make_unique<core::AllocationManager>(*s->deployment, s->sim);
  s->evaluator =
      std::make_unique<core::GraphEvaluator>(*s->deployment, *s->alloc);

  // Function catalog.
  auto& catalog = s->deployment->catalog();
  for (std::size_t f = 0; f < config.function_count; ++f) {
    catalog.intern("fn/" + std::to_string(f));
  }

  // Components: each peer provides [min, max] components whose functions
  // are drawn from the catalog (optionally Zipf-skewed popularity).
  // Sampling runs per 1024-peer shard on its own hash-derived RNG stream
  // (see kComponentStreamTag) so shards can run concurrently without the
  // result depending on build_jobs; deployment bookkeeping then replays
  // serially in shard order.
  t0 = BuildClock::now();
  for (overlay::PeerId p = 0; p < config.peers; ++p) {
    s->deployment->set_capacity(
        p, service::Resources::cpu_mem(config.peer_cpu_capacity,
                                       config.peer_mem_capacity));
  }
  const std::size_t shard_count =
      (config.peers + kComponentShardPeers - 1) / kComponentShardPeers;
  std::vector<std::vector<service::ServiceComponent>> shard_components(
      shard_count);
  util::parallel_for_each(
      config.build_jobs, shard_count, [&](std::size_t shard) {
        Rng rng(util::hash_values(config.seed, kComponentStreamTag,
                                  std::uint64_t(shard)));
        const std::size_t begin = shard * kComponentShardPeers;
        const std::size_t end =
            std::min(config.peers, begin + kComponentShardPeers);
        std::vector<service::ServiceComponent>& out = shard_components[shard];
        for (std::size_t p = begin; p < end; ++p) {
          const std::size_t count = std::size_t(
              rng.next_int(std::int64_t(config.min_components_per_peer),
                           std::int64_t(config.max_components_per_peer)));
          for (std::size_t k = 0; k < count; ++k) {
            const auto fn = service::FunctionId(
                config.function_zipf_s > 0.0
                    ? rng.next_zipf(config.function_count,
                                    config.function_zipf_s)
                    : rng.next_below(config.function_count));
            service::ServiceComponent component = sample_component(
                rng, overlay::PeerId(p), fn, config.min_perf_delay_ms,
                config.max_perf_delay_ms, config.min_loss, config.max_loss,
                config.min_cpu, config.max_cpu, config.min_mem, config.max_mem,
                config.min_fail_prob, config.max_fail_prob);
            if (config.max_quality_level > 0) {
              component.input_level = std::uint32_t(
                  rng.next_below(config.max_quality_level + 1));
              component.output_level = std::uint32_t(
                  rng.next_below(config.max_quality_level + 1));
            }
            if (config.max_jitter_ms > 0.0) {
              component.perf = service::Qos::delay_loss_jitter(
                  component.perf.delay_ms(), component.perf.loss_log(),
                  rng.next_double(config.min_jitter_ms, config.max_jitter_ms));
            }
            out.push_back(std::move(component));
          }
        }
      });
  std::vector<service::ServiceComponent> all_components;
  for (std::vector<service::ServiceComponent>& shard : shard_components) {
    for (service::ServiceComponent& component : shard) {
      all_components.push_back(std::move(component));
    }
  }
  s->deployment->deploy_components(std::move(all_components),
                                   config.build_jobs);
  s->build_timings.deploy_ms = ms_since(t0);

  if (config.use_communities) {
    // Partition after deployment so the per-community index sees the
    // final replica set. Both phases shard over the WorkerPool and are
    // byte-identical at any build_jobs (DESIGN.md §5l).
    t0 = BuildClock::now();
    s->communities = std::make_unique<overlay::CommunityMap>(
        overlay::CommunityMap::build(s->deployment->overlay(),
                                     config.community_count,
                                     config.build_jobs));
    std::vector<service::ComponentMetadata> metas;
    metas.reserve(s->deployment->component_count());
    for (overlay::PeerId p = 0; p < config.peers; ++p) {
      for (service::ComponentId id : s->deployment->components_on(p)) {
        metas.push_back(
            service::ComponentMetadata::from(s->deployment->component(id)));
      }
    }
    s->community_index = std::make_unique<discovery::CommunityIndex>(
        discovery::CommunityIndex::build(metas, *s->communities,
                                         config.build_jobs));
    s->build_timings.communities_ms = ms_since(t0);
  }
  return s;
}

std::unique_ptr<Scenario> build_planetlab_scenario(
    const PlanetLabScenarioConfig& config) {
  auto s = std::make_unique<Scenario>();
  s->rng.reseed(config.seed);

  net::PlanetLabConfig pl;
  pl.hosts = config.hosts;
  s->planetlab = std::make_unique<net::PlanetLabModel>(pl, s->rng);

  overlay::OverlayNetwork ov = overlay::OverlayNetwork::from_planetlab(
      *s->planetlab, config.overlay_kind, config.overlay_degree, s->rng);
  s->deployment = std::make_unique<core::Deployment>(std::move(ov), s->rng);
  s->alloc =
      std::make_unique<core::AllocationManager>(*s->deployment, s->sim);
  s->evaluator =
      std::make_unique<core::GraphEvaluator>(*s->deployment, *s->alloc);

  auto& catalog = s->deployment->catalog();
  for (std::size_t f = 0; f < config.function_count; ++f) {
    catalog.intern(f < 6 && config.function_count <= 6
                       ? kMultimediaFunctions[f]
                       : "fn/" + std::to_string(f));
  }

  // One component per host, function chosen uniformly — the paper's
  // deployment: 102 hosts / 6 functions ≈ 17 replicas per function.
  for (overlay::PeerId p = 0; p < config.hosts; ++p) {
    s->deployment->set_capacity(
        p, service::Resources::cpu_mem(config.peer_cpu_capacity,
                                       config.peer_mem_capacity));
    for (std::size_t k = 0; k < config.components_per_peer; ++k) {
      const auto fn =
          service::FunctionId(s->rng.next_below(config.function_count));
      s->deployment->deploy_component(sample_component(
          s->rng, p, fn, config.min_perf_delay_ms, config.max_perf_delay_ms,
          0.0, 0.0, config.min_cpu, config.max_cpu, config.min_mem,
          config.max_mem, config.min_fail_prob, config.max_fail_prob));
    }
  }
  return s;
}

GeneratedRequest sample_request(Scenario& scenario,
                                const RequestProfile& profile) {
  Rng& rng = scenario.rng;
  auto& deployment = *scenario.deployment;
  const std::size_t catalog_size = deployment.catalog().size();
  SPIDER_REQUIRE(catalog_size >= profile.min_functions);

  GeneratedRequest out;
  service::CompositeRequest& req = out.request;

  // Choose k distinct functions that actually have live replicas.
  const std::size_t k = std::size_t(
      rng.next_int(std::int64_t(profile.min_functions),
                   std::int64_t(std::min(profile.max_functions,
                                         catalog_size))));
  std::vector<service::FunctionId> fns;
  std::size_t guard = 0;
  while (fns.size() < k && guard++ < 64 * k + 256) {
    const auto fn = service::FunctionId(
        profile.function_zipf_s > 0.0
            ? rng.next_zipf(catalog_size, profile.function_zipf_s)
            : rng.next_below(catalog_size));
    if (std::find(fns.begin(), fns.end(), fn) != fns.end()) continue;
    bool has_live = false;
    for (service::ComponentId id : deployment.replicas_oracle(fn)) {
      if (deployment.component_alive(id)) {
        has_live = true;
        break;
      }
    }
    if (has_live) fns.push_back(fn);
  }
  if (fns.size() < k) {
    // The rejection loop above is bounded; under heavy Zipf skew with a
    // small catalog it can exhaust its guard with nearly every draw
    // landing on an already-chosen function. Deterministic fallback:
    // scan the catalog in ascending id order for unused live functions.
    // No RNG draws happen here, so whenever the loop succeeds on its own
    // the stream is untouched and sampling is bit-for-bit the historical
    // behaviour.
    for (service::FunctionId fn = 0;
         fns.size() < k && fn < service::FunctionId(catalog_size); ++fn) {
      if (std::find(fns.begin(), fns.end(), fn) != fns.end()) continue;
      bool has_live = false;
      for (service::ComponentId id : deployment.replicas_oracle(fn)) {
        if (deployment.component_alive(id)) {
          has_live = true;
          break;
        }
      }
      if (has_live) fns.push_back(fn);
    }
  }
  SPIDER_REQUIRE_MSG(fns.size() == k, "not enough live functions");

  // Graph shape: chain, or a diamond DAG over >= 4 functions.
  const bool dag = k >= 4 && rng.next_bool(profile.dag_probability);
  if (dag) {
    // F0 -> {F1, F2, ...} -> F(k-1): first and last shared, interior
    // functions split across two parallel branches.
    service::FunctionGraph g;
    for (service::FunctionId fn : fns) g.add_function(fn);
    const service::FnNode first = 0, last = service::FnNode(k - 1);
    service::FnNode prev_a = first, prev_b = first;
    for (service::FnNode n = 1; n < last; ++n) {
      if (n % 2 == 1) {
        g.add_dependency(prev_a, n);
        prev_a = n;
      } else {
        g.add_dependency(prev_b, n);
        prev_b = n;
      }
    }
    g.add_dependency(prev_a, last);
    if (prev_b != first || prev_a == first) g.add_dependency(prev_b, last);
    // Commutation across the two branch heads, when present.
    if (k >= 4 && rng.next_bool(profile.commutation_probability)) {
      g.add_commutation(1, 2);
    }
    req.graph = std::move(g);
  } else {
    req.graph = service::make_linear_graph(fns);
    if (k >= 3 && rng.next_bool(profile.commutation_probability)) {
      const auto i = service::FnNode(
          1 + rng.next_below(std::uint64_t(k - 2)));
      req.graph.add_commutation(i, i + 1);
    }
  }
  SPIDER_REQUIRE(req.graph.is_dag());

  // QoS requirements: delay bound proportional to graph depth.
  const double slack =
      rng.next_double(profile.delay_slack_min, profile.delay_slack_max);
  const double bound =
      slack * double(k + 1) * profile.per_hop_delay_budget_ms;
  if (profile.per_hop_jitter_budget_ms > 0.0) {
    req.qos_req = service::Qos::delay_loss_jitter(
        bound, service::loss_to_additive(profile.loss_bound),
        slack * double(k + 1) * profile.per_hop_jitter_budget_ms);
  } else {
    req.qos_req = service::Qos::delay_loss(
        bound, service::loss_to_additive(profile.loss_bound));
  }
  req.bandwidth_kbps = profile.bandwidth_kbps;
  req.max_failure_prob = profile.max_failure_prob;
  req.source_level = profile.source_level;
  req.min_dest_level = profile.min_dest_level;

  // Random live source/destination pair.
  const std::vector<overlay::PeerId> live = deployment.live_peers();
  SPIDER_REQUIRE(live.size() >= 2);
  req.source = live[rng.next_below(live.size())];
  do {
    req.dest = live[rng.next_below(live.size())];
  } while (req.dest == req.source);

  out.duration = rng.next_exponential(profile.mean_session_duration);
  return out;
}

}  // namespace spider::workload
