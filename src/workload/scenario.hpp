// Scenario builders: canned deployments matching the paper's two testbeds.
//
//  * Simulation testbed (§6.1): an Inet-style power-law IP network with a
//    subset of nodes forming the service overlay; each peer provides 1–3
//    components whose functions are drawn from a 200-function catalog.
//  * Prototype testbed (§6.2): 102 PlanetLab-like hosts, 6 multimedia
//    functions, one component per host (≈17 replicas per function).
//
// A Scenario owns the full object graph (simulator, topology, router,
// deployment, allocator, evaluator) in construction order so that
// everything tears down cleanly.
#pragma once

#include <memory>

#include "core/allocator.hpp"
#include "core/deployment.hpp"
#include "core/evaluator.hpp"
#include "discovery/community_index.hpp"
#include "net/generator.hpp"
#include "net/planetlab.hpp"
#include "net/router.hpp"
#include "service/service_graph.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace spider::workload {

/// Fully wired testbed.
struct Scenario {
  /// Wall-clock spent in each world-construction phase of the builder
  /// (milliseconds; zero for phases a scenario kind skips). Benchmarks
  /// report these so build-parallelism regressions are visible per layer.
  struct BuildTimings {
    double topology_ms = 0.0;
    double overlay_ms = 0.0;
    double estimator_ms = 0.0;
    double dht_ms = 0.0;
    double deploy_ms = 0.0;
    double communities_ms = 0.0;
  };

  Rng rng{1};
  sim::Simulator sim;
  BuildTimings build_timings;
  // IP substrate (null for PlanetLab-matrix scenarios).
  std::unique_ptr<net::Topology> topology;
  std::unique_ptr<net::Router> router;
  std::unique_ptr<net::PlanetLabModel> planetlab;
  std::unique_ptr<core::Deployment> deployment;
  std::unique_ptr<core::AllocationManager> alloc;
  std::unique_ptr<core::GraphEvaluator> evaluator;
  // Community partition + per-community discovery index (null unless
  // SimScenarioConfig::use_communities; attach to a BcpEngine via
  // set_communities to switch it to two-tier probing).
  std::unique_ptr<overlay::CommunityMap> communities;
  std::unique_ptr<discovery::CommunityIndex> community_index;
};

/// §6.1-style simulation testbed.
struct SimScenarioConfig {
  std::uint64_t seed = 42;
  std::size_t ip_nodes = 4000;  ///< paper: 10,000 (scaled for bench speed)
  std::size_t ip_links_per_node = 3;
  std::size_t peers = 400;  ///< paper: 1,000
  overlay::OverlayKind overlay_kind = overlay::OverlayKind::kNearestMesh;
  std::size_t overlay_degree = 6;
  std::size_t function_count = 200;  ///< paper: 200 pre-defined functions
  std::size_t min_components_per_peer = 1;  ///< paper: [1, 3]
  std::size_t max_components_per_peer = 3;
  /// Function popularity skew: components pick functions Zipf(s)-ish so
  /// replica counts vary (0 = uniform).
  double function_zipf_s = 0.0;
  /// Max Q_in/Q_out quality level assigned to components (0 disables the
  /// §2.2 level-matching dimension: every component accepts everything).
  std::uint32_t max_quality_level = 0;
  /// Per-component jitter contribution range; > 0 makes components carry a
  /// third additive QoS metric (multi-constrained composition).
  double min_jitter_ms = 0.0, max_jitter_ms = 0.0;
  // Component property ranges (uniform).
  double min_perf_delay_ms = 5.0, max_perf_delay_ms = 40.0;
  double min_loss = 0.0, max_loss = 0.01;
  double min_cpu = 4.0, max_cpu = 12.0;
  double min_mem = 4.0, max_mem = 12.0;
  double min_fail_prob = 0.0, max_fail_prob = 0.05;
  // Peer capacities.
  double peer_cpu_capacity = 100.0, peer_mem_capacity = 100.0;
  /// Route-cache caps (see net::Router::set_cache_limit and
  /// overlay::OverlayNetwork::set_route_cache_limit) applied before the
  /// overlay is built. Cached shortest-path state is the only O(N²)
  /// memory in a scenario, so large-N sweeps must cap it; the default
  /// keeps the exact historical unbounded behaviour.
  std::size_t router_cache_limit = std::size_t(-1);
  std::size_t route_cache_limit = std::size_t(-1);
  /// Cap on materialized per-(src,dst) overlay paths (min 2; see
  /// overlay::OverlayNetwork::set_route_path_cache_limit).
  std::size_t route_path_cache_limit = std::size_t(1) << 16;
  /// Landmark latency estimation (§5h). Off by default: the scenario then
  /// builds the overlay with exact per-peer IP Dijkstras and answers
  /// every delay query exactly — byte-identical to the historical
  /// behaviour. On, the overlay is built via
  /// overlay::OverlayNetwork::from_topology_estimated (O(n·degree·k)
  /// construction, bounded RSS) and proximity/discovery hints come from
  /// k-landmark triangulation; exact routes are still computed lazily
  /// for candidate service graphs.
  bool use_latency_estimator = false;
  std::size_t landmark_count = 16;
  /// Community partitioning (§5l). Off by default: flat BCP, bit-for-bit
  /// the historical outputs. On, the builder partitions the overlay into
  /// `community_count` latency communities after deployment and indexes
  /// replicas per community; engines opt in via BcpEngine::set_communities.
  bool use_communities = false;
  std::size_t community_count = 8;
  /// World-construction parallelism (§5k): landmark SSSP columns, overlay
  /// link pricing, the DHT bulk load and component registration spread
  /// over this many workers. Output is identical at any value — component
  /// sampling draws from hash-derived per-shard RNG streams (fixed
  /// 1024-peer shards), not the sequential scenario RNG, precisely so the
  /// result cannot depend on scheduling. 1 (default) builds serially.
  std::size_t build_jobs = 1;
};

/// §6.2-style prototype testbed over a synthetic PlanetLab delay matrix.
struct PlanetLabScenarioConfig {
  std::uint64_t seed = 42;
  std::size_t hosts = 102;  ///< paper: 102 PlanetLab hosts
  std::size_t overlay_degree = 8;
  overlay::OverlayKind overlay_kind = overlay::OverlayKind::kNearestMesh;
  /// Paper: 6 multimedia functions, one component per host -> ~17 replicas.
  std::size_t function_count = 6;
  std::size_t components_per_peer = 1;
  double min_perf_delay_ms = 10.0, max_perf_delay_ms = 80.0;
  double min_cpu = 4.0, max_cpu = 12.0;
  double min_mem = 4.0, max_mem = 12.0;
  double min_fail_prob = 0.0, max_fail_prob = 0.02;
  double peer_cpu_capacity = 200.0, peer_mem_capacity = 200.0;
};

std::unique_ptr<Scenario> build_sim_scenario(const SimScenarioConfig& config);
std::unique_ptr<Scenario> build_planetlab_scenario(
    const PlanetLabScenarioConfig& config);

/// The six multimedia functions of the paper's prototype (§6.2), in the
/// order they are interned by build_planetlab_scenario when
/// function_count == 6.
extern const char* const kMultimediaFunctions[6];

/// Request sampling profile.
struct RequestProfile {
  std::size_t min_functions = 2;
  std::size_t max_functions = 4;
  /// Request-side function popularity skew: > 0 draws each requested
  /// function Zipf(s) by catalog rank (function 0 hottest — matching the
  /// deployment-side skew SimScenarioConfig::function_zipf_s applies), so
  /// open-loop traffic concentrates on popular services. 0 (default) is
  /// the uniform seed behaviour, draw-for-draw identical.
  double function_zipf_s = 0.0;
  /// Probability a request's graph is a diamond DAG instead of a chain
  /// (requires >= 4 functions).
  double dag_probability = 0.25;
  /// Probability of declaring a commutation link between two adjacent
  /// interior functions.
  double commutation_probability = 0.3;
  /// QoS delay bound = slack × (graph length × typical per-hop budget).
  double delay_slack_min = 1.2, delay_slack_max = 2.5;
  double per_hop_delay_budget_ms = 80.0;
  double loss_bound = 0.05;            ///< loss-rate bound (transformed)
  /// Jitter bound per expected hop; > 0 adds a third QoS constraint (the
  /// scenario must then deploy jittery components, see SimScenarioConfig).
  double per_hop_jitter_budget_ms = 0.0;
  double bandwidth_kbps = 300.0;       ///< stream rate on service links
  double max_failure_prob = 0.25;      ///< F^req
  double mean_session_duration = 50.0; ///< virtual time units
  /// §2.2 levels on requests (only meaningful when the scenario deploys
  /// leveled components).
  std::uint32_t source_level = 0;
  std::uint32_t min_dest_level = 0;
};

/// One sampled composite request plus its session duration.
struct GeneratedRequest {
  service::CompositeRequest request;
  double duration = 0.0;
};

GeneratedRequest sample_request(Scenario& scenario,
                                const RequestProfile& profile);

}  // namespace spider::workload
