// Determinism of parallel world construction (§5k): every build phase
// must produce byte-identical output at any job count — landmark
// selection (speculative waves), overlay link pricing, the scenario's
// sharded component sampling, and the DHT bulk load. Churn after a
// parallel build must replay bit-for-bit too (deterministic revive
// bootstrap), so a kill/revive sequence is compared across job counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/generator.hpp"
#include "net/landmark.hpp"
#include "overlay/overlay.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace spider {
namespace {

net::Topology test_topology(std::uint64_t seed, std::size_t nodes) {
  Rng rng(seed);
  return net::power_law(nodes, 3, rng);
}

TEST(ParallelBuildTest, LandmarkTableIsIdenticalAtAnyJobCount) {
  const net::Topology topo = test_topology(5, 240);
  std::vector<net::NodeIdx> targets;
  for (net::NodeIdx t = 0; t < 240; t += 3) targets.push_back(t);

  const net::LandmarkTable serial =
      net::build_ip_landmarks(topo, targets, 12, /*jobs=*/1);
  for (std::size_t jobs : {2, 4, 7}) {
    const net::LandmarkTable parallel =
        net::build_ip_landmarks(topo, targets, 12, jobs);
    ASSERT_EQ(serial.landmark_count(), parallel.landmark_count())
        << "jobs=" << jobs;
    ASSERT_EQ(serial.target_count(), parallel.target_count());
    for (std::uint32_t u = 0; u < targets.size(); ++u) {
      for (std::uint32_t v = 0; v < targets.size(); ++v) {
        EXPECT_EQ(serial.upper_bound_ms(u, v), parallel.upper_bound_ms(u, v))
            << "jobs=" << jobs << " pair (" << u << "," << v << ")";
        EXPECT_EQ(serial.lower_bound_ms(u, v), parallel.lower_bound_ms(u, v));
      }
    }
  }
}

TEST(ParallelBuildTest, EstimatedOverlayIsIdenticalAtAnyJobCount) {
  const net::Topology topo = test_topology(9, 300);
  std::vector<net::NodeIdx> peers;
  for (net::NodeIdx t = 0; t < 300; t += 2) peers.push_back(t);

  auto build = [&](std::size_t jobs) {
    Rng rng(77);
    overlay::OverlayNetwork ov = overlay::OverlayNetwork::from_topology_estimated(
        topo, peers, overlay::OverlayKind::kNearestMesh, 5, rng, 8, jobs);
    ov.build_estimator(8, jobs);
    return ov;
  };
  overlay::OverlayNetwork serial = build(1);
  overlay::OverlayNetwork parallel = build(4);

  ASSERT_EQ(serial.link_count(), parallel.link_count());
  for (overlay::OverlayLinkId l = 0; l < serial.link_count(); ++l) {
    const overlay::OverlayLink& a = serial.link(l);
    const overlay::OverlayLink& b = parallel.link(l);
    EXPECT_EQ(a.a, b.a) << "link " << l;
    EXPECT_EQ(a.b, b.b) << "link " << l;
    EXPECT_EQ(a.delay_ms, b.delay_ms) << "link " << l;
    EXPECT_EQ(a.capacity_kbps, b.capacity_kbps) << "link " << l;
    EXPECT_EQ(a.ip_hops, b.ip_hops) << "link " << l;
  }
  for (overlay::PeerId p = 0; p < serial.peer_count(); p += 7) {
    for (overlay::PeerId q = 0; q < serial.peer_count(); q += 11) {
      EXPECT_EQ(serial.estimated_delay_ms(p, q),
                parallel.estimated_delay_ms(p, q))
          << "pair (" << p << "," << q << ")";
    }
  }
}

workload::SimScenarioConfig scenario_config(std::size_t build_jobs) {
  workload::SimScenarioConfig config;
  config.seed = 1234;
  config.ip_nodes = 2400;
  config.peers = 1100;  // spans two 1024-peer component-sampling shards
  config.function_count = 40;
  config.overlay_degree = 4;
  config.use_latency_estimator = true;
  config.landmark_count = 8;
  config.build_jobs = build_jobs;
  return config;
}

void expect_same_world(workload::Scenario& a, workload::Scenario& b) {
  auto& da = *a.deployment;
  auto& db = *b.deployment;
  ASSERT_EQ(da.peer_count(), db.peer_count());
  ASSERT_EQ(da.component_count(), db.component_count());
  for (overlay::PeerId p = 0; p < da.peer_count(); ++p) {
    const auto& ca = da.components_on(p);
    const auto& cb = db.components_on(p);
    ASSERT_EQ(ca, cb) << "component ids on peer " << p;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      const auto& x = da.component(ca[i]);
      const auto& y = db.component(cb[i]);
      EXPECT_EQ(x.function, y.function);
      EXPECT_EQ(x.perf.delay_ms(), y.perf.delay_ms());
      EXPECT_EQ(x.failure_prob, y.failure_prob);
    }
  }
  EXPECT_EQ(da.dht().messages_sent(), db.dht().messages_sent());
}

TEST(ParallelBuildTest, SimScenarioIsIdenticalAtAnyBuildJobCount) {
  auto serial = workload::build_sim_scenario(scenario_config(1));
  auto parallel = workload::build_sim_scenario(scenario_config(4));
  expect_same_world(*serial, *parallel);

  // DHT state too: spot-check leaf sets and routed lookups.
  for (overlay::PeerId p = 0; p < serial->deployment->peer_count(); p += 97) {
    std::vector<dht::NodeId> ma = serial->deployment->dht().leaf_set(p).members();
    std::vector<dht::NodeId> mb =
        parallel->deployment->dht().leaf_set(p).members();
    EXPECT_EQ(ma, mb) << "leaf set of peer " << p;
  }
  for (std::uint64_t k = 0; k < 16; ++k) {
    const dht::NodeId key = dht::NodeId::hash_of("pb:" + std::to_string(k));
    EXPECT_EQ(serial->deployment->dht().route_readonly(0, key).path,
              parallel->deployment->dht().route_readonly(0, key).path)
        << "key " << k;
  }
}

TEST(ParallelBuildTest, KillReviveReplaysBitForBitAcrossBuildJobCounts) {
  auto serial = workload::build_sim_scenario(scenario_config(1));
  auto parallel = workload::build_sim_scenario(scenario_config(4));

  const std::vector<overlay::PeerId> victims{3, 97, 512, 1033};
  for (auto& s : {std::ref(*serial), std::ref(*parallel)}) {
    for (overlay::PeerId v : victims) s.get().deployment->kill_peer(v);
    s.get().deployment->revive_peer(victims[1]);
    s.get().deployment->revive_peer(victims[3]);
  }

  ASSERT_EQ(serial->deployment->live_peers(), parallel->deployment->live_peers());
  EXPECT_EQ(serial->deployment->dht().messages_sent(),
            parallel->deployment->dht().messages_sent());
  for (overlay::PeerId p : {overlay::PeerId(0), victims[1], victims[3]}) {
    std::vector<dht::NodeId> ma = serial->deployment->dht().leaf_set(p).members();
    std::vector<dht::NodeId> mb =
        parallel->deployment->dht().leaf_set(p).members();
    EXPECT_EQ(ma, mb) << "leaf set of peer " << p;
  }
  // Routed lookups (with lazy repair active) must walk the same paths.
  for (std::uint64_t k = 0; k < 24; ++k) {
    const dht::NodeId key = dht::NodeId::hash_of("kr:" + std::to_string(k));
    const auto from = overlay::PeerId(100 + k);  // avoids the dead victims
    const auto ra = serial->deployment->dht().route(from, key);
    const auto rb = parallel->deployment->dht().route(from, key);
    EXPECT_EQ(ra.path, rb.path) << "key " << k;
  }
}

}  // namespace
}  // namespace spider
