// Tests for the IP substrate: topology invariants, generators (power-law
// degree skew, connectivity), Dijkstra routing (vs brute force), PlanetLab
// delay structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "net/generator.hpp"
#include "net/planetlab.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace spider::net {
namespace {

Topology tiny_line() {
  // 0 -1ms- 1 -2ms- 2 -4ms- 3, plus a slow shortcut 0-3 (10ms).
  std::vector<Link> links{
      {0, 1, 1.0, 100.0},
      {1, 2, 2.0, 50.0},
      {2, 3, 4.0, 200.0},
      {0, 3, 10.0, 10.0},
  };
  return Topology(4, std::move(links));
}

TEST(Topology, AdjacencyIsSymmetric) {
  Topology t = tiny_line();
  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 2u);
  EXPECT_EQ(t.degree(3), 2u);
  bool found = false;
  for (const Adjacency& a : t.neighbors(0)) {
    if (a.neighbor == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Topology, ConnectedDetectsPartition) {
  EXPECT_TRUE(tiny_line().connected());
  std::vector<Link> links{{0, 1, 1.0, 1.0}, {2, 3, 1.0, 1.0}};
  Topology split(4, std::move(links));
  EXPECT_FALSE(split.connected());
}

TEST(TopologyDeath, RejectsSelfLoopAndDuplicate) {
  EXPECT_DEATH(Topology(2, {{0, 0, 1.0, 1.0}}), "self loop");
  EXPECT_DEATH(Topology(2, {{0, 1, 1.0, 1.0}, {1, 0, 2.0, 2.0}}),
               "duplicate");
}

TEST(Generator, PowerLawIsConnectedAndSized) {
  Rng rng(1);
  Topology t = power_law(500, 2, rng);
  EXPECT_EQ(t.node_count(), 500u);
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.link_count(), 2u * (500 - 3));
}

TEST(Generator, PowerLawHasHeavyTailedDegrees) {
  Rng rng(2);
  Topology t = power_law(2000, 2, rng);
  std::vector<std::size_t> degrees;
  for (NodeIdx n = 0; n < t.node_count(); ++n) degrees.push_back(t.degree(n));
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  // Preferential attachment: the max degree should dwarf the median.
  const std::size_t median = degrees[degrees.size() / 2];
  EXPECT_GE(degrees[0], 8 * median);
}

TEST(Generator, WaxmanIsConnected) {
  Rng rng(3);
  Topology t = waxman(300, 0.4, 0.2, rng);
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.link_count(), 299u);
}

TEST(Generator, RandomGraphIsConnectedWithExtras) {
  Rng rng(4);
  Topology t = random_graph(200, 400, rng);
  EXPECT_TRUE(t.connected());
  EXPECT_GE(t.link_count(), 199u + 300u);
}

TEST(Generator, LinkPropertiesWithinProfile) {
  Rng rng(5);
  LinkProfile profile;
  profile.min_delay_ms = 1.0;
  profile.max_delay_ms = 2.0;
  profile.min_bandwidth_kbps = 10.0;
  profile.max_bandwidth_kbps = 20.0;
  Topology t = power_law(100, 2, rng, profile);
  for (const Link& l : t.links()) {
    EXPECT_GE(l.delay_ms, 1.0);
    EXPECT_LE(l.delay_ms, 2.0);
    EXPECT_GE(l.bandwidth_kbps, 10.0);
    EXPECT_LE(l.bandwidth_kbps, 20.0);
  }
}

TEST(Router, ShortestPathOnLine) {
  Topology t = tiny_line();
  Router router(t);
  // 0 -> 3: path through the line costs 7 < shortcut 10.
  const PathMetrics m = router.metrics(0, 3);
  EXPECT_DOUBLE_EQ(m.delay_ms, 7.0);
  EXPECT_EQ(m.hops, 3u);
  EXPECT_DOUBLE_EQ(m.bottleneck_kbps, 50.0);

  const auto path = router.from(0).path_to(3);
  EXPECT_EQ(path, (std::vector<NodeIdx>{0, 1, 2, 3}));
}

TEST(Router, SelfPathIsZero) {
  Topology t = tiny_line();
  Router router(t);
  const PathMetrics m = router.metrics(2, 2);
  EXPECT_DOUBLE_EQ(m.delay_ms, 0.0);
  EXPECT_EQ(m.hops, 0u);
}

TEST(Router, MatchesBruteForceOnRandomGraph) {
  Rng rng(6);
  Topology t = random_graph(60, 120, rng);
  Router router(t);

  // Floyd–Warshall reference.
  const std::size_t n = t.node_count();
  std::vector<std::vector<double>> d(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  for (std::size_t i = 0; i < n; ++i) d[i][i] = 0;
  for (const Link& l : t.links()) {
    d[l.a][l.b] = std::min(d[l.a][l.b], l.delay_ms);
    d[l.b][l.a] = std::min(d[l.b][l.a], l.delay_ms);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  for (NodeIdx src : {NodeIdx(0), NodeIdx(17), NodeIdx(42)}) {
    for (NodeIdx dst = 0; dst < n; ++dst) {
      EXPECT_NEAR(router.metrics(src, dst).delay_ms, d[src][dst], 1e-9);
    }
  }
}

TEST(Router, CachesPerSourceTrees) {
  Topology t = tiny_line();
  Router router(t);
  router.metrics(0, 3);
  router.metrics(0, 2);
  EXPECT_EQ(router.cached_sources(), 1u);
  router.metrics(1, 3);
  EXPECT_EQ(router.cached_sources(), 2u);
  router.clear_cache();
  EXPECT_EQ(router.cached_sources(), 0u);
}

TEST(Router, CappedCacheEvictsLruNotTheQueriedSource) {
  Topology t = tiny_line();
  Router router(t);
  router.set_cache_limit(2);
  // Alternating sources fit the cap: two cold recomputes, then pure hits
  // (the old epoch-clear policy recomputed both on every call at the cap).
  for (int i = 0; i < 8; ++i) {
    router.from(0);
    router.from(1);
  }
  EXPECT_EQ(router.recomputes(), 2u);
  EXPECT_EQ(router.cached_sources(), 2u);
  // A new source evicts the coldest tree (source 0), not the whole cache.
  router.from(2);
  EXPECT_EQ(router.recomputes(), 3u);
  EXPECT_EQ(router.cached_sources(), 2u);
  router.from(1);  // survived the eviction
  EXPECT_EQ(router.recomputes(), 3u);
  router.from(0);  // the LRU victim recomputes
  EXPECT_EQ(router.recomputes(), 4u);
}

TEST(Router, PathMetricsConsistentWithPath) {
  Rng rng(7);
  Topology t = power_law(200, 2, rng);
  Router router(t);
  const auto& tree = router.from(5);
  for (NodeIdx dst : {NodeIdx(0), NodeIdx(50), NodeIdx(199)}) {
    const auto path = tree.path_to(dst);
    const PathMetrics m = tree.metrics_to(dst);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size(), m.hops + 1);
    EXPECT_EQ(path.front(), 5u);
    EXPECT_EQ(path.back(), dst);
  }
}

TEST(PlanetLab, MatrixIsSymmetricWithZeroDiagonal) {
  Rng rng(8);
  PlanetLabConfig config;
  PlanetLabModel model(config, rng);
  EXPECT_EQ(model.host_count(), 102u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.delay_ms(i, i), 0.0);
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(model.delay_ms(i, j), model.delay_ms(j, i));
      if (i != j) EXPECT_GT(model.delay_ms(i, j), 0.0);
    }
  }
}

TEST(PlanetLab, TransatlanticSlowerThanRegional) {
  Rng rng(9);
  PlanetLabConfig config;
  PlanetLabModel model(config, rng);
  double regional_sum = 0, transat_sum = 0;
  int regional_n = 0, transat_n = 0;
  for (std::size_t i = 0; i < model.host_count(); ++i) {
    for (std::size_t j = i + 1; j < model.host_count(); ++j) {
      const bool same_continent =
          model.site_in_us(model.site_of(i)) == model.site_in_us(model.site_of(j));
      const bool same_site = model.site_of(i) == model.site_of(j);
      if (same_site) continue;
      if (same_continent) {
        regional_sum += model.delay_ms(i, j);
        ++regional_n;
      } else {
        transat_sum += model.delay_ms(i, j);
        ++transat_n;
      }
    }
  }
  ASSERT_GT(regional_n, 0);
  ASSERT_GT(transat_n, 0);
  EXPECT_GT(transat_sum / transat_n, 2.0 * (regional_sum / regional_n));
}

}  // namespace
}  // namespace spider::net
