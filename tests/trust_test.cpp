// Tests for decentralized trust management: beta-reputation math, DHT
// persistence of per-rater records, rater-update (not append) semantics,
// survival of owner churn, and BCP trust-aware candidate steering.
#include <gtest/gtest.h>

#include "core/bcp.hpp"
#include "obs/metrics.hpp"
#include "test_scenario.hpp"
#include "trust/trust.hpp"

namespace spider::trust {
namespace {

class TrustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario(/*seed=*/9, /*peers=*/40);
    manager_ = std::make_unique<TrustManager>(*scenario_->deployment,
                                              scenario_->sim);
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<TrustManager> manager_;
};

TEST_F(TrustTest, UnknownPeerGetsPriorMean) {
  EXPECT_DOUBLE_EQ(manager_->trust(0, 7), 0.5);
}

TEST_F(TrustTest, PositiveReportsRaiseTrust) {
  for (int i = 0; i < 8; ++i) manager_->report(1, 7, true);
  const double t = manager_->trust(0, 7);
  EXPECT_NEAR(t, 9.0 / 10.0, 1e-9);  // Beta(1+8, 1)
}

TEST_F(TrustTest, NegativeReportsLowerTrust) {
  for (int i = 0; i < 3; ++i) manager_->report(1, 7, false);
  EXPECT_NEAR(manager_->trust(0, 7), 1.0 / 5.0, 1e-9);  // Beta(1, 1+3)
}

TEST_F(TrustTest, RaterUpdatesDoNotAppendDuplicates) {
  // 20 reports from one rater must produce exactly one stored record.
  for (int i = 0; i < 20; ++i) manager_->report(2, 9, i % 2 == 0);
  const TrustRecord rec = manager_->record(0, 9);
  EXPECT_EQ(rec.raters, 1u);
  EXPECT_DOUBLE_EQ(rec.positive, 10.0);
  EXPECT_DOUBLE_EQ(rec.negative, 10.0);
}

TEST_F(TrustTest, MultipleRatersAggregate) {
  manager_->report(1, 5, true);
  manager_->report(2, 5, true);
  manager_->report(3, 5, false);
  const TrustRecord rec = manager_->record(0, 5);
  EXPECT_EQ(rec.raters, 3u);
  EXPECT_DOUBLE_EQ(rec.positive, 2.0);
  EXPECT_DOUBLE_EQ(rec.negative, 1.0);
  EXPECT_NEAR(manager_->trust(0, 5), 3.0 / 5.0, 1e-9);
}

TEST_F(TrustTest, RecordsSurviveOwnerFailure) {
  manager_->report(1, 6, false);
  manager_->report(2, 6, false);
  // Kill the DHT owner of the trust key; replication must preserve it.
  const auto key = dht::NodeId::hash_of("trust:6");
  const auto owner = scenario_->deployment->dht().owner_oracle(key);
  overlay::PeerId requester = 0;
  while (requester == owner || requester == 6) ++requester;
  scenario_->deployment->kill_peer(owner);
  EXPECT_LT(manager_->trust(requester, 6), 0.4);
}

TEST_F(TrustTest, CacheHonorsTtl) {
  TrustConfig config;
  config.cache_ttl = 100.0;
  TrustManager cached(*scenario_->deployment, scenario_->sim, config);
  cached.report(1, 4, true);
  const double before = cached.trust(0, 4);
  cached.report(1, 4, true);  // report invalidates the cache
  const double after = cached.trust(0, 4);
  EXPECT_GT(after, before);
}

TEST_F(TrustTest, ExpiredCacheEntriesAreErasedNotJustBypassed) {
  // Regression: expired entries used to be checked but never erased, so
  // the cache map grew monotonically (the PR 4 discovery-cache family).
  // Touched subjects must be evicted on lookup and untouched ones by
  // sweep_expired(), shrinking the map, with each TTL lapse counted.
  TrustConfig config;
  config.cache_ttl = 100.0;
  TrustManager cached(*scenario_->deployment, scenario_->sim, config);
  for (PeerId subject = 3; subject < 11; ++subject) {
    cached.trust(0, subject);
  }
  EXPECT_EQ(cached.cache_size(), 8u);
  EXPECT_EQ(cached.cache_evictions(), 0u);

  scenario_->sim.run_until(scenario_->sim.now() + 101.0);
  // Touch one expired subject: evicted on lookup, then re-cached fresh.
  cached.trust(0, 3);
  EXPECT_EQ(cached.cache_evictions(), 1u);
  EXPECT_EQ(cached.cache_size(), 8u);  // 7 stale + the re-fetched one

  // The other 7 are never queried again; the sweep must reclaim them.
  EXPECT_EQ(cached.sweep_expired(), 7u);
  EXPECT_EQ(cached.cache_size(), 1u);
  EXPECT_EQ(cached.cache_evictions(), 8u);

  // Fresh entries survive a sweep untouched.
  EXPECT_EQ(cached.sweep_expired(), 0u);
  EXPECT_EQ(cached.cache_size(), 1u);
}

TEST_F(TrustTest, CacheEvictionCounterIsLazilyRegistered) {
  obs::MetricsRegistry metrics;
  TrustConfig config;
  config.cache_ttl = 50.0;
  TrustManager cached(*scenario_->deployment, scenario_->sim, config);
  cached.set_metrics(&metrics);
  cached.trust(0, 5);
  // No eviction yet: the counter must not exist (cache-free runs keep
  // their exact metric exports).
  EXPECT_EQ(metrics.find_counter("trust.cache_evictions"), nullptr);
  scenario_->sim.run_until(scenario_->sim.now() + 51.0);
  cached.trust(0, 5);
  ASSERT_NE(metrics.find_counter("trust.cache_evictions"), nullptr);
  EXPECT_EQ(metrics.find_counter("trust.cache_evictions")->value(), 1u);
}

TEST_F(TrustTest, BcpSteersAwayFromDistrustedPeers) {
  // Make one replica's host thoroughly distrusted, then compose many
  // times: the distrusted host should be picked (much) less often than
  // without trust.
  auto req = spider::testing::easy_request(*scenario_);
  core::BcpEngine bcp(*scenario_->deployment, *scenario_->alloc,
                      *scenario_->evaluator, scenario_->sim,
                      core::BcpConfig{});
  Rng rng(4);

  // Baseline compose to find a host to distrust.
  core::ComposeResult first = bcp.compose(req, rng);
  ASSERT_TRUE(first.success);
  const overlay::PeerId bad = first.best.mapping[0].host;
  for (core::HoldId h : first.best_holds) scenario_->alloc->release_hold(h);
  for (int i = 0; i < 30; ++i) manager_->report(1, bad, false);

  auto count_uses = [&](bool with_trust) {
    core::BcpConfig config;
    if (with_trust) {
      config.trust_fn = manager_->trust_fn(req.source);
      config.metric_w_trust = 2000.0;
    }
    bcp.set_config(config);
    int uses = 0;
    for (int i = 0; i < 20; ++i) {
      core::ComposeResult r = bcp.compose(req, rng);
      if (!r.success) continue;
      for (core::HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
      uses += r.best.uses_peer(bad) ? 1 : 0;
    }
    return uses;
  };
  const int without = count_uses(false);
  const int with = count_uses(true);
  EXPECT_LE(with, without);
  EXPECT_LT(with, 20);
}

}  // namespace
}  // namespace spider::trust
