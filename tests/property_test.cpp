// Property-based parameterized suites (TEST_P) asserting invariants over
// sweeps of sizes, seeds and configurations:
//   * routing: Dijkstra optimality sanity, triangle inequality, symmetry
//   * DHT: oracle-correct delivery across network sizes / leaf sizes /
//     churn fractions, logarithmic hop growth
//   * function graphs: pattern and branch invariants on random DAGs
//   * allocator: conservation under random hold/confirm/release sequences
//   * BCP: β-budget conservation bounds under tight budgets and loss;
//     hold hygiene, QoS soundness, budget monotonicity across seeds
#include <gtest/gtest.h>

#include <tuple>

#include "core/bcp.hpp"
#include "dht/pastry.hpp"
#include "fault/fault.hpp"
#include "net/generator.hpp"
#include "net/router.hpp"
#include "test_scenario.hpp"
#include "workload/scenario.hpp"

namespace spider {
namespace {

// ---------------------------------------------------------------- routing

enum class Gen { kPowerLaw, kWaxman, kRandom };

class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<Gen, std::size_t, int>> {};

net::Topology make_topology(Gen kind, std::size_t n, Rng& rng) {
  switch (kind) {
    case Gen::kPowerLaw: return net::power_law(n, 2, rng);
    case Gen::kWaxman: return net::waxman(n, 0.4, 0.2, rng);
    case Gen::kRandom: return net::random_graph(n, 2 * n, rng);
  }
  SPIDER_REQUIRE(false);
  __builtin_unreachable();
}

TEST_P(RoutingProperty, ShortestPathInvariants) {
  const auto [kind, n, seed] = GetParam();
  Rng rng{std::uint64_t(seed)};
  net::Topology topo = make_topology(kind, n, rng);
  ASSERT_TRUE(topo.connected());
  net::Router router(topo);

  const net::NodeIdx a = 0, b = net::NodeIdx(n / 2), c = net::NodeIdx(n - 1);
  const auto& from_a = router.from(a);
  // Symmetry of shortest-path delay on an undirected graph.
  EXPECT_NEAR(from_a.delay_to(c), router.from(c).delay_to(a), 1e-9);
  // Triangle inequality.
  EXPECT_LE(from_a.delay_to(c),
            from_a.delay_to(b) + router.from(b).delay_to(c) + 1e-9);
  // Path endpoints and delay consistency.
  for (net::NodeIdx dst : {b, c}) {
    const auto path = from_a.path_to(dst);
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), dst);
    // Path delay equals the tree's distance.
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // Find the connecting link.
      double best = -1.0;
      for (const auto& adj : topo.neighbors(path[i])) {
        if (adj.neighbor == path[i + 1]) {
          const double d = topo.link(adj.link).delay_ms;
          best = best < 0 ? d : std::min(best, d);
        }
      }
      ASSERT_GE(best, 0.0) << "path uses a non-existent link";
      sum += best;
    }
    EXPECT_NEAR(sum, from_a.delay_to(dst), 1e-6);
  }
  // No routed delay may beat a direct link.
  for (const auto& adj : topo.neighbors(a)) {
    EXPECT_LE(from_a.delay_to(adj.neighbor),
              topo.link(adj.link).delay_ms + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoutingProperty,
    ::testing::Combine(::testing::Values(Gen::kPowerLaw, Gen::kWaxman,
                                         Gen::kRandom),
                       ::testing::Values(std::size_t(50), std::size_t(200)),
                       ::testing::Values(1, 2, 3)));

// -------------------------------------------------------------------- DHT

class DhtProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, double>> {};

TEST_P(DhtProperty, OracleDeliveryUnderChurn) {
  const auto [n, leaf_size, churn] = GetParam();
  Rng rng(99);
  dht::PastryNetwork net(leaf_size, 3);
  net.bootstrap(0, dht::NodeId::random(rng));
  for (dht::PeerId p = 1; p < n; ++p) {
    net.join(p, dht::NodeId::random(rng), dht::PeerId(rng.next_below(p)));
  }
  // Fail a churn fraction of nodes abruptly, then run the periodic
  // leaf-set maintenance that Pastry's failure detection would trigger.
  const auto to_fail = std::size_t(double(n) * churn);
  for (std::size_t k = 0; k < to_fail; ++k) {
    dht::PeerId victim;
    do {
      victim = dht::PeerId(rng.next_below(n));
    } while (!net.alive(victim) || net.live_count() <= 2);
    net.fail(victim);
  }
  if (to_fail > 0) net.stabilize();
  // Every routed lookup must deliver to the live node numerically closest
  // to the key.
  std::uint64_t total_hops = 0;
  constexpr int kLookups = 120;
  for (int i = 0; i < kLookups; ++i) {
    dht::PeerId from;
    do {
      from = dht::PeerId(rng.next_below(n));
    } while (!net.alive(from));
    const dht::NodeId key = dht::NodeId::random(rng);
    const dht::RouteResult r = net.route(from, key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.target(), net.owner_oracle(key));
    total_hops += r.hops();
  }
  // Hop count stays logarithmic-ish even under churn.
  EXPECT_LT(double(total_hops) / kLookups, 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DhtProperty,
    ::testing::Combine(::testing::Values(std::size_t(24), std::size_t(64),
                                         std::size_t(160)),
                       ::testing::Values(8, 16),
                       ::testing::Values(0.0, 0.1, 0.25)));

// -------------------------------------------------------- function graphs

class PatternProperty : public ::testing::TestWithParam<int> {};

service::FunctionGraph random_dag(Rng& rng) {
  service::FunctionGraph g;
  const std::size_t n = 3 + rng.next_below(4);  // 3..6 nodes
  for (std::size_t i = 0; i < n; ++i) {
    g.add_function(service::FunctionId(rng.next_below(n + 2)));
  }
  // Edges only forward in index order: guaranteed DAG, connected chain
  // backbone plus random extras.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_dependency(service::FnNode(i), service::FnNode(i + 1));
  }
  for (int extra = 0; extra < 2; ++extra) {
    const auto u = service::FnNode(rng.next_below(n - 1));
    const auto v = service::FnNode(u + 1 + rng.next_below(n - u - 1));
    bool duplicate = false;
    for (const auto& [a, b] : g.dependencies()) {
      if (a == u && b == v) duplicate = true;
    }
    if (!duplicate && v < n) g.add_dependency(u, v);
  }
  const std::size_t comms = rng.next_below(3);
  for (std::size_t i = 0; i < comms; ++i) {
    const auto u = service::FnNode(rng.next_below(n));
    auto v = service::FnNode(rng.next_below(n));
    if (u != v) g.add_commutation(u, v);
  }
  return g;
}

TEST_P(PatternProperty, PatternsAndBranchesInvariants) {
  Rng rng{std::uint64_t(GetParam())};
  for (int round = 0; round < 20; ++round) {
    service::FunctionGraph g = random_dag(rng);
    ASSERT_TRUE(g.is_dag());

    const auto patterns = g.patterns(32);
    ASSERT_GE(patterns.size(), 1u);
    EXPECT_EQ(patterns[0].signature(), g.signature())
        << "original graph must be pattern 0";
    std::multiset<service::FunctionId> base_fns;
    for (service::FnNode i = 0; i < g.node_count(); ++i) {
      base_fns.insert(g.function(i));
    }
    for (const auto& p : patterns) {
      EXPECT_TRUE(p.is_dag());
      EXPECT_EQ(p.node_count(), g.node_count());
      EXPECT_EQ(p.dependencies().size(), g.dependencies().size());
      std::multiset<service::FunctionId> fns;
      for (service::FnNode i = 0; i < p.node_count(); ++i) {
        fns.insert(p.function(i));
      }
      EXPECT_EQ(fns, base_fns) << "patterns permute, never change functions";

      // Branches: every branch starts at a source, ends at a sink, follows
      // dependency edges, and collectively covers every node.
      const auto sources = p.sources();
      const auto sinks = p.sinks();
      std::set<service::FnNode> covered;
      for (const auto& branch : p.branches()) {
        ASSERT_FALSE(branch.empty());
        EXPECT_TRUE(std::find(sources.begin(), sources.end(),
                              branch.front()) != sources.end());
        EXPECT_TRUE(std::find(sinks.begin(), sinks.end(), branch.back()) !=
                    sinks.end());
        for (std::size_t i = 0; i + 1 < branch.size(); ++i) {
          bool edge = false;
          for (const auto& [u, v] : p.dependencies()) {
            if (u == branch[i] && v == branch[i + 1]) edge = true;
          }
          EXPECT_TRUE(edge);
        }
        covered.insert(branch.begin(), branch.end());
      }
      EXPECT_EQ(covered.size(), p.node_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty, ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------- allocator

class AllocatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorProperty, ConservationUnderRandomOps) {
  Rng rng{std::uint64_t(GetParam())};
  auto s = spider::testing::small_scenario(std::uint64_t(GetParam()), 24, 8);
  auto& alloc = *s->alloc;
  const std::size_t peers = s->deployment->peer_count();

  std::vector<core::HoldId> live_holds;
  std::vector<core::SessionId> live_sessions;
  for (int op = 0; op < 600; ++op) {
    const auto dice = rng.next_below(4);
    if (dice == 0) {
      const auto peer = overlay::PeerId(rng.next_below(peers));
      auto hold = alloc.soft_reserve_peer(
          peer,
          service::Resources::cpu_mem(rng.next_double(0, 30),
                                      rng.next_double(0, 30)),
          1e12);
      if (hold.has_value()) live_holds.push_back(*hold);
    } else if (dice == 1 && !live_holds.empty()) {
      const auto idx = rng.next_below(live_holds.size());
      alloc.release_hold(live_holds[idx]);
      live_holds.erase(live_holds.begin() + long(idx));
    } else if (dice == 2 && !live_holds.empty()) {
      const auto idx = rng.next_below(live_holds.size());
      const core::SessionId session = alloc.new_session_id();
      if (alloc.confirm(live_holds[idx], session)) {
        live_sessions.push_back(session);
      }
      live_holds.erase(live_holds.begin() + long(idx));
    } else if (dice == 3 && !live_sessions.empty()) {
      const auto idx = rng.next_below(live_sessions.size());
      alloc.release_session(live_sessions[idx]);
      live_sessions.erase(live_sessions.begin() + long(idx));
    }
    // Invariant: availability never negative, never above capacity.
    for (overlay::PeerId p = 0; p < peers; ++p) {
      const auto avail = alloc.peer_available(p);
      const auto cap = s->deployment->capacity(p);
      EXPECT_TRUE(avail.non_negative()) << "peer " << p << " op " << op;
      EXPECT_LE(avail.cpu(), cap.cpu() + 1e-9);
      EXPECT_LE(avail.memory(), cap.memory() + 1e-9);
    }
  }
  // Releasing everything restores full capacity.
  for (core::HoldId h : live_holds) alloc.release_hold(h);
  for (core::SessionId sess : live_sessions) alloc.release_session(sess);
  for (overlay::PeerId p = 0; p < peers; ++p) {
    EXPECT_NEAR(alloc.peer_available(p).cpu(),
                s->deployment->capacity(p).cpu(), 1e-9);
    EXPECT_NEAR(alloc.peer_available(p).memory(),
                s->deployment->capacity(p).memory(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty, ::testing::Values(11, 22, 33));

// --------------------------------------------------- BCP budget conservation

// β conservation (§4.2): the probing budget is split *exactly* — seeds
// share β, every spawn splits the parent's grant among the children, and
// nothing is ever minted. Externally observable consequences, for any
// request with branches of at most L functions:
//   * at most β probes reach the destination (each arrival carries >= 1
//     budget unit and the per-generation budget sum never exceeds β);
//   * probes_spawned <= β x (L + 1)  (<= β probes per prefix depth);
//   * probe transmissions <= (1 + retx) x (β + 1) x (L + 1): each probe
//     attempts at most `budget` fanout sends per hop plus one final leg,
//     the ack walks <= L + 1 legs, and the fault model retransmits each
//     at most probe_retx_limit times.
// The per-spawn invariant (Σ child budgets <= parent, every child within
// the parent's grant) is asserted by SPIDER_DCHECK at the spawn sites and
// therefore enforced across this whole suite in debug/sanitizer builds.
// Tight budgets (β < seeds) plus commutation-heavy DAG requests exercise
// the refusal path: seeds beyond the β-th must not spawn at all.

class BudgetProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(BudgetProperty, BetaIsAHardCeiling) {
  const auto [seed, beta, loss] = GetParam();
  auto s = spider::testing::small_scenario(std::uint64_t(seed), 48, 12);
  core::BcpConfig config;
  config.probing_budget = beta;
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      config);
  const fault::LinkFaultModel faults =
      fault::LinkFaultModel::uniform_loss(loss, std::uint64_t(seed));
  if (loss > 0.0) bcp.set_fault_model(&faults);

  // Commutation-heavy random requests: diamond DAGs yield multiple
  // branches and patterns, so seed counts routinely exceed small β.
  workload::RequestProfile profile;
  profile.min_functions = 4;
  profile.max_functions = 6;
  profile.dag_probability = 0.7;
  profile.commutation_probability = 1.0;

  for (int round = 0; round < 6; ++round) {
    auto gen = workload::sample_request(*s, profile);
    const std::uint64_t legs = gen.request.graph.node_count() + 1;
    core::ComposeResult r = bcp.compose(gen.request, s->rng);

    EXPECT_LE(r.stats.probes_arrived, std::uint64_t(beta))
        << "round " << round << ": more probes reached the destination "
        << "than the budget admits";
    EXPECT_LE(r.stats.probes_spawned, std::uint64_t(beta) * legs)
        << "round " << round;
    const std::uint64_t attempts = 1 + std::uint64_t(config.probe_retx_limit);
    EXPECT_LE(r.stats.probe_messages,
              attempts * std::uint64_t(beta + 1) * legs)
        << "round " << round;
    // Terminal accounting still balances under tight budgets and loss.
    EXPECT_EQ(r.stats.probes_spawned,
              r.stats.probes_arrived + r.stats.probes_dropped_total() +
                  r.stats.probes_forwarded);
    for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
    EXPECT_EQ(s->alloc->active_holds(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetProperty,
    ::testing::Combine(::testing::Values(41, 42, 43),
                       ::testing::Values(2, 5, 64),
                       ::testing::Values(0.0, 0.15)));

// Two-tier variant: with a community map attached, β is conserved
// *across* the coarse and fine tiers — coarse probes are paid out of the
// same budget the fine tier seeds from, so coarse + arrived can never
// exceed β, and each coarse probe adds exactly two transmissions
// (summary request + reply) on top of the fine-tier message bound.
// Tiny budgets (β < 4) run flat by design, so those cells double as the
// degenerate-β equivalence check.
TEST_P(BudgetProperty, BetaIsConservedAcrossCoarseAndFineTiers) {
  const auto [seed, beta, loss] = GetParam();
  workload::SimScenarioConfig scfg;
  scfg.seed = std::uint64_t(seed);
  scfg.ip_nodes = 300;
  scfg.peers = 48;
  scfg.function_count = 12;
  scfg.overlay_degree = 4;
  scfg.use_communities = true;
  scfg.community_count = 6;
  auto s = workload::build_sim_scenario(scfg);

  core::BcpConfig config;
  config.probing_budget = beta;
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      config);
  bcp.set_communities(s->communities.get(), s->community_index.get());
  const fault::LinkFaultModel faults =
      fault::LinkFaultModel::uniform_loss(loss, std::uint64_t(seed));
  if (loss > 0.0) bcp.set_fault_model(&faults);

  workload::RequestProfile profile;
  profile.min_functions = 4;
  profile.max_functions = 6;
  profile.dag_probability = 0.7;
  profile.commutation_probability = 1.0;

  for (int round = 0; round < 6; ++round) {
    auto gen = workload::sample_request(*s, profile);
    const std::uint64_t legs = gen.request.graph.node_count() + 1;
    core::ComposeResult r = bcp.compose(gen.request, s->rng);

    EXPECT_LE(r.stats.coarse_probes, std::uint64_t(beta)) << "round " << round;
    EXPECT_LE(r.stats.coarse_probes + r.stats.probes_arrived,
              std::uint64_t(beta))
        << "round " << round << ": the two tiers overspent β";
    if (beta < 4) {
      EXPECT_EQ(r.stats.coarse_probes, 0u) << "tiny budgets must run flat";
    }
    EXPECT_LE(r.stats.communities_pruned, r.stats.coarse_probes);
    EXPECT_LE(r.stats.probes_spawned, std::uint64_t(beta) * legs)
        << "round " << round;
    const std::uint64_t attempts = 1 + std::uint64_t(config.probe_retx_limit);
    EXPECT_LE(r.stats.probe_messages,
              attempts * std::uint64_t(beta + 1) * legs +
                  2 * r.stats.coarse_probes)
        << "round " << round;
    EXPECT_EQ(r.stats.probes_spawned,
              r.stats.probes_arrived + r.stats.probes_dropped_total() +
                  r.stats.probes_forwarded);
    for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
    EXPECT_EQ(s->alloc->active_holds(), 0u);
  }
}

// --------------------------------------------------------------------- BCP

class BcpProperty : public ::testing::TestWithParam<int> {};

TEST_P(BcpProperty, ComposeInvariantsAcrossSeeds) {
  const auto seed = std::uint64_t(GetParam());
  auto s = spider::testing::small_scenario(seed, 48, 12);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      core::BcpConfig{});
  Rng rng{seed * 31 + 1};

  for (int round = 0; round < 8; ++round) {
    auto req = spider::testing::easy_request(
        *s, 3, overlay::PeerId(round % 8), overlay::PeerId(8 + round % 8));
    core::ComposeResult r = bcp.compose(req, rng);
    // Probe accounting: every spawned probe reaches exactly one terminal
    // outcome (arrival, a drop, or continuation as child probes).
    EXPECT_EQ(r.stats.probes_spawned,
              r.stats.probes_arrived + r.stats.probes_dropped_total() +
                  r.stats.probes_forwarded);
    if (r.success) {
      // QoS soundness: reported QoS satisfies the request bound.
      EXPECT_TRUE(r.best.qos.within(req.qos_req));
      EXPECT_TRUE(r.best.evaluated);
      // Mapping soundness: functions match, peers alive.
      for (service::FnNode n = 0; n < r.best.pattern.node_count(); ++n) {
        EXPECT_EQ(r.best.mapping[n].function, r.best.pattern.function(n));
        EXPECT_TRUE(s->deployment->peer_alive(r.best.mapping[n].host));
      }
      // Backups ranked at or above the best's psi.
      for (const auto& b : r.backups) {
        EXPECT_GE(b.psi_cost + 1e-9, r.best.psi_cost);
      }
      // Hold hygiene: exactly the best graph's holds stay live.
      EXPECT_EQ(s->alloc->active_holds(), r.best_holds.size());
      for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
    }
    EXPECT_EQ(s->alloc->active_holds(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcpProperty,
                         ::testing::Values(5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace spider
