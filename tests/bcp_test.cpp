// Tests for the Bounded Composition Probing engine: success on feasible
// requests, budget sensitivity, QoS filtering, soft-hold hygiene, DAG and
// commutation handling, stats accounting.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/bcp.hpp"
#include "core/baselines.hpp"
#include "core/hold_keys.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

class BcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario();
    engine_ = std::make_unique<BcpEngine>(*scenario_->deployment,
                                          *scenario_->alloc,
                                          *scenario_->evaluator,
                                          scenario_->sim, BcpConfig{});
    rng_.reseed(5);
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<BcpEngine> engine_;
  Rng rng_{5};
};

TEST_F(BcpTest, ComposesFeasibleLinearRequest) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.best.mapping.size(), 3u);
  EXPECT_TRUE(r.best.evaluated);
  EXPECT_TRUE(r.best.qos.within(req.qos_req));
  EXPECT_GT(r.stats.probes_spawned, 0u);
  EXPECT_GT(r.stats.probe_messages, 0u);
  EXPECT_GT(r.stats.discovery_messages, 0u);
  EXPECT_GT(r.stats.setup_time_ms, 0.0);
  // Mapping respects function identity.
  for (service::FnNode n = 0; n < r.best.pattern.node_count(); ++n) {
    EXPECT_EQ(r.best.mapping[n].function, r.best.pattern.function(n));
  }
}

TEST_F(BcpTest, BestHoldsAreConfirmable) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.best_holds.empty());
  const SessionId session = scenario_->alloc->new_session_id();
  for (HoldId hold : r.best_holds) {
    EXPECT_TRUE(scenario_->alloc->confirm(hold, session));
  }
  scenario_->alloc->release_session(session);
}

TEST_F(BcpTest, NonBestHoldsAreReleased) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  // Only the best graph's holds remain live.
  EXPECT_EQ(scenario_->alloc->active_holds(), r.best_holds.size());
}

TEST_F(BcpTest, FailsOnImpossibleQos) {
  auto req = spider::testing::easy_request(*scenario_);
  req.qos_req = service::Qos::delay_loss(0.001, 0.0);  // unmeetable
  ComposeResult r = engine_->compose(req, rng_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(scenario_->alloc->active_holds(), 0u)
      << "failed compose must release every hold";
}

TEST_F(BcpTest, FailsOnUnknownFunction) {
  auto req = spider::testing::easy_request(*scenario_);
  scenario_->deployment->catalog().intern("fn/never-deployed");
  req.graph = service::make_linear_graph(
      {scenario_->deployment->catalog().find("fn/never-deployed")});
  ComposeResult r = engine_->compose(req, rng_);
  EXPECT_FALSE(r.success);
}

TEST_F(BcpTest, FailsWhenSourceDead) {
  auto req = spider::testing::easy_request(*scenario_);
  scenario_->deployment->kill_peer(req.source);
  ComposeResult r = engine_->compose(req, rng_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.stats.probes_spawned, 0u);
}

TEST_F(BcpTest, LargerBudgetExaminesMoreCandidates) {
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig small = engine_->config();
  small.probing_budget = 2;
  BcpConfig large = small;
  large.probing_budget = 128;

  engine_->set_config(small);
  ComposeResult rs = engine_->compose(req, rng_);
  // Release before re-running so availability is identical.
  for (HoldId h : rs.best_holds) scenario_->alloc->release_hold(h);
  engine_->set_config(large);
  ComposeResult rl = engine_->compose(req, rng_);
  for (HoldId h : rl.best_holds) scenario_->alloc->release_hold(h);

  EXPECT_GE(rl.stats.probes_spawned, rs.stats.probes_spawned);
  EXPECT_GE(rl.stats.candidates_merged, rs.stats.candidates_merged);
  if (rs.success && rl.success) {
    EXPECT_LE(rl.best.psi_cost, rs.best.psi_cost + 1e-9)
        << "a superset search cannot pick a worse best";
  }
}

TEST_F(BcpTest, BudgetBoundsMessages) {
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig config = engine_->config();
  config.probing_budget = 4;
  config.quota_policy = QuotaPolicy::kUniform;
  config.quota_base = 2;
  engine_->set_config(config);
  ComposeResult small = engine_->compose(req, rng_);
  // With a tiny budget the probe tree stays tiny: seeds * per-hop fanout
  // bounded by quota, depth = 3 functions + final leg.
  EXPECT_LE(small.stats.probes_spawned, 40u);
}

TEST_F(BcpTest, ComposesDagRequest) {
  const auto base = spider::testing::easy_request(*scenario_);
  service::CompositeRequest req = base;
  service::FunctionGraph g;
  g.add_function(base.graph.function(0));
  g.add_function(base.graph.function(1));
  g.add_function(base.graph.function(2));
  g.add_function(base.graph.function(0));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 3);
  g.add_dependency(2, 3);
  req.graph = g;
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.best.mapping.size(), 4u);
  // Merged mapping agrees across the shared entry/exit nodes by
  // construction; verify the hop set covers both branches.
  EXPECT_EQ(r.best.hops.size(), 1u + 4u + 1u);  // ingress + 4 edges + egress
}

TEST_F(BcpTest, CommutationFindsExchangedOrders) {
  auto req = spider::testing::easy_request(*scenario_);
  req.graph.add_commutation(1, 2);

  BcpConfig with = engine_->config();
  with.use_commutation = true;
  with.probing_budget = 64;
  engine_->set_config(with);
  ComposeResult r_with = engine_->compose(req, rng_);
  for (HoldId h : r_with.best_holds) scenario_->alloc->release_hold(h);

  BcpConfig without = with;
  without.use_commutation = false;
  engine_->set_config(without);
  ComposeResult r_without = engine_->compose(req, rng_);
  for (HoldId h : r_without.best_holds) scenario_->alloc->release_hold(h);

  ASSERT_TRUE(r_with.success);
  ASSERT_TRUE(r_without.success);
  // The commutation run explores a superset of orders.
  EXPECT_GE(r_with.stats.candidates_merged, r_without.stats.candidates_merged);
}

TEST_F(BcpTest, BackupsAreQualifiedAndDistinct) {
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig config = engine_->config();
  config.probing_budget = 128;
  engine_->set_config(config);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  for (const auto& backup : r.backups) {
    EXPECT_TRUE(backup.qos.within(req.qos_req));
    EXPECT_FALSE(backup.same_mapping(r.best));
    EXPECT_GE(backup.psi_cost + 1e-12, r.best.psi_cost)
        << "backups are ranked after the best";
  }
}

TEST_F(BcpTest, SoftHoldsPreventConcurrentOveradmission) {
  // Saturate capacity artificially so that only a few sessions fit, then
  // compose repeatedly without teardown: admitted sessions' grants plus
  // live holds must never exceed capacity (checked via peer_available
  // never going negative).
  auto req = spider::testing::easy_request(*scenario_);
  for (int i = 0; i < 10; ++i) {
    ComposeResult r = engine_->compose(req, rng_);
    if (!r.success) break;
    const SessionId session = scenario_->alloc->new_session_id();
    for (HoldId h : r.best_holds) scenario_->alloc->confirm(h, session);
  }
  for (PeerId p = 0; p < scenario_->deployment->peer_count(); ++p) {
    EXPECT_TRUE(scenario_->alloc->peer_available(p).non_negative())
        << "peer " << p;
  }
}

TEST_F(BcpTest, MinDelayObjectivePrefersFasterGraphs) {
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig config = engine_->config();
  config.probing_budget = 128;
  config.objective = SelectionObjective::kMinDelay;
  engine_->set_config(config);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
  // Backups are ranked by delay under this objective.
  for (const auto& b : r.backups) {
    EXPECT_GE(b.qos.delay_ms() + 1e-9, r.best.qos.delay_ms());
  }
}

TEST_F(BcpTest, CheckOnlyModeMakesNoReservations) {
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig config = engine_->config();
  config.soft_allocation = false;
  engine_->set_config(config);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.best_holds.empty());
  EXPECT_EQ(scenario_->alloc->active_holds(), 0u);
}

TEST_F(BcpTest, ConditionalMarkedGraphComposes) {
  // Conditional semantics are a runtime concern; composition provisions
  // every alternative, so a marked diamond must compose like a plain one.
  const auto base = spider::testing::easy_request(*scenario_);
  service::CompositeRequest req = base;
  service::FunctionGraph g;
  g.add_function(base.graph.function(0));
  g.add_function(base.graph.function(1));
  g.add_function(base.graph.function(2));
  g.add_function(base.graph.function(0));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 3);
  g.add_dependency(2, 3);
  g.mark_conditional(0);
  req.graph = g;
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.best.pattern.is_conditional(0));
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
}

TEST_F(BcpTest, QualityLevelMatchingFiltersCandidates) {
  // Deploy two fresh replicas of a new function: one accepts the source's
  // level, one demands more. Only the compatible one may ever be chosen.
  auto& deployment = *scenario_->deployment;
  const auto fn = deployment.catalog().intern("fn/leveled");

  service::ServiceComponent ok;
  ok.host = 5;
  ok.function = fn;
  ok.perf = service::Qos::delay_loss(10, 0);
  ok.required = service::Resources::cpu_mem(1, 1);
  ok.input_level = 1;
  ok.output_level = 3;
  deployment.deploy_component(ok);

  service::ServiceComponent demanding = ok;
  demanding.host = 9;
  demanding.input_level = 4;  // source stream (level 2) cannot feed it
  const auto demanding_id = deployment.deploy_component(demanding).id;

  service::CompositeRequest req;
  req.graph = service::make_linear_graph({fn});
  req.qos_req = service::Qos::delay_loss(100000.0, 1.0);
  req.source = 0;
  req.dest = 1;
  req.source_level = 2;
  req.min_dest_level = 3;

  for (int i = 0; i < 5; ++i) {
    ComposeResult r = engine_->compose(req, rng_);
    ASSERT_TRUE(r.success);
    EXPECT_FALSE(r.best.uses_component(demanding_id));
    EXPECT_GE(r.best.mapping[0].output_level, 3u);
    for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
  }

  // Raise the destination's bar beyond every replica: must fail.
  req.min_dest_level = 4;
  ComposeResult none = engine_->compose(req, rng_);
  EXPECT_FALSE(none.success);
}

TEST_F(BcpTest, StatsTimingOrdering) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.stats.probing_time_ms, r.stats.discovery_time_ms);
  EXPECT_GE(r.stats.setup_time_ms, r.stats.probing_time_ms);
}

TEST_F(BcpTest, ProbeAccountingIsExhaustive) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  // Every spawned probe ends in exactly one terminal outcome; candidate
  // skips are not probe drops and are tracked on their own.
  EXPECT_EQ(r.stats.probes_spawned,
            r.stats.probes_arrived + r.stats.probes_dropped_total() +
                r.stats.probes_forwarded);
  EXPECT_GT(r.stats.probes_arrived, 0u);
  EXPECT_GT(r.stats.holds_acquired, 0u);
}

// --------------------------------------------------------- quota policy

TEST_F(BcpTest, ReplicaProportionalQuotaHonorsQuotaBase) {
  BcpConfig config = engine_->config();
  config.quota_policy = QuotaPolicy::kReplicaProportional;
  config.max_quota = 100;

  // quota_base is the per-8 replica fraction: 8 probes every replica,
  // 4 (the default) probes half, 2 a quarter — always at least one.
  config.quota_base = 8;
  engine_->set_config(config);
  EXPECT_EQ(engine_->quota_for(1), 1);
  EXPECT_EQ(engine_->quota_for(10), 10);
  EXPECT_EQ(engine_->quota_for(100), 100);

  config.quota_base = 4;
  engine_->set_config(config);
  EXPECT_EQ(engine_->quota_for(1), 1);
  EXPECT_EQ(engine_->quota_for(9), 5);  // ceil(9/2), the seed default
  EXPECT_EQ(engine_->quota_for(10), 5);

  config.quota_base = 2;
  engine_->set_config(config);
  EXPECT_EQ(engine_->quota_for(10), 3);  // ceil(10/4)
  EXPECT_EQ(engine_->quota_for(1), 1);

  // The hard cap still applies.
  config.quota_base = 8;
  config.max_quota = 6;
  engine_->set_config(config);
  EXPECT_EQ(engine_->quota_for(100), 6);

  // Uniform policy keeps its meaning: α_k = quota_base.
  config.quota_policy = QuotaPolicy::kUniform;
  config.quota_base = 3;
  config.max_quota = 16;
  engine_->set_config(config);
  EXPECT_EQ(engine_->quota_for(1), 3);
  EXPECT_EQ(engine_->quota_for(1000), 3);
}

// ------------------------------------------------- hold-key regression

// The seed packed soft-hold dedup keys into a single uint64 with
// overlapping shift ranges; distinct tuples could alias, making the
// engine silently reuse a hold made for a *different* service link or
// component (under-reservation). These tests pin tuples that collided
// under the old packing and assert the struct keys keep them distinct.
TEST(HoldKeyRegression, PathTuplesCollidingUnderOldPackingStayDistinct) {
  // Seed: (from << 48) ^ (to << 32) ^ (src << 16) ^ dst. src overlaps dst
  // whenever dst >= 2^16.
  auto old_key = [](std::uint64_t from, std::uint64_t to, std::uint64_t src,
                    std::uint64_t dst) {
    return (from << 48) ^ (to << 32) ^ (src << 16) ^ dst;
  };
  const SharedPathKey a{2, 3, 1, 0};
  const SharedPathKey b{2, 3, 0, 1u << 16};
  ASSERT_EQ(old_key(a.from, a.to, a.src, a.dst),
            old_key(b.from, b.to, b.src, b.dst))
      << "tuples must collide under the old packing for this regression "
         "test to be meaningful";
  EXPECT_FALSE(a == b);

  std::unordered_map<SharedPathKey, HoldId, SharedPathKeyHash> holds;
  holds.emplace(a, HoldId(1));
  holds.emplace(b, HoldId(2));
  ASSERT_EQ(holds.size(), 2u) << "distinct paths must map to distinct holds";
  EXPECT_EQ(holds.at(a), HoldId(1));
  EXPECT_EQ(holds.at(b), HoldId(2));
}

TEST(HoldKeyRegression, PeerTuplesCollidingUnderOldPackingStayDistinct) {
  // Seed: (node << 48) ^ component. ComponentId packs (host << 32) |
  // local, so any host >= 2^16 reaches into the node bits.
  auto old_key = [](std::uint64_t node, std::uint64_t comp) {
    return (node << 48) ^ comp;
  };
  const SharedPeerKey a{1, 0};
  const SharedPeerKey b{0, std::uint64_t(1) << 48};
  ASSERT_EQ(old_key(a.node, a.component), old_key(b.node, b.component));
  EXPECT_FALSE(a == b);

  std::unordered_map<SharedPeerKey, HoldId, SharedPeerKeyHash> holds;
  holds.emplace(a, HoldId(1));
  holds.emplace(b, HoldId(2));
  ASSERT_EQ(holds.size(), 2u)
      << "distinct components must map to distinct holds";
  EXPECT_EQ(holds.at(a), HoldId(1));
  EXPECT_EQ(holds.at(b), HoldId(2));
}

TEST(HoldKeyRegression, HoldCoverNodeAndEdgeNamespacesAreDisjoint) {
  // node(n) and edge(0, n) carried identical bits in several old
  // packings; the kind tag now separates the namespaces.
  const HoldCoverKey node = HoldCoverKey::node(5);
  const HoldCoverKey edge = HoldCoverKey::edge(0, 5);
  EXPECT_FALSE(node == edge);
  std::unordered_map<HoldCoverKey, HoldId, HoldCoverKeyHash> by_key;
  by_key.emplace(node, HoldId(1));
  by_key.emplace(edge, HoldId(2));
  EXPECT_EQ(by_key.size(), 2u);
}

}  // namespace
}  // namespace spider::core
