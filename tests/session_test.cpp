// Tests for SessionManager: establishment/confirmation, Eq. 2 backup
// sizing, §5.2 backup selection policy, failure recovery paths
// (backup switch, reactive BCP, loss), and maintenance.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

using service::ServiceGraph;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario(/*seed=*/17, /*peers=*/64);
    BcpConfig config;
    config.probing_budget = 128;
    engine_ = std::make_unique<BcpEngine>(*scenario_->deployment,
                                          *scenario_->alloc,
                                          *scenario_->evaluator,
                                          scenario_->sim, config);
    RecoveryConfig recovery;
    // Generous QoS margins would make Eq. 2 prescribe zero backups; scale
    // the margin so the switch/maintenance paths have backups to exercise.
    recovery.backup_aggressiveness = 30.0;
    manager_ = std::make_unique<SessionManager>(
        *scenario_->deployment, *scenario_->alloc, *scenario_->evaluator,
        *engine_, scenario_->sim, recovery);
    rng_.reseed(23);
  }

  SessionId compose_and_establish(const service::CompositeRequest& req) {
    ComposeResult r = engine_->compose(req, rng_);
    if (!r.success) return kInvalidSession;
    return manager_->establish(req, std::move(r));
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<BcpEngine> engine_;
  std::unique_ptr<SessionManager> manager_;
  Rng rng_{23};
};

TEST_F(SessionTest, EstablishConfirmsResources) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  EXPECT_EQ(manager_->active_sessions(), 1u);
  EXPECT_GT(scenario_->alloc->active_grants(), 0u);
  EXPECT_EQ(scenario_->alloc->active_holds(), 0u)
      << "all holds converted or released after establish";
  manager_->teardown(id);
  EXPECT_EQ(manager_->active_sessions(), 0u);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u);
}

TEST_F(SessionTest, BackupCountFollowsEq2Shape) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);

  // Comfortable margins -> small gamma; tight margins -> larger gamma.
  service::CompositeRequest generous = req;
  generous.qos_req = service::Qos::delay_loss(r.best.qos.delay_ms() * 100.0, 10.0);
  generous.max_failure_prob = 1.0;
  const int g1 = manager_->backup_count(r.best, generous, 100);

  service::CompositeRequest tight = req;
  tight.qos_req = service::Qos::delay_loss(r.best.qos.delay_ms() * 1.05,
                                           r.best.qos.loss_log() + 1.0);
  tight.max_failure_prob = std::max(r.best.failure_prob, 1e-6);
  const int g2 = manager_->backup_count(r.best, tight, 100);

  EXPECT_LE(g1, g2);
  EXPECT_GE(g1, 0);
  // Bounded by U and C-1.
  EXPECT_LE(g2, RecoveryConfig{}.backup_upper_bound);
  EXPECT_EQ(manager_->backup_count(r.best, tight, 1), 0)
      << "gamma <= C-1";
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
}

TEST_F(SessionTest, SelectBackupsAvoidsTargetComponents) {
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  ASSERT_GE(r.backups.size(), 2u);

  auto selected = SessionManager::select_backups(r.best, r.backups, 2);
  EXPECT_LE(selected.size(), 2u);
  ASSERT_FALSE(selected.empty());
  // The first selection (covering the most failure-prone component) must
  // not use that component.
  service::ComponentId worst = r.best.mapping[0].id;
  double worst_fail = r.best.mapping[0].failure_prob;
  for (const auto& m : r.best.mapping) {
    if (m.failure_prob > worst_fail) {
      worst = m.id;
      worst_fail = m.failure_prob;
    }
  }
  bool some_avoids_worst = false;
  for (const auto& b : selected) {
    if (!b.uses_component(worst)) some_avoids_worst = true;
  }
  EXPECT_TRUE(some_avoids_worst);
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
}

TEST_F(SessionTest, SelectBackupsPrefersOverlap) {
  // Construct a synthetic pool: one graph overlapping in 2 components,
  // one fully disjoint; for single-component coverage the overlapping one
  // must win (fast switchover preference).
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);

  // The policy covers the highest-failure component first, so build the
  // overlapping candidate by swapping exactly that component out.
  service::FnNode worst_node = 0;
  for (service::FnNode n = 1; n < r.best.pattern.node_count(); ++n) {
    if (r.best.mapping[n].failure_prob >
        r.best.mapping[worst_node].failure_prob) {
      worst_node = n;
    }
  }
  ServiceGraph overlapping = r.best;
  const auto fn = overlapping.pattern.function(worst_node);
  for (auto id : scenario_->deployment->replicas_oracle(fn)) {
    if (id != overlapping.mapping[worst_node].id &&
        scenario_->deployment->component_alive(id)) {
      overlapping.mapping[worst_node] =
          service::ComponentMetadata::from(scenario_->deployment->component(id));
      break;
    }
  }
  ASSERT_FALSE(overlapping.same_mapping(r.best));

  ServiceGraph disjoint = r.best;
  for (service::FnNode n = 0; n < disjoint.pattern.node_count(); ++n) {
    for (auto id :
         scenario_->deployment->replicas_oracle(disjoint.pattern.function(n))) {
      if (!r.best.uses_component(id) &&
          scenario_->deployment->component_alive(id)) {
        disjoint.mapping[n] =
            service::ComponentMetadata::from(scenario_->deployment->component(id));
        break;
      }
    }
  }

  auto selected = SessionManager::select_backups(
      r.best, {disjoint, overlapping}, 1);
  ASSERT_EQ(selected.size(), 1u);
  // The target to avoid is best.mapping[x] for some x; `overlapping`
  // avoids mapping[0] with overlap 2, `disjoint` avoids it with overlap 0.
  EXPECT_TRUE(selected[0].same_mapping(overlapping));
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
}

TEST_F(SessionTest, PeerFailureTriggersBackupSwitch) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const ServiceGraph* active = manager_->active_graph(id);
  ASSERT_NE(active, nullptr);
  if (manager_->backup_count_of(id) == 0) {
    GTEST_SKIP() << "no backups selected for this seed";
  }
  const PeerId victim = active->mapping[0].host;
  scenario_->deployment->kill_peer(victim);
  auto outcomes = manager_->on_peer_failed(victim, rng_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0] == RecoveryOutcome::kSwitchedToBackup ||
              outcomes[0] == RecoveryOutcome::kReactiveRecovered);
  const ServiceGraph* now = manager_->active_graph(id);
  ASSERT_NE(now, nullptr);
  EXPECT_FALSE(now->uses_peer(victim));
  EXPECT_EQ(manager_->stats().breaks, 1u);
}

TEST_F(SessionTest, UnaffectedSessionsAreNotTouched)  {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const ServiceGraph* active = manager_->active_graph(id);
  // Kill a peer the active graph does not use.
  PeerId victim = overlay::kInvalidPeer;
  for (PeerId p = 0; p < scenario_->deployment->peer_count(); ++p) {
    if (!active->uses_peer(p) && p != req.source && p != req.dest) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, overlay::kInvalidPeer);
  scenario_->deployment->kill_peer(victim);
  auto outcomes = manager_->on_peer_failed(victim, rng_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], RecoveryOutcome::kNotAffected);
  EXPECT_EQ(manager_->stats().breaks, 0u);
}

TEST_F(SessionTest, ReactiveRecoveryWhenProactiveDisabled) {
  RecoveryConfig config;
  config.proactive = false;
  SessionManager reactive_mgr(*scenario_->deployment, *scenario_->alloc,
                              *scenario_->evaluator, *engine_, scenario_->sim,
                              config);
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  const SessionId id = reactive_mgr.establish(req, std::move(r));
  ASSERT_NE(id, kInvalidSession);
  EXPECT_EQ(reactive_mgr.backup_count_of(id), 0u);

  const PeerId victim = reactive_mgr.active_graph(id)->mapping[0].host;
  scenario_->deployment->kill_peer(victim);
  auto outcomes = reactive_mgr.on_peer_failed(victim, rng_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0] == RecoveryOutcome::kReactiveRecovered ||
              outcomes[0] == RecoveryOutcome::kLost);
  EXPECT_EQ(reactive_mgr.stats().backup_switches, 0u);
}

TEST_F(SessionTest, MaintenancePrunesDeadBackups) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const std::size_t before = manager_->backup_count_of(id);
  if (before == 0) GTEST_SKIP() << "no backups for this seed";
  manager_->run_maintenance();
  EXPECT_GT(manager_->stats().maintenance_messages, 0u);
  // Backups survive maintenance while everything is alive.
  EXPECT_GE(manager_->backup_count_of(id), 1u);
}

TEST_F(SessionTest, MonitoringDetectsFailuresWithoutOracle) {
  // Kill a peer WITHOUT notifying the manager; the periodic monitoring
  // pass must detect the break and recover on its own.
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const ServiceGraph* active = manager_->active_graph(id);
  ASSERT_NE(active, nullptr);
  const PeerId victim = active->mapping[0].host;
  scenario_->deployment->kill_peer(victim);  // no on_peer_failed call

  const auto before_msgs = manager_->stats().maintenance_messages;
  auto outcomes = manager_->monitor_active_sessions(rng_);
  EXPECT_GT(manager_->stats().maintenance_messages, before_msgs)
      << "monitoring costs liveness probes";
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_NE(outcomes[0], RecoveryOutcome::kNotAffected);
  if (manager_->active_graph(id) != nullptr) {
    EXPECT_FALSE(manager_->active_graph(id)->uses_peer(victim));
  }
  // A second pass with nothing broken triggers no recoveries.
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
}

TEST_F(SessionTest, AvgBackupStatisticTracked) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  EXPECT_EQ(manager_->stats().backup_count_samples, 1u);
  EXPECT_GE(manager_->stats().avg_backups(), 0.0);
}

// ---- lifecycle state machine, control legs, leases, anti-entropy --------

TEST_F(SessionTest, StateIsActiveWhileLiveAndTornDownAfter) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  EXPECT_EQ(manager_->session_state(id), SessionState::kActive);
  manager_->teardown(id);
  EXPECT_EQ(manager_->session_state(id), SessionState::kTornDown);
  EXPECT_EQ(manager_->session_state(SessionId{999999}),
            SessionState::kTornDown)
      << "unknown sessions read as terminal";
}

TEST_F(SessionTest, TotalLossAbortsEstablishCleanly) {
  // Every control message dies: the confirm leg's request never arrives,
  // so the establishment aborts and nothing is left granted (the peers
  // never converted their holds).
  const auto model = fault::LinkFaultModel::uniform_loss(1.0);
  manager_->set_fault_model(&model);
  auto req = spider::testing::easy_request(*scenario_);
  ComposeResult r = engine_->compose(req, rng_);
  ASSERT_TRUE(r.success);
  const SessionId id = manager_->establish(req, std::move(r));
  EXPECT_EQ(id, kInvalidSession);
  EXPECT_EQ(manager_->stats().confirms_lost, 1u);
  EXPECT_GT(manager_->stats().ctrl_retransmits, 0u);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u);
  EXPECT_EQ(manager_->active_sessions(), 0u);
}

TEST_F(SessionTest, LostTeardownStrandsGrantsUntilAuditReclaims) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  ASSERT_GT(scenario_->alloc->active_grants(), 0u);

  // The network dies just before teardown: the message never arrives.
  const auto model = fault::LinkFaultModel::uniform_loss(1.0);
  manager_->set_fault_model(&model);
  manager_->teardown(id);
  EXPECT_EQ(manager_->active_sessions(), 0u) << "the source forgets anyway";
  EXPECT_EQ(manager_->stats().teardowns_lost, 1u);
  EXPECT_GT(scenario_->alloc->active_grants(), 0u) << "grants stranded";

  // Anti-entropy: the audit sees grants with no live session and reclaims.
  const auto report = manager_->audit();
  EXPECT_EQ(report.orphan_sessions, 1u);
  EXPECT_TRUE(report.conserved);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u);
  EXPECT_EQ(manager_->stats().orphans_reclaimed, 1u);
}

TEST_F(SessionTest, SourceCrashOrphansAreReclaimedByAudit) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const PeerId source = manager_->active_graph(id)->source;

  scenario_->deployment->kill_peer(source);
  EXPECT_EQ(manager_->on_source_crashed(source), 1u);
  EXPECT_EQ(manager_->active_sessions(), 0u);
  EXPECT_EQ(manager_->stats().source_crashes, 1u);
  EXPECT_GT(scenario_->alloc->active_grants(), 0u)
      << "a crashed source cannot tear down";

  const auto report = manager_->audit();
  EXPECT_EQ(report.orphan_sessions, 1u);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u);
}

TEST_F(SessionTest, LeaseExpiryReclaimsAndKillsTheSession) {
  scenario_->alloc->set_lease_ttl_ms(50.0);
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  ASSERT_TRUE(scenario_->alloc->lease_renew_by(id).has_value());

  // Nobody renews for 200ms (> ttl): the lease lapses; the audit reclaims
  // the grants and tears the zombie session down.
  scenario_->sim.schedule_at(200.0, [] {});
  scenario_->sim.run();
  const auto report = manager_->audit();
  EXPECT_EQ(report.leases_reclaimed, 1u);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u);
  EXPECT_EQ(manager_->active_sessions(), 0u);
  EXPECT_EQ(manager_->session_state(id), SessionState::kTornDown);
}

TEST_F(SessionTest, MaintenanceRenewalKeepsLeaseAlive) {
  scenario_->alloc->set_lease_ttl_ms(500.0);
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);

  // Renew every 200ms for 2s — well past the naked ttl.
  for (int i = 1; i <= 10; ++i) {
    scenario_->sim.schedule_at(double(i) * 200.0, [] {});
    scenario_->sim.run();
    manager_->run_maintenance();
  }
  EXPECT_GE(manager_->stats().lease_renew_messages, 10u);
  const auto report = manager_->audit();
  EXPECT_EQ(report.leases_reclaimed, 0u);
  EXPECT_EQ(manager_->active_sessions(), 1u);
  EXPECT_EQ(manager_->session_state(id), SessionState::kActive);
  EXPECT_TRUE(report.conserved);
}

TEST_F(SessionTest, AuditConservationHoldsOnHealthySessions) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId a = compose_and_establish(req);
  const SessionId b = compose_and_establish(req);
  ASSERT_NE(a, kInvalidSession);
  ASSERT_NE(b, kInvalidSession);
  const auto report = manager_->audit();
  EXPECT_TRUE(report.conserved);
  EXPECT_EQ(report.orphan_sessions, 0u);
  EXPECT_EQ(report.leases_reclaimed, 0u);
}

TEST_F(SessionTest, PeriodicAuditRunsOnTheSimulator) {
  auto req = spider::testing::easy_request(*scenario_);
  const SessionId id = compose_and_establish(req);
  ASSERT_NE(id, kInvalidSession);
  const PeerId source = manager_->active_graph(id)->source;
  scenario_->deployment->kill_peer(source);
  manager_->on_source_crashed(source);
  ASSERT_GT(scenario_->alloc->active_grants(), 0u);

  manager_->enable_periodic_audit(100.0);
  scenario_->sim.run_until(1000.0);
  EXPECT_EQ(scenario_->alloc->active_grants(), 0u)
      << "the periodic audit reclaimed the crashed source's orphan";
  manager_->enable_periodic_audit(0.0);  // disarm before teardown
}

}  // namespace
}  // namespace spider::core
