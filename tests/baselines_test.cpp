// Tests for the baseline composers: optimal exhaustiveness, random/static
// behaviour, centralized staleness semantics, and the optimality property
// that BCP can never beat the optimal composer.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/baselines.hpp"
#include "core/bcp.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario();
    request_ = spider::testing::easy_request(*scenario_);
    optimal_ = std::make_unique<OptimalComposer>(
        *scenario_->deployment, *scenario_->alloc, *scenario_->evaluator);
  }

  std::unique_ptr<workload::Scenario> scenario_;
  service::CompositeRequest request_;
  std::unique_ptr<OptimalComposer> optimal_;
};

TEST_F(BaselinesTest, OptimalExaminesFullCrossProduct) {
  BaselineResult r = optimal_->compose(request_);
  ASSERT_TRUE(r.success);
  std::size_t expected = 1;
  for (service::FnNode n = 0; n < request_.graph.node_count(); ++n) {
    std::size_t live = 0;
    for (auto id :
         scenario_->deployment->replicas_oracle(request_.graph.function(n))) {
      live += scenario_->deployment->component_alive(id) ? 1 : 0;
    }
    expected *= live;
  }
  EXPECT_EQ(r.candidates_examined, expected);
  EXPECT_EQ(r.messages, expected) << "flooding cost = candidate count";
}

TEST_F(BaselinesTest, OptimalPicksMinimumPsi) {
  BaselineResult r = optimal_->compose(request_, Objective::kMinPsi);
  ASSERT_TRUE(r.success);
  for (const auto& other : r.backups) {
    EXPECT_GE(other.psi_cost + 1e-12, r.best.psi_cost);
  }
}

TEST_F(BaselinesTest, OptimalMinDelayObjective) {
  BaselineResult r = optimal_->compose(request_, Objective::kMinDelay);
  ASSERT_TRUE(r.success);
  for (const auto& other : r.backups) {
    EXPECT_GE(other.qos.delay_ms() + 1e-9, r.best.qos.delay_ms());
  }
}

TEST_F(BaselinesTest, BcpNeverBeatsOptimal) {
  // Property: for the same state, BCP's best ψ >= optimal's best ψ.
  BaselineResult opt = optimal_->compose(request_, Objective::kMinPsi);
  ASSERT_TRUE(opt.success);
  BcpEngine bcp(*scenario_->deployment, *scenario_->alloc,
                *scenario_->evaluator, scenario_->sim, BcpConfig{});
  Rng rng(3);
  ComposeResult r = bcp.compose(request_, rng);
  ASSERT_TRUE(r.success);
  for (HoldId h : r.best_holds) scenario_->alloc->release_hold(h);
  EXPECT_GE(r.best.psi_cost + 1e-9, opt.best.psi_cost);
}

TEST_F(BaselinesTest, RandomProducesValidButBlindGraphs) {
  RandomComposer random(*scenario_->deployment, *scenario_->evaluator);
  Rng rng(7);
  BaselineResult r = random.compose(request_, rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.best.mapping.size(), request_.graph.node_count());
  for (service::FnNode n = 0; n < request_.graph.node_count(); ++n) {
    EXPECT_EQ(r.best.mapping[n].function, request_.graph.function(n));
  }
  EXPECT_EQ(r.messages, request_.graph.node_count());
}

TEST_F(BaselinesTest, RandomVariesAcrossDraws) {
  RandomComposer random(*scenario_->deployment, *scenario_->evaluator);
  Rng rng(11);
  std::set<std::string> mappings;
  for (int i = 0; i < 12; ++i) {
    BaselineResult r = random.compose(request_, rng);
    ASSERT_TRUE(r.success);
    std::string sig;
    for (const auto& m : r.best.mapping) sig += std::to_string(m.id) + ",";
    mappings.insert(sig);
  }
  EXPECT_GT(mappings.size(), 1u);
}

TEST_F(BaselinesTest, StaticIsDeterministic) {
  StaticComposer st(*scenario_->deployment, *scenario_->evaluator);
  BaselineResult a = st.compose(request_);
  BaselineResult b = st.compose(request_);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_TRUE(a.best.same_mapping(b.best));
}

TEST_F(BaselinesTest, StaticFailsWhenPredefinedComponentDies) {
  StaticComposer st(*scenario_->deployment, *scenario_->evaluator);
  BaselineResult a = st.compose(request_);
  ASSERT_TRUE(a.success);
  scenario_->deployment->kill_peer(a.best.mapping[0].host);
  BaselineResult b = st.compose(request_);
  EXPECT_FALSE(b.success) << "static choice is not failure-aware";
}

TEST_F(BaselinesTest, CentralizedUsesStaleSnapshot) {
  CentralizedComposer central(*scenario_->deployment, *scenario_->alloc,
                              *scenario_->evaluator);
  central.refresh();
  BaselineResult fresh = central.compose(request_);
  ASSERT_TRUE(fresh.success);

  // Exhaust the chosen peers AFTER the refresh; the stale snapshot still
  // believes they are free, so the centralized pick does not change.
  for (const auto& meta : fresh.best.mapping) {
    const auto avail = scenario_->alloc->peer_available(meta.host);
    scenario_->alloc->soft_reserve_peer(meta.host, avail, 1e12);
  }
  BaselineResult stale = central.compose(request_);
  ASSERT_TRUE(stale.success);
  EXPECT_TRUE(stale.best.same_mapping(fresh.best))
      << "decision must be based on the stale snapshot";
  // Reality disagrees: admission of the stale choice must fail now.
  EXPECT_FALSE(
      scenario_->evaluator->resource_feasible(stale.best, request_));

  // After a refresh the centralized composer sees the truth again.
  central.refresh();
  BaselineResult refreshed = central.compose(request_);
  if (refreshed.success) {
    EXPECT_FALSE(refreshed.best.same_mapping(fresh.best));
  }
}

TEST_F(BaselinesTest, CentralizedCountsMaintenanceMessages) {
  CentralizedComposer central(*scenario_->deployment, *scenario_->alloc,
                              *scenario_->evaluator);
  EXPECT_EQ(central.maintenance_messages(), 0u);
  central.refresh();
  const auto live = scenario_->deployment->live_peers().size();
  EXPECT_EQ(central.maintenance_messages(), live);
  central.refresh();
  EXPECT_EQ(central.maintenance_messages(), 2 * live);
}

}  // namespace
}  // namespace spider::core
