// Tests for the multithreaded streaming runtime: queue semantics under
// concurrency, transform correctness, pipeline execution over chains and
// DAGs, backpressure and shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/bounded_queue.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/transforms.hpp"

namespace spider::runtime {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, BlockingProducerConsumer) {
  BoundedQueue<int> q(2);
  constexpr int kItems = 2000;
  std::atomic<long> sum{0};
  std::thread consumer([&] {
    while (auto v = q.pop()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.push(i);
    q.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), long(kItems) * (kItems + 1) / 2);
}

TEST(BoundedQueue, MultipleConsumersSeeAllItems) {
  BoundedQueue<int> q(8);
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) ++count;
    });
  }
  for (int i = 0; i < 500; ++i) q.push(i);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(count.load(), 500);
}

TEST(Transforms, UpScaleDoubles) {
  Frame f = make_test_frame(0, 8, 6);
  Frame out = up_scale(f);
  EXPECT_EQ(out.width, 16u);
  EXPECT_EQ(out.height, 12u);
  // Nearest neighbor: each 2x2 block replicates the source pixel.
  EXPECT_EQ(out.at(0, 0), f.at(0, 0));
  EXPECT_EQ(out.at(1, 1), f.at(0, 0));
  EXPECT_EQ(out.at(15, 11), f.at(7, 5));
}

TEST(Transforms, DownScaleHalves) {
  Frame f = make_test_frame(1, 8, 8);
  Frame out = down_scale(f);
  EXPECT_EQ(out.width, 4u);
  EXPECT_EQ(out.height, 4u);
  // Box filter of the top-left 2x2.
  const std::uint32_t expect =
      (f.at(0, 0) + f.at(1, 0) + f.at(0, 1) + f.at(1, 1)) / 4;
  EXPECT_EQ(out.at(0, 0), expect);
}

TEST(Transforms, UpThenDownRestoresSize) {
  Frame f = make_test_frame(2, 10, 10);
  Frame out = down_scale(up_scale(f));
  EXPECT_EQ(out.width, 10u);
  EXPECT_EQ(out.height, 10u);
}

TEST(Transforms, SubImageCrops) {
  Frame f = make_test_frame(3, 16, 12);
  Frame out = sub_image(f);
  EXPECT_EQ(out.width, 8u);
  EXPECT_EQ(out.height, 6u);
  // Center crop: offset (4, 3).
  EXPECT_EQ(out.at(0, 0), f.at(4, 3));
}

TEST(Transforms, ReQuantifyCoarsens) {
  Frame f = make_test_frame(4, 8, 8);
  Frame out = re_quantify(f);
  EXPECT_EQ(out.quant, 2u);
  for (std::uint32_t y = 0; y < out.height; ++y) {
    for (std::uint32_t x = 0; x < out.width; ++x) {
      EXPECT_EQ(out.at(x, y) % 2, 0u);
    }
  }
  Frame again = re_quantify(out);
  EXPECT_EQ(again.quant, 4u);
}

TEST(Transforms, TickersAnnotateAndPreserveSize) {
  Frame f = make_test_frame(5, 32, 24);
  Frame w = weather_ticker(f);
  EXPECT_EQ(w.width, 32u);
  ASSERT_EQ(w.annotations.size(), 1u);
  EXPECT_EQ(w.annotations[0].substr(0, 8), "weather:");
  Frame sw = stock_ticker(std::move(w));
  ASSERT_EQ(sw.annotations.size(), 2u);
  EXPECT_EQ(sw.annotations[1].substr(0, 6), "stock:");
}

TEST(Transforms, ChecksumDetectsChanges) {
  Frame a = make_test_frame(6, 8, 8);
  Frame b = a;
  EXPECT_EQ(frame_checksum(a), frame_checksum(b));
  b.at(3, 3) ^= 0xff;
  EXPECT_NE(frame_checksum(a), frame_checksum(b));
}

TEST(Transforms, StandardRegistryHasAllSix) {
  const TransformRegistry reg = TransformRegistry::standard();
  EXPECT_EQ(reg.names().size(), 6u);
  for (const char* name :
       {"media/weather-ticker", "media/stock-ticker", "media/up-scale",
        "media/down-scale", "media/sub-image", "media/re-quantify"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(Pipeline, LinearChainDeliversAllFrames) {
  service::FunctionGraph g = service::make_linear_graph({0, 1, 2});
  const TransformRegistry reg = TransformRegistry::standard();
  PipelineConfig config;
  config.frame_count = 50;
  config.width = 32;
  config.height = 24;
  StreamingPipeline pipeline(
      g, {"media/stock-ticker", "media/down-scale", "media/re-quantify"}, reg,
      config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_in, 50u);
  EXPECT_EQ(report.frames_out, 50u);
  EXPECT_EQ(report.out_width, 16u);
  EXPECT_EQ(report.out_height, 12u);
  EXPECT_EQ(report.out_quant, 2u);
  ASSERT_EQ(report.annotations.size(), 1u);
  for (std::size_t c : report.processed) EXPECT_EQ(c, 50u);
  EXPECT_GT(report.throughput_fps, 0.0);
  EXPECT_GT(report.mean_latency_us, 0.0);
}

TEST(Pipeline, DagJoinMergesAnnotations) {
  // 0 -> {1, 2} -> 3: both tickers run in parallel branches; the join
  // node receives one ADU per input and merges annotations.
  service::FunctionGraph g;
  for (int i = 0; i < 4; ++i) g.add_function(service::FunctionId(i));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 3);
  g.add_dependency(2, 3);
  const TransformRegistry reg = TransformRegistry::standard();
  PipelineConfig config;
  config.frame_count = 30;
  StreamingPipeline pipeline(g,
                             {"media/down-scale", "media/stock-ticker",
                              "media/weather-ticker", "media/re-quantify"},
                             reg, config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 30u);
  // Both tickers' annotations must be present on delivered frames.
  ASSERT_EQ(report.annotations.size(), 2u);
}

TEST(Pipeline, TinyQueuesStillComplete) {
  // Backpressure path: capacity 1 queues force constant blocking.
  service::FunctionGraph g = service::make_linear_graph({0, 1, 2, 3});
  const TransformRegistry reg = TransformRegistry::standard();
  PipelineConfig config;
  config.frame_count = 200;
  config.queue_capacity = 1;
  config.width = 16;
  config.height = 16;
  StreamingPipeline pipeline(g,
                             {"media/up-scale", "media/down-scale",
                              "media/sub-image", "media/re-quantify"},
                             reg, config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 200u);
}

TEST(Pipeline, ConditionalSplitRoutesEachFrameOnce) {
  // 0 (conditional) -> {1, 2} -> 3: each frame takes exactly one branch;
  // the join consumes from any input, so every frame is delivered exactly
  // once and branch work splits roughly in half.
  service::FunctionGraph g;
  for (int i = 0; i < 4; ++i) g.add_function(service::FunctionId(i));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 3);
  g.add_dependency(2, 3);
  g.mark_conditional(0);

  PipelineConfig config;
  config.frame_count = 100;
  StreamingPipeline pipeline(g,
                             {"media/down-scale", "media/stock-ticker",
                              "media/weather-ticker", "media/re-quantify"},
                             TransformRegistry::standard(), config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 100u);
  // The two branches share the frames (sequence parity dispatch -> 50/50).
  EXPECT_EQ(report.processed[1] + report.processed[2], 100u);
  EXPECT_EQ(report.processed[1], 50u);
  EXPECT_EQ(report.processed[2], 50u);
  // Each delivered frame saw exactly ONE ticker, not both.
  ASSERT_EQ(report.annotations.size(), 1u);
  EXPECT_EQ(report.processed[3], 100u);
}

TEST(Pipeline, ConditionalThreeWaySplit) {
  service::FunctionGraph g;
  for (int i = 0; i < 5; ++i) g.add_function(service::FunctionId(i));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(0, 3);
  g.add_dependency(1, 4);
  g.add_dependency(2, 4);
  g.add_dependency(3, 4);
  g.mark_conditional(0);
  PipelineConfig config;
  config.frame_count = 90;
  StreamingPipeline pipeline(
      g,
      {"media/re-quantify", "media/stock-ticker", "media/weather-ticker",
       "media/sub-image", "media/down-scale"},
      TransformRegistry::standard(), config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 90u);
  EXPECT_EQ(report.processed[1], 30u);
  EXPECT_EQ(report.processed[2], 30u);
  EXPECT_EQ(report.processed[3], 30u);
}

TEST(PipelineDeath, MixedJoinInputsRejected) {
  // 0 (conditional) -> {1, 2}; join 4 takes branch-restricted inputs from
  // 1 and 2 plus a full-flow input from 3 — no consistent join rule.
  service::FunctionGraph g;
  for (int i = 0; i < 5; ++i) g.add_function(service::FunctionId(i));
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 4);
  g.add_dependency(2, 4);
  g.add_dependency(3, 4);
  g.mark_conditional(0);
  PipelineConfig config;
  EXPECT_DEATH(StreamingPipeline(g,
                                 {"media/stock-ticker", "media/weather-ticker",
                                  "media/re-quantify", "media/sub-image",
                                  "media/down-scale"},
                                 TransformRegistry::standard(), config),
               "mixed conditional");
}

TEST(Pipeline, EdgeDelaysAddLatencyNotOccupancy) {
  // Simulated transit latency must show up in per-frame latency while
  // leaving throughput pipelined: total wall time stays far below
  // frames x latency.
  service::FunctionGraph g = service::make_linear_graph({0, 1, 2});
  PipelineConfig config;
  config.frame_count = 40;
  config.width = 16;
  config.height = 16;
  config.queue_capacity = 16;
  config.ingress_delay_ms = 5.0;
  config.edge_delay_ms = {10.0, 10.0};  // two dependency edges
  StreamingPipeline pipeline(
      g, {"media/stock-ticker", "media/sub-image", "media/re-quantify"},
      TransformRegistry::standard(), config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 40u);
  // End-to-end latency at least the summed transit (25 ms = 25000 us).
  EXPECT_GE(report.mean_latency_us, 25000.0);
  // Pipelining: 40 frames x 25 ms serialized would be 1000 ms; the
  // pipeline overlaps transit, so wall time stays well under half that.
  EXPECT_LT(report.wall_time_ms, 500.0);
}

TEST(Pipeline, PacedSourceRespectsRate) {
  service::FunctionGraph g = service::make_linear_graph({0});
  const TransformRegistry reg = TransformRegistry::standard();
  PipelineConfig config;
  config.frame_count = 20;
  config.fps = 1000.0;  // 1ms per frame -> >= 20ms total
  StreamingPipeline pipeline(g, {"media/re-quantify"}, reg, config);
  PipelineReport report = pipeline.run();
  EXPECT_EQ(report.frames_out, 20u);
  EXPECT_GE(report.wall_time_ms, 18.0);
}

}  // namespace
}  // namespace spider::runtime
