// Tests for the composite-request specification parser.
#include <gtest/gtest.h>

#include "service/request_spec.hpp"

namespace spider::service {
namespace {

constexpr const char* kFullSpec = R"(
# a collaborative analysis experiment
edges: ingest -> denoise -> report
edges: ingest -> calibrate -> report
commute: denoise ~ calibrate
conditional: ingest
delay: 2000
loss: 0.05
bandwidth: 300
failure: 0.2
source-level: 2
dest-level: 1
)";

TEST(RequestSpec, ParsesFullSpec) {
  FunctionCatalog catalog;
  std::string error;
  auto parsed = parse_request_spec(kFullSpec, catalog, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const auto& req = parsed->request;
  EXPECT_EQ(req.graph.node_count(), 4u);
  EXPECT_EQ(req.graph.dependencies().size(), 4u);
  EXPECT_EQ(req.graph.commutations().size(), 1u);
  EXPECT_TRUE(req.graph.is_dag());
  EXPECT_FALSE(req.graph.is_linear());
  EXPECT_EQ(parsed->function_names,
            (std::vector<std::string>{"ingest", "denoise", "report",
                                      "calibrate"}));
  // Conditional mark on the ingest node (index 0).
  EXPECT_TRUE(req.graph.is_conditional(0));
  // QoS and resource bounds.
  EXPECT_DOUBLE_EQ(req.qos_req.delay_ms(), 2000.0);
  EXPECT_NEAR(additive_to_loss(req.qos_req.loss_log()), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(req.bandwidth_kbps, 300.0);
  EXPECT_DOUBLE_EQ(req.max_failure_prob, 0.2);
  EXPECT_EQ(req.source_level, 2u);
  EXPECT_EQ(req.min_dest_level, 1u);
  // Functions interned into the catalog.
  EXPECT_NE(catalog.find("denoise"), kInvalidFunction);
}

TEST(RequestSpec, ChainExpandsPairwise) {
  FunctionCatalog catalog;
  auto parsed = parse_request_spec("edges: a -> b -> c -> d\ndelay: 100\n",
                                   catalog);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request.graph.node_count(), 4u);
  EXPECT_EQ(parsed->request.graph.dependencies().size(), 3u);
  EXPECT_TRUE(parsed->request.graph.is_linear());
}

TEST(RequestSpec, DefaultsWhenOptionalKeysOmitted) {
  FunctionCatalog catalog;
  auto parsed = parse_request_spec("edges: x -> y\ndelay: 50\n", catalog);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->request.bandwidth_kbps, 0.0);
  EXPECT_DOUBLE_EQ(parsed->request.max_failure_prob, 1.0);
  EXPECT_EQ(parsed->request.source_level, 0u);
  EXPECT_EQ(parsed->request.min_dest_level, 0u);
}

TEST(RequestSpec, ReuseOfFunctionNameSharesNode) {
  FunctionCatalog catalog;
  auto parsed = parse_request_spec(
      "edges: a -> b\nedges: a -> c\nedges: b -> d\nedges: c -> d\n"
      "delay: 10\n",
      catalog);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request.graph.node_count(), 4u);
  EXPECT_EQ(parsed->request.graph.sources().size(), 1u);
  EXPECT_EQ(parsed->request.graph.sinks().size(), 1u);
}

struct BadCase {
  const char* spec;
  const char* expect_substring;
};

class RequestSpecErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(RequestSpecErrors, RejectsWithMessage) {
  FunctionCatalog catalog;
  std::string error;
  auto parsed = parse_request_spec(GetParam().spec, catalog, &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.find(GetParam().expect_substring), std::string::npos)
      << "error was: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RequestSpecErrors,
    ::testing::Values(
        BadCase{"delay: 100\n", "no edges"},
        BadCase{"edges: a -> b\n", "missing required 'delay'"},
        BadCase{"edges: a\ndelay: 5\n", "at least two"},
        BadCase{"edges: a -> a\ndelay: 5\n", "self edge"},
        BadCase{"edges: a -> b\ndelay: -3\n", "positive"},
        BadCase{"edges: a -> b\ndelay: 5\nloss: 1.5\n", "[0, 1)"},
        BadCase{"edges: a -> b\ndelay: 5\nbogus: 1\n", "unknown key"},
        BadCase{"edges: a -> b\ndelay: 5\ncommute: a ~ z\n", "undeclared"},
        BadCase{"edges: a -> b\ndelay: 5\nconditional: q\n", "undeclared"},
        BadCase{"edges: a -> b\nedges: b -> a\ndelay: 5\n", "cycle"},
        BadCase{"just some text\n", "key: value"},
        BadCase{"edges: a -> b\ndelay: 5\ncommute: a\n", "a ~ b"}));

}  // namespace
}  // namespace spider::service
