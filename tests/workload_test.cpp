// Tests for scenario builders and the request generator.
#include <gtest/gtest.h>

#include <set>

#include "core/bcp.hpp"
#include "workload/scenario.hpp"

namespace spider::workload {
namespace {

TEST(SimScenario, BuildsConsistentDeployment) {
  SimScenarioConfig config;
  config.seed = 3;
  config.ip_nodes = 400;
  config.peers = 50;
  config.function_count = 20;
  auto s = build_sim_scenario(config);
  ASSERT_NE(s->deployment, nullptr);
  EXPECT_EQ(s->deployment->peer_count(), 50u);
  EXPECT_EQ(s->deployment->catalog().size(), 20u);
  EXPECT_TRUE(s->deployment->overlay().live_connected());

  // Components per peer within [1, 3]; all registered and discoverable.
  std::size_t total = 0;
  for (overlay::PeerId p = 0; p < 50; ++p) {
    const auto& on_peer = s->deployment->components_on(p);
    EXPECT_GE(on_peer.size(), 1u);
    EXPECT_LE(on_peer.size(), 3u);
    total += on_peer.size();
  }
  EXPECT_EQ(s->deployment->component_count(), total);
}

TEST(SimScenario, DeterministicForSeed) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 30;
  config.seed = 77;
  auto a = build_sim_scenario(config);
  auto b = build_sim_scenario(config);
  EXPECT_EQ(a->deployment->component_count(), b->deployment->component_count());
  for (overlay::PeerId p = 0; p < 30; ++p) {
    EXPECT_EQ(a->deployment->components_on(p).size(),
              b->deployment->components_on(p).size());
  }
}

TEST(SimScenario, RegisteredComponentsAreDiscoverable) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 40;
  config.function_count = 10;
  auto s = build_sim_scenario(config);
  for (service::FunctionId f = 0; f < 10; ++f) {
    const auto& oracle = s->deployment->replicas_oracle(f);
    if (oracle.empty()) continue;
    auto found = s->deployment->registry().discover(0, f);
    ASSERT_TRUE(found.found) << "function " << f;
    EXPECT_EQ(found.components.size(), oracle.size());
  }
}

TEST(PlanetLabScenario, MatchesPaperShape) {
  PlanetLabScenarioConfig config;
  auto s = build_planetlab_scenario(config);
  EXPECT_EQ(s->deployment->peer_count(), 102u);
  EXPECT_EQ(s->deployment->catalog().size(), 6u);
  EXPECT_EQ(s->deployment->component_count(), 102u);
  // ~17 replicas per function on average.
  double total = 0;
  for (service::FunctionId f = 0; f < 6; ++f) {
    total += double(s->deployment->replicas_oracle(f).size());
  }
  EXPECT_DOUBLE_EQ(total, 102.0);
  // The six multimedia functions are interned by name.
  EXPECT_NE(s->deployment->catalog().find("media/down-scale"),
            service::kInvalidFunction);
}

TEST(RequestGenerator, ProducesValidRequests) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 40;
  config.function_count = 30;
  auto s = build_sim_scenario(config);
  RequestProfile profile;
  for (int i = 0; i < 50; ++i) {
    GeneratedRequest gen = sample_request(*s, profile);
    const auto& req = gen.request;
    EXPECT_TRUE(req.graph.is_dag());
    EXPECT_GE(req.graph.node_count(), profile.min_functions);
    EXPECT_LE(req.graph.node_count(), profile.max_functions);
    EXPECT_NE(req.source, req.dest);
    EXPECT_TRUE(s->deployment->peer_alive(req.source));
    EXPECT_TRUE(s->deployment->peer_alive(req.dest));
    EXPECT_GT(req.qos_req.delay_ms(), 0.0);
    EXPECT_GT(gen.duration, 0.0);
    // Every requested function has at least one live replica.
    for (service::FnNode n = 0; n < req.graph.node_count(); ++n) {
      bool live = false;
      for (auto id : s->deployment->replicas_oracle(req.graph.function(n))) {
        live |= s->deployment->component_alive(id);
      }
      EXPECT_TRUE(live);
    }
  }
}

TEST(RequestGenerator, DagAndCommutationAppear) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 40;
  config.function_count = 30;
  auto s = build_sim_scenario(config);
  RequestProfile profile;
  profile.min_functions = 4;
  profile.max_functions = 5;
  profile.dag_probability = 0.5;
  profile.commutation_probability = 0.5;
  int dags = 0, comms = 0;
  for (int i = 0; i < 60; ++i) {
    GeneratedRequest gen = sample_request(*s, profile);
    if (!gen.request.graph.is_linear()) ++dags;
    if (!gen.request.graph.commutations().empty()) ++comms;
  }
  EXPECT_GT(dags, 0);
  EXPECT_GT(comms, 0);
}

TEST(MultiConstraint, JitterMetricFlowsEndToEnd) {
  // Three-metric scenario: components carry jitter, requests bound it,
  // and composition produces graphs within all three constraints.
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 48;
  config.function_count = 12;
  config.min_jitter_ms = 1.0;
  config.max_jitter_ms = 8.0;
  auto s = build_sim_scenario(config);

  RequestProfile profile;
  profile.min_functions = 3;
  profile.max_functions = 3;
  profile.per_hop_jitter_budget_ms = 10.0;

  core::BcpConfig bcp_config;
  bcp_config.probing_budget = 64;
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      bcp_config);
  int successes = 0;
  for (int i = 0; i < 15; ++i) {
    GeneratedRequest gen = sample_request(*s, profile);
    ASSERT_EQ(gen.request.qos_req.size(), 3u);
    EXPECT_GT(gen.request.qos_req.jitter_ms(), 0.0);
    core::ComposeResult r = bcp.compose(gen.request, s->rng);
    if (!r.success) continue;
    ++successes;
    EXPECT_EQ(r.best.qos.size(), 3u);
    EXPECT_LE(r.best.qos.jitter_ms(), gen.request.qos_req.jitter_ms());
    EXPECT_GT(r.best.qos.jitter_ms(), 0.0) << "components contribute jitter";
    for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
  }
  EXPECT_GT(successes, 5);
}

TEST(MultiConstraint, TightJitterBoundRejectsGraphs) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 48;
  config.function_count = 12;
  config.min_jitter_ms = 5.0;
  config.max_jitter_ms = 9.0;
  auto s = build_sim_scenario(config);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      core::BcpConfig{});

  RequestProfile profile;
  profile.min_functions = 3;
  profile.max_functions = 3;
  profile.per_hop_jitter_budget_ms = 10.0;
  GeneratedRequest gen = sample_request(*s, profile);
  // Shrink only the jitter bound below any feasible 3-component sum.
  gen.request.qos_req[service::Qos::kJitter] = 10.0;  // < 3 * 5 minimum
  core::ComposeResult r = bcp.compose(gen.request, s->rng);
  EXPECT_FALSE(r.success);
}

TEST(RequestGenerator, DegenerateZipfSkewStillYieldsDistinctFunctions) {
  // Regression: under extreme Zipf skew with a tiny catalog, nearly every
  // draw lands on function 0, so the bounded rejection loop exhausts its
  // guard with fewer than k distinct functions collected and sampling
  // died on the "not enough live functions" requirement. The
  // deterministic fallback scan must complete the set instead.
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 40;
  config.function_count = 4;
  auto s = build_sim_scenario(config);
  RequestProfile profile;
  profile.min_functions = 4;
  profile.max_functions = 4;
  profile.function_zipf_s = 30.0;  // P(fn != 0) is ~2^-30 per draw
  for (int i = 0; i < 10; ++i) {
    GeneratedRequest gen = sample_request(*s, profile);
    std::set<service::FunctionId> uniq;
    for (service::FnNode n = 0; n < gen.request.graph.node_count(); ++n) {
      uniq.insert(gen.request.graph.function(n));
    }
    EXPECT_EQ(uniq.size(), 4u);
    EXPECT_EQ(gen.request.graph.node_count(), 4u);
  }
}

TEST(RequestGenerator, FunctionsAreDistinctWithinRequest) {
  SimScenarioConfig config;
  config.ip_nodes = 300;
  config.peers = 40;
  config.function_count = 30;
  auto s = build_sim_scenario(config);
  RequestProfile profile;
  for (int i = 0; i < 30; ++i) {
    GeneratedRequest gen = sample_request(*s, profile);
    std::set<service::FunctionId> uniq;
    for (service::FnNode n = 0; n < gen.request.graph.node_count(); ++n) {
      uniq.insert(gen.request.graph.function(n));
    }
    EXPECT_EQ(uniq.size(), gen.request.graph.node_count());
  }
}

}  // namespace
}  // namespace spider::workload
