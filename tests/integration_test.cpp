// End-to-end integration tests: full compose → establish → run → fail →
// recover → teardown flows over a realistic scenario, exercising every
// layer together (DHT discovery inside BCP, soft allocation, selection,
// session recovery, churn).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/session.hpp"
#include "test_scenario.hpp"
#include "workload/scenario.hpp"

namespace spider {
namespace {

using namespace core;

TEST(Integration, FullSessionLifecycle) {
  auto s = testing::small_scenario(101, 64, 16);
  BcpConfig config;
  config.probing_budget = 96;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, engine,
                         s->sim, RecoveryConfig{});
  Rng rng(1);

  workload::RequestProfile profile;
  profile.min_functions = 2;
  profile.max_functions = 3;
  int established = 0, composed = 0;
  std::vector<SessionId> sessions;
  for (int i = 0; i < 30; ++i) {
    auto gen = workload::sample_request(*s, profile);
    ComposeResult r = engine.compose(gen.request, rng);
    if (!r.success) continue;
    ++composed;
    const SessionId id = manager.establish(gen.request, std::move(r));
    if (id != kInvalidSession) {
      ++established;
      sessions.push_back(id);
    }
  }
  EXPECT_GT(composed, 10);
  EXPECT_EQ(established, composed) << "holds must be confirmable immediately";
  EXPECT_EQ(manager.active_sessions(), sessions.size());

  for (SessionId id : sessions) manager.teardown(id);
  EXPECT_EQ(s->alloc->active_grants(), 0u);
  // Availability fully restored.
  for (overlay::PeerId p = 0; p < s->deployment->peer_count(); ++p) {
    const auto avail = s->alloc->peer_available(p);
    const auto cap = s->deployment->capacity(p);
    EXPECT_NEAR(avail.cpu(), cap.cpu(), 1e-9);
    EXPECT_NEAR(avail.memory(), cap.memory(), 1e-9);
  }
}

TEST(Integration, ChurnWithProactiveRecovery) {
  auto s = testing::small_scenario(202, 80, 14);
  BcpConfig config;
  config.probing_budget = 128;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  RecoveryConfig rec;
  rec.backup_upper_bound = 4;
  SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, engine,
                         s->sim, rec);
  Rng rng(2);

  workload::RequestProfile profile;
  profile.min_functions = 2;
  profile.max_functions = 3;
  std::vector<SessionId> sessions;
  for (int i = 0; i < 20; ++i) {
    auto gen = workload::sample_request(*s, profile);
    ComposeResult r = engine.compose(gen.request, rng);
    if (!r.success) continue;
    const SessionId id = manager.establish(gen.request, std::move(r));
    if (id != kInvalidSession) sessions.push_back(id);
  }
  ASSERT_GT(sessions.size(), 5u);

  // Kill 10% of peers one by one, notifying the manager each time.
  std::uint64_t recovered = 0, lost = 0;
  for (int k = 0; k < 8; ++k) {
    const auto live = s->deployment->live_peers();
    const overlay::PeerId victim =
        live[rng.next_below(live.size())];
    s->deployment->kill_peer(victim);
    for (RecoveryOutcome outcome : manager.on_peer_failed(victim, rng)) {
      if (outcome == RecoveryOutcome::kSwitchedToBackup ||
          outcome == RecoveryOutcome::kReactiveRecovered) {
        ++recovered;
      }
      if (outcome == RecoveryOutcome::kLost) ++lost;
    }
    manager.run_maintenance();
  }
  const auto& stats = manager.stats();
  EXPECT_EQ(stats.backup_switches + stats.reactive_recoveries, recovered);
  EXPECT_EQ(stats.losses, lost);
  // No zombie grants: every remaining session's grants are consistent.
  for (overlay::PeerId p = 0; p < s->deployment->peer_count(); ++p) {
    EXPECT_TRUE(s->alloc->peer_available(p).non_negative());
  }
  // Active graphs of surviving sessions never reference dead peers.
  // (Implicitly checked by recover(); spot check availability again.)
  EXPECT_GE(manager.active_sessions() + std::size_t(lost), sessions.size());
}

TEST(Integration, BcpTracksOptimalQuality) {
  // Statistical property over several requests: BCP's selected ψ is close
  // to optimal's (bounded ratio), far better than random's expected cost.
  auto s = testing::small_scenario(303, 72, 12);
  BcpConfig config;
  config.probing_budget = 160;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  OptimalComposer optimal(*s->deployment, *s->alloc, *s->evaluator);
  Rng rng(3);

  int comparable = 0;
  double bcp_psi = 0, opt_psi = 0;
  for (int i = 0; i < 15; ++i) {
    auto req = testing::easy_request(*s, 3, overlay::PeerId(i % 10),
                                     overlay::PeerId(10 + i % 10));
    ComposeResult r = engine.compose(req, rng);
    BaselineResult o = optimal.compose(req, Objective::kMinPsi);
    if (r.success) {
      for (HoldId h : r.best_holds) s->alloc->release_hold(h);
    }
    if (r.success && o.success) {
      ++comparable;
      bcp_psi += r.best.psi_cost;
      opt_psi += o.best.psi_cost;
      EXPECT_GE(r.best.psi_cost + 1e-9, o.best.psi_cost);
    }
  }
  ASSERT_GT(comparable, 5);
  // Near-optimality: mean ψ within 2x of optimal for this budget.
  EXPECT_LT(bcp_psi, 2.0 * opt_psi + 1e-9);
}

TEST(Integration, DhtDiscoveryDrivesComposition) {
  // Unregister a function's components from the DHT: although the oracle
  // still lists them, BCP must now fail for requests needing it — proving
  // composition really uses the decentralized discovery path.
  auto s = testing::small_scenario(404, 48, 10);
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                   BcpConfig{});
  Rng rng(4);
  auto req = testing::easy_request(*s);
  ComposeResult before = engine.compose(req, rng);
  ASSERT_TRUE(before.success);
  for (HoldId h : before.best_holds) s->alloc->release_hold(h);

  const auto fn = req.graph.function(1);
  for (auto id : s->deployment->replicas_oracle(fn)) {
    s->deployment->registry().unregister_component(
        service::ComponentMetadata::from(s->deployment->component(id)));
  }
  ComposeResult after = engine.compose(req, rng);
  EXPECT_FALSE(after.success);
}

}  // namespace
}  // namespace spider
