// Tests for the Deployment container: component registration, peer
// lifecycle (kill/revive) consistency across overlay + DHT + registry.
#include <gtest/gtest.h>

#include "test_scenario.hpp"

namespace spider::core {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario(/*seed=*/33, /*peers=*/32,
                                                /*functions=*/8);
  }
  std::unique_ptr<workload::Scenario> scenario_;
};

TEST_F(DeploymentTest, ComponentIdsEncodeHostAndAreUnique) {
  auto& d = *scenario_->deployment;
  std::set<service::ComponentId> seen;
  for (overlay::PeerId p = 0; p < d.peer_count(); ++p) {
    for (auto id : d.components_on(p)) {
      EXPECT_EQ(service::component_host(id), p);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate component id";
      EXPECT_EQ(d.component(id).id, id);
    }
  }
  EXPECT_EQ(seen.size(), d.component_count());
}

TEST_F(DeploymentTest, OracleMatchesPerPeerLists) {
  auto& d = *scenario_->deployment;
  std::size_t oracle_total = 0;
  for (service::FunctionId f = 0; f < d.catalog().size(); ++f) {
    for (auto id : d.replicas_oracle(f)) {
      EXPECT_EQ(d.component(id).function, f);
      ++oracle_total;
    }
  }
  EXPECT_EQ(oracle_total, d.component_count());
}

TEST_F(DeploymentTest, KillPeerTakesAllLayersDown) {
  auto& d = *scenario_->deployment;
  const overlay::PeerId victim = 5;
  ASSERT_FALSE(d.components_on(victim).empty());
  d.kill_peer(victim);
  EXPECT_FALSE(d.peer_alive(victim));
  EXPECT_FALSE(d.overlay().alive(victim));
  EXPECT_FALSE(d.dht().alive(victim));
  for (auto id : d.components_on(victim)) {
    EXPECT_FALSE(d.component_alive(id));
  }
  // Idempotent.
  d.kill_peer(victim);
  EXPECT_FALSE(d.peer_alive(victim));
}

TEST_F(DeploymentTest, LivenessEpochCountsEffectiveTransitionsOnly) {
  auto& d = *scenario_->deployment;
  const std::uint64_t epoch0 = d.liveness_epoch();
  const overlay::PeerId victim = 5;
  d.kill_peer(victim);
  EXPECT_EQ(d.liveness_epoch(), epoch0 + 1);
  d.kill_peer(victim);  // no-op kill: epoch must not move
  EXPECT_EQ(d.liveness_epoch(), epoch0 + 1);
  d.revive_peer(victim);
  EXPECT_EQ(d.liveness_epoch(), epoch0 + 2);
  d.revive_peer(victim);  // no-op revive
  EXPECT_EQ(d.liveness_epoch(), epoch0 + 2);
}

TEST_F(DeploymentTest, ReviveRestoresDiscovery) {
  auto& d = *scenario_->deployment;
  const overlay::PeerId victim = 7;
  ASSERT_FALSE(d.components_on(victim).empty());
  const auto fn = d.component(d.components_on(victim)[0]).function;

  d.kill_peer(victim);
  d.revive_peer(victim);
  EXPECT_TRUE(d.peer_alive(victim));
  EXPECT_TRUE(d.dht().alive(victim));
  for (auto id : d.components_on(victim)) {
    EXPECT_TRUE(d.component_alive(id));
  }
  // The revived peer's components are discoverable again (re-registered).
  auto found = d.registry().discover(0, fn);
  ASSERT_TRUE(found.found);
  bool has_victims = false;
  for (const auto& meta : found.components) {
    has_victims = has_victims || meta.host == victim;
  }
  EXPECT_TRUE(has_victims);
  // And the revived DHT node routes correctly.
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto key = dht::NodeId::random(rng);
    EXPECT_EQ(d.dht().route(victim, key).target(),
              d.dht().owner_oracle(key));
  }
}

TEST_F(DeploymentTest, RepeatedKillReviveCyclesStayConsistent) {
  auto& d = *scenario_->deployment;
  Rng rng(2);
  for (int round = 0; round < 10; ++round) {
    const auto victim = overlay::PeerId(1 + rng.next_below(20));
    if (d.peer_alive(victim)) {
      d.kill_peer(victim);
    } else {
      d.revive_peer(victim);
    }
  }
  // Revive everything and verify global consistency.
  for (overlay::PeerId p = 0; p < d.peer_count(); ++p) {
    if (!d.peer_alive(p)) d.revive_peer(p);
  }
  EXPECT_EQ(d.live_peers().size(), d.peer_count());
  EXPECT_TRUE(d.overlay().live_connected());
  for (service::FunctionId f = 0; f < d.catalog().size(); ++f) {
    if (d.replicas_oracle(f).empty()) continue;
    EXPECT_TRUE(d.registry().discover(0, f).found) << "function " << f;
  }
}

TEST_F(DeploymentTest, CapacityRoundTrip) {
  auto& d = *scenario_->deployment;
  d.set_capacity(3, service::Resources::cpu_mem(42, 17));
  EXPECT_DOUBLE_EQ(d.capacity(3).cpu(), 42.0);
  EXPECT_DOUBLE_EQ(d.capacity(3).memory(), 17.0);
}

}  // namespace
}  // namespace spider::core
