// Tests for GraphEvaluator: hop resolution, QoS aggregation over branches,
// failure probability combination, ψ cost behaviour (Eq. 1).
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

using service::Qos;
using service::ServiceGraph;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario();
    request_ = spider::testing::easy_request(*scenario_);
  }

  /// Builds a concrete graph by taking the first live replica per node.
  ServiceGraph first_choice_graph() {
    ServiceGraph g;
    g.pattern = request_.graph;
    g.source = request_.source;
    g.dest = request_.dest;
    const auto& d = *scenario_->deployment;
    for (service::FnNode n = 0; n < g.pattern.node_count(); ++n) {
      for (auto id : d.replicas_oracle(g.pattern.function(n))) {
        if (d.component_alive(id)) {
          g.mapping.push_back(
              service::ComponentMetadata::from(d.component(id)));
          break;
        }
      }
    }
    return g;
  }

  std::unique_ptr<workload::Scenario> scenario_;
  service::CompositeRequest request_;
};

TEST_F(EvaluatorTest, ResolveProducesAllHops) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  // Linear chain of 3 nodes: ingress + 2 internal + egress = 4 hops.
  EXPECT_EQ(g.hops.size(), 4u);
  EXPECT_EQ(g.hops.front().from, service::ServiceLinkHop::kEndpoint);
  EXPECT_EQ(g.hops.back().to, service::ServiceLinkHop::kEndpoint);
  for (const auto& hop : g.hops) EXPECT_TRUE(hop.path.valid);
}

TEST_F(EvaluatorTest, ResolveFailsOnDeadComponentHost) {
  ServiceGraph g = first_choice_graph();
  scenario_->deployment->kill_peer(g.mapping[1].host);
  EXPECT_FALSE(scenario_->evaluator->resolve(g));
}

TEST_F(EvaluatorTest, ResolveFailsOnDeadEndpoints) {
  ServiceGraph g = first_choice_graph();
  // Pick a source that is not used by the graph and kill it.
  scenario_->deployment->kill_peer(request_.source);
  g.source = request_.source;
  EXPECT_FALSE(scenario_->evaluator->resolve(g));
}

TEST_F(EvaluatorTest, QosSumsPerfAndLinkDelays) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  ASSERT_TRUE(g.evaluated);

  double expected = 0.0;
  for (const auto& hop : g.hops) expected += hop.path.delay_ms;
  for (const auto& meta : g.mapping) expected += meta.perf.delay_ms();
  EXPECT_NEAR(g.qos.delay_ms(), expected, 1e-9);
}

TEST_F(EvaluatorTest, DagQosIsWorstBranch) {
  // Build a diamond whose two branch components have very different perf.
  auto& d = *scenario_->deployment;
  service::FunctionGraph fg;
  // Reuse the request's three functions: entry, two parallel mid, exit.
  const auto f0 = request_.graph.function(0);
  const auto f1 = request_.graph.function(1);
  const auto f2 = request_.graph.function(2);
  fg.add_function(f0);
  fg.add_function(f1);
  fg.add_function(f2);
  fg.add_function(f0);
  fg.add_dependency(0, 1);
  fg.add_dependency(0, 2);
  fg.add_dependency(1, 3);
  fg.add_dependency(2, 3);

  service::CompositeRequest req = request_;
  req.graph = fg;

  ServiceGraph g;
  g.pattern = fg;
  g.source = req.source;
  g.dest = req.dest;
  auto first_live = [&](service::FunctionId f) {
    for (auto id : d.replicas_oracle(f)) {
      if (d.component_alive(id)) {
        return service::ComponentMetadata::from(d.component(id));
      }
    }
    SPIDER_REQUIRE(false);
    return service::ComponentMetadata{};
  };
  g.mapping = {first_live(f0), first_live(f1), first_live(f2), first_live(f0)};
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, req);

  // Recompute branch sums manually and compare with the max.
  double worst = 0.0;
  for (const auto& branch : fg.branches()) {
    double sum = 0.0;
    for (auto n : branch) sum += g.mapping[n].perf.delay_ms();
    worst = std::max(worst, sum);
  }
  EXPECT_GE(g.qos.delay_ms() + 1e-9, worst);
}

TEST_F(EvaluatorTest, FailureProbCombinesIndependentPeers) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  double survive = 1.0;
  std::unordered_map<overlay::PeerId, double> per_peer;
  for (const auto& m : g.mapping) {
    auto [it, fresh] = per_peer.emplace(m.host, m.failure_prob);
    if (!fresh) it->second = std::max(it->second, m.failure_prob);
  }
  for (auto& [p, f] : per_peer) survive *= 1.0 - f;
  EXPECT_NEAR(g.failure_prob, 1.0 - survive, 1e-12);
  EXPECT_GE(g.failure_prob, 0.0);
  EXPECT_LE(g.failure_prob, 1.0);
}

TEST_F(EvaluatorTest, PsiIncreasesAsResourcesAreConsumed) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  const double psi_before = g.psi_cost;
  ASSERT_GT(psi_before, 0.0);

  // Consume most of one mapped peer's CPU: ψ must grow (less headroom).
  const overlay::PeerId peer = g.mapping[0].host;
  const auto avail = scenario_->alloc->peer_available(peer);
  ASSERT_TRUE(scenario_->alloc
                  ->soft_reserve_peer(
                      peer,
                      service::Resources::cpu_mem(avail.cpu() * 0.8,
                                                  avail.memory() * 0.8),
                      1e9)
                  .has_value());
  scenario_->evaluator->evaluate(g, request_);
  EXPECT_GT(g.psi_cost, psi_before);
}

TEST_F(EvaluatorTest, QosQualifiedAgainstBounds) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  EXPECT_TRUE(scenario_->evaluator->qos_qualified(g, request_));
  service::CompositeRequest strict = request_;
  strict.qos_req = Qos::delay_loss(g.qos.delay_ms() - 1.0, 1.0);
  EXPECT_FALSE(scenario_->evaluator->qos_qualified(g, strict));
}

TEST_F(EvaluatorTest, ResourceFeasibleReflectsAvailability) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  EXPECT_TRUE(scenario_->evaluator->resource_feasible(g, request_));
  // Exhaust a mapped peer.
  const overlay::PeerId peer = g.mapping[0].host;
  const auto avail = scenario_->alloc->peer_available(peer);
  ASSERT_TRUE(scenario_->alloc->soft_reserve_peer(peer, avail, 1e9));
  EXPECT_FALSE(scenario_->evaluator->resource_feasible(g, request_));
}

TEST_F(EvaluatorTest, AckTimeIsLinkDelayOnly) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));
  scenario_->evaluator->evaluate(g, request_);
  double links_only = 0.0;
  for (const auto& hop : g.hops) links_only += hop.path.delay_ms;
  EXPECT_NEAR(scenario_->evaluator->ack_time_ms(g), links_only, 1e-9);
  EXPECT_LT(scenario_->evaluator->ack_time_ms(g), g.qos.delay_ms() + 1e-9);
}

TEST_F(EvaluatorTest, LevelsCompatibleChecksEveryLink) {
  ServiceGraph g = first_choice_graph();
  service::CompositeRequest req = request_;
  // All-zero levels: trivially compatible.
  EXPECT_TRUE(scenario_->evaluator->levels_compatible(g, req));

  // An entry node demanding a higher level than the source provides.
  g.mapping[0].input_level = 2;
  req.source_level = 1;
  EXPECT_FALSE(scenario_->evaluator->levels_compatible(g, req));
  req.source_level = 2;
  EXPECT_TRUE(scenario_->evaluator->levels_compatible(g, req));

  // A mid-chain producer below its consumer's requirement.
  g.mapping[1].output_level = 1;
  g.mapping[2].input_level = 3;
  EXPECT_FALSE(scenario_->evaluator->levels_compatible(g, req));
  g.mapping[1].output_level = 3;
  EXPECT_TRUE(scenario_->evaluator->levels_compatible(g, req));

  // Destination minimum level against the exit node's output.
  req.min_dest_level = 5;
  g.mapping[2].output_level = 4;
  EXPECT_FALSE(scenario_->evaluator->levels_compatible(g, req));
  g.mapping[2].output_level = 5;
  EXPECT_TRUE(scenario_->evaluator->levels_compatible(g, req));
}

TEST_F(EvaluatorTest, SnapshotViewOverridesLiveAvailability) {
  ServiceGraph g = first_choice_graph();
  ASSERT_TRUE(scenario_->evaluator->resolve(g));

  struct FrozenView : public AvailabilityView {
    service::Resources peer_available(PeerId) override {
      return service::Resources::cpu_mem(1000, 1000);
    }
    double link_available_kbps(overlay::OverlayLinkId) override {
      return 1e9;
    }
  } frozen;

  // Exhaust the real peer; the frozen view must still consider the graph
  // feasible (that is the centralized scheme's staleness in action).
  const overlay::PeerId peer = g.mapping[0].host;
  const auto avail = scenario_->alloc->peer_available(peer);
  ASSERT_TRUE(scenario_->alloc->soft_reserve_peer(peer, avail, 1e9));
  EXPECT_FALSE(scenario_->evaluator->resource_feasible(g, request_));
  EXPECT_TRUE(scenario_->evaluator->resource_feasible(g, request_, &frozen));
}

}  // namespace
}  // namespace spider::core
