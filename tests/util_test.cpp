// Unit tests for src/util: RNG determinism and distribution sanity,
// statistics, SHA-1 known-answer vectors, worker-pool semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <stdexcept>
#include <thread>

#include "util/hash.hpp"
#include "util/keys.hpp"
#include "util/parallel.hpp"
#include "util/procstat.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/stats.hpp"

namespace spider {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.next_pareto(3.0, 2.0), 3.0);
}

TEST(Rng, ZipfRanksInRangeAndSkewed) {
  Rng rng(23);
  constexpr std::uint64_t kN = 100;
  int rank0 = 0, rank_tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto r = rng.next_zipf(kN, 1.2);
    ASSERT_LT(r, kN);
    if (r == 0) ++rank0;
    if (r >= kN / 2) ++rank_tail;
  }
  // Rank 0 must dominate the entire upper half combined tail-heaviness.
  EXPECT_GT(rank0, rank_tail);
}

TEST(Rng, SampleIndicesDistinctAndComplete) {
  Rng rng(29);
  auto sample = rng.sample_indices(50, 20);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (std::size_t idx : uniq) EXPECT_LT(idx, 50u);

  auto all = rng.sample_indices(10, 10);
  std::set<std::size_t> full(all.begin(), all.end());
  EXPECT_EQ(full.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.2);
}

TEST(SampleStats, PercentileAfterInterleavedAdds) {
  SampleStats s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1);  // invalidates sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(SampleStats, InterleavedAddsAlwaysSeeTheFullSampleSet) {
  // Regression guard on the lazy percentile cache: the rebuild trigger is
  // a size comparison, which is only sound because add() eagerly clears
  // the cache — any future mutation path that changes samples without
  // clearing would serve stale order statistics. Interleave adds and
  // percentile reads and check every read against a freshly computed
  // expectation.
  SampleStats s;
  for (int i = 1; i <= 64; ++i) {
    // Descending inserts make a stale cache maximally visible: each new
    // sample shifts every low percentile.
    s.add(double(65 - i));
    EXPECT_DOUBLE_EQ(s.percentile(0), double(65 - i)) << "after add " << i;
    EXPECT_DOUBLE_EQ(s.percentile(100), 64.0);
    if (i % 2 == 1) continue;  // also exercise add-after-read-after-add
    const double median = s.percentile(50);
    EXPECT_DOUBLE_EQ(median, (65 - i + 64) / 2.0) << "median after " << i;
  }
  EXPECT_EQ(s.count(), 64u);
}

TEST(ProcStat, AttributedHwmDeltaArithmetic) {
  EXPECT_EQ(util::attributed_hwm_delta(0, 0), 0u);
  EXPECT_EQ(util::attributed_hwm_delta(100, 350), 250u);
  // VmHWM is monotone, so after < before only happens on misuse or a
  // failed /proc read (0); the delta clamps instead of underflowing.
  EXPECT_EQ(util::attributed_hwm_delta(350, 100), 0u);
  EXPECT_EQ(util::attributed_hwm_delta(350, 0), 0u);
  const std::uint64_t big = std::uint64_t(48) << 30;
  EXPECT_EQ(util::attributed_hwm_delta(big, big + 1), 1u);
}

TEST(ProcStat, VmHwmReadsAPositivePeakOnLinux) {
#ifdef __linux__
  const std::uint64_t hwm = util::vm_hwm_bytes();
  EXPECT_GT(hwm, 0u);
  // Monotone: a second read never goes down.
  EXPECT_GE(util::vm_hwm_bytes(), hwm);
#endif
}

TEST(SampleStats, SamplesPreserveInsertionOrder) {
  // Regression: percentile() used to std::sort the live sample buffer,
  // silently reordering what samples() returned afterwards.
  SampleStats s;
  const std::vector<double> order = {9.0, 1.0, 7.0, 3.0, 5.0};
  for (double x : order) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  (void)s.percentile(95);
  EXPECT_EQ(s.samples(), order);
  // A summary after percentiles must also leave the order intact.
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.samples(), order);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  util::WorkerPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(WorkerPool, ReusableAcrossBatches) {
  util::WorkerPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.for_each_index(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 250u);
  pool.for_each_index(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 250u);
}

TEST(WorkerPool, PropagatesFirstException) {
  util::WorkerPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.for_each_index(8,
                                   [&](std::size_t i) {
                                     ran.fetch_add(1);
                                     if (i == 3) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The pool stays usable after an exceptional batch.
  pool.for_each_index(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_GE(ran.load(), 4);
}

TEST(ParallelForEach, SerialPathRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  util::parallel_for_each(1, seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelForEach, MatchesSerialResults) {
  auto run = [](std::size_t jobs) {
    std::vector<std::uint64_t> out(64);
    util::parallel_for_each(jobs, out.size(), [&](std::size_t i) {
      Rng rng(util::hash_values(std::uint64_t(42), i));
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc ^= rng();
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), run(16));
}

TEST(TimeSeriesCounter, AccumulatesPerBucket) {
  TimeSeriesCounter c(10);
  c.add(0);
  c.add(0);
  c.add(9, 5);
  EXPECT_EQ(c.at(0), 2u);
  EXPECT_EQ(c.at(9), 5u);
  EXPECT_EQ(c.total(), 7u);
}

TEST(RatioCounter, ComputesRatio) {
  RatioCounter r;
  r.record(true);
  r.record(false);
  r.record(true);
  r.record(true);
  EXPECT_DOUBLE_EQ(r.ratio(), 0.75);
}

TEST(Sha1, KnownVectors) {
  // FIPS-180 test vectors.
  auto hex = [](const Sha1Digest& d) {
    std::string out;
    char buf[3];
    for (auto b : d) {
      std::snprintf(buf, sizeof(buf), "%02x", b);
      out += buf;
    }
    return out;
  };
  EXPECT_EQ(hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkjklmnklmnlmnomnopnopq")),
            "788b8cbe1b91910836f1f581243c4c3e8d06eb64");
  // Block-boundary lengths (55, 56, 64 bytes) exercise the padding paths.
  EXPECT_EQ(hex(sha1(std::string(55, 'a'))),
            "c1c8bbdc22796e28c0e15163d20899b65621d65a");
  EXPECT_EQ(hex(sha1(std::string(56, 'a'))),
            "c2db330f6083854c99d4b5bfb6e8f29f201be699");
  EXPECT_EQ(hex(sha1(std::string(64, 'a'))),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d");
}

TEST(Sha1, Prefix64MatchesDigest) {
  const Sha1Digest d = sha1("abc");
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | d[std::size_t(i)];
  EXPECT_EQ(sha1_prefix64("abc"), expect);
}


TEST(Keys, OrderedPairKeyDistinguishesOrderAndFields) {
  using K = util::PairKey<std::uint32_t, std::uint32_t>;
  EXPECT_EQ((K{1, 2}), (K{1, 2}));
  EXPECT_FALSE((K{1, 2}) == (K{2, 1}));
  // The shift-packed family collided when a field outgrew its 32-bit
  // slice: (a=1, b=0) packed identically to (a=0, b=1<<32). Struct keys
  // keep every field at full width.
  using W = util::PairKey<std::uint64_t, std::uint64_t>;
  const W narrow{1, 0};
  const W wide{0, std::uint64_t(1) << 32};
  EXPECT_FALSE(narrow == wide);
  EXPECT_NE(util::PairKeyHash{}(narrow), util::PairKeyHash{}(wide));
}

TEST(Keys, UnorderedPairKeyNormalizes) {
  using K = util::UnorderedPairKey<std::uint32_t>;
  EXPECT_EQ(K(7, 3), K(3, 7));
  EXPECT_EQ(util::UnorderedPairKeyHash{}(K(7, 3)),
            util::UnorderedPairKeyHash{}(K(3, 7)));
  EXPECT_FALSE(K(3, 7) == K(3, 8));
  std::unordered_set<K, util::UnorderedPairKeyHash> seen;
  EXPECT_TRUE(seen.insert(K(1, 2)).second);
  EXPECT_FALSE(seen.insert(K(2, 1)).second) << "{a,b} and {b,a} are one edge";
}

TEST(Keys, PairKeyWorksAsUnorderedMapKey) {
  std::unordered_map<util::PairKey<std::uint32_t, std::uint16_t>, int,
                     util::PairKeyHash>
      m;
  m[{4, 2}] = 42;
  m[{2, 4}] = 24;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ((m[{4, 2}]), 42);
}

}  // namespace
}  // namespace spider
