// Shared helpers for core-layer tests: small deterministic scenarios and
// request builders.
#pragma once

#include <memory>

#include "core/bcp.hpp"
#include "workload/scenario.hpp"

namespace spider::testing {

/// Small §6.1-style scenario: fast to build, enough replicas to compose.
inline std::unique_ptr<workload::Scenario> small_scenario(
    std::uint64_t seed = 7, std::size_t peers = 48,
    std::size_t functions = 12) {
  workload::SimScenarioConfig config;
  config.seed = seed;
  config.ip_nodes = 300;
  config.peers = peers;
  config.function_count = functions;
  config.min_components_per_peer = 1;
  config.max_components_per_peer = 3;
  config.overlay_degree = 4;
  return workload::build_sim_scenario(config);
}

/// A generous linear request over the first `k` catalog functions that is
/// guaranteed deployable in a fresh small_scenario.
inline service::CompositeRequest easy_request(workload::Scenario& s,
                                              std::size_t k = 3,
                                              overlay::PeerId source = 0,
                                              overlay::PeerId dest = 1) {
  // Choose the k functions with the most live replicas so composition has
  // room to work with.
  std::vector<std::pair<std::size_t, service::FunctionId>> by_replicas;
  const auto& deployment = *s.deployment;
  for (service::FunctionId f = 0; f < deployment.catalog().size(); ++f) {
    std::size_t live = 0;
    for (auto id : deployment.replicas_oracle(f)) {
      live += deployment.component_alive(id) ? 1 : 0;
    }
    if (live > 0) by_replicas.emplace_back(live, f);
  }
  std::sort(by_replicas.rbegin(), by_replicas.rend());
  SPIDER_REQUIRE(by_replicas.size() >= k);

  std::vector<service::FunctionId> fns;
  for (std::size_t i = 0; i < k; ++i) fns.push_back(by_replicas[i].second);

  service::CompositeRequest req;
  req.graph = service::make_linear_graph(fns);
  req.qos_req = service::Qos::delay_loss(100000.0, 1.0);  // generous
  req.bandwidth_kbps = 10.0;
  req.max_failure_prob = 1.0;
  req.source = source;
  req.dest = dest;
  return req;
}

}  // namespace spider::testing
