// Bulk Pastry loading (§5k): the join-parity oracle and the bulk_put
// equivalence contract.
//
// The oracle pins bulk_load's canonical state to what the live join
// protocol converges to, in the regime where join state is itself
// order-independent: with N <= L+1 every node's leaf set covers the whole
// ring, every pair of nodes gets mutually introduced, and a contested
// routing cell therefore ends at the unique proximity-argmin over its
// full candidate set — exactly what bulk_load computes with
// candidate_budget = 0. Distinct proximity values make that argmin
// unique, so the two constructions must agree cell for cell.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dht/pastry.hpp"

namespace spider::dht {
namespace {

/// Deterministic, injective proximity over peer pairs (997 and 131 are
/// coprime and exceed any peer index here, so no two pairs collide).
double test_proximity(PeerId a, PeerId b) {
  return 1.0 + 997.0 * double(a) + 131.0 * double(b);
}

/// N distinct node ids for `seed`, sorted ascending, peer i = i-th id.
std::vector<std::pair<NodeId, PeerId>> make_entries(std::uint64_t seed,
                                                    std::size_t n) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(NodeId::hash_of("parity:" + std::to_string(seed) + ":" +
                                  std::to_string(i)));
  }
  std::sort(ids.begin(), ids.end());
  std::vector<std::pair<NodeId, PeerId>> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      EXPECT_NE(ids[i - 1], ids[i]) << "hash collision in test ids";
    }
    entries.emplace_back(ids[i], PeerId(i));
  }
  return entries;
}

PastryNetwork join_built(const std::vector<std::pair<NodeId, PeerId>>& entries,
                         int leaf_set_size) {
  PastryNetwork net(leaf_set_size);
  net.set_proximity(test_proximity);
  net.bootstrap(entries[0].second, entries[0].first);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    net.join(entries[i].second, entries[i].first, entries[0].second);
  }
  return net;
}

PastryNetwork bulk_built(const std::vector<std::pair<NodeId, PeerId>>& entries,
                         int leaf_set_size, std::size_t jobs,
                         std::size_t candidate_budget) {
  PastryNetwork net(leaf_set_size);
  net.set_proximity(test_proximity);
  net.bulk_load(entries, jobs, candidate_budget);
  return net;
}

std::vector<NodeId> sorted_members(const LeafSet& leaves) {
  std::vector<NodeId> m = leaves.members();
  std::sort(m.begin(), m.end());
  return m;
}

void expect_same_state(PastryNetwork& a, PastryNetwork& b, std::size_t n) {
  for (PeerId p = 0; p < n; ++p) {
    EXPECT_EQ(sorted_members(a.leaf_set(p)), sorted_members(b.leaf_set(p)))
        << "leaf set of peer " << p;
    const RoutingTable& ta = a.routing_table(p);
    const RoutingTable& tb = b.routing_table(p);
    for (int row = 0; row < kDigitsPerId; ++row) {
      for (int col = 0; col < kDigitRadix; ++col) {
        EXPECT_EQ(ta.at(row, col), tb.at(row, col))
            << "peer " << p << " cell [" << row << "][" << col << "]";
      }
    }
  }
}

TEST(BulkLoadParityTest, MatchesJoinBuiltStateWhenEveryoneKnowsEveryone) {
  // Leaf-set sizes spanning a routing-row boundary: N = L+1 = 33 > 16
  // forces populated row >= 1 cells (33 ids cannot all differ in the
  // first hex digit), while 9 and 17 exercise digit-0-only tables.
  for (int leaf_set_size : {8, 16, 32}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const std::size_t n = std::size_t(leaf_set_size) + 1;
      const auto entries = make_entries(seed, n);
      PastryNetwork joined = join_built(entries, leaf_set_size);
      PastryNetwork bulk = bulk_built(entries, leaf_set_size, /*jobs=*/1,
                                      /*candidate_budget=*/0);
      SCOPED_TRACE("L=" + std::to_string(leaf_set_size) +
                   " seed=" + std::to_string(seed));
      expect_same_state(joined, bulk, n);

      // Same state must route identically; spot-check delivery targets.
      for (std::uint64_t k = 0; k < 16; ++k) {
        const NodeId key = NodeId::hash_of("key:" + std::to_string(k));
        const PeerId from = PeerId(k % n);
        const RouteResult rj = joined.route_readonly(from, key);
        const RouteResult rb = bulk.route_readonly(from, key);
        EXPECT_EQ(rj.path, rb.path) << "key " << k;
        EXPECT_EQ(rb.target(), bulk.owner_oracle(key)) << "key " << k;
      }
    }
  }
}

TEST(BulkLoadParityTest, FillIsIdenticalAtAnyJobCount) {
  const auto entries = make_entries(11, 200);
  PastryNetwork serial = bulk_built(entries, 16, /*jobs=*/1,
                                    /*candidate_budget=*/8);
  PastryNetwork parallel = bulk_built(entries, 16, /*jobs=*/4,
                                      /*candidate_budget=*/8);
  expect_same_state(serial, parallel, entries.size());
}

TEST(BulkLoadParityTest, LargeBulkLoadDeliversToTheOracleOwner) {
  // Correct delivery needs only leaf-set correctness, not any particular
  // cell occupant — so it must hold at the default candidate budget too.
  const std::size_t n = 300;
  const auto entries = make_entries(23, n);
  PastryNetwork net = bulk_built(entries, 16, /*jobs=*/2,
                                 /*candidate_budget=*/8);
  EXPECT_EQ(net.live_count(), n);
  for (std::uint64_t k = 0; k < 64; ++k) {
    const NodeId key = NodeId::hash_of("lookup:" + std::to_string(k));
    const RouteResult r = net.route(PeerId((k * 37) % n), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.target(), net.owner_oracle(key)) << "key " << k;
  }
}

TEST(BulkPutTest, MatchesSequentialPutsIncludingMessageTotals) {
  const std::size_t n = 64;
  const auto entries = make_entries(31, n);
  PastryNetwork sequential = bulk_built(entries, 16, 1, 8);
  PastryNetwork bulk = bulk_built(entries, 16, 1, 8);

  std::vector<PastryNetwork::BulkPutItem> items;
  for (std::uint64_t k = 0; k < 48; ++k) {
    items.push_back({PeerId(k % n),
                     NodeId::hash_of("bp-key:" + std::to_string(k % 12)),
                     "value-" + std::to_string(k)});
  }
  for (const auto& item : items) {
    sequential.put(item.from, item.key, item.value);
  }
  bulk.bulk_put(items, /*jobs=*/3);

  EXPECT_EQ(sequential.messages_sent(), bulk.messages_sent());
  for (std::uint64_t k = 0; k < 12; ++k) {
    const NodeId key = NodeId::hash_of("bp-key:" + std::to_string(k));
    const GetResult gs = sequential.get(0, key);
    const GetResult gb = bulk.get(0, key);
    ASSERT_TRUE(gs.found);
    ASSERT_TRUE(gb.found);
    EXPECT_EQ(gs.values, gb.values) << "key " << k;
  }
}

}  // namespace
}  // namespace spider::dht
