// Weighted admission classes + adaptive (AIMD) admission controller
// (DESIGN.md §5j): single-class bit-compat with the legacy FIFO gate,
// deficit-weighted dequeue order, starvation accounting, the controller
// law with its floor/ceiling clamps, and the churn-proof capacity
// snapshot behind grant_utilization(). The property half runs the full
// open loop under loss-free but churning worlds across seeds × weight
// configurations and checks per-class conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "core/bcp.hpp"
#include "core/session.hpp"
#include "test_scenario.hpp"
#include "workload/traffic.hpp"

namespace spider::core {
namespace {

using Decision = AllocationManager::AdmissionDecision;

AllocationManager::AdmissionConfig two_classes(double w0, double w1,
                                               std::size_t cap = 32,
                                               double high_water = 0.0) {
  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = high_water;
  config.classes = {{w0, cap}, {w1, cap}};
  return config;
}

/// Queues `per_class` entries into every class behind a closed gate, then
/// re-arms the same class layout with an open gate (re-arming with an
/// unchanged class count keeps the queue depths).
void fill_then_open(AllocationManager& alloc,
                    AllocationManager::AdmissionConfig config,
                    std::size_t per_class) {
  alloc.set_admission(config);
  ASSERT_FALSE(alloc.admission_open());
  const std::size_t n = alloc.admission_class_count();
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t cls = 0; cls < n; ++cls) {
      ASSERT_EQ(alloc.admit_setup(cls), Decision::kQueue);
    }
  }
  config.high_water_utilization = 1.0;
  alloc.set_admission(config);
  ASSERT_TRUE(alloc.admission_open());
}

/// Serves queue entries through admission_next_class() until every queue
/// is empty, returning the class ids in serve order.
std::vector<std::size_t> drain_order(AllocationManager& alloc) {
  std::vector<std::size_t> order;
  while (auto cls = alloc.admission_next_class()) {
    EXPECT_GT(alloc.admission_queue_depth(*cls), 0u);
    alloc.admission_dequeued(0.0, *cls);
    order.push_back(*cls);
  }
  return order;
}

TEST(AdmissionClassTest, SingleClassConfigMatchesLegacyFifo) {
  auto legacy_world = spider::testing::small_scenario(3);
  auto classy_world = spider::testing::small_scenario(3);
  auto& legacy = *legacy_world->alloc;
  auto& classy = *classy_world->alloc;

  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.0;
  config.queue_capacity = 2;
  legacy.set_admission(config);
  AllocationManager::AdmissionConfig explicit_one;
  explicit_one.high_water_utilization = 0.0;
  explicit_one.classes = {{1.0, 2}};
  classy.set_admission(explicit_one);

  // Identical decision streams and counters.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(legacy.admit_setup(), classy.admit_setup(0));
  }
  EXPECT_EQ(legacy.admission_queued(), classy.admission_queued());
  EXPECT_EQ(legacy.admission_rejects(), classy.admission_rejects());
  EXPECT_EQ(legacy.admission_queue_depth(), classy.admission_queue_depth());
  // One class short-circuits to plain FIFO: class 0 regardless of gate
  // history, no deficit bookkeeping, no skips.
  config.high_water_utilization = 1.0;
  legacy.set_admission(config);
  explicit_one.high_water_utilization = 1.0;
  classy.set_admission(explicit_one);
  while (auto cls = classy.admission_next_class()) {
    EXPECT_EQ(*cls, 0u);
    classy.admission_dequeued(0.0, *cls);
    legacy.admission_dequeued(0.0);
  }
  EXPECT_EQ(classy.admission_queue_depth(), 0u);
  EXPECT_EQ(classy.admission_class_skips(0), 0u);
}

TEST(AdmissionClassTest, DeficitRoundRobinFollowsWeights) {
  auto s = spider::testing::small_scenario(5);
  auto& alloc = *s->alloc;
  fill_then_open(alloc, two_classes(3.0, 1.0), 12);

  const std::vector<std::size_t> order = drain_order(alloc);
  ASSERT_EQ(order.size(), 24u);
  // Weight 3 vs 1 with both classes backlogged serves in bursts:
  // 3× class 0, then 1× class 1, repeating.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], (i % 4 == 3) ? 1u : 0u) << "position " << i;
  }
  // Totals over the first 16 serves split exactly 3:1.
  EXPECT_EQ(std::count(order.begin(), order.begin() + 16, 0u), 12);
  // Class 0's backlog is exhausted after its 12; the tail is all class 1.
  for (std::size_t i = 16; i < 24; ++i) EXPECT_EQ(order[i], 1u);
  EXPECT_EQ(alloc.admission_queue_depth(0), 0u);
  EXPECT_EQ(alloc.admission_queue_depth(1), 0u);
}

TEST(AdmissionClassTest, FractionalWeightWaitsButIsNeverStarved) {
  auto s = spider::testing::small_scenario(7);
  auto& alloc = *s->alloc;
  // Strict-priority-ish degenerate config: the bulk class earns a quarter
  // credit per round, so it is served once per four gold serves — and the
  // rounds it sat backlogged without credit are counted as skips.
  fill_then_open(alloc, two_classes(1.0, 0.25), 20);

  const std::vector<std::size_t> order = drain_order(alloc);
  ASSERT_EQ(order.size(), 40u);
  std::size_t bulk_in_first_20 = 0;
  for (std::size_t i = 0; i < 20; ++i) bulk_in_first_20 += order[i] == 1;
  EXPECT_EQ(bulk_in_first_20, 4u);  // 1 per 1/0.25 rounds
  EXPECT_GT(alloc.admission_class_skips(1), 0u);
  EXPECT_EQ(alloc.admission_class_skips(0), 0u);
  // Eventually everything is served: no starvation under any positive
  // weight.
  EXPECT_EQ(alloc.admission_queue_depth(0), 0u);
  EXPECT_EQ(alloc.admission_queue_depth(1), 0u);
}

TEST(AdmissionClassTest, ClosedGateNeverDequeues) {
  auto s = spider::testing::small_scenario(9);
  auto& alloc = *s->alloc;
  alloc.set_admission(two_classes(2.0, 1.0));
  ASSERT_EQ(alloc.admit_setup(0), Decision::kQueue);
  ASSERT_EQ(alloc.admit_setup(1), Decision::kQueue);
  // high_water 0: the gate is closed, so nothing may be served no matter
  // how much is queued; timeouts still go through admission_dequeued.
  EXPECT_FALSE(alloc.admission_open());
  EXPECT_FALSE(alloc.admission_next_class().has_value());
  alloc.admission_dequeued(10.0, 0);
  alloc.admission_dequeued(10.0, 1);
  EXPECT_EQ(alloc.admission_queue_depth(), 0u);
  EXPECT_FALSE(alloc.admission_next_class().has_value());  // empty now
}

TEST(AdmissionClassTest, PerClassQueueCapacityIsIndependent) {
  auto s = spider::testing::small_scenario(11);
  auto& alloc = *s->alloc;
  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.0;
  config.classes = {{1.0, 2}, {1.0, 1}};
  alloc.set_admission(config);
  EXPECT_EQ(alloc.admit_setup(1), Decision::kQueue);
  EXPECT_EQ(alloc.admit_setup(1), Decision::kReject);  // class 1 is full
  EXPECT_EQ(alloc.admit_setup(0), Decision::kQueue);   // class 0 is not
  EXPECT_EQ(alloc.admit_setup(0), Decision::kQueue);
  EXPECT_EQ(alloc.admit_setup(0), Decision::kReject);
  EXPECT_EQ(alloc.admission_class_rejects(0), 1u);
  EXPECT_EQ(alloc.admission_class_rejects(1), 1u);
  EXPECT_EQ(alloc.admission_class_queued(0), 2u);
  EXPECT_EQ(alloc.admission_class_queued(1), 1u);
}

TEST(AdmissionControllerTest, AimdLawWithClamps) {
  auto s = spider::testing::small_scenario(13);
  auto& alloc = *s->alloc;
  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.5;
  config.queue_capacity = 4;
  config.adaptive = true;
  config.target_setup_ms = 100.0;
  config.target_failure_rate = 0.5;
  config.increase_step = 0.05;
  config.decrease_factor = 0.5;
  config.mark_floor = 0.2;
  config.mark_ceiling = 0.6;
  alloc.set_admission(config);
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.5);

  // An empty window holds the mark: no information, no movement.
  alloc.admission_controller_tick();
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.5);

  // Failure-rate breach: multiplicative decrease.
  alloc.admission_observe_setup(false, 0.0);
  alloc.admission_observe_setup(false, 0.0);
  alloc.admission_observe_setup(true, 50.0);
  alloc.admission_controller_tick();
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.25);

  // Another breach clamps at the floor (0.25 * 0.5 < 0.2).
  alloc.admission_observe_setup(false, 0.0);
  alloc.admission_controller_tick();
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.2);

  // Calm windows recover additively...
  for (int i = 0; i < 7; ++i) {
    alloc.admission_observe_setup(true, 50.0);
    alloc.admission_controller_tick();
  }
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.55);
  // ...and clamp at the ceiling.
  for (int i = 0; i < 3; ++i) {
    alloc.admission_observe_setup(true, 50.0);
    alloc.admission_controller_tick();
  }
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.6);

  // Latency breach (mean 150 > 100) triggers the same decrease even with
  // zero failures.
  alloc.admission_observe_setup(true, 150.0);
  alloc.admission_observe_setup(true, 150.0);
  alloc.admission_controller_tick();
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.3);
}

TEST(AdmissionControllerTest, StaticGateIgnoresTicks) {
  auto s = spider::testing::small_scenario(15);
  auto& alloc = *s->alloc;
  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.4;
  config.queue_capacity = 4;
  alloc.set_admission(config);
  alloc.admission_observe_setup(false, 0.0);
  alloc.admission_observe_setup(true, 1e6);
  alloc.admission_controller_tick();
  EXPECT_DOUBLE_EQ(alloc.admission_mark(), 0.4);
}

TEST(AdmissionCapacityTest, GrantUtilizationTracksChurnWithoutRearming) {
  auto s = spider::testing::small_scenario(17);
  auto& alloc = *s->alloc;
  auto& deployment = *s->deployment;
  AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.9;
  config.queue_capacity = 4;
  alloc.set_admission(config);

  // Grant one session 10 cpu directly on peer 0.
  const SessionId session = alloc.new_session_id();
  ASSERT_TRUE(alloc.grant_direct(
      session, {{0, service::Resources::cpu_mem(10.0, 0.0)}}, {}));
  const double util_full = alloc.grant_utilization();
  ASSERT_GT(util_full, 0.0);

  // Kill half the peers (not peer 0): live capacity halves, so the same
  // grants utilize twice the fraction — with no set_admission() re-arm.
  const std::size_t n = deployment.peer_count();
  for (PeerId p = 1; p <= n / 2; ++p) deployment.kill_peer(p);
  const double expected_cap_fraction =
      double(n - n / 2) / double(n);
  EXPECT_NEAR(alloc.grant_utilization(), util_full / expected_cap_fraction,
              1e-12);

  // Revival restores the denominator, again lazily.
  for (PeerId p = 1; p <= n / 2; ++p) deployment.revive_peer(p);
  EXPECT_NEAR(alloc.grant_utilization(), util_full, 1e-12);
  alloc.release_session(session);
  EXPECT_DOUBLE_EQ(alloc.grant_utilization(), 0.0);
}

// ---------------------------------------------------------------------------
// Property: per-class conservation through the full open loop under churn
// ---------------------------------------------------------------------------

struct PropertyParams {
  std::uint64_t seed;
  double w0, w1;
  bool retry;
};

class AdmissionClassProperty
    : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(AdmissionClassProperty, PerClassArithmeticHoldsUnderChurn) {
  const PropertyParams param = GetParam();
  auto s = spider::testing::small_scenario(param.seed);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim);
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               s->sim);
  s->alloc->set_lease_ttl_ms(3000.0);

  AllocationManager::AdmissionConfig admission;
  admission.high_water_utilization = 0.08;  // saturates at 20 Hz offered
  admission.classes = {{param.w0, 8}, {param.w1, 4}};
  s->alloc->set_admission(admission);

  workload::TrafficDriver::Config config;
  config.schedule = workload::PhaseSchedule(
      {{"up", 3000.0, 10.0, 20.0}, {"steady", 5000.0, 20.0}});
  config.seed = param.seed;
  config.lifetime.kind = workload::SessionLifetime::Kind::kExponential;
  config.lifetime.mean_ms = 2000.0;
  config.maintenance_period_ms = 500.0;
  config.audit_period_ms = 2000.0;
  config.queue_timeout_ms = 1500.0;
  config.drain_ms = 6000.0;
  config.class_mix = {0.4, 0.6};
  if (param.retry) {
    config.retry.max_retries = 2;
    config.retry.base_backoff_ms = 400.0;
    config.retry.multiplier = 2.0;
    config.retry.max_backoff_ms = 1600.0;
  }
  // Deterministic kill/revive churn, exercising the lazy capacity
  // snapshot and recovery paths while the gate is saturated.
  Rng churn_rng(util::hash_values(param.seed, std::uint64_t(0xc1a0)));
  std::deque<std::pair<overlay::PeerId, std::size_t>> downed;
  config.on_maintenance_tick = [&](std::size_t tick) {
    while (!downed.empty() && downed.front().second <= tick) {
      s->deployment->revive_peer(downed.front().first);
      downed.pop_front();
    }
    if (tick % 4 != 0) return;
    std::vector<overlay::PeerId> live;
    for (overlay::PeerId p = 0; p < s->deployment->peer_count(); ++p) {
      if (s->deployment->peer_alive(p)) live.push_back(p);
    }
    if (live.size() < 8) return;
    const overlay::PeerId victim = live[churn_rng.next_below(live.size())];
    s->deployment->kill_peer(victim);
    manager.on_peer_failed(victim, s->rng);
    downed.emplace_back(victim, tick + 6);
  };

  workload::TrafficDriver driver(*s, bcp, manager, std::move(config));
  const workload::TrafficStats& stats = driver.run();

  // Zero-leak quiesce, including the retry machinery.
  EXPECT_EQ(s->alloc->active_grants(), 0u);
  EXPECT_EQ(s->alloc->active_holds(), 0u);
  EXPECT_EQ(s->alloc->admission_queue_depth(), 0u);
  EXPECT_EQ(stats.open_requests_at_quiesce, 0u);
  EXPECT_EQ(stats.retries_inflight_at_quiesce, 0u);
  EXPECT_TRUE(stats.final_audit.conserved);

  ASSERT_EQ(stats.classes.size(), 2u);
  std::uint64_t rejected = 0, timeouts = 0, retries = 0, gaveups = 0;
  for (std::size_t cls = 0; cls < 2; ++cls) {
    const workload::ClassTrafficStats& cs = stats.classes[cls];
    // Every queued entry reached exactly one outcome, per class.
    EXPECT_EQ(cs.queued, cs.queue_served + cs.queue_timeouts) << cls;
    // Every submission got exactly one decision.
    EXPECT_EQ(cs.arrivals + cs.retries,
              cs.admitted + cs.queued + cs.rejected)
        << cls;
    // Saturation hit both classes, yet neither was starved of service.
    EXPECT_GT(cs.queued, 0u) << cls;
    EXPECT_GT(cs.queue_served, 0u) << cls;
    EXPECT_GT(cs.established, 0u) << cls;
    rejected += cs.rejected;
    timeouts += cs.queue_timeouts;
    retries += cs.retries;
    gaveups += cs.retry_gaveups;
  }
  if (param.retry) {
    // Each reject/timeout either came back as a retry submission or gave
    // up (budget exhausted, or quiesce overtook the backoff timer).
    EXPECT_EQ(rejected + timeouts, retries + gaveups);
    EXPECT_GT(retries, 0u);
  } else {
    EXPECT_EQ(retries, 0u);
    EXPECT_EQ(gaveups, 0u);
  }
  // Phase totals agree with class totals (the same events, sliced twice).
  std::uint64_t phase_retries = 0, phase_gaveups = 0;
  for (const workload::PhaseStats& ps : stats.phases) {
    phase_retries += ps.retries;
    phase_gaveups += ps.retry_gaveups;
  }
  EXPECT_EQ(phase_retries, retries);
  EXPECT_EQ(phase_gaveups, gaveups);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWeights, AdmissionClassProperty,
    ::testing::Values(PropertyParams{3, 2.0, 1.0, false},
                      PropertyParams{3, 2.0, 1.0, true},
                      PropertyParams{5, 1.0, 1.0, true},
                      PropertyParams{11, 5.0, 0.5, true},
                      PropertyParams{17, 0.5, 4.0, false}));

}  // namespace
}  // namespace spider::core
