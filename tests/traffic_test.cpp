// Open-loop workload subsystem (workload/traffic): schedule arithmetic,
// arrival-process determinism, admission gating and the driver's
// zero-leak quiesce property.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "core/session.hpp"
#include "test_scenario.hpp"
#include "workload/traffic.hpp"

namespace spider::workload {
namespace {

PhaseSchedule three_phase() {
  return PhaseSchedule({{"a", 1000.0, 2.0},
                        {"b", 2000.0, 4.0, 8.0},
                        {"c", 500.0, 0.0}});
}

TEST(PhaseScheduleTest, ExactBoundariesAreHalfOpen) {
  const PhaseSchedule s = three_phase();
  EXPECT_EQ(s.phase_count(), 3u);
  EXPECT_DOUBLE_EQ(s.total_duration_ms(), 3500.0);
  EXPECT_EQ(s.phase_at(0.0), 0u);
  EXPECT_EQ(s.phase_at(999.999), 0u);
  EXPECT_EQ(s.phase_at(1000.0), 1u);  // boundary belongs to the next phase
  EXPECT_EQ(s.phase_at(2999.999), 1u);
  EXPECT_EQ(s.phase_at(3000.0), 2u);
  // Past the script (the drain window) clamps to the last phase.
  EXPECT_EQ(s.phase_at(3500.0), 2u);
  EXPECT_EQ(s.phase_at(1e9), 2u);
  EXPECT_DOUBLE_EQ(s.phase_begin_ms(1), 1000.0);
  EXPECT_DOUBLE_EQ(s.phase_end_ms(1), 3000.0);
}

TEST(PhaseScheduleTest, RatesInterpolateLinearly) {
  const PhaseSchedule s = three_phase();
  EXPECT_DOUBLE_EQ(s.rate_hz_at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.rate_hz_at(500.0), 2.0);    // constant phase
  EXPECT_DOUBLE_EQ(s.rate_hz_at(1000.0), 4.0);   // ramp begin
  EXPECT_DOUBLE_EQ(s.rate_hz_at(2000.0), 6.0);   // ramp midpoint
  EXPECT_DOUBLE_EQ(s.rate_hz_at(3000.0), 0.0);   // zero-rate phase
  EXPECT_DOUBLE_EQ(s.rate_hz_at(4000.0), 0.0);   // outside the script
}

TEST(PhaseScheduleTest, CumulativeIntensityAndInverseRoundTrip) {
  const PhaseSchedule s = three_phase();
  // Λ by hand: phase a contributes 2 Hz x 1 s = 2; phase b averages 6 Hz
  // over 2 s = 12; phase c contributes nothing.
  EXPECT_DOUBLE_EQ(s.cumulative_arrivals(1000.0), 2.0);
  EXPECT_DOUBLE_EQ(s.cumulative_arrivals(3000.0), 14.0);
  EXPECT_DOUBLE_EQ(s.cumulative_arrivals(3500.0), 14.0);
  EXPECT_DOUBLE_EQ(s.cumulative_arrivals(1e9), 14.0);
  for (double lambda : {0.0, 0.5, 1.99, 2.0, 7.3, 13.9, 14.0}) {
    const std::optional<sim::Time> t = s.inverse_cumulative(lambda);
    ASSERT_TRUE(t.has_value()) << lambda;
    EXPECT_NEAR(s.cumulative_arrivals(*t), lambda, 1e-9) << lambda;
  }
  EXPECT_FALSE(s.inverse_cumulative(14.0001).has_value());
}

TEST(PoissonProcessTest, DeterministicPerSeedAndOrdered) {
  const PhaseSchedule s = PhaseSchedule::serving_profile(
      50.0, 1000.0, 2000.0, 500.0, 3.0, 1000.0, 0.5);
  auto drain = [&](std::uint64_t seed) {
    PoissonProcess p(s, seed);
    std::vector<sim::Time> out;
    while (auto t = p.next_arrival()) out.push_back(*t);
    return out;
  };
  const std::vector<sim::Time> a = drain(7), b = drain(7), c = drain(8);
  EXPECT_EQ(a, b);  // byte-identical per seed
  EXPECT_NE(a, c);
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LE(a.back(), s.total_duration_ms());
  // Expected count is Λ(total); Poisson fluctuation at this volume stays
  // well inside ±30%.
  const double expected = s.cumulative_arrivals(s.total_duration_ms());
  EXPECT_GT(double(a.size()), 0.7 * expected);
  EXPECT_LT(double(a.size()), 1.3 * expected);
  // Exhaustion is permanent.
  PoissonProcess p(s, 7);
  while (p.next_arrival().has_value()) {
  }
  EXPECT_FALSE(p.next_arrival().has_value());
}

TEST(TraceProcessTest, ReplaysThenExhausts) {
  TraceProcess p({1.0, 2.5, 2.5, 9.0});
  EXPECT_EQ(p.next_arrival(), std::optional<sim::Time>(1.0));
  EXPECT_EQ(p.next_arrival(), std::optional<sim::Time>(2.5));
  EXPECT_EQ(p.next_arrival(), std::optional<sim::Time>(2.5));
  EXPECT_EQ(p.next_arrival(), std::optional<sim::Time>(9.0));
  EXPECT_FALSE(p.next_arrival().has_value());
}

TEST(SessionLifetimeTest, DistributionsMatchTheirMeans) {
  Rng rng(99);
  SessionLifetime fixed{SessionLifetime::Kind::kFixed, 1234.0, 1.0};
  EXPECT_DOUBLE_EQ(fixed.sample(rng), 1234.0);

  SessionLifetime expo{SessionLifetime::Kind::kExponential, 1000.0, 1.0};
  SessionLifetime logn{SessionLifetime::Kind::kLogNormal, 1000.0, 1.0};
  double esum = 0.0, lsum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double e = expo.sample(rng), l = logn.sample(rng);
    EXPECT_GT(e, 0.0);
    EXPECT_GT(l, 0.0);
    esum += e;
    lsum += l;
  }
  EXPECT_NEAR(esum / n, 1000.0, 50.0);
  // Lognormal with sigma=1 has relative stddev ~1.3; 20k samples keep
  // the sample mean within a few percent.
  EXPECT_NEAR(lsum / n, 1000.0, 80.0);
}

TEST(AdmissionControlTest, HighWaterQueuesThenRejectsAndDrains) {
  auto s = spider::testing::small_scenario(21);
  auto& alloc = *s->alloc;
  using Decision = core::AllocationManager::AdmissionDecision;

  // Disabled (seed behaviour): always admit, nothing counted.
  EXPECT_EQ(alloc.admit_setup(), Decision::kAdmit);
  EXPECT_EQ(alloc.admission_rejects(), 0u);

  // A zero high-water closes the gate with no grants at all, which
  // isolates the queue/reject arithmetic from composition entirely.
  core::AllocationManager::AdmissionConfig config;
  config.high_water_utilization = 0.0;
  config.queue_capacity = 3;
  alloc.set_admission(config);
  EXPECT_FALSE(alloc.admission_open());
  EXPECT_EQ(alloc.admit_setup(), Decision::kQueue);
  EXPECT_EQ(alloc.admit_setup(), Decision::kQueue);
  EXPECT_EQ(alloc.admit_setup(), Decision::kQueue);
  EXPECT_EQ(alloc.admission_queue_depth(), 3u);
  EXPECT_EQ(alloc.admit_setup(), Decision::kReject);
  EXPECT_EQ(alloc.admit_setup(), Decision::kReject);
  EXPECT_EQ(alloc.admission_rejects(), 2u);
  EXPECT_EQ(alloc.admission_queued(), 3u);

  alloc.admission_dequeued(120.0);
  alloc.admission_dequeued(80.0);
  EXPECT_EQ(alloc.admission_queue_depth(), 1u);
  EXPECT_DOUBLE_EQ(alloc.admission_queue_wait_ms(), 200.0);
  // A freed slot queues again instead of rejecting.
  EXPECT_EQ(alloc.admit_setup(), Decision::kQueue);
  EXPECT_EQ(alloc.admission_queue_depth(), 2u);

  // An open gate with a non-empty queue still queues (FIFO: nobody
  // overtakes the line).
  config.high_water_utilization = 1.0;
  alloc.set_admission(config);
  EXPECT_TRUE(alloc.admission_open());
  EXPECT_EQ(alloc.admit_setup(), Decision::kQueue);
  alloc.admission_dequeued(0.0);
  alloc.admission_dequeued(0.0);
  alloc.admission_dequeued(0.0);
  EXPECT_EQ(alloc.admission_queue_depth(), 0u);
  EXPECT_EQ(alloc.admit_setup(), Decision::kAdmit);
}

struct RunSummary {
  std::uint64_t arrivals = 0, established = 0, completed = 0, queued = 0,
                rejected = 0, queue_served = 0, queue_timeouts = 0;
  std::uint64_t forced = 0;
  double util_peak = 0.0;
};

RunSummary run_open_loop(std::uint64_t seed, double steady_hz,
                         double high_water) {
  auto s = spider::testing::small_scenario(seed);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim);
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               s->sim);
  s->alloc->set_lease_ttl_ms(3000.0);
  core::AllocationManager::AdmissionConfig admission;
  admission.high_water_utilization = high_water;
  admission.queue_capacity = 8;
  s->alloc->set_admission(admission);

  TrafficDriver::Config config;
  config.schedule = PhaseSchedule(
      {{"up", 3000.0, 0.5 * steady_hz, steady_hz},
       {"steady", 5000.0, steady_hz}});
  config.seed = seed;
  config.lifetime.kind = SessionLifetime::Kind::kExponential;
  config.lifetime.mean_ms = 2000.0;
  config.maintenance_period_ms = 500.0;
  config.audit_period_ms = 2000.0;
  config.queue_timeout_ms = 1500.0;
  config.drain_ms = 6000.0;
  TrafficDriver driver(*s, bcp, manager, std::move(config));
  const TrafficStats& stats = driver.run();

  RunSummary out;
  for (const PhaseStats& ps : stats.phases) {
    out.arrivals += ps.arrivals;
    out.established += ps.established;
    out.completed += ps.completed;
    out.queued += ps.queued;
    out.rejected += ps.rejected;
    out.queue_served += ps.queue_served;
    out.queue_timeouts += ps.queue_timeouts;
    out.util_peak = std::max(out.util_peak, ps.util_peak);
  }
  out.forced = stats.forced_teardowns;

  // The zero-leak quiesce property, checked where the allocator state is
  // still in scope: no grants, no holds, a conserved final audit, an
  // empty admission queue and no live sessions in either bookkeeper.
  EXPECT_EQ(s->alloc->active_grants(), 0u);
  EXPECT_EQ(s->alloc->active_holds(), 0u);
  EXPECT_EQ(s->alloc->admission_queue_depth(), 0u);
  EXPECT_TRUE(stats.final_audit.conserved);
  EXPECT_EQ(driver.live_sessions(), 0u);
  EXPECT_EQ(manager.active_sessions(), 0u);
  // Every queued setup reached exactly one outcome.
  EXPECT_EQ(out.queued, out.queue_served + out.queue_timeouts);
  return out;
}

TEST(TrafficDriverTest, OpenLoopRunQuiescesWithoutLeaks) {
  const RunSummary r = run_open_loop(5, 4.0, 0.3);
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_GT(r.established, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_LE(r.util_peak, 1.0 + 1e-9);
}

TEST(TrafficDriverTest, SaturationEngagesTheGateDeterministically) {
  // 25 Hz against a 0.08 high-water on a 48-peer world (capacity for
  // ~20 concurrent sessions below the gate): the gate must queue and
  // reject, and two identical runs must agree exactly.
  const RunSummary a = run_open_loop(9, 25.0, 0.08);
  EXPECT_GT(a.queued, 0u);
  EXPECT_GT(a.rejected, 0u);
  EXPECT_LE(a.util_peak, 1.0 + 1e-9);

  const RunSummary b = run_open_loop(9, 25.0, 0.08);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.queue_served, b.queue_served);
  EXPECT_EQ(a.queue_timeouts, b.queue_timeouts);
  EXPECT_EQ(a.forced, b.forced);
  EXPECT_DOUBLE_EQ(a.util_peak, b.util_peak);
}

struct RetryRunTotals {
  std::uint64_t arrivals = 0, retries = 0, rejected = 0, gaveups = 0,
                established = 0, queue_timeouts = 0;
  std::uint64_t open_at_quiesce = 0, inflight_at_quiesce = 0;
};

RetryRunTotals run_retry_against_closed_gate(std::uint64_t seed) {
  auto s = spider::testing::small_scenario(seed);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim);
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               s->sim);
  // A closed gate with no queue: every submission is rejected, which
  // isolates the retry/backoff arithmetic from composition entirely.
  core::AllocationManager::AdmissionConfig admission;
  admission.high_water_utilization = 0.0;
  admission.queue_capacity = 0;
  s->alloc->set_admission(admission);

  TrafficDriver::Config config;
  config.schedule = PhaseSchedule({{"only", 1000.0, 1.0}});
  config.seed = seed;
  config.drain_ms = 5000.0;
  config.retry.max_retries = 2;
  config.retry.base_backoff_ms = 400.0;
  config.retry.multiplier = 2.0;
  config.retry.max_backoff_ms = 1600.0;
  auto trace = std::make_unique<TraceProcess>(
      std::vector<sim::Time>{100.0, 200.0, 300.0});
  TrafficDriver driver(*s, bcp, manager, std::move(config), std::move(trace));
  const TrafficStats& stats = driver.run();

  RetryRunTotals out;
  for (const PhaseStats& ps : stats.phases) {
    out.arrivals += ps.arrivals;
    out.retries += ps.retries;
    out.rejected += ps.rejected;
    out.gaveups += ps.retry_gaveups;
    out.established += ps.established;
    out.queue_timeouts += ps.queue_timeouts;
  }
  out.open_at_quiesce = stats.open_requests_at_quiesce;
  out.inflight_at_quiesce = stats.retries_inflight_at_quiesce;
  return out;
}

TEST(RetryBackoffTest, RejectedArrivalsRetryThenGiveUpExactly) {
  const RetryRunTotals r = run_retry_against_closed_gate(23);
  EXPECT_EQ(r.arrivals, 3u);
  // Budget 2: each arrival is submitted three times (1 + 2 retries), all
  // rejected, then gives up. Nothing leaks, nothing establishes.
  EXPECT_EQ(r.retries, 6u);
  EXPECT_EQ(r.rejected, 9u);
  EXPECT_EQ(r.gaveups, 3u);
  EXPECT_EQ(r.established, 0u);
  EXPECT_EQ(r.queue_timeouts, 0u);
  EXPECT_EQ(r.open_at_quiesce, 0u);
  EXPECT_EQ(r.inflight_at_quiesce, 0u);

  // Bit-for-bit repeatable: the backoff jitter comes from its own seeded
  // stream.
  const RetryRunTotals again = run_retry_against_closed_gate(23);
  EXPECT_EQ(again.retries, r.retries);
  EXPECT_EQ(again.rejected, r.rejected);
  EXPECT_EQ(again.gaveups, r.gaveups);
}

TEST(RetryBackoffTest, DisabledRetryLeavesSeedAccountingUntouched) {
  // The same closed-gate world with retries off: rejects are final and
  // the new counters stay zero — the seed-era accounting, bit-for-bit.
  auto s = spider::testing::small_scenario(23);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim);
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               s->sim);
  core::AllocationManager::AdmissionConfig admission;
  admission.high_water_utilization = 0.0;
  admission.queue_capacity = 0;
  s->alloc->set_admission(admission);
  TrafficDriver::Config config;
  config.schedule = PhaseSchedule({{"only", 1000.0, 1.0}});
  config.seed = 23;
  config.drain_ms = 5000.0;
  auto trace = std::make_unique<TraceProcess>(
      std::vector<sim::Time>{100.0, 200.0, 300.0});
  TrafficDriver driver(*s, bcp, manager, std::move(config), std::move(trace));
  const TrafficStats& stats = driver.run();
  std::uint64_t rejected = 0, retries = 0, gaveups = 0;
  for (const PhaseStats& ps : stats.phases) {
    rejected += ps.rejected;
    retries += ps.retries;
    gaveups += ps.retry_gaveups;
  }
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(retries, 0u);
  EXPECT_EQ(gaveups, 0u);
  EXPECT_EQ(stats.open_requests_at_quiesce, 0u);
  EXPECT_EQ(stats.retries_inflight_at_quiesce, 0u);
}

TEST(TrafficDriverTest, TraceArrivalAtBoundaryLandsInNextPhase) {
  auto s = spider::testing::small_scenario(13);
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim);
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               s->sim);
  TrafficDriver::Config config;
  config.schedule = PhaseSchedule({{"a", 1000.0, 1.0}, {"b", 1000.0, 1.0}});
  config.drain_ms = 2000.0;
  auto trace =
      std::make_unique<TraceProcess>(std::vector<sim::Time>{1000.0, 1500.0});
  TrafficDriver driver(*s, bcp, manager, std::move(config), std::move(trace));
  const TrafficStats& stats = driver.run();
  EXPECT_EQ(stats.phases[0].arrivals, 0u);  // t=1000 is phase b's instant
  EXPECT_EQ(stats.phases[1].arrivals, 2u);
}

}  // namespace
}  // namespace spider::workload
