// Equivalence oracle for the shared-prefix probe representation: running
// the same request stream with debug_clone_prefixes on (every spawn
// deep-copies the prefix chain, the old representation's cost model) and
// off (children share the parent's chain by reference) must produce
// identical results — same compositions, same ComposeStats field for
// field, same metrics snapshot — in both the synchronous driver and the
// message-level (event-driven) one. Only the arena's allocation totals
// may differ: cloning allocates one fresh chain per child instead of one
// segment.
#include <gtest/gtest.h>

#include "core/bcp.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

struct RunOutput {
  std::vector<ComposeResult> results;
  obs::MetricsRegistry metrics;
  ProbeArenaTotals arena;
};

// Fig-8-style stream: a fresh scenario per run (identical by seed), a
// handful of sampled requests, holds released between composes.
RunOutput run_stream(bool clone_prefixes, bool async_mode, double loss) {
  RunOutput out;
  auto s = spider::testing::small_scenario(/*seed=*/77, /*peers=*/48);
  BcpConfig config;
  config.debug_clone_prefixes = clone_prefixes;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  engine.set_observability(&out.metrics, nullptr);
  const fault::LinkFaultModel faults = fault::LinkFaultModel::uniform_loss(loss);
  if (loss > 0.0) engine.set_fault_model(&faults);

  workload::RequestProfile profile;
  profile.dag_probability = 0.5;
  s->rng.reseed(1234);
  for (int i = 0; i < 8; ++i) {
    auto gen = workload::sample_request(*s, profile);
    ComposeResult r;
    if (async_mode) {
      bool done = false;
      engine.compose_async(gen.request, s->rng, [&](ComposeResult res) {
        r = std::move(res);
        done = true;
      });
      s->sim.run();
      EXPECT_TRUE(done);
    } else {
      r = engine.compose(gen.request, s->rng);
    }
    for (HoldId h : r.best_holds) s->alloc->release_hold(h);
    out.results.push_back(std::move(r));
  }
  out.arena = engine.arena_totals();
  return out;
}

void expect_equal(const RunOutput& shared, const RunOutput& cloned) {
  ASSERT_EQ(shared.results.size(), cloned.results.size());
  for (std::size_t i = 0; i < shared.results.size(); ++i) {
    const ComposeResult& a = shared.results[i];
    const ComposeResult& b = cloned.results[i];
    EXPECT_EQ(a.success, b.success) << "request " << i;
    if (a.success && b.success) {
      EXPECT_TRUE(a.best.same_mapping(b.best)) << "request " << i;
      EXPECT_NEAR(a.best.psi_cost, b.best.psi_cost, 1e-12) << "request " << i;
      EXPECT_EQ(a.best_holds.size(), b.best_holds.size()) << "request " << i;
    }
    ASSERT_EQ(a.backups.size(), b.backups.size()) << "request " << i;
    for (std::size_t k = 0; k < a.backups.size(); ++k) {
      EXPECT_TRUE(a.backups[k].same_mapping(b.backups[k]))
          << "request " << i << " backup " << k;
    }
    const ComposeStats& x = a.stats;
    const ComposeStats& y = b.stats;
    EXPECT_EQ(x.probes_spawned, y.probes_spawned) << "request " << i;
    EXPECT_EQ(x.probes_arrived, y.probes_arrived) << "request " << i;
    EXPECT_EQ(x.probes_forwarded, y.probes_forwarded) << "request " << i;
    EXPECT_EQ(x.probes_dropped_total(), y.probes_dropped_total())
        << "request " << i;
    EXPECT_EQ(x.holds_acquired, y.holds_acquired) << "request " << i;
    EXPECT_EQ(x.holds_reused, y.holds_reused) << "request " << i;
    EXPECT_EQ(x.probe_messages, y.probe_messages) << "request " << i;
    EXPECT_EQ(x.discovery_messages, y.discovery_messages) << "request " << i;
    EXPECT_EQ(x.qualified_found, y.qualified_found) << "request " << i;
    // The new accounting itself must not depend on the representation:
    // both modes report the spawn-time copy/sharing the *shared* layout
    // performs, so the counters stay comparable across configurations.
    EXPECT_EQ(x.probe_bytes_copied, y.probe_bytes_copied) << "request " << i;
    EXPECT_EQ(x.prefix_nodes_shared, y.prefix_nodes_shared) << "request " << i;
    EXPECT_NEAR(x.setup_time_ms, y.setup_time_ms, 1e-9) << "request " << i;
  }

  // Metrics snapshots agree counter for counter and bucket for bucket.
  ASSERT_EQ(shared.metrics.counters().size(), cloned.metrics.counters().size());
  for (const auto& [name, counter] : shared.metrics.counters()) {
    const obs::Counter* other = cloned.metrics.find_counter(name);
    ASSERT_NE(other, nullptr) << name;
    EXPECT_EQ(counter.value(), other->value()) << name;
  }
  ASSERT_EQ(shared.metrics.histograms().size(),
            cloned.metrics.histograms().size());
  for (const auto& [name, hist] : shared.metrics.histograms()) {
    EXPECT_EQ(hist.counts(), cloned.metrics.histograms().at(name).counts())
        << name;
  }

  // Sharing is doing its job: strictly fewer segment allocations than the
  // clone-everything oracle, identical peak-or-lower footprint.
  EXPECT_LT(shared.arena.segments_allocated, cloned.arena.segments_allocated);
  EXPECT_LE(shared.arena.peak_live_segments, cloned.arena.peak_live_segments);
}

class PrefixSharingEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, double>> {};

TEST_P(PrefixSharingEquivalence, SharedMatchesCloneOracle) {
  const auto [async_mode, loss] = GetParam();
  const RunOutput shared = run_stream(false, async_mode, loss);
  const RunOutput cloned = run_stream(true, async_mode, loss);
  expect_equal(shared, cloned);
}

INSTANTIATE_TEST_SUITE_P(
    Drivers, PrefixSharingEquivalence,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0.0, 0.2)));

}  // namespace
}  // namespace spider::core
