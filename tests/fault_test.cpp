// Tests for the fault-injection layer: hash-determinism of the link
// fault model, zero-fault byte-identity, loss handling in BCP probing
// (branch drops, retransmission, budget accounting), the churn driver's
// bit-for-bit equivalence with a hand-rolled churn loop, and the session
// layer's miss-threshold / lost-notification behavior.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "fault/churn.hpp"
#include "fault/fault.hpp"
#include "test_scenario.hpp"

namespace spider::fault {
namespace {

using core::BcpConfig;
using core::BcpEngine;
using core::ComposeResult;

TEST(LinkFaultModelTest, CleanModelIsInactive) {
  EXPECT_FALSE(LinkFaultModel().active());
  EXPECT_FALSE(LinkFaultModel::uniform_loss(0.0).active());
  EXPECT_TRUE(LinkFaultModel::uniform_loss(0.1).active());

  LinkFaultModel jittery;
  LinkFaultProfile p;
  p.jitter_ms = 5.0;
  jittery.set_link(3, p);
  EXPECT_TRUE(jittery.active());
  jittery.clear_link(3);
  EXPECT_FALSE(jittery.active());
}

TEST(LinkFaultModelTest, SamplingIsDeterministicInTheKey) {
  const LinkFaultModel model = LinkFaultModel::uniform_loss(0.5);
  const overlay::OverlayLinkId links[] = {1, 2, 3};
  bool any_lost = false, any_delivered = false;
  for (std::uint64_t key = 0; key < 64; ++key) {
    const DeliveryOutcome a = model.sample_path(links, key);
    const DeliveryOutcome b = model.sample_path(links, key);
    EXPECT_EQ(a.delivered, b.delivered) << "same key, same outcome";
    any_lost = any_lost || !a.delivered;
    any_delivered = any_delivered || a.delivered;
  }
  EXPECT_TRUE(any_lost);
  EXPECT_TRUE(any_delivered);
}

TEST(LinkFaultModelTest, CertainLossDropsAndEmptyPathDelivers) {
  const LinkFaultModel model = LinkFaultModel::uniform_loss(1.0);
  const overlay::OverlayLinkId link = 7;
  EXPECT_FALSE(model.sample_link(link, 42).delivered);
  // Local delivery (src == dst) never traverses a link.
  EXPECT_TRUE(model.sample_path({}, 42).delivered);
  EXPECT_FALSE(model.sample_default(42).delivered);
  EXPECT_TRUE(LinkFaultModel::uniform_loss(0.0).sample_default(42).delivered);
}

TEST(LinkFaultModelTest, PerLinkOverrideWinsOverDefault) {
  LinkFaultModel model;  // clean default
  LinkFaultProfile lossy;
  lossy.loss = 1.0;
  model.set_link(5, lossy);
  EXPECT_FALSE(model.sample_link(5, 1).delivered);
  EXPECT_TRUE(model.sample_link(6, 1).delivered);
}

TEST(LinkFaultModelTest, JitterIsBoundedAndReorderFlagged) {
  LinkFaultProfile p;
  p.jitter_ms = 10.0;
  p.reorder = 1.0;
  p.reorder_window_ms = 20.0;
  const LinkFaultModel model{p};
  const overlay::OverlayLinkId link = 1;
  for (std::uint64_t key = 0; key < 32; ++key) {
    const DeliveryOutcome d = model.sample_link(link, key);
    ASSERT_TRUE(d.delivered);
    EXPECT_TRUE(d.reordered);
    EXPECT_GE(d.extra_delay_ms, 0.0);
    EXPECT_LE(d.extra_delay_ms, p.jitter_ms + p.reorder_window_ms);
  }
}

// --- BCP under the fault model -------------------------------------------

ComposeResult compose_with_model(std::uint64_t seed,
                                 const LinkFaultModel* model,
                                 core::ComposeStats* out_stats = nullptr) {
  auto s = spider::testing::small_scenario(seed);
  BcpConfig config;
  config.probing_budget = 64;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  engine.set_fault_model(model);
  auto req = spider::testing::easy_request(*s);
  Rng rng(5);
  ComposeResult r = engine.compose(req, rng);
  if (out_stats != nullptr) *out_stats = r.stats;
  return r;
}

TEST(BcpFaultTest, ZeroProbabilityModelIsByteIdentical) {
  core::ComposeStats without, with_clean;
  const ComposeResult a = compose_with_model(7, nullptr, &without);
  const LinkFaultModel clean = LinkFaultModel::uniform_loss(0.0);
  const ComposeResult b = compose_with_model(7, &clean, &with_clean);

  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(without.probes_spawned, with_clean.probes_spawned);
  EXPECT_EQ(without.probes_arrived, with_clean.probes_arrived);
  EXPECT_EQ(without.probe_messages, with_clean.probe_messages);
  EXPECT_EQ(without.candidates_merged, with_clean.candidates_merged);
  EXPECT_EQ(with_clean.probe_retransmits, 0u);
  EXPECT_EQ(with_clean.probe_messages_lost, 0u);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.best.psi_cost, b.best.psi_cost) << "bit-identical selection";
  ASSERT_EQ(a.best.mapping.size(), b.best.mapping.size());
  for (std::size_t i = 0; i < a.best.mapping.size(); ++i) {
    EXPECT_EQ(a.best.mapping[i].host, b.best.mapping[i].host);
  }
}

TEST(BcpFaultTest, ProbeAccountingHoldsUnderLoss) {
  for (double loss : {0.1, 0.3, 0.6}) {
    const LinkFaultModel model = LinkFaultModel::uniform_loss(loss);
    core::ComposeStats stats;
    compose_with_model(7, &model, &stats);
    EXPECT_EQ(stats.probes_spawned, stats.probes_arrived +
                                        stats.probes_dropped_total() +
                                        stats.probes_forwarded)
        << "accounting must balance at loss=" << loss;
  }
}

TEST(BcpFaultTest, RetransmissionAbsorbsModerateLoss) {
  const LinkFaultModel model = LinkFaultModel::uniform_loss(0.1);
  core::ComposeStats stats;
  const ComposeResult r = compose_with_model(7, &model, &stats);
  EXPECT_TRUE(r.success) << "10% loss should be absorbed by retransmission";
  EXPECT_GT(stats.probe_retransmits, 0u);
  EXPECT_EQ(stats.probe_retransmits, stats.probe_messages_lost -
                                         stats.probes_dropped_lost -
                                         stats.candidates_skipped_lost)
      << "every loss is either retransmitted or gives up a delivery";
}

TEST(BcpFaultTest, RetransmissionIsBudgetBounded) {
  // With certain loss every transmission fails, so message count is
  // bounded by (1 + retx_limit) x the loss-free transmission count.
  core::ComposeStats clean_stats;
  compose_with_model(7, nullptr, &clean_stats);

  const LinkFaultModel model = LinkFaultModel::uniform_loss(1.0);
  core::ComposeStats stats;
  const ComposeResult r = compose_with_model(7, &model, &stats);
  EXPECT_FALSE(r.success) << "nothing can be composed when no message lands";
  const BcpConfig defaults;
  EXPECT_LE(stats.probe_messages,
            (1u + std::uint64_t(defaults.probe_retx_limit)) *
                clean_stats.probe_messages);
  EXPECT_EQ(stats.probes_arrived, 0u);
}

TEST(BcpFaultTest, CertainLossOnOneLinkDropsExactlyThatBranch) {
  // Find the winning first-hop route in a clean run, then make its first
  // link perfectly lossy: that branch (and only loss-dropped branches)
  // must disappear while composition still succeeds via others. The
  // scenario draw must put the winner's first component off the source
  // peer (a same-peer winner has no first link to poison), so scan seeds
  // for one where the precondition holds.
  std::uint64_t seed = 0;
  ComposeResult clean;
  for (std::uint64_t candidate = 7; candidate < 32; ++candidate) {
    clean = compose_with_model(candidate, nullptr);
    if (!clean.success) continue;
    if (clean.best.mapping[0].host == clean.best.source) continue;
    seed = candidate;
    break;
  }
  ASSERT_NE(seed, 0u) << "no seed with an off-source first hop in range";

  auto s = spider::testing::small_scenario(seed);
  const overlay::PeerId first_host = clean.best.mapping[0].host;
  const overlay::OverlayPath path =
      *s->deployment->overlay().route(clean.best.source, first_host);
  ASSERT_TRUE(path.valid);
  ASSERT_FALSE(path.links.empty());

  LinkFaultModel model;  // clean default, one poisoned link
  LinkFaultProfile lossy;
  lossy.loss = 1.0;
  model.set_link(path.links.front(), lossy);

  BcpConfig config;
  config.probing_budget = 64;
  BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim, config);
  engine.set_fault_model(&model);
  auto req = spider::testing::easy_request(*s);
  Rng rng(5);
  const ComposeResult r = engine.compose(req, rng);

  EXPECT_TRUE(r.success) << "other branches must survive";
  EXPECT_GT(r.stats.probes_dropped_lost + r.stats.candidates_skipped_lost, 0u)
      << "the poisoned branch must be dropped";
  if (r.success) {
    const overlay::OverlayPath new_path =
        *s->deployment->overlay().route(r.best.source,
                                        r.best.mapping[0].host);
    ASSERT_TRUE(new_path.valid);
    if (!new_path.links.empty()) {
      EXPECT_NE(new_path.links.front(), path.links.front())
          << "the winner cannot start on a link that drops everything";
    }
  }
}

// --- Churn driver ---------------------------------------------------------

TEST(ChurnDriverTest, MatchesHandRolledChurnLoopBitForBit) {
  // The refactored benches rely on this: replacing the ad-hoc loop with
  // an equivalent ChurnPlan must reproduce the exact same kill/revive
  // sequence from the same Rng.
  const std::size_t kTicks = 6;
  const double kUnitMs = 1000.0;
  const double kFailFraction = 0.05;
  const double kMeanDowntimeUnits = 3.0;

  struct Event {
    double at_ms;
    overlay::PeerId peer;
    bool crash;
  };

  auto hand_rolled = [&] {
    auto s = spider::testing::small_scenario(11);
    std::vector<Event> events;
    for (std::size_t unit = 0; unit < kTicks; ++unit) {
      s->sim.schedule_at(double(unit + 1) * kUnitMs, [&, unit] {
        const auto live = s->deployment->live_peers();
        const auto kill_count = std::max<std::size_t>(
            1, std::size_t(double(live.size()) * kFailFraction));
        for (std::size_t k = 0; k < kill_count; ++k) {
          const auto survivors = s->deployment->live_peers();
          if (survivors.size() <= 2) break;
          const overlay::PeerId victim =
              survivors[s->rng.next_below(survivors.size())];
          s->deployment->kill_peer(victim);
          events.push_back({s->sim.now(), victim, true});
          const double downtime =
              s->rng.next_exponential(kMeanDowntimeUnits) * kUnitMs;
          s->sim.schedule_after(downtime, [&, victim] {
            s->deployment->revive_peer(victim);
            events.push_back({s->sim.now(), victim, false});
          });
        }
      });
    }
    s->sim.run_until(double(kTicks + 1) * kUnitMs);
    return events;
  };

  auto driven = [&] {
    auto s = spider::testing::small_scenario(11);
    std::vector<Event> events;
    ChurnPlan plan;
    plan.period_ms = kUnitMs;
    plan.ticks = kTicks;
    plan.fail_fraction = kFailFraction;
    plan.mean_downtime = kMeanDowntimeUnits;
    plan.downtime_scale_ms = kUnitMs;
    ChurnDriver::Hooks hooks;
    hooks.live_peers = [&] { return s->deployment->live_peers(); };
    hooks.kill = [&](PeerId p) {
      s->deployment->kill_peer(p);
      events.push_back({s->sim.now(), p, true});
    };
    hooks.revive = [&](PeerId p) {
      s->deployment->revive_peer(p);
      events.push_back({s->sim.now(), p, false});
    };
    ChurnDriver driver(s->sim, s->rng, plan, std::move(hooks));
    driver.schedule();
    s->sim.run_until(double(kTicks + 1) * kUnitMs);
    return events;
  };

  const auto a = hand_rolled();
  const auto b = driven();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ms, b[i].at_ms) << "event " << i;
    EXPECT_EQ(a[i].peer, b[i].peer) << "event " << i;
    EXPECT_EQ(a[i].crash, b[i].crash) << "event " << i;
  }
}

TEST(ChurnDriverTest, ScriptedEventsFireAtTheirTimes) {
  auto s = spider::testing::small_scenario(3);
  ChurnPlan plan;
  plan.events.push_back({100.0, 4, /*crash=*/true});
  plan.events.push_back({300.0, 4, /*crash=*/false});
  std::size_t kills_seen = 0;
  ChurnDriver::Hooks hooks;
  hooks.kill = [&](PeerId p) { s->deployment->kill_peer(p); };
  hooks.revive = [&](PeerId p) { s->deployment->revive_peer(p); };
  hooks.on_kill = [&](PeerId p, std::size_t tick) {
    EXPECT_EQ(p, 4u);
    EXPECT_EQ(tick, std::size_t(-1)) << "scripted crash, not a tick";
    ++kills_seen;
  };
  ChurnDriver driver(s->sim, s->rng, plan, std::move(hooks));
  driver.schedule();
  s->sim.schedule_at(200.0, [&] {
    EXPECT_FALSE(s->deployment->peer_alive(4));
  });
  s->sim.run_until(400.0);
  EXPECT_TRUE(s->deployment->peer_alive(4));
  EXPECT_EQ(kills_seen, 1u);
  EXPECT_EQ(driver.crashes(), 1u);
  EXPECT_EQ(driver.revives(), 1u);
}

// --- Session layer under faults ------------------------------------------

class SessionFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario(/*seed=*/17, /*peers=*/64);
    BcpConfig config;
    config.probing_budget = 128;
    engine_ = std::make_unique<BcpEngine>(*scenario_->deployment,
                                          *scenario_->alloc,
                                          *scenario_->evaluator,
                                          scenario_->sim, config);
    rng_.reseed(23);
  }

  void make_manager(core::RecoveryConfig recovery) {
    recovery.backup_aggressiveness = 30.0;
    manager_ = std::make_unique<core::SessionManager>(
        *scenario_->deployment, *scenario_->alloc, *scenario_->evaluator,
        *engine_, scenario_->sim, recovery);
  }

  core::SessionId establish_one() {
    auto req = spider::testing::easy_request(*scenario_);
    ComposeResult r = engine_->compose(req, rng_);
    if (!r.success) return core::kInvalidSession;
    return manager_->establish(req, std::move(r));
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<BcpEngine> engine_;
  std::unique_ptr<core::SessionManager> manager_;
  Rng rng_{23};
};

TEST_F(SessionFaultTest, MissThresholdDelaysDeclaringAPeerDead) {
  core::RecoveryConfig recovery;
  recovery.liveness_miss_threshold = 3;
  make_manager(recovery);
  ASSERT_NE(establish_one(), core::kInvalidSession);

  // Every probe round-trip is lost, but all peers are actually alive:
  // passes 1 and 2 must not trigger recovery, pass 3 must.
  const LinkFaultModel model = LinkFaultModel::uniform_loss(1.0);
  manager_->set_fault_model(&model);
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  EXPECT_FALSE(manager_->monitor_active_sessions(rng_).empty());
  EXPECT_GT(manager_->stats().false_suspicions, 0u)
      << "misses of live peers are false suspicions";
  EXPECT_GT(manager_->stats().liveness_probe_misses, 0u);
}

TEST_F(SessionFaultTest, SuccessfulProbeResetsMissCount) {
  core::RecoveryConfig recovery;
  recovery.liveness_miss_threshold = 2;
  make_manager(recovery);
  ASSERT_NE(establish_one(), core::kInvalidSession);

  const LinkFaultModel lossy = LinkFaultModel::uniform_loss(1.0);
  const LinkFaultModel clean = LinkFaultModel::uniform_loss(0.0);
  manager_->set_fault_model(&lossy);
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  // A clean pass resets every miss counter...
  manager_->set_fault_model(&clean);
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  // ...so one more lossy pass is again below the threshold.
  manager_->set_fault_model(&lossy);
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  EXPECT_FALSE(manager_->monitor_active_sessions(rng_).empty());
}

TEST_F(SessionFaultTest, LostNotificationFallsBackToMonitorDetection) {
  core::RecoveryConfig recovery;
  recovery.liveness_miss_threshold = 1;
  make_manager(recovery);
  const core::SessionId id = establish_one();
  ASSERT_NE(id, core::kInvalidSession);

  // All messages lost: the failure notification cannot reach the source.
  const LinkFaultModel model = LinkFaultModel::uniform_loss(1.0);
  manager_->set_fault_model(&model);
  const auto* active = manager_->active_graph(id);
  ASSERT_NE(active, nullptr);
  const PeerId victim = active->mapping.front().host;
  scenario_->deployment->kill_peer(victim);

  const auto outcomes = manager_->on_peer_failed(victim, rng_);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes.front(), core::RecoveryOutcome::kNotificationLost);
  EXPECT_EQ(manager_->stats().notifications_lost, 1u);
  EXPECT_EQ(manager_->stats().breaks, 0u)
      << "an unaware source cannot have started recovery";
  ASSERT_NE(manager_->active_graph(id), nullptr)
      << "the session must still exist, merely broken";
  EXPECT_TRUE(manager_->active_graph(id)->uses_peer(victim));

  // The periodic monitor times the dead peer out and recovers.
  const auto monitored = manager_->monitor_active_sessions(rng_);
  ASSERT_FALSE(monitored.empty());
  EXPECT_GT(manager_->stats().breaks, 0u);
}

TEST_F(SessionFaultTest, ZeroFaultMonitorMatchesPlainAlivenessCheck) {
  core::RecoveryConfig recovery;
  make_manager(recovery);
  const core::SessionId id = establish_one();
  ASSERT_NE(id, core::kInvalidSession);

  const LinkFaultModel clean = LinkFaultModel::uniform_loss(0.0);
  manager_->set_fault_model(&clean);
  EXPECT_TRUE(manager_->monitor_active_sessions(rng_).empty());
  EXPECT_EQ(manager_->stats().liveness_probe_misses, 0u);

  const auto* active = manager_->active_graph(id);
  ASSERT_NE(active, nullptr);
  scenario_->deployment->kill_peer(active->mapping.front().host);
  EXPECT_FALSE(manager_->monitor_active_sessions(rng_).empty())
      << "default threshold of 1 reacts to the first missed probe";
}

}  // namespace
}  // namespace spider::fault
