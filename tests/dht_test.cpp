// Tests for the Pastry DHT: NodeId arithmetic, leaf set / routing table
// invariants, routing correctness vs the ground-truth oracle, churn
// resilience, replicated storage.
#include <gtest/gtest.h>

#include <string>

#include "dht/node_id.hpp"
#include "dht/pastry.hpp"
#include "dht/routing_state.hpp"
#include "util/rng.hpp"

namespace spider::dht {
namespace {

TEST(NodeId, DigitsRoundTrip) {
  const NodeId id = NodeId::from_parts(0x0123456789abcdefULL,
                                       0xfedcba9876543210ULL);
  EXPECT_EQ(id.digit(0), 0x0);
  EXPECT_EQ(id.digit(1), 0x1);
  EXPECT_EQ(id.digit(15), 0xf);
  EXPECT_EQ(id.digit(16), 0xf);
  EXPECT_EQ(id.digit(31), 0x0);
  EXPECT_EQ(id.to_string(), "0123456789abcdeffedcba9876543210");
}

TEST(NodeId, SharedPrefix) {
  const NodeId a = NodeId::from_parts(0x1234000000000000ULL, 0);
  const NodeId b = NodeId::from_parts(0x1235000000000000ULL, 0);
  EXPECT_EQ(a.shared_prefix(b), 3);
  EXPECT_EQ(a.shared_prefix(a), kDigitsPerId);
}

TEST(NodeId, RingDistanceWrapsAround) {
  const NodeId zero(0);
  const NodeId one(1);
  const NodeId max(~static_cast<unsigned __int128>(0));
  EXPECT_EQ(NodeId::ring_distance(zero, one), 1u);
  EXPECT_EQ(NodeId::ring_distance(zero, max), 1u);  // wraps
  EXPECT_EQ(NodeId::ring_distance(max, one), 2u);
}

TEST(NodeId, HashOfIsDeterministicAndSpread) {
  EXPECT_EQ(NodeId::hash_of("abc"), NodeId::hash_of("abc"));
  EXPECT_NE(NodeId::hash_of("abc"), NodeId::hash_of("abd"));
}

TEST(LeafSet, KeepsClosestPerSide) {
  const NodeId self(1000);
  LeafSet leaves(self, 2);
  for (unsigned v : {1100u, 1200u, 1300u, 900u, 800u, 700u}) {
    leaves.insert(NodeId(v));
  }
  // Clockwise side keeps 1100, 1200; counterclockwise keeps 900, 800.
  EXPECT_TRUE(leaves.contains(NodeId(1100)));
  EXPECT_TRUE(leaves.contains(NodeId(1200)));
  EXPECT_FALSE(leaves.contains(NodeId(1300)));
  EXPECT_TRUE(leaves.contains(NodeId(900)));
  EXPECT_TRUE(leaves.contains(NodeId(800)));
  EXPECT_FALSE(leaves.contains(NodeId(700)));
}

TEST(LeafSet, ClosestIncludesSelf) {
  const NodeId self(1000);
  LeafSet leaves(self, 2);
  leaves.insert(NodeId(2000));
  EXPECT_EQ(leaves.closest(NodeId(1001)), self);
  EXPECT_EQ(leaves.closest(NodeId(1999)), NodeId(2000));
}

TEST(LeafSet, CoversEverythingWhenSparse) {
  LeafSet leaves(NodeId(5), 4);
  leaves.insert(NodeId(10));
  // Sides not full -> node knows the whole arc.
  EXPECT_TRUE(leaves.covers(NodeId(123456)));
}

TEST(LeafSet, RemoveShrinks) {
  LeafSet leaves(NodeId(0), 2);
  leaves.insert(NodeId(1));
  EXPECT_TRUE(leaves.remove(NodeId(1)));
  EXPECT_FALSE(leaves.contains(NodeId(1)));
  EXPECT_FALSE(leaves.remove(NodeId(1)));
}

TEST(RoutingTable, CanonicalPlacement) {
  const NodeId self = NodeId::from_parts(0x0000000000000000ULL, 0);
  RoutingTable table(self);
  const NodeId other = NodeId::from_parts(0x00ff000000000000ULL, 0);
  EXPECT_TRUE(table.insert(other));
  // Shares 2 digits with self; next digit is 0xf.
  EXPECT_EQ(table.at(2, 0xf), other);
  EXPECT_FALSE(table.insert(other));  // occupied
  EXPECT_TRUE(table.remove(other));
  EXPECT_FALSE(table.at(2, 0xf).has_value());
}

TEST(RoutingTable, NextHopUsesKeyDigit) {
  const NodeId self(0);
  RoutingTable table(self);
  const NodeId entry = NodeId::from_parts(0xa000000000000000ULL, 0);
  table.insert(entry);
  const NodeId key = NodeId::from_parts(0xa123000000000000ULL, 0);
  ASSERT_TRUE(table.next_hop(key).has_value());
  EXPECT_EQ(*table.next_hop(key), entry);
}

class PastryTest : public ::testing::Test {
 protected:
  /// Builds an n-node network with random (but deterministic) ids.
  PastryNetwork build(std::size_t n, int leaf = 8, int repl = 3) {
    PastryNetwork net(leaf, repl);
    Rng rng(99);
    net.bootstrap(0, NodeId::random(rng));
    for (PeerId p = 1; p < n; ++p) {
      net.join(p, NodeId::random(rng),
               PeerId(rng.next_below(p)));  // random live bootstrap
    }
    return net;
  }
};

TEST_F(PastryTest, RoutingDeliversToOracleOwner) {
  PastryNetwork net = build(64);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const NodeId key = NodeId::random(rng);
    const PeerId from = PeerId(rng.next_below(64));
    const RouteResult r = net.route(from, key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.target(), net.owner_oracle(key))
        << "key " << key.to_string();
  }
}

TEST_F(PastryTest, RoutingHopsAreLogarithmic) {
  PastryNetwork net = build(128);
  Rng rng(6);
  double total_hops = 0;
  constexpr int kLookups = 300;
  for (int i = 0; i < kLookups; ++i) {
    const RouteResult r =
        net.route(PeerId(rng.next_below(128)), NodeId::random(rng));
    total_hops += double(r.hops());
  }
  // log16(128) ≈ 1.75; allow generous slack but far below O(N).
  EXPECT_LT(total_hops / kLookups, 6.0);
}

TEST_F(PastryTest, PutGetRoundTrip) {
  PastryNetwork net = build(48);
  const NodeId key = NodeId::hash_of("service/foo");
  net.put(3, key, "meta-1");
  net.put(7, key, "meta-2");
  net.put(9, key, "meta-1");  // duplicate value: idempotent

  const GetResult got = net.get(11, key);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values.size(), 2u);
}

TEST_F(PastryTest, GetSurvivesOwnerFailure) {
  PastryNetwork net = build(48, 8, 3);
  const NodeId key = NodeId::hash_of("service/bar");
  net.put(0, key, "replica-data");
  const PeerId owner = net.owner_oracle(key);
  net.fail(owner);
  const GetResult got = net.get((owner + 1) % 48, key);
  EXPECT_TRUE(got.found) << "replicas should cover a single owner failure";
  EXPECT_EQ(got.values.front(), "replica-data");
}

TEST_F(PastryTest, EraseRemovesEverywhere) {
  PastryNetwork net = build(32);
  const NodeId key = NodeId::hash_of("service/baz");
  net.put(1, key, "gone");
  net.erase(key, "gone");
  EXPECT_FALSE(net.get(2, key).found);
}

TEST_F(PastryTest, RoutingHealsAfterChurn) {
  PastryNetwork net = build(96);
  Rng rng(7);
  // Fail 20% of nodes abruptly.
  std::size_t failed = 0;
  for (PeerId p = 1; p < 96 && failed < 19; p += 5, ++failed) {
    net.fail(p);
  }
  for (int i = 0; i < 150; ++i) {
    PeerId from;
    do {
      from = PeerId(rng.next_below(96));
    } while (!net.alive(from));
    const NodeId key = NodeId::random(rng);
    const RouteResult r = net.route(from, key);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(net.alive(r.target()));
    EXPECT_EQ(r.target(), net.owner_oracle(key));
  }
}

TEST_F(PastryTest, GracefulLeaveHandsOffKeys) {
  PastryNetwork net = build(40);
  const NodeId key = NodeId::hash_of("service/handoff");
  net.put(0, key, "payload");
  const PeerId owner = net.owner_oracle(key);
  net.leave(owner);
  const GetResult got = net.get((owner + 2) % 40, key);
  EXPECT_TRUE(got.found);
}

TEST_F(PastryTest, RefreshReplicasHealsAfterHeavyChurn) {
  PastryNetwork net = build(80, 8, 3);
  const NodeId key = NodeId::hash_of("service/heal");
  net.put(0, key, "healed");
  // Kill the whole replica neighborhood except survivors, then refresh.
  for (int round = 0; round < 3; ++round) {
    const PeerId owner = net.owner_oracle(key);
    if (owner == 0) break;
    net.fail(owner);
    net.refresh_replicas();
  }
  EXPECT_TRUE(net.get(0, key).found);
}

TEST_F(PastryTest, JoinAfterFailuresStillRoutes) {
  PastryNetwork net = build(50);
  Rng rng(8);
  net.fail(10);
  net.fail(20);
  net.join(50, NodeId::random(rng), 0);
  for (int i = 0; i < 50; ++i) {
    const NodeId key = NodeId::random(rng);
    EXPECT_EQ(net.route(0, key).target(), net.owner_oracle(key));
  }
}

TEST_F(PastryTest, MessageCounterAdvances) {
  PastryNetwork net = build(32);
  net.reset_message_counter();
  net.put(0, NodeId::hash_of("x"), "v");
  EXPECT_GT(net.messages_sent(), 0u);
}

TEST(PastryProximity, ContestedCellKeepsCloserEntry) {
  // Three nodes whose ids share no prefix with each other except that two
  // of them contest the same cell in the first node's routing table; with
  // a proximity metric, the closer one must win the cell.
  PastryNetwork net(8, 1);
  // Proximity: peer 1 is far from peer 0; peer 2 is near peer 0.
  net.set_proximity([](PeerId a, PeerId b) {
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return 100.0;
    return 1.0;
  });
  const NodeId id0 = NodeId::from_parts(0x1000000000000000ULL, 0);
  const NodeId id1 = NodeId::from_parts(0xa000000000000000ULL, 0);  // far
  const NodeId id2 = NodeId::from_parts(0xa100000000000000ULL, 0);  // near
  net.bootstrap(0, id0);
  net.join(1, id1, 0);
  net.join(2, id2, 0);
  // Both id1 and id2 contest node 0's cell (row 0, digit 0xa); the near
  // one (id2) must hold it.
  const auto cell = net.routing_table(0).at(0, 0xa);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, id2);
  // Routing correctness is unaffected.
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const NodeId key = NodeId::random(rng);
    EXPECT_EQ(net.route(0, key).target(), net.owner_oracle(key));
  }
}

TEST_F(PastryTest, SmallNetworksRouteCorrectly) {
  for (std::size_t n : {2u, 3u, 5u}) {
    PastryNetwork net = build(n);
    Rng rng(9);
    for (int i = 0; i < 40; ++i) {
      const NodeId key = NodeId::random(rng);
      EXPECT_EQ(net.route(0, key).target(), net.owner_oracle(key))
          << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace spider::dht
