// Tests for the overlay layer: construction from IP topology and PlanetLab
// matrices, metric inheritance, routing around dead peers, cache
// invalidation on liveness changes.
#include <gtest/gtest.h>

#include "net/generator.hpp"
#include "net/planetlab.hpp"
#include "net/router.hpp"
#include "overlay/overlay.hpp"
#include "util/rng.hpp"

namespace spider::overlay {
namespace {

OverlayNetwork make_overlay(Rng& rng, std::size_t ip_nodes = 300,
                            std::size_t peers = 40,
                            OverlayKind kind = OverlayKind::kNearestMesh) {
  static std::unique_ptr<net::Topology> topo;
  static std::unique_ptr<net::Router> router;
  topo = std::make_unique<net::Topology>(net::power_law(ip_nodes, 2, rng));
  router = std::make_unique<net::Router>(*topo);
  std::vector<net::NodeIdx> nodes;
  for (std::size_t idx : rng.sample_indices(ip_nodes, peers)) {
    nodes.push_back(net::NodeIdx(idx));
  }
  return OverlayNetwork::from_topology(*topo, *router, std::move(nodes), kind,
                                       4, rng);
}

TEST(Overlay, MeshConstructionBasics) {
  Rng rng(1);
  OverlayNetwork ov = make_overlay(rng);
  EXPECT_EQ(ov.peer_count(), 40u);
  EXPECT_EQ(ov.live_count(), 40u);
  EXPECT_GT(ov.link_count(), 0u);
  // Each peer has at least `degree` neighbors (mesh adds both directions).
  for (PeerId p = 0; p < ov.peer_count(); ++p) {
    EXPECT_GE(ov.neighbors(p).size(), 4u);
  }
}

TEST(Overlay, LinkMetricsInheritedFromIpPath) {
  Rng rng(2);
  auto topo = net::power_law(200, 2, rng);
  net::Router router(topo);
  std::vector<net::NodeIdx> nodes{1, 5, 9, 13, 50, 77};
  OverlayNetwork ov = OverlayNetwork::from_topology(
      topo, router, std::move(nodes), OverlayKind::kNearestMesh, 2, rng);
  for (OverlayLinkId l = 0; l < ov.link_count(); ++l) {
    const OverlayLink& link = ov.link(l);
    const net::PathMetrics m =
        router.metrics(ov.ip_node(link.a), ov.ip_node(link.b));
    EXPECT_DOUBLE_EQ(link.delay_ms, m.delay_ms);
    EXPECT_DOUBLE_EQ(link.capacity_kbps, m.bottleneck_kbps);
  }
}

TEST(Overlay, RouteFindsMinDelayPath) {
  Rng rng(3);
  OverlayNetwork ov = make_overlay(rng);
  const OverlayPathRef path = ov.route(0, 17);
  ASSERT_TRUE(path->valid);
  EXPECT_GT(path->delay_ms, 0.0);
  // Path link chain must connect 0 to 17.
  PeerId cur = 0;
  for (OverlayLinkId l : path->links) cur = ov.link(l).other(cur);
  EXPECT_EQ(cur, 17u);
  // Delay equals sum of link delays.
  double sum = 0;
  for (OverlayLinkId l : path->links) sum += ov.link(l).delay_ms;
  EXPECT_NEAR(sum, path->delay_ms, 1e-9);
}

TEST(Overlay, SelfRouteIsTrivial) {
  Rng rng(4);
  OverlayNetwork ov = make_overlay(rng);
  const OverlayPathRef path = ov.route(3, 3);
  EXPECT_TRUE(path->valid);
  EXPECT_TRUE(path->links.empty());
  EXPECT_DOUBLE_EQ(ov.delay_ms(3, 3), 0.0);
}

TEST(Overlay, DeadPeerIsAvoided) {
  Rng rng(5);
  OverlayNetwork ov = make_overlay(rng, 300, 30);
  // Find a route that traverses some intermediate peer, kill it, verify
  // rerouting avoids it.
  PeerId victim = kInvalidPeer;
  const OverlayPath before = *ov.route(0, 20);
  ASSERT_TRUE(before.valid);
  if (before.links.size() >= 2) {
    victim = ov.link(before.links[0]).other(0);
  }
  if (victim == kInvalidPeer || victim == 20) GTEST_SKIP();
  ov.set_alive(victim, false);
  EXPECT_EQ(ov.live_count(), 29u);
  const OverlayPathRef after = ov.route(0, 20);
  if (after->valid) {
    PeerId cur = 0;
    for (OverlayLinkId l : after->links) {
      cur = ov.link(l).other(cur);
      EXPECT_NE(cur, victim);
    }
  }
}

TEST(Overlay, DeadEndpointInvalidatesRoute) {
  Rng rng(6);
  OverlayNetwork ov = make_overlay(rng);
  ov.set_alive(7, false);
  EXPECT_FALSE(ov.route(0, 7)->valid);
  EXPECT_FALSE(ov.route(7, 0)->valid);
}

TEST(Overlay, ReviveRestoresRouting) {
  Rng rng(7);
  OverlayNetwork ov = make_overlay(rng);
  ov.set_alive(5, false);
  EXPECT_FALSE(ov.route(0, 5)->valid);
  ov.set_alive(5, true);
  EXPECT_TRUE(ov.route(0, 5)->valid);
  EXPECT_EQ(ov.live_count(), ov.peer_count());
}

TEST(Overlay, LiveConnectedReflectsPartitions) {
  Rng rng(8);
  OverlayNetwork ov = make_overlay(rng);
  EXPECT_TRUE(ov.live_connected());
  // Kill half the peers; connectivity may or may not survive but the
  // call must agree with route() reachability.
  for (PeerId p = 0; p < ov.peer_count(); p += 2) ov.set_alive(p, false);
  const bool connected = ov.live_connected();
  bool all_routable = true;
  for (PeerId p = 1; p < ov.peer_count(); p += 2) {
    if (!ov.route(1, p)->valid) all_routable = false;
  }
  EXPECT_EQ(connected, all_routable);
}

TEST(Overlay, FromPlanetLabFullConnectivity) {
  Rng rng(9);
  net::PlanetLabConfig config;
  config.hosts = 30;
  net::PlanetLabModel model(config, rng);
  OverlayNetwork ov =
      OverlayNetwork::from_planetlab(model, OverlayKind::kNearestMesh, 5, rng);
  EXPECT_EQ(ov.peer_count(), 30u);
  EXPECT_TRUE(ov.live_connected());
  for (OverlayLinkId l = 0; l < ov.link_count(); ++l) {
    const OverlayLink& link = ov.link(l);
    EXPECT_DOUBLE_EQ(link.delay_ms, model.delay_ms(link.a, link.b));
    EXPECT_EQ(link.ip_hops, 1u);
  }
}

TEST(Overlay, RandomOverlayIsConnected) {
  Rng rng(10);
  OverlayNetwork ov = make_overlay(rng, 300, 50, OverlayKind::kRandom);
  EXPECT_TRUE(ov.live_connected());
}

TEST(Overlay, AreNeighborsMatchesAdjacency) {
  Rng rng(12);
  OverlayNetwork ov = make_overlay(rng);
  for (const OverlayAdjacency& adj : ov.neighbors(0)) {
    double delay = -1.0;
    EXPECT_TRUE(ov.are_neighbors(0, adj.neighbor, &delay));
    EXPECT_DOUBLE_EQ(delay, ov.link(adj.link).delay_ms);
    EXPECT_TRUE(ov.are_neighbors(adj.neighbor, 0));
  }
  // A peer is not its own neighbor.
  EXPECT_FALSE(ov.are_neighbors(0, 0));
}

TEST(Overlay, MeanNeighborDelayReflectsLiveLinks) {
  Rng rng(13);
  OverlayNetwork ov = make_overlay(rng);
  const double before = ov.mean_neighbor_delay(0);
  EXPECT_GT(before, 0.0);
  // Manual recomputation.
  double sum = 0;
  std::size_t count = 0;
  for (const OverlayAdjacency& adj : ov.neighbors(0)) {
    sum += ov.link(adj.link).delay_ms;
    ++count;
  }
  EXPECT_NEAR(before, sum / double(count), 1e-9);
  // Killing a neighbor removes its link from the average.
  const PeerId victim = ov.neighbors(0)[0].neighbor;
  ov.set_alive(victim, false);
  double sum2 = 0;
  std::size_t count2 = 0;
  for (const OverlayAdjacency& adj : ov.neighbors(0)) {
    if (adj.neighbor == victim) continue;
    sum2 += ov.link(adj.link).delay_ms;
    ++count2;
  }
  EXPECT_NEAR(ov.mean_neighbor_delay(0), sum2 / double(count2), 1e-9);
}

TEST(Overlay, RouteDelayTriangleSanity) {
  Rng rng(11);
  OverlayNetwork ov = make_overlay(rng);
  // Routed delay can never beat the direct overlay link, if one exists.
  for (const OverlayAdjacency& adj : ov.neighbors(0)) {
    EXPECT_LE(ov.delay_ms(0, adj.neighbor),
              ov.link(adj.link).delay_ms + 1e-9);
  }
}

TEST(Overlay, TreeCacheLruNeverThrashesTheQueriedSource) {
  Rng rng(20);
  OverlayNetwork ov = make_overlay(rng);
  ov.set_route_cache_limit(2);
  // Alternating between two sources fits the cap: after the two cold
  // misses, no tree is ever recomputed (the old epoch-clear policy
  // recomputed on every call once the cap was hit).
  for (int i = 0; i < 10; ++i) {
    ov.route(0, 10);
    ov.route(1, 11);
  }
  EXPECT_EQ(ov.route_trees_computed(), 2u);
  // A third source evicts the coldest (source 0), never the one queried.
  ov.route(2, 12);
  EXPECT_EQ(ov.route_trees_computed(), 3u);
  ov.route(1, 13);  // still cached: only source 0 was evicted
  EXPECT_EQ(ov.route_trees_computed(), 3u);
  ov.route(0, 14);  // recomputed: it was the LRU victim
  EXPECT_EQ(ov.route_trees_computed(), 4u);
}

TEST(Overlay, PathCacheIsBoundedAndRepeatHitsAreFree) {
  Rng rng(21);
  OverlayNetwork ov = make_overlay(rng);
  ov.set_route_path_cache_limit(4);
  const std::uint64_t before = ov.route_paths_materialized();
  ov.route(0, 10);
  ov.route(0, 10);
  ov.route(0, 10);
  EXPECT_EQ(ov.route_paths_materialized() - before, 1u)
      << "repeat queries must hit the path cache";
  // Filling the cache past its cap evicts cold pairs and bumps the epoch.
  const std::uint64_t epoch = ov.route_epoch();
  for (PeerId v = 1; v <= 8; ++v) ov.route(0, v);
  EXPECT_GT(ov.route_epoch(), epoch);
}

TEST(Overlay, StalePathRefDerefAborts) {
  Rng rng(22);
  OverlayNetwork ov = make_overlay(rng);
  ov.set_route_path_cache_limit(2);
  OverlayPathRef stale = ov.route(0, 10);
  EXPECT_TRUE(stale->valid);  // fresh: dereference is fine
  // Routing enough other pairs evicts (0, 10); the handle must now abort
  // on dereference instead of reading a freed cache slot.
  for (PeerId v = 1; v <= 6; ++v) ov.route(0, v);
  EXPECT_DEATH((void)stale->valid, "outlived a route-cache eviction");
}

TEST(Overlay, LivenessChangeInvalidatesOutstandingRefs) {
  Rng rng(23);
  OverlayNetwork ov = make_overlay(rng);
  OverlayPathRef ref = ov.route(0, 10);
  EXPECT_TRUE(ref->valid);
  ov.set_alive(5, false);  // clears route caches
  EXPECT_DEATH((void)ref->valid, "outlived a route-cache eviction");
}

TEST(Overlay, DenseRandomWiringFallsBackDeterministically) {
  // 6 peers, degree 16: the rejection loop cannot find 16 distinct
  // partners among 5, so the deterministic fallback links each peer to
  // every other peer and reports all of them as underwired (the old
  // guard loop silently under-provisioned without a trace).
  Rng rng(24);
  auto topo = net::power_law(60, 2, rng);
  net::Router router(topo);
  std::vector<net::NodeIdx> nodes{2, 7, 11, 23, 31, 47};
  OverlayNetwork ov = OverlayNetwork::from_topology(
      topo, router, std::move(nodes), OverlayKind::kRandom, 16, rng);
  EXPECT_EQ(ov.underwired_peers(), 6u);
  // The fallback saturated the clique: every peer adjacent to all others.
  for (PeerId p = 0; p < ov.peer_count(); ++p) {
    EXPECT_EQ(ov.neighbors(p).size(), 5u);
  }
  EXPECT_EQ(ov.link_count(), 15u);  // 6 choose 2
  EXPECT_TRUE(ov.live_connected());
}

TEST(Overlay, SparseRandomWiringReportsNoUnderwiredPeers) {
  Rng rng(25);
  OverlayNetwork ov = make_overlay(rng, 300, 50, OverlayKind::kRandom);
  EXPECT_EQ(ov.underwired_peers(), 0u);
}

}  // namespace
}  // namespace spider::overlay
