// Tests for the allocation manager: soft holds, expiry, confirmation into
// session grants, all-or-nothing path reservations, direct grants.
#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "net/generator.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace spider::core {
namespace {

using service::Resources;

class AllocatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    topo_ = std::make_unique<net::Topology>(net::power_law(120, 2, rng));
    router_ = std::make_unique<net::Router>(*topo_);
    std::vector<net::NodeIdx> nodes;
    for (std::size_t idx : rng.sample_indices(120, 16)) {
      nodes.push_back(net::NodeIdx(idx));
    }
    auto ov = overlay::OverlayNetwork::from_topology(
        *topo_, *router_, std::move(nodes),
        overlay::OverlayKind::kNearestMesh, 3, rng);
    deployment_ = std::make_unique<Deployment>(std::move(ov), rng, 8, 3);
    for (PeerId p = 0; p < deployment_->peer_count(); ++p) {
      deployment_->set_capacity(p, Resources::cpu_mem(10, 10));
    }
    alloc_ = std::make_unique<AllocationManager>(*deployment_, sim_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<net::Router> router_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<AllocationManager> alloc_;
};

TEST_F(AllocatorTest, SoftReserveReducesAvailability) {
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 2), 100.0);
  ASSERT_TRUE(hold.has_value());
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 6.0);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).memory(), 8.0);
}

TEST_F(AllocatorTest, OverbookingRejected) {
  ASSERT_TRUE(alloc_->soft_reserve_peer(0, Resources::cpu_mem(8, 8), 100.0));
  EXPECT_FALSE(
      alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 1), 100.0).has_value());
  // A fitting request still succeeds.
  EXPECT_TRUE(
      alloc_->soft_reserve_peer(0, Resources::cpu_mem(2, 2), 100.0).has_value());
}

TEST_F(AllocatorTest, HoldsExpireLazily) {
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(10, 10), 50.0);
  ASSERT_TRUE(hold.has_value());
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 0.0);
  // Advance virtual time past the expiry: availability is restored on the
  // next query (lazy purge).
  sim_.schedule_at(60.0, [] {});
  sim_.run();
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
  // Confirming the expired hold must fail.
  EXPECT_FALSE(alloc_->confirm(*hold, alloc_->new_session_id()));
}

TEST_F(AllocatorTest, ConfirmConvertsToGrant) {
  auto hold = alloc_->soft_reserve_peer(2, Resources::cpu_mem(5, 5), 100.0);
  ASSERT_TRUE(hold.has_value());
  const SessionId session = alloc_->new_session_id();
  EXPECT_TRUE(alloc_->confirm(*hold, session));
  // Still reserved, now as a grant — and it survives the soft expiry time.
  sim_.schedule_at(200.0, [] {});
  sim_.run();
  EXPECT_DOUBLE_EQ(alloc_->peer_available(2).cpu(), 5.0);
  alloc_->release_session(session);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(2).cpu(), 10.0);
}

TEST_F(AllocatorTest, ReleaseHoldRestoresImmediately) {
  auto hold = alloc_->soft_reserve_peer(1, Resources::cpu_mem(9, 9), 100.0);
  ASSERT_TRUE(hold.has_value());
  alloc_->release_hold(*hold);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(1).cpu(), 10.0);
  // Double release is harmless; confirm after release fails.
  alloc_->release_hold(*hold);
  EXPECT_FALSE(alloc_->confirm(*hold, alloc_->new_session_id()));
}

TEST_F(AllocatorTest, PathReservationIsAllOrNothing) {
  auto& ov = deployment_->overlay();
  const overlay::OverlayPath path = *ov.route(0, 9);
  ASSERT_TRUE(path.valid);
  ASSERT_FALSE(path.links.empty());
  const double cap = alloc_->path_available_kbps(path);
  ASSERT_GT(cap, 0.0);

  auto h1 = alloc_->soft_reserve_path(path, cap * 0.7, 100.0);
  ASSERT_TRUE(h1.has_value());
  // Second reservation of 70% cannot fit on the bottleneck link.
  EXPECT_FALSE(alloc_->soft_reserve_path(path, cap * 0.7, 100.0).has_value());
  // And nothing was partially reserved by the failed attempt.
  EXPECT_NEAR(alloc_->path_available_kbps(path), cap * 0.3, 1e-6);
}

TEST_F(AllocatorTest, PathConfirmAndRelease) {
  auto& ov = deployment_->overlay();
  const overlay::OverlayPath path = *ov.route(1, 8);
  ASSERT_TRUE(path.valid);
  const double before = alloc_->path_available_kbps(path);
  auto hold = alloc_->soft_reserve_path(path, 100.0, 100.0);
  ASSERT_TRUE(hold.has_value());
  const SessionId session = alloc_->new_session_id();
  EXPECT_TRUE(alloc_->confirm(*hold, session));
  EXPECT_NEAR(alloc_->path_available_kbps(path), before - 100.0, 1e-6);
  alloc_->release_session(session);
  EXPECT_NEAR(alloc_->path_available_kbps(path), before, 1e-6);
}

TEST_F(AllocatorTest, GrantDirectAggregatesDuplicates) {
  const SessionId session = alloc_->new_session_id();
  // Two components on the same peer demanding 6+6 > 10 must be rejected
  // as a unit.
  EXPECT_FALSE(alloc_->grant_direct(
      session,
      {{0, Resources::cpu_mem(6, 1)}, {0, Resources::cpu_mem(6, 1)}}, {}));
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
  // 4+4 fits.
  EXPECT_TRUE(alloc_->grant_direct(
      session,
      {{0, Resources::cpu_mem(4, 1)}, {0, Resources::cpu_mem(4, 1)}}, {}));
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 2.0);
  alloc_->release_session(session);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
}

TEST_F(AllocatorTest, ConcurrentProbesCannotJointlyOveradmit) {
  // The soft-allocation property from §4.2 step 2.1: two concurrent
  // probes reserving on the same peer see each other's holds.
  auto h1 = alloc_->soft_reserve_peer(3, Resources::cpu_mem(6, 6), 100.0);
  auto h2 = alloc_->soft_reserve_peer(3, Resources::cpu_mem(6, 6), 100.0);
  EXPECT_TRUE(h1.has_value());
  EXPECT_FALSE(h2.has_value());
}

TEST_F(AllocatorTest, ActiveCountsTrackState) {
  EXPECT_EQ(alloc_->active_holds(), 0u);
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(1, 1), 100.0);
  EXPECT_EQ(alloc_->active_holds(), 1u);
  const SessionId session = alloc_->new_session_id();
  alloc_->confirm(*hold, session);
  EXPECT_EQ(alloc_->active_holds(), 0u);
  EXPECT_EQ(alloc_->active_grants(), 1u);
  alloc_->release_session(session);
  EXPECT_EQ(alloc_->active_grants(), 0u);
}

// ---- complete-purge / gauge agreement (regression) ----------------------

// A route with at least `min_links` overlay links, for multi-link path
// holds. The 16-peer mesh always has non-adjacent pairs.
static overlay::OverlayPath multi_link_route(Deployment& deployment,
                                             std::size_t min_links) {
  for (PeerId a = 0; a < deployment.peer_count(); ++a) {
    for (PeerId b = 0; b < deployment.peer_count(); ++b) {
      if (a == b) continue;
      const overlay::OverlayPathRef path = deployment.overlay().route(a, b);
      if (path->valid && path->links.size() >= min_links) return *path;
    }
  }
  SPIDER_REQUIRE_MSG(false, "no multi-link route in test overlay");
  return {};
}

TEST_F(AllocatorTest, ExpiredPathHoldIsPurgedFromEveryLink) {
  // Regression: an expired multi-link path hold noticed via ONE of its
  // links used to leave dangling soft entries on the other links (and an
  // inflated outstanding-hold gauge) until something touched them too.
  const overlay::OverlayPath path = multi_link_route(*deployment_, 2);
  ASSERT_TRUE(alloc_->soft_reserve_path(path, 5.0, /*expire_at=*/50.0));
  EXPECT_EQ(alloc_->dangling_soft_entries(), 0u);

  sim_.schedule_at(100.0, [] {});
  sim_.run();

  // Touch availability through the FIRST link only.
  alloc_->link_available_kbps(path.links.front());
  EXPECT_EQ(alloc_->active_holds(), 0u);
  EXPECT_EQ(alloc_->dangling_soft_entries(), 0u)
      << "purge must remove the hold from every link's soft map";
}

TEST_F(AllocatorTest, SweepMakesGaugeAgreeWithAvailability) {
  obs::MetricsRegistry metrics;
  alloc_->set_metrics(&metrics);
  ASSERT_TRUE(alloc_->soft_reserve_peer(0, Resources::cpu_mem(2, 2), 50.0));
  ASSERT_TRUE(alloc_->soft_reserve_peer(1, Resources::cpu_mem(2, 2), 50.0));
  const overlay::OverlayPath path = multi_link_route(*deployment_, 2);
  ASSERT_TRUE(alloc_->soft_reserve_path(path, 5.0, 50.0));
  EXPECT_DOUBLE_EQ(metrics.gauge("alloc.holds_outstanding").value(), 3.0);

  sim_.schedule_at(100.0, [] {});
  sim_.run();

  // Nothing has been queried since expiry: the sweep alone must bring
  // the gauge, the hold table and availability into agreement.
  alloc_->sweep_expired();
  EXPECT_EQ(alloc_->active_holds(), 0u);
  EXPECT_EQ(alloc_->dangling_soft_entries(), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("alloc.holds_outstanding").value(), 0.0);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(1).cpu(), 10.0);
  EXPECT_EQ(metrics.counters().at("alloc.holds_expired").value(), 3u);
}

// ---- session-grant leases ----------------------------------------------

TEST_F(AllocatorTest, LeaseTtlZeroTracksNothing) {
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 4), 100.0);
  const SessionId session = alloc_->new_session_id();
  ASSERT_TRUE(alloc_->confirm(*hold, session));
  EXPECT_FALSE(alloc_->lease_renew_by(session).has_value());
  alloc_->renew_session(session);
  EXPECT_EQ(alloc_->lease_renewals(), 0u);
  sim_.schedule_at(10000.0, [] {});
  sim_.run();
  EXPECT_EQ(alloc_->reclaim_expired_leases(), 0u);
  EXPECT_EQ(alloc_->active_grants(), 1u) << "ttl=0 grants are permanent";
}

TEST_F(AllocatorTest, ExpiredLeaseIsReclaimedIntoAvailability) {
  alloc_->set_lease_ttl_ms(100.0);
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 4), 100.0);
  const overlay::OverlayPath path = multi_link_route(*deployment_, 2);
  auto bw = alloc_->soft_reserve_path(path, 5.0, 100.0);
  const SessionId session = alloc_->new_session_id();
  ASSERT_TRUE(alloc_->confirm(*hold, session));
  ASSERT_TRUE(alloc_->confirm(*bw, session));
  ASSERT_TRUE(alloc_->lease_renew_by(session).has_value());
  EXPECT_DOUBLE_EQ(*alloc_->lease_renew_by(session), 100.0);

  sim_.schedule_at(250.0, [] {});
  sim_.run();
  EXPECT_EQ(alloc_->reclaim_expired_leases(), 1u);
  EXPECT_EQ(alloc_->active_grants(), 0u);
  EXPECT_DOUBLE_EQ(alloc_->peer_available(0).cpu(), 10.0);
  EXPECT_EQ(alloc_->lease_expirations(), 1u);
  EXPECT_DOUBLE_EQ(alloc_->lease_reclaimed_kbps(),
                   5.0 * double(path.links.size()));
}

TEST_F(AllocatorTest, RenewalPushesLeaseDeadlineForward) {
  alloc_->set_lease_ttl_ms(100.0);
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 4), 100.0);
  const SessionId session = alloc_->new_session_id();
  ASSERT_TRUE(alloc_->confirm(*hold, session));

  sim_.schedule_at(80.0, [] {});
  sim_.run();
  alloc_->renew_session(session);
  EXPECT_EQ(alloc_->lease_renewals(), 1u);
  EXPECT_DOUBLE_EQ(*alloc_->lease_renew_by(session), 180.0);

  sim_.schedule_at(150.0, [] {});
  sim_.run();
  EXPECT_EQ(alloc_->reclaim_expired_leases(), 0u)
      << "a renewed lease survives past its original deadline";
  EXPECT_EQ(alloc_->active_grants(), 1u);

  sim_.schedule_at(300.0, [] {});
  sim_.run();
  EXPECT_EQ(alloc_->reclaim_expired_leases(), 1u);
  EXPECT_EQ(alloc_->active_grants(), 0u);
}

TEST_F(AllocatorTest, SessionGrantTotalsAggregate) {
  auto hold = alloc_->soft_reserve_peer(0, Resources::cpu_mem(4, 3), 100.0);
  const overlay::OverlayPath path = multi_link_route(*deployment_, 2);
  auto bw = alloc_->soft_reserve_path(path, 5.0, 100.0);
  const SessionId session = alloc_->new_session_id();
  ASSERT_TRUE(alloc_->confirm(*hold, session));
  ASSERT_TRUE(alloc_->confirm(*bw, session));

  const auto sessions = alloc_->granted_sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions.front(), session);
  const auto totals = alloc_->session_grant_totals(session);
  EXPECT_EQ(totals.grant_count, 2u);
  EXPECT_DOUBLE_EQ(totals.peer_total.cpu(), 4.0);
  EXPECT_DOUBLE_EQ(totals.peer_total.memory(), 3.0);
  EXPECT_DOUBLE_EQ(totals.link_kbps_total, 5.0 * double(path.links.size()));
}

}  // namespace
}  // namespace spider::core
