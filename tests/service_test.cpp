// Tests for the service model: QoS algebra, resources, function graphs
// (DAG checks, patterns via commutation, branch decomposition), service
// graph helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "service/function_graph.hpp"
#include "service/qos.hpp"
#include "service/service_graph.hpp"

namespace spider::service {
namespace {

TEST(Qos, AdditiveAccumulation) {
  Qos a = Qos::delay_loss(10.0, 0.1);
  Qos b = Qos::delay_loss(5.0, 0.2);
  a += b;
  EXPECT_DOUBLE_EQ(a.delay_ms(), 15.0);
  EXPECT_DOUBLE_EQ(a.loss_log(), 0.3);
}

TEST(Qos, WithinBounds) {
  const Qos bound = Qos::delay_loss(100.0, 0.5);
  EXPECT_TRUE(Qos::delay_loss(100.0, 0.5).within(bound));
  EXPECT_TRUE(Qos::delay_loss(0.0, 0.0).within(bound));
  EXPECT_FALSE(Qos::delay_loss(100.1, 0.0).within(bound));
  EXPECT_FALSE(Qos::delay_loss(0.0, 0.51).within(bound));
}

TEST(Qos, RatioSum) {
  const Qos bound = Qos::delay_loss(100.0, 1.0);
  EXPECT_DOUBLE_EQ(Qos::delay_loss(50.0, 0.5).ratio_sum(bound), 1.0);
  EXPECT_DOUBLE_EQ(Qos::delay_loss(100.0, 1.0).ratio_sum(bound), 2.0);
  // Zero bound with zero metric contributes nothing.
  const Qos zero_bound = Qos::delay_loss(100.0, 0.0);
  EXPECT_DOUBLE_EQ(Qos::delay_loss(50.0, 0.0).ratio_sum(zero_bound), 0.5);
  // Zero bound with nonzero metric is unmeetable.
  EXPECT_GT(Qos::delay_loss(50.0, 0.1).ratio_sum(zero_bound), 1e8);
}

TEST(Qos, LossTransformRoundTrip) {
  for (double loss : {0.0, 0.01, 0.1, 0.5, 0.9}) {
    EXPECT_NEAR(additive_to_loss(loss_to_additive(loss)), loss, 1e-12);
  }
  // Additivity: two links of 10% loss ≈ 19% end-to-end.
  const double two_hops = loss_to_additive(0.1) + loss_to_additive(0.1);
  EXPECT_NEAR(additive_to_loss(two_hops), 0.19, 1e-12);
}

TEST(Resources, ArithmeticAndFit) {
  Resources a = Resources::cpu_mem(4, 8);
  const Resources b = Resources::cpu_mem(2, 2);
  EXPECT_TRUE(b.fits_within(a));
  EXPECT_FALSE(a.fits_within(b));
  a -= b;
  EXPECT_DOUBLE_EQ(a.cpu(), 2.0);
  EXPECT_DOUBLE_EQ(a.memory(), 6.0);
  EXPECT_TRUE(a.non_negative());
  a -= Resources::cpu_mem(5, 0);
  EXPECT_FALSE(a.non_negative());
}

TEST(FunctionCatalog, InternAndFind) {
  FunctionCatalog catalog;
  const FunctionId a = catalog.intern("transcode");
  const FunctionId b = catalog.intern("scale");
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.intern("transcode"), a);
  EXPECT_EQ(catalog.find("scale"), b);
  EXPECT_EQ(catalog.find("nope"), kInvalidFunction);
  EXPECT_EQ(catalog.name(a), "transcode");
}

FunctionGraph diamond() {
  // F0 -> {F1, F2} -> F3, commutation between F1 and F2.
  FunctionGraph g;
  for (FunctionId f : {10u, 11u, 12u, 13u}) g.add_function(f);
  g.add_dependency(0, 1);
  g.add_dependency(0, 2);
  g.add_dependency(1, 3);
  g.add_dependency(2, 3);
  g.add_commutation(1, 2);
  return g;
}

TEST(FunctionGraph, BasicTopology) {
  FunctionGraph g = diamond();
  EXPECT_TRUE(g.is_dag());
  EXPECT_FALSE(g.is_linear());
  EXPECT_EQ(g.sources(), (std::vector<FnNode>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<FnNode>{3}));
  EXPECT_EQ(g.successors(0), (std::vector<FnNode>{1, 2}));
  EXPECT_EQ(g.predecessors(3), (std::vector<FnNode>{1, 2}));
}

TEST(FunctionGraph, DetectsCycle) {
  FunctionGraph g;
  g.add_function(1);
  g.add_function(2);
  g.add_dependency(0, 1);
  g.add_dependency(1, 0);
  EXPECT_FALSE(g.is_dag());
}

TEST(FunctionGraph, TopologicalOrderRespectsDeps) {
  FunctionGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](FnNode n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  for (const auto& [u, v] : g.dependencies()) EXPECT_LT(pos(u), pos(v));
}

TEST(FunctionGraph, LinearChainHelpers) {
  FunctionGraph g = make_linear_graph({5, 6, 7});
  EXPECT_TRUE(g.is_linear());
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(g.node_count(), 3u);
  const auto branches = g.branches();
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0], (std::vector<FnNode>{0, 1, 2}));
}

TEST(FunctionGraph, BranchesOfDiamond) {
  const auto branches = diamond().branches();
  ASSERT_EQ(branches.size(), 2u);
  std::set<std::vector<FnNode>> set(branches.begin(), branches.end());
  EXPECT_TRUE(set.count({0, 1, 3}));
  EXPECT_TRUE(set.count({0, 2, 3}));
}

TEST(FunctionGraph, BranchesCoverAllNodes) {
  FunctionGraph g = diamond();
  std::set<FnNode> covered;
  for (const auto& b : g.branches()) covered.insert(b.begin(), b.end());
  EXPECT_EQ(covered.size(), g.node_count());
}

TEST(FunctionGraph, PatternsIncludeOriginalFirst) {
  FunctionGraph g = diamond();
  const auto patterns = g.patterns();
  ASSERT_GE(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].signature(), g.signature());
}

TEST(FunctionGraph, CommutationExchangesOrder) {
  // Linear chain A -> B -> C with commutation (B, C): two patterns,
  // the second being A -> C -> B.
  FunctionGraph g = make_linear_graph({1, 2, 3});
  g.add_commutation(1, 2);
  const auto patterns = g.patterns();
  ASSERT_EQ(patterns.size(), 2u);
  const auto& swapped = patterns[1];
  const auto branches = swapped.branches();
  ASSERT_EQ(branches.size(), 1u);
  std::vector<FunctionId> fn_order;
  for (FnNode n : branches[0]) fn_order.push_back(swapped.function(n));
  EXPECT_EQ(fn_order, (std::vector<FunctionId>{1, 3, 2}));
}

TEST(FunctionGraph, NoCommutationMeansOnePattern) {
  FunctionGraph g = make_linear_graph({1, 2, 3, 4});
  EXPECT_EQ(g.patterns().size(), 1u);
}

TEST(FunctionGraph, PatternsRemainDags) {
  FunctionGraph g = diamond();
  g.add_commutation(0, 3);
  for (const auto& p : g.patterns()) EXPECT_TRUE(p.is_dag());
}

TEST(FunctionGraph, PatternsDedupeIdenticalFunctions) {
  // Commuting two nodes with the SAME function yields an identical
  // pattern, which must be deduplicated.
  FunctionGraph g = make_linear_graph({7, 7, 9});
  g.add_commutation(0, 1);
  EXPECT_EQ(g.patterns().size(), 1u);
}

TEST(FunctionGraph, PatternCapRespected) {
  FunctionGraph g = make_linear_graph({1, 2, 3, 4, 5, 6});
  for (FnNode i = 0; i + 1 < 6; ++i) g.add_commutation(i, i + 1);
  EXPECT_LE(g.patterns(4).size(), 4u);
}

TEST(FunctionGraph, ConditionalMarksPersistThroughPatterns) {
  FunctionGraph g = diamond();
  g.mark_conditional(0);
  EXPECT_TRUE(g.is_conditional(0));
  EXPECT_FALSE(g.is_conditional(1));
  g.mark_conditional(0);  // idempotent
  EXPECT_EQ(g.conditionals().size(), 1u);
  for (const auto& p : g.patterns()) {
    EXPECT_TRUE(p.is_conditional(0));
  }
}

ServiceGraph tiny_graph(std::vector<ComponentId> ids) {
  ServiceGraph g;
  g.pattern = make_linear_graph({1, 2});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ComponentMetadata m;
    m.id = ids[i];
    m.host = overlay::PeerId(ids[i] >> 32);
    g.mapping.push_back(m);
  }
  return g;
}

TEST(ServiceGraph, OverlapAndUses) {
  ServiceGraph a = tiny_graph({make_component_id(1, 0), make_component_id(2, 0)});
  ServiceGraph b = tiny_graph({make_component_id(1, 0), make_component_id(3, 0)});
  EXPECT_EQ(a.overlap(b), 1u);
  EXPECT_TRUE(a.uses_component(make_component_id(1, 0)));
  EXPECT_FALSE(a.uses_component(make_component_id(9, 0)));
  EXPECT_TRUE(a.uses_peer(2));
  EXPECT_FALSE(a.uses_peer(3));
  EXPECT_FALSE(a.same_mapping(b));
  EXPECT_TRUE(a.same_mapping(a));
}

}  // namespace
}  // namespace spider::service
