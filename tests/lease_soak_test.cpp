// Randomized lifecycle soak: N concurrent sessions under message loss,
// peer churn and mid-session source crashes, with grant leases, the
// loss-safe control legs and periodic anti-entropy all enabled.
//
// Property under test — the soft-state story leaks nothing:
//  * after quiesce the allocator holds zero grants and zero holds, with
//    no dangling soft-map entries;
//  * no session is ever observed outside kActive / kTornDown between
//    manager calls;
//  * BCP's probe conservation invariant (spawned == arrived + dropped +
//    forwarded) holds for every composition along the way.
//
// SPIDER_SOAK_SCALE multiplies the round count (tools/soak.sh runs 10x).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

std::size_t soak_scale() {
  const char* env = std::getenv("SPIDER_SOAK_SCALE");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? std::size_t(v) : 1;
}

void check_probe_conservation(const ComposeStats& s) {
  EXPECT_EQ(s.probes_spawned, s.probes_arrived + s.probes_dropped_total() +
                                  s.probes_forwarded);
}

TEST(LeaseSoakTest, NoLeaksUnderLossChurnAndSourceCrashes) {
  constexpr double kRoundMs = 250.0;
  constexpr double kLeaseTtlMs = 2000.0;
  constexpr std::size_t kTargetSessions = 8;
  const std::size_t rounds = 40 * soak_scale();

  for (const std::uint64_t seed : {11ull, 29ull, 47ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto scenario = spider::testing::small_scenario(seed, /*peers=*/64);
    auto& deployment = *scenario->deployment;
    auto& alloc = *scenario->alloc;
    auto& sim = scenario->sim;
    Rng rng(seed * 977 + 5);

    BcpConfig config;
    config.probing_budget = 128;
    BcpEngine engine(deployment, alloc, *scenario->evaluator, sim, config);
    RecoveryConfig recovery;
    recovery.backup_aggressiveness = 30.0;
    recovery.liveness_miss_threshold = 2;
    SessionManager manager(deployment, alloc, *scenario->evaluator, engine,
                           sim, recovery);

    const auto model = fault::LinkFaultModel::uniform_loss(0.10, seed);
    engine.set_fault_model(&model);
    manager.set_fault_model(&model);
    alloc.set_lease_ttl_ms(kLeaseTtlMs);
    manager.enable_periodic_audit(4 * kRoundMs);

    std::vector<PeerId> live_peers;
    const auto pick_live_peer = [&]() {
      live_peers.clear();
      for (PeerId p = 0; p < deployment.peer_count(); ++p) {
        if (deployment.peer_alive(p)) live_peers.push_back(p);
      }
      return live_peers[rng.next_below(live_peers.size())];
    };

    std::vector<SessionId> sessions;
    std::vector<std::pair<PeerId, std::size_t>> downed;  // peer, revive round

    for (std::size_t round = 1; round <= rounds; ++round) {
      sim.run_until(double(round) * kRoundMs);

      // Revive peers whose downtime ended.
      std::erase_if(downed, [&](const auto& d) {
        if (d.second > round) return false;
        deployment.revive_peer(d.first);
        return true;
      });

      // Top the workload up to the target concurrency.
      for (int attempt = 0;
           sessions.size() < kTargetSessions && attempt < 4; ++attempt) {
        const PeerId src = pick_live_peer();
        const PeerId dst = pick_live_peer();
        if (src == dst) continue;
        auto req = spider::testing::easy_request(*scenario, 3, src, dst);
        ComposeResult r = engine.compose(req, rng);
        check_probe_conservation(r.stats);
        if (!r.success) continue;
        const SessionId id = manager.establish(req, std::move(r));
        if (id != kInvalidSession) sessions.push_back(id);
      }

      // Random graceful teardown (may itself be lost — that's the point).
      if (!sessions.empty() && rng.next_double() < 0.15) {
        const std::size_t i = rng.next_below(sessions.size());
        manager.teardown(sessions[i]);
        sessions.erase(sessions.begin() + std::ptrdiff_t(i));
      }

      // Churn: crash a random peer, notify (lossily), revive later.
      if (round % 3 == 0 && live_peers.size() > 8) {
        const PeerId victim = pick_live_peer();
        deployment.kill_peer(victim);
        downed.emplace_back(victim, round + 4);
        manager.on_peer_failed(victim, rng);
      }

      // Source crash: a session's own source dies mid-session — nobody
      // can tear it down; leases/audit must reclaim its grants.
      if (round % 5 == 0 && !sessions.empty()) {
        const std::size_t i = rng.next_below(sessions.size());
        const service::ServiceGraph* graph = manager.active_graph(sessions[i]);
        if (graph != nullptr && deployment.peer_alive(graph->source)) {
          const PeerId src = graph->source;
          deployment.kill_peer(src);
          downed.emplace_back(src, round + 4);
          manager.on_source_crashed(src);
        }
      }

      manager.monitor_active_sessions(rng);
      manager.run_maintenance();

      // Lifecycle invariant: between manager calls every live session
      // sits in kActive; everything else reads kTornDown.
      std::erase_if(sessions, [&](SessionId id) {
        return manager.session_state(id) == SessionState::kTornDown;
      });
      for (SessionId id : sessions) {
        ASSERT_EQ(manager.session_state(id), SessionState::kActive)
            << "session " << id << " stuck mid-transition (round " << round
            << ")";
      }
    }

    // ---- quiesce ----
    for (SessionId id : sessions) manager.teardown(id);
    sessions.clear();
    // One lease ttl of idle time: stranded grants (lost teardowns and
    // crashed sources whose audit hadn't come around) expire, the
    // periodic audit reclaims them, probe-time holds time out.
    sim.run_until(sim.now() + kLeaseTtlMs + 4 * kRoundMs);
    const auto report = manager.audit();
    EXPECT_TRUE(report.conserved);

    EXPECT_EQ(manager.active_sessions(), 0u);
    EXPECT_EQ(alloc.active_grants(), 0u) << "leaked session grants";
    EXPECT_EQ(alloc.active_holds(), 0u) << "leaked soft holds";
    EXPECT_EQ(alloc.dangling_soft_entries(), 0u) << "partial purge residue";
    EXPECT_EQ(alloc.granted_sessions().size(), 0u);

    // The lossy run must actually have exercised the robustness paths,
    // otherwise this soak proves nothing.
    const SessionStats& stats = manager.stats();
    EXPECT_GT(stats.maintenance_messages, 0u);
    EXPECT_GT(stats.lease_renew_messages, 0u);
    EXPECT_GT(stats.ctrl_retransmits + stats.confirms_lost +
                  stats.teardowns_lost + stats.switch_activations_lost +
                  stats.source_crashes,
              0u)
        << "soak never hit a lossy control path";
    manager.enable_periodic_audit(0.0);
  }
}

}  // namespace
}  // namespace spider::core
