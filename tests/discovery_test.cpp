// Tests for the service discovery layer: metadata serialization round
// trip, registration/lookup through the DHT, replica aggregation under
// one key, soft-state re-announcement after churn.
#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "discovery/registry.hpp"
#include "net/generator.hpp"
#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "overlay/overlay.hpp"
#include "util/rng.hpp"

namespace spider::discovery {
namespace {

using service::ComponentMetadata;

ComponentMetadata sample_meta() {
  ComponentMetadata m;
  m.id = service::make_component_id(7, 3);
  m.function = 42;
  m.host = 7;
  m.perf = service::Qos::delay_loss(12.5, 0.125);
  m.required = service::Resources::cpu_mem(3.25, 6.5);
  m.failure_prob = 0.03125;
  m.input_level = 2;
  m.output_level = 5;
  return m;
}

TEST(Serialization, RoundTripPreservesAllFields) {
  const ComponentMetadata m = sample_meta();
  const auto back = deserialize(serialize(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, m.id);
  EXPECT_EQ(back->function, m.function);
  EXPECT_EQ(back->host, m.host);
  EXPECT_DOUBLE_EQ(back->perf.delay_ms(), m.perf.delay_ms());
  EXPECT_DOUBLE_EQ(back->perf.loss_log(), m.perf.loss_log());
  EXPECT_DOUBLE_EQ(back->required.cpu(), m.required.cpu());
  EXPECT_DOUBLE_EQ(back->required.memory(), m.required.memory());
  EXPECT_DOUBLE_EQ(back->failure_prob, m.failure_prob);
  EXPECT_EQ(back->input_level, m.input_level);
  EXPECT_EQ(back->output_level, m.output_level);
}

TEST(Serialization, RejectsGarbage) {
  EXPECT_FALSE(deserialize("").has_value());
  EXPECT_FALSE(deserialize("not|a|component").has_value());
  EXPECT_FALSE(deserialize("1|2|3").has_value());
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    auto topo = net::power_law(200, 2, rng);
    net::Router router(topo);
    std::vector<net::NodeIdx> nodes;
    for (std::size_t idx : rng.sample_indices(200, 24)) {
      nodes.push_back(net::NodeIdx(idx));
    }
    auto ov = overlay::OverlayNetwork::from_topology(
        topo, router, std::move(nodes), overlay::OverlayKind::kNearestMesh, 4,
        rng);
    deployment_ =
        std::make_unique<core::Deployment>(std::move(ov), rng, 8, 3);
    deployment_->catalog().intern("fn/filter");
    deployment_->catalog().intern("fn/scale");
  }

  service::ServiceComponent make_component(overlay::PeerId host,
                                           service::FunctionId fn) {
    service::ServiceComponent c;
    c.host = host;
    c.function = fn;
    c.perf = service::Qos::delay_loss(10, 0);
    c.required = service::Resources::cpu_mem(1, 1);
    return c;
  }

  std::unique_ptr<core::Deployment> deployment_;
};

TEST_F(RegistryTest, DiscoverFindsAllReplicasUnderOneKey) {
  // Replicas of the same function registered from different hosts are all
  // returned by a single lookup (they share the hashed key).
  deployment_->deploy_component(make_component(1, 0));
  deployment_->deploy_component(make_component(5, 0));
  deployment_->deploy_component(make_component(9, 0));
  deployment_->deploy_component(make_component(2, 1));  // other function

  auto result = deployment_->registry().discover(3, 0);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.components.size(), 3u);
  for (const auto& meta : result.components) EXPECT_EQ(meta.function, 0u);
}

TEST_F(RegistryTest, DiscoverUnknownFunctionFails) {
  deployment_->catalog().intern("fn/nobody");
  auto result = deployment_->registry().discover(0, 2);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.components.empty());
}

TEST_F(RegistryTest, UnregisterRemovesReplica) {
  const auto& c1 = deployment_->deploy_component(make_component(1, 0));
  deployment_->deploy_component(make_component(5, 0));
  deployment_->registry().unregister_component(
      service::ComponentMetadata::from(c1));
  auto result = deployment_->registry().discover(7, 0);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.components.size(), 1u);
  EXPECT_EQ(result.components[0].host, 5u);
}

TEST_F(RegistryTest, LookupSurvivesKeyOwnerFailure) {
  deployment_->deploy_component(make_component(1, 0));
  const auto key = deployment_->registry().key_for(0);
  const auto owner = deployment_->dht().owner_oracle(key);
  // Pick a query source that is not the failing owner.
  overlay::PeerId from = 0;
  while (from == owner) ++from;
  deployment_->kill_peer(owner);
  auto result = deployment_->registry().discover(from, 0);
  EXPECT_TRUE(result.found);
}

TEST_F(RegistryTest, ReannounceHealsAfterChurn) {
  const auto& c = deployment_->deploy_component(make_component(1, 0));
  const auto meta = service::ComponentMetadata::from(c);
  // Kill enough of the replica neighborhood that the key may be lost,
  // then re-announce (the owner's periodic soft-state refresh).
  for (int round = 0; round < 4; ++round) {
    const auto key = deployment_->registry().key_for(0);
    const auto owner = deployment_->dht().owner_oracle(key);
    if (owner == 1) break;  // would kill the component's own host
    deployment_->kill_peer(owner);
  }
  deployment_->registry().reannounce_all({meta});
  auto result = deployment_->registry().discover(1, 0);
  EXPECT_TRUE(result.found);
}

TEST_F(RegistryTest, CacheServesRepeatLookupsWithoutDht) {
  deployment_->deploy_component(make_component(1, 0));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  registry.enable_cache(sim, /*ttl=*/100.0);

  auto first = registry.discover(3, 0);
  ASSERT_TRUE(first.found);
  EXPECT_EQ(registry.cache_hits(), 0u);
  EXPECT_EQ(registry.cache_misses(), 1u);

  deployment_->dht().reset_message_counter();
  auto second = registry.discover(3, 0);
  ASSERT_TRUE(second.found);
  EXPECT_EQ(registry.cache_hits(), 1u);
  EXPECT_EQ(deployment_->dht().messages_sent(), 0u)
      << "cache hit must not touch the DHT";
  EXPECT_EQ(second.hops(), 0u);
  EXPECT_EQ(second.components.size(), first.components.size());

  // A different querying peer has its own cache slot.
  registry.discover(5, 0);
  EXPECT_EQ(registry.cache_misses(), 2u);
}

TEST_F(RegistryTest, CacheExpiresAfterTtl) {
  deployment_->deploy_component(make_component(1, 0));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  registry.enable_cache(sim, /*ttl=*/50.0);
  registry.discover(3, 0);
  sim.schedule_at(60.0, [] {});
  sim.run();
  registry.discover(3, 0);
  EXPECT_EQ(registry.cache_hits(), 0u);
  EXPECT_EQ(registry.cache_misses(), 2u);
}

TEST_F(RegistryTest, CacheCanServeStaleUntilInvalidated) {
  const auto& c1 = deployment_->deploy_component(make_component(1, 0));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  registry.enable_cache(sim, /*ttl=*/1000.0);
  ASSERT_EQ(registry.discover(3, 0).components.size(), 1u);
  // Unregister; the cached entry is allowed to be stale within the TTL...
  registry.unregister_component(service::ComponentMetadata::from(c1));
  EXPECT_EQ(registry.discover(3, 0).components.size(), 1u);
  // ...until explicitly invalidated.
  registry.invalidate_cache();
  EXPECT_FALSE(registry.discover(3, 0).found);
}

TEST(DiscoveryCacheKey, DistinctTuplesNeverAlias) {
  // Regression: the cache key used to be (peer << 32) | function packed
  // into a uint64. That packing silently truncates if either id type ever
  // widens; the struct key + util::hash_values is width-proof. Check the
  // equality semantics directly, including the adversarial swapped pairs
  // that bit-packing schemes tend to confuse.
  const DiscoveryCacheKey a{1, 2};
  const DiscoveryCacheKey b{2, 1};
  const DiscoveryCacheKey c{1, 2};
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == b);
  const DiscoveryCacheKeyHash hash;
  EXPECT_EQ(hash(a), hash(c));
  EXPECT_NE(hash(a), hash(b));
  // (peer=0, fn=x) vs (peer=x, fn=0) is the classic packed-key collision
  // family when shift widths drift.
  EXPECT_FALSE((DiscoveryCacheKey{0, 7} == DiscoveryCacheKey{7, 0}));
  EXPECT_NE(hash(DiscoveryCacheKey{0, 7}), hash(DiscoveryCacheKey{7, 0}));
}

TEST_F(RegistryTest, CacheSlotsIsolatedPerPeerAndFunction) {
  deployment_->deploy_component(make_component(1, 0));
  deployment_->deploy_component(make_component(2, 1));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  registry.enable_cache(sim, /*ttl=*/1000.0);
  // Four distinct (peer, function) tuples → four misses, four entries.
  registry.discover(3, 0);
  registry.discover(3, 1);
  registry.discover(5, 0);
  registry.discover(5, 1);
  EXPECT_EQ(registry.cache_misses(), 4u);
  EXPECT_EQ(registry.cache_size(), 4u);
  // Each repeat hits its own slot.
  registry.discover(3, 0);
  registry.discover(5, 1);
  EXPECT_EQ(registry.cache_hits(), 2u);
  EXPECT_EQ(registry.cache_misses(), 4u);
}

TEST_F(RegistryTest, ExpiredEntryIsEvictedOnTouch) {
  deployment_->deploy_component(make_component(1, 0));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  registry.set_metrics(&metrics);
  registry.enable_cache(sim, /*ttl=*/50.0);
  registry.discover(3, 0);
  EXPECT_EQ(registry.cache_size(), 1u);
  sim.schedule_at(60.0, [] {});
  sim.run();
  // The expired entry is erased (not just bypassed) when re-touched.
  registry.discover(3, 0);
  EXPECT_EQ(registry.cache_evictions(), 1u);
  EXPECT_EQ(registry.cache_size(), 1u);  // re-cached by the fresh miss
  EXPECT_EQ(metrics.counter("discovery.cache_evictions").value(), 1u);
}

TEST_F(RegistryTest, SweepPurgesEntriesNeverTouchedAgain) {
  deployment_->deploy_component(make_component(1, 0));
  deployment_->deploy_component(make_component(2, 1));
  auto& registry = deployment_->registry();
  sim::Simulator sim;
  registry.enable_cache(sim, /*ttl=*/50.0);
  registry.discover(3, 0);
  registry.discover(4, 0);
  registry.discover(5, 1);
  EXPECT_EQ(registry.cache_size(), 3u);
  sim.schedule_at(60.0, [] {});
  sim.run();
  // Without the sweep these dead entries would sit in the map forever
  // (the old code never erased, it only ignored them on lookup).
  registry.sweep_expired();
  EXPECT_EQ(registry.cache_size(), 0u);
  EXPECT_EQ(registry.cache_evictions(), 3u);
}

TEST_F(RegistryTest, DiscoveryPathTracksHops) {
  deployment_->deploy_component(make_component(1, 0));
  auto result = deployment_->registry().discover(3, 0);
  ASSERT_TRUE(result.found);
  ASSERT_FALSE(result.path.empty());
  EXPECT_EQ(result.path.front(), 3u);
}

}  // namespace
}  // namespace spider::discovery
