// Determinism of the parallel campaign runner (DESIGN.md §5f): a small
// fig8-style campaign must produce byte-identical formatted rows and an
// identical merged metrics snapshot at any --jobs value. Kept small so the
// TSan CI job can afford to run it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fig_driver.hpp"

namespace spider::bench {
namespace {

std::vector<CampaignCell> small_campaign() {
  CampaignConfig base;
  base.scenario.seed = 42;
  base.scenario.ip_nodes = 200;
  base.scenario.peers = 24;
  base.scenario.function_count = 8;
  base.warmup_units = 1;
  base.measure_units = 4;

  std::vector<CampaignCell> cells;
  for (double workload : {2.0, 5.0}) {
    for (Algo algo : {Algo::kProbing, Algo::kRandom}) {
      CampaignCell cell;
      cell.config = base;
      cell.algo = algo;
      cell.workload = workload;
      cells.push_back(cell);
    }
  }
  return cells;
}

/// The formatted row a fig8-style bench would print for one cell — byte
/// identity is asserted on these strings, not on raw doubles, because the
/// bench output is what the acceptance criterion is about.
std::string format_row(const CampaignCell& cell, const CampaignResult& r) {
  std::string row = algo_name(cell.algo);
  row += '|' + fmt(cell.workload, 0);
  row += '|' + fmt(r.success.ratio(), 3);
  row += '|' + std::to_string(r.messages);
  row += '|' + std::to_string(r.requests);
  row += '|' + fmt(r.selected_psi.mean(), 4);
  row += '|' + fmt(r.selected_delay.mean(), 2);
  row += '|' + fmt(r.candidates.mean(), 1);
  row += '|' + std::to_string(r.probes_spawned);
  row += '|' + std::to_string(r.compose_failures);
  row += '|' + std::to_string(r.confirm_failures);
  return row;
}

struct CampaignSnapshot {
  std::vector<std::string> rows;
  std::string merged_metrics_json;
};

CampaignSnapshot run_at(const std::vector<CampaignCell>& cells,
                        std::size_t jobs) {
  auto outputs = run_campaign_cells(cells, jobs, /*with_metrics=*/true);
  CampaignSnapshot snap;
  obs::MetricsRegistry merged;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    snap.rows.push_back(format_row(cells[i], outputs[i].result));
    merged.merge(outputs[i].metrics);
  }
  snap.merged_metrics_json = merged.to_json();
  return snap;
}

TEST(CampaignDeterminism, JobsFourMatchesSerialByteForByte) {
  const auto cells = small_campaign();
  const CampaignSnapshot serial = run_at(cells, 1);
  const CampaignSnapshot parallel4 = run_at(cells, 4);

  ASSERT_EQ(serial.rows.size(), cells.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i], parallel4.rows[i]) << "cell " << i;
  }
  EXPECT_EQ(serial.merged_metrics_json, parallel4.merged_metrics_json);
  // Sanity: the campaign actually did something.
  EXPECT_NE(serial.merged_metrics_json.find("bcp.requests"), std::string::npos);
}

TEST(CampaignDeterminism, RepeatedSerialRunsAreIdentical) {
  const auto cells = small_campaign();
  const CampaignSnapshot a = run_at(cells, 1);
  const CampaignSnapshot b = run_at(cells, 1);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.merged_metrics_json, b.merged_metrics_json);
}

TEST(CampaignDeterminism, OversubscribedJobsStillMatch) {
  // More workers than cells: claims race but index addressing keeps the
  // result layout fixed.
  const auto cells = small_campaign();
  EXPECT_EQ(run_at(cells, 1).rows, run_at(cells, 16).rows);
}

}  // namespace
}  // namespace spider::bench
