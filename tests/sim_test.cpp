// Unit tests for the discrete-event simulator: ordering, cancellation,
// run_until semantics, periodic timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace spider::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, PendingCountTracksLiveEvents) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilWithCancelledHead) {
  Simulator sim;
  bool late_fired = false;
  const EventId head = sim.schedule_at(1.0, [] {});
  sim.schedule_at(5.0, [&] { late_fired = true; });
  sim.cancel(head);
  sim.run_until(2.0);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulator, StepRunsBoundedNumber) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_at(double(i), [&] { ++count; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.step(100), 3u);
}

TEST(PeriodicTimer, FiresEveryPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10.0, [&] {
    if (++ticks == 5) timer.stop();
  });
  timer.start();
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(PeriodicTimer, StopPreventsFurtherTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++ticks; });
  timer.start();
  sim.schedule_at(3.5, [&] { timer.stop(); });
  sim.run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++ticks; });
  timer.start();
  sim.schedule_at(2.5, [&] { timer.stop(); });
  sim.schedule_at(10.0, [&] { timer.start(); });
  sim.schedule_at(13.5, [&] { timer.stop(); });
  sim.run();
  EXPECT_EQ(ticks, 2 + 3);
}

}  // namespace
}  // namespace spider::sim
