// Equivalence oracle for the landmark latency estimator (§5h).
//
// The estimator trades exact all-pairs Dijkstra state for k landmark
// columns; what it may NOT trade away is soundness. Across seeds and
// overlay kinds these tests pin:
//  * estimated delays sit inside the triangulation bounds of the exact
//    Dijkstra answer (lower <= exact <= estimate, the estimate being a
//    real through-landmark path);
//  * with no estimator attached, estimated_delay_ms falls back to the
//    exact lazy route() answer bit-for-bit — the legacy mode;
//  * farthest-point sampling is deterministic (same inputs, same table);
//  * estimated overlay construction yields a connected world whose link
//    metrics are admissible (never better than the true IP shortest path).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "net/generator.hpp"
#include "net/landmark.hpp"
#include "net/router.hpp"
#include "overlay/overlay.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace spider::overlay {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct World {
  std::unique_ptr<net::Topology> topo;
  std::unique_ptr<net::Router> router;
  std::unique_ptr<OverlayNetwork> ov;
};

std::vector<net::NodeIdx> pick_peers(Rng& rng, std::size_t ip_nodes,
                                     std::size_t peers) {
  std::vector<net::NodeIdx> nodes;
  for (std::size_t idx : rng.sample_indices(ip_nodes, peers)) {
    nodes.push_back(net::NodeIdx(idx));
  }
  return nodes;
}

World make_world(std::uint64_t seed, OverlayKind kind, bool estimated,
                 std::size_t ip_nodes = 400, std::size_t peers = 60,
                 std::size_t degree = 4, std::size_t landmarks = 8) {
  Rng rng(seed);
  World w;
  w.topo = std::make_unique<net::Topology>(net::power_law(ip_nodes, 2, rng));
  w.router = std::make_unique<net::Router>(*w.topo);
  auto nodes = pick_peers(rng, ip_nodes, peers);
  w.ov = std::make_unique<OverlayNetwork>(
      estimated ? OverlayNetwork::from_topology_estimated(
                      *w.topo, std::move(nodes), kind, degree, rng, landmarks)
                : OverlayNetwork::from_topology(*w.topo, *w.router,
                                                std::move(nodes), kind, degree,
                                                rng));
  return w;
}

TEST(LandmarkEstimator, BoundsHoldAcrossSeedsAndKinds) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    for (OverlayKind kind : {OverlayKind::kNearestMesh, OverlayKind::kRandom}) {
      World w = make_world(seed, kind, /*estimated=*/false);
      OverlayNetwork& ov = *w.ov;
      ov.build_estimator(8);
      ASSERT_TRUE(ov.has_estimator());
      const net::LandmarkTable& table = *ov.estimator();
      for (PeerId u = 0; u < ov.peer_count(); ++u) {
        for (PeerId v = u + 1; v < ov.peer_count(); v += 7) {
          const double exact = ov.delay_ms(u, v);
          const double est = ov.estimated_delay_ms(u, v);
          const double lower = table.lower_bound_ms(u, v);
          ASSERT_LT(exact, kInf) << "overlay must be connected";
          // Sound triangulation: the exact Dijkstra answer is bracketed.
          EXPECT_LE(lower, exact + 1e-9)
              << "seed=" << seed << " pair=(" << u << "," << v << ")";
          EXPECT_GE(est + 1e-9, exact)
              << "estimate must be admissible (a real path's delay)";
          EXPECT_DOUBLE_EQ(est, table.upper_bound_ms(u, v));
        }
      }
    }
  }
}

TEST(LandmarkEstimator, NoEstimatorFallsBackToExactBitForBit) {
  World w = make_world(5, OverlayKind::kNearestMesh, /*estimated=*/false);
  OverlayNetwork& ov = *w.ov;
  ASSERT_FALSE(ov.has_estimator());
  for (PeerId u = 0; u < ov.peer_count(); u += 5) {
    for (PeerId v = 0; v < ov.peer_count(); v += 3) {
      // Legacy mode: the "estimate" IS the exact routed delay.
      const double exact = ov.delay_ms(u, v);
      EXPECT_EQ(ov.estimated_delay_ms(u, v), exact);
    }
  }
}

TEST(LandmarkEstimator, FarthestPointSamplingIsDeterministic) {
  World w = make_world(7, OverlayKind::kNearestMesh, /*estimated=*/false);
  OverlayNetwork& ov = *w.ov;
  ov.build_estimator(6);
  std::vector<std::uint32_t> first_landmarks;
  for (std::size_t l = 0; l < ov.estimator()->landmark_count(); ++l) {
    first_landmarks.push_back(ov.estimator()->landmark_target(l));
  }
  std::vector<double> first_estimates;
  for (PeerId v = 1; v < ov.peer_count(); ++v) {
    first_estimates.push_back(ov.estimated_delay_ms(0, v));
  }
  ov.build_estimator(6);  // rebuild from scratch: identical table
  EXPECT_EQ(first_landmarks.front(), 0u) << "landmark 0 is target 0";
  for (std::size_t l = 0; l < ov.estimator()->landmark_count(); ++l) {
    EXPECT_EQ(ov.estimator()->landmark_target(l), first_landmarks[l]);
  }
  for (PeerId v = 1; v < ov.peer_count(); ++v) {
    EXPECT_EQ(ov.estimated_delay_ms(0, v), first_estimates[v - 1]);
  }
}

TEST(LandmarkEstimator, EstimatedBuildIsConnectedAndAdmissible) {
  for (OverlayKind kind : {OverlayKind::kNearestMesh, OverlayKind::kRandom}) {
    World w = make_world(13, kind, /*estimated=*/true);
    OverlayNetwork& ov = *w.ov;
    EXPECT_TRUE(ov.live_connected());
    EXPECT_EQ(ov.underwired_peers(), 0u);
    for (PeerId p = 0; p < ov.peer_count(); ++p) {
      EXPECT_GE(ov.neighbors(p).size(), 4u);
    }
    // Every link's delay is a real through-landmark path: at least the
    // true IP shortest path between the endpoints, never below it.
    for (OverlayLinkId l = 0; l < ov.link_count(); ++l) {
      const OverlayLink& link = ov.link(l);
      const net::PathMetrics exact =
          w.router->metrics(ov.ip_node(link.a), ov.ip_node(link.b));
      ASSERT_TRUE(exact.reachable());
      EXPECT_GE(link.delay_ms + 1e-9, exact.delay_ms);
      EXPECT_GT(link.capacity_kbps, 0.0);
      EXPECT_GE(link.ip_hops, 1u);
    }
  }
}

TEST(LandmarkEstimator, LazyExactRouteMatchesEagerDijkstra) {
  // The lazy tree-cache + materialization path must reproduce the
  // classic eager answer exactly: same delays, same link chains.
  World lazy = make_world(21, OverlayKind::kNearestMesh, /*estimated=*/false);
  World eager = make_world(21, OverlayKind::kNearestMesh, /*estimated=*/false);
  OverlayNetwork& a = *lazy.ov;
  OverlayNetwork& b = *eager.ov;
  ASSERT_EQ(a.link_count(), b.link_count());
  a.set_route_cache_limit(2);       // force tree thrash on the lazy side
  a.set_route_path_cache_limit(2);  // and path re-materialization
  for (PeerId u = 0; u < a.peer_count(); u += 4) {
    for (PeerId v = 0; v < a.peer_count(); v += 5) {
      const OverlayPath pa = *a.route(u, v);
      const OverlayPath pb = *b.route(u, v);
      ASSERT_EQ(pa.valid, pb.valid);
      if (!pa.valid) continue;
      EXPECT_EQ(pa.links, pb.links);
      EXPECT_DOUBLE_EQ(pa.delay_ms, pb.delay_ms);
      EXPECT_DOUBLE_EQ(pa.capacity_kbps, pb.capacity_kbps);
    }
  }
}

TEST(LandmarkEstimator, ScenarioKnobBuildsEstimatedWorld) {
  workload::SimScenarioConfig config;
  config.seed = 9;
  config.ip_nodes = 600;
  config.peers = 80;
  config.use_latency_estimator = true;
  config.landmark_count = 8;
  auto s = workload::build_sim_scenario(config);
  auto& ov = s->deployment->overlay();
  EXPECT_TRUE(ov.has_estimator());
  EXPECT_TRUE(ov.live_connected());
  // Hints are bracketed by the overlay-layer triangulation bounds.
  for (PeerId v = 1; v < 20; ++v) {
    const double est = ov.estimated_delay_ms(0, v);
    const double exact = ov.delay_ms(0, v);
    EXPECT_GE(est + 1e-9, exact);
    EXPECT_GE(exact + 1e-9, ov.estimator()->lower_bound_ms(0, v));
  }
}

TEST(LandmarkEstimator, HintsAreChurnObliviousWhileRoutesStayLivenessExact) {
  // Regression for the §5l staleness invariant: landmark columns are
  // built once over the full overlay and never refreshed on churn, so
  // estimated_delay_ms must keep answering the build-time delay for dead
  // peers (hints only order/time things, they never admit a candidate).
  // Anything that matters — actual paths — must go through route(),
  // which IS liveness-exact and must detour or fail around the corpse.
  World w = make_world(17, OverlayKind::kNearestMesh, /*estimated=*/false);
  OverlayNetwork& ov = *w.ov;
  ov.build_estimator(8);
  ASSERT_TRUE(ov.has_estimator());

  const PeerId victim = 5;
  std::vector<double> before;
  for (PeerId v = 0; v < ov.peer_count(); ++v) {
    before.push_back(ov.estimated_delay_ms(victim, v));
  }
  const double exact_before = ov.route(0, victim)->valid
                                  ? ov.route(0, victim)->delay_ms
                                  : kInf;
  ASSERT_LT(exact_before, kInf);

  ov.set_alive(victim, false);
  for (PeerId v = 0; v < ov.peer_count(); ++v) {
    // Hint column is byte-identical: churn-oblivious by design.
    EXPECT_EQ(ov.estimated_delay_ms(victim, v), before[v]) << "v=" << v;
  }
  // The exact layer disagrees on purpose: no live path ends at a corpse.
  EXPECT_FALSE(ov.route(0, victim)->valid);

  ov.set_alive(victim, true);
  for (PeerId v = 0; v < ov.peer_count(); ++v) {
    EXPECT_EQ(ov.estimated_delay_ms(victim, v), before[v]) << "v=" << v;
  }
  EXPECT_TRUE(ov.route(0, victim)->valid);
  EXPECT_DOUBLE_EQ(ov.route(0, victim)->delay_ms, exact_before);
}

TEST(LandmarkEstimator, IpLandmarkThroughMetricsAreConsistent) {
  Rng rng(31);
  net::Topology topo = net::power_law(300, 2, rng);
  auto targets = pick_peers(rng, 300, 40);
  const net::LandmarkTable table = net::build_ip_landmarks(topo, targets, 6);
  net::Router router(topo);
  EXPECT_LE(table.landmark_count(), 6u);
  EXPECT_GE(table.landmark_count(), 1u);
  for (std::uint32_t u = 0; u < 40; ++u) {
    for (std::uint32_t v = u + 1; v < 40; v += 5) {
      const net::PathMetrics through = table.through_metrics(u, v);
      const net::PathMetrics exact = router.metrics(targets[u], targets[v]);
      ASSERT_TRUE(through.reachable());
      EXPECT_DOUBLE_EQ(through.delay_ms, table.upper_bound_ms(u, v));
      EXPECT_GE(through.delay_ms + 1e-9, exact.delay_ms);
      EXPECT_GT(through.bottleneck_kbps, 0.0);
      EXPECT_GE(through.hops, exact.hops > 0 ? 1u : 0u);
    }
  }
}

}  // namespace
}  // namespace spider::overlay
