// Community partitioning (§5l): deterministic construction at any job
// count, partition sanity, per-community discovery indexing, and the
// two-tier BCP contract — a single-community map is bit-for-bit flat
// BCP, and an attached multi-community map populates the coarse-tier
// stats while conserving β across both tiers.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/bcp.hpp"
#include "discovery/community_index.hpp"
#include "overlay/community.hpp"
#include "test_scenario.hpp"

namespace spider::overlay {
namespace {

std::unique_ptr<workload::Scenario> community_scenario(
    std::uint64_t seed, std::size_t communities, std::size_t peers = 48,
    std::size_t functions = 12) {
  workload::SimScenarioConfig config;
  config.seed = seed;
  config.ip_nodes = 300;
  config.peers = peers;
  config.function_count = functions;
  config.min_components_per_peer = 1;
  config.max_components_per_peer = 3;
  config.overlay_degree = 4;
  config.use_communities = true;
  config.community_count = communities;
  return workload::build_sim_scenario(config);
}

TEST(CommunityMap, PartitionsEveryPeerExactlyOnce) {
  auto s = spider::testing::small_scenario();
  const CommunityMap map =
      CommunityMap::build(s->deployment->overlay(), 6);
  ASSERT_EQ(map.community_count(), 6u);
  EXPECT_EQ(map.peer_count(), s->deployment->overlay().peer_count());
  std::size_t total = 0;
  std::set<PeerId> seen;
  for (CommunityId c = 0; c < map.community_count(); ++c) {
    PeerId prev = kInvalidPeer;
    for (PeerId p : map.members(c)) {
      EXPECT_EQ(map.community_of(p), c);
      EXPECT_TRUE(seen.insert(p).second);
      if (prev != kInvalidPeer) {
        EXPECT_LT(prev, p);  // ascending
      }
      prev = p;
      ++total;
    }
  }
  EXPECT_EQ(total, map.peer_count());
}

TEST(CommunityMap, HeadsBelongToTheirOwnCommunity) {
  auto s = spider::testing::small_scenario();
  const CommunityMap map =
      CommunityMap::build(s->deployment->overlay(), 6);
  for (CommunityId c = 0; c < map.community_count(); ++c) {
    const PeerId head = map.head(c);
    // The head is delay-0 from itself, so no other head can be nearer
    // (ties break toward the lowest community id, and farthest-point
    // sampling never picks the same peer twice).
    EXPECT_EQ(map.community_of(head), c);
    EXPECT_EQ(map.head_delay_ms(c, head), 0.0);
  }
}

TEST(CommunityMap, SingleCommunityIsTheWholeOverlay) {
  auto s = spider::testing::small_scenario();
  const CommunityMap map =
      CommunityMap::build(s->deployment->overlay(), 1);
  ASSERT_EQ(map.community_count(), 1u);
  EXPECT_EQ(map.members(0).size(), map.peer_count());
  for (PeerId p = 0; p < map.peer_count(); ++p) {
    EXPECT_EQ(map.community_of(p), 0u);
  }
}

TEST(CommunityMap, CountIsClampedToPeerCount) {
  auto s = spider::testing::small_scenario();
  const std::size_t peers = s->deployment->overlay().peer_count();
  const CommunityMap map =
      CommunityMap::build(s->deployment->overlay(), peers + 100);
  EXPECT_EQ(map.community_count(), peers);
}

TEST(CommunityMap, ByteIdenticalAtAnyJobCount) {
  for (std::uint64_t seed : {7ull, 21ull, 33ull}) {
    auto s = spider::testing::small_scenario(seed);
    const CommunityMap serial =
        CommunityMap::build(s->deployment->overlay(), 6, 1);
    const CommunityMap parallel =
        CommunityMap::build(s->deployment->overlay(), 6, 4);
    ASSERT_EQ(serial.community_count(), parallel.community_count());
    EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
    for (PeerId p = 0; p < serial.peer_count(); ++p) {
      ASSERT_EQ(serial.community_of(p), parallel.community_of(p));
    }
    for (CommunityId c = 0; c < serial.community_count(); ++c) {
      EXPECT_EQ(serial.head(c), parallel.head(c));
      ASSERT_EQ(serial.members(c).size(), parallel.members(c).size());
      for (std::size_t i = 0; i < serial.members(c).size(); ++i) {
        ASSERT_EQ(serial.members(c)[i], parallel.members(c)[i]);
      }
    }
  }
}

TEST(CommunityIndex, BucketsReplicasByHostCommunity) {
  auto s = community_scenario(7, 6);
  ASSERT_NE(s->communities, nullptr);
  ASSERT_NE(s->community_index, nullptr);
  const CommunityMap& map = *s->communities;
  const auto& index = *s->community_index;
  ASSERT_EQ(index.community_count(), map.community_count());

  // Every deployed component appears exactly once, in its host's
  // community bucket, ascending by id within a (community, function).
  std::size_t indexed = 0;
  for (CommunityId c = 0; c < map.community_count(); ++c) {
    for (service::FunctionId fn = 0;
         fn < s->deployment->catalog().size(); ++fn) {
      const auto span = index.replicas(c, fn);
      for (std::size_t i = 0; i < span.size(); ++i) {
        EXPECT_EQ(span[i].function, fn);
        EXPECT_EQ(map.community_of(span[i].host), c);
        if (i > 0) {
          EXPECT_LT(span[i - 1].id, span[i].id);  // ascending
        }
        ++indexed;
      }
      const auto* sum = index.summary(c, fn);
      if (span.empty()) {
        EXPECT_EQ(sum, nullptr);
      } else {
        ASSERT_NE(sum, nullptr);
        EXPECT_EQ(sum->replicas, span.size());
        double min_delay = span.front().perf.delay_ms();
        double min_fail = span.front().failure_prob;
        for (const auto& meta : span) {
          min_delay = std::min(min_delay, meta.perf.delay_ms());
          min_fail = std::min(min_fail, meta.failure_prob);
        }
        EXPECT_DOUBLE_EQ(sum->min_perf_delay_ms, min_delay);
        EXPECT_DOUBLE_EQ(sum->min_failure_prob, min_fail);
      }
    }
  }
  EXPECT_EQ(indexed, s->deployment->component_count());
}

// Memberwise ComposeStats equality — the equivalence oracle below wants
// to see *identical* accounting, not merely identical outcomes.
void expect_stats_equal(const core::ComposeStats& a,
                        const core::ComposeStats& b) {
  EXPECT_EQ(a.probes_spawned, b.probes_spawned);
  EXPECT_EQ(a.probes_arrived, b.probes_arrived);
  EXPECT_EQ(a.probes_forwarded, b.probes_forwarded);
  EXPECT_EQ(a.probes_dropped_total(), b.probes_dropped_total());
  EXPECT_EQ(a.candidates_skipped_total(), b.candidates_skipped_total());
  EXPECT_EQ(a.coarse_probes, b.coarse_probes);
  EXPECT_EQ(a.communities_pruned, b.communities_pruned);
  EXPECT_EQ(a.probe_messages, b.probe_messages);
  EXPECT_EQ(a.discovery_messages, b.discovery_messages);
  EXPECT_EQ(a.holds_acquired, b.holds_acquired);
  EXPECT_EQ(a.holds_reused, b.holds_reused);
  EXPECT_DOUBLE_EQ(a.probing_time_ms, b.probing_time_ms);
  EXPECT_DOUBLE_EQ(a.setup_time_ms, b.setup_time_ms);
  EXPECT_EQ(a.candidates_merged, b.candidates_merged);
  EXPECT_EQ(a.qualified_found, b.qualified_found);
}

TEST(TwoTierBcp, SingleCommunityMapRunsFlatBitForBit) {
  // Two identical worlds; one engine runs detached (flat), the other has
  // a 1-community map attached. Results and stats must be identical —
  // the count==1 short-circuit is the two-tier layer's legacy mode.
  auto flat = community_scenario(11, 1);
  auto tiered = community_scenario(11, 1);
  ASSERT_EQ(tiered->communities->community_count(), 1u);

  core::BcpEngine flat_engine(*flat->deployment, *flat->alloc,
                              *flat->evaluator, flat->sim, core::BcpConfig{});
  core::BcpEngine tiered_engine(*tiered->deployment, *tiered->alloc,
                                *tiered->evaluator, tiered->sim,
                                core::BcpConfig{});
  tiered_engine.set_communities(tiered->communities.get(),
                                tiered->community_index.get());

  for (int i = 0; i < 8; ++i) {
    auto req_a = spider::testing::easy_request(*flat);
    auto req_b = spider::testing::easy_request(*tiered);
    Rng rng_a(100 + i), rng_b(100 + i);
    core::ComposeResult a = flat_engine.compose(req_a, rng_a);
    core::ComposeResult b = tiered_engine.compose(req_b, rng_b);
    ASSERT_EQ(a.success, b.success);
    EXPECT_EQ(b.stats.coarse_probes, 0u);
    EXPECT_EQ(b.stats.communities_pruned, 0u);
    expect_stats_equal(a.stats, b.stats);
    if (a.success) {
      ASSERT_EQ(a.best.mapping.size(), b.best.mapping.size());
      for (std::size_t n = 0; n < a.best.mapping.size(); ++n) {
        EXPECT_EQ(a.best.mapping[n].id, b.best.mapping[n].id);
      }
    }
    for (core::HoldId h : a.best_holds) flat->alloc->release_hold(h);
    for (core::HoldId h : b.best_holds) tiered->alloc->release_hold(h);
  }
}

TEST(TwoTierBcp, CoarseTierPopulatesStatsAndConservesBudget) {
  auto s = community_scenario(13, 6);
  ASSERT_GT(s->communities->community_count(), 1u);
  core::BcpConfig config;
  core::BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                         config);
  engine.set_communities(s->communities.get(), s->community_index.get());

  bool any_success = false;
  for (int i = 0; i < 10; ++i) {
    auto req = spider::testing::easy_request(*s);
    Rng rng(200 + i);
    core::ComposeResult r = engine.compose(req, rng);
    const auto& st = r.stats;
    EXPECT_GT(st.coarse_probes, 0u);
    // Coarse probes are paid out of β: fine-tier arrivals can never
    // exceed what the coarse tier left over.
    const auto beta = std::uint64_t(config.probing_budget);
    EXPECT_LE(st.coarse_probes, beta);
    EXPECT_LE(st.coarse_probes + st.probes_arrived, beta);
    // Probed-but-unselected communities are the pruning win.
    EXPECT_LE(st.communities_pruned, st.coarse_probes);
    // Terminal accounting still balances with the coarse tier active.
    EXPECT_EQ(st.probes_spawned, st.probes_arrived +
                                     st.probes_dropped_total() +
                                     st.probes_forwarded);
    any_success |= r.success;
    for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
    EXPECT_EQ(s->alloc->active_holds(), 0u);
  }
  EXPECT_TRUE(any_success);
}

TEST(TwoTierBcp, FineDiscoveryStaysInsideSelectedCommunities) {
  auto s = community_scenario(17, 6);
  core::BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                         core::BcpConfig{});
  engine.set_communities(s->communities.get(), s->community_index.get());
  for (int i = 0; i < 10; ++i) {
    auto req = spider::testing::easy_request(*s);
    Rng rng(300 + i);
    core::ComposeResult r = engine.compose(req, rng);
    if (!r.success) continue;
    // Every selected component's host must sit in one of at most
    // max_candidate_communities communities.
    std::set<CommunityId> used;
    for (const auto& meta : r.best.mapping) {
      used.insert(s->communities->community_of(meta.host));
    }
    EXPECT_LE(used.size(), engine.config().max_candidate_communities);
    for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
  }
}

TEST(TwoTierBcp, DetachingRestoresFlatBehavior) {
  auto s = community_scenario(19, 6);
  core::BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                         core::BcpConfig{});
  engine.set_communities(s->communities.get(), s->community_index.get());
  engine.set_communities(nullptr, nullptr);
  auto req = spider::testing::easy_request(*s);
  Rng rng(400);
  core::ComposeResult r = engine.compose(req, rng);
  EXPECT_EQ(r.stats.coarse_probes, 0u);
  EXPECT_EQ(r.stats.communities_pruned, 0u);
  for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);
}

}  // namespace
}  // namespace spider::overlay
