// Tests for the message-level (event-driven) BCP execution mode:
// completion timing, equivalence with the synchronous mode in uncontended
// scenarios, timeout behaviour, hold hygiene.
#include <gtest/gtest.h>

#include "core/bcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_scenario.hpp"

namespace spider::core {
namespace {

class AsyncBcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = spider::testing::small_scenario(/*seed=*/77, /*peers=*/48);
    engine_ = std::make_unique<BcpEngine>(*scenario_->deployment,
                                          *scenario_->alloc,
                                          *scenario_->evaluator,
                                          scenario_->sim, BcpConfig{});
  }

  std::unique_ptr<workload::Scenario> scenario_;
  std::unique_ptr<BcpEngine> engine_;
};

TEST_F(AsyncBcpTest, CompletesAtSetupTime) {
  auto req = spider::testing::easy_request(*scenario_);
  Rng rng(1);
  bool called = false;
  double called_at = -1.0;
  ComposeResult result;
  engine_->compose_async(req, rng, [&](ComposeResult r) {
    called = true;
    called_at = scenario_->sim.now();
    result = std::move(r);
  });
  EXPECT_FALSE(called) << "completion must be asynchronous";
  scenario_->sim.run();
  ASSERT_TRUE(called);
  ASSERT_TRUE(result.success);
  // The callback fires exactly when the ack returns (virtual time).
  EXPECT_NEAR(called_at, result.stats.setup_time_ms, 1e-6);
  for (HoldId h : result.best_holds) scenario_->alloc->release_hold(h);
}

TEST_F(AsyncBcpTest, MatchesSynchronousDecisionsUncontended) {
  // With ample resources and identical RNG streams the two execution
  // modes make identical protocol decisions: same best mapping, same
  // probe counts, same qualified set size.
  auto req = spider::testing::easy_request(*scenario_);

  Rng rng_sync(9);
  ComposeResult sync = engine_->compose(req, rng_sync);
  ASSERT_TRUE(sync.success);
  for (HoldId h : sync.best_holds) scenario_->alloc->release_hold(h);

  Rng rng_async(9);
  ComposeResult async_result;
  bool done = false;
  engine_->compose_async(req, rng_async, [&](ComposeResult r) {
    async_result = std::move(r);
    done = true;
  });
  scenario_->sim.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(async_result.success);
  for (HoldId h : async_result.best_holds) scenario_->alloc->release_hold(h);

  EXPECT_TRUE(async_result.best.same_mapping(sync.best));
  EXPECT_EQ(async_result.stats.probes_spawned, sync.stats.probes_spawned);
  EXPECT_EQ(async_result.stats.probes_arrived, sync.stats.probes_arrived);
  EXPECT_EQ(async_result.stats.qualified_found, sync.stats.qualified_found);
  EXPECT_NEAR(async_result.stats.setup_time_ms, sync.stats.setup_time_ms,
              1e-6);
  EXPECT_NEAR(async_result.best.psi_cost, sync.best.psi_cost, 1e-9);
}

TEST_F(AsyncBcpTest, MatchesSynchronousStatsAndMetricsSnapshot) {
  // Full-parity check on fresh, identical scenarios: the two execution
  // modes must produce the same ComposeStats field by field AND flush the
  // same cumulative metrics snapshot (counter for counter).
  auto run_one = [](bool async_mode, ComposeResult* out,
                    obs::MetricsRegistry* metrics) {
    auto s = spider::testing::small_scenario(/*seed=*/77, /*peers=*/48);
    BcpEngine engine(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                     BcpConfig{});
    engine.set_observability(metrics, nullptr);
    auto req = spider::testing::easy_request(*s);
    Rng rng(9);
    if (async_mode) {
      engine.compose_async(req, rng,
                           [out](ComposeResult r) { *out = std::move(r); });
      s->sim.run();
    } else {
      *out = engine.compose(req, rng);
    }
  };

  ComposeResult sync, async_result;
  obs::MetricsRegistry sync_metrics, async_metrics;
  run_one(false, &sync, &sync_metrics);
  run_one(true, &async_result, &async_metrics);
  ASSERT_TRUE(sync.success);
  ASSERT_TRUE(async_result.success);
  EXPECT_TRUE(async_result.best.same_mapping(sync.best));

  const ComposeStats& a = sync.stats;
  const ComposeStats& b = async_result.stats;
  EXPECT_EQ(a.probes_spawned, b.probes_spawned);
  EXPECT_EQ(a.probes_arrived, b.probes_arrived);
  EXPECT_EQ(a.probes_forwarded, b.probes_forwarded);
  EXPECT_EQ(a.probes_dropped_qos, b.probes_dropped_qos);
  EXPECT_EQ(a.probes_dropped_resources, b.probes_dropped_resources);
  EXPECT_EQ(a.probes_dropped_timeout, b.probes_dropped_timeout);
  EXPECT_EQ(a.candidates_skipped_route, b.candidates_skipped_route);
  EXPECT_EQ(a.candidates_skipped_timeout, b.candidates_skipped_timeout);
  EXPECT_EQ(a.candidates_skipped_qos, b.candidates_skipped_qos);
  EXPECT_EQ(a.candidates_skipped_resources, b.candidates_skipped_resources);
  EXPECT_EQ(a.holds_acquired, b.holds_acquired);
  EXPECT_EQ(a.holds_reused, b.holds_reused);
  EXPECT_EQ(a.probe_messages, b.probe_messages);
  EXPECT_EQ(a.discovery_messages, b.discovery_messages);
  EXPECT_EQ(a.candidates_merged, b.candidates_merged);
  EXPECT_EQ(a.qualified_found, b.qualified_found);

  // Both modes flush through the same finalize path, so the registries
  // agree counter for counter and histogram bucket for bucket.
  ASSERT_EQ(sync_metrics.counters().size(), async_metrics.counters().size());
  for (const auto& [name, counter] : sync_metrics.counters()) {
    EXPECT_EQ(counter.value(), async_metrics.counter(name).value()) << name;
  }
  ASSERT_EQ(sync_metrics.histograms().size(),
            async_metrics.histograms().size());
  for (const auto& [name, hist] : sync_metrics.histograms()) {
    EXPECT_EQ(hist.counts(), async_metrics.histograms().at(name).counts())
        << name;
  }
}

TEST_F(AsyncBcpTest, FailsAsynchronouslyOnDeadSource) {
  auto req = spider::testing::easy_request(*scenario_);
  scenario_->deployment->kill_peer(req.source);
  Rng rng(2);
  bool called = false;
  engine_->compose_async(req, rng, [&](ComposeResult r) {
    called = true;
    EXPECT_FALSE(r.success);
  });
  scenario_->sim.run();
  EXPECT_TRUE(called);
}

TEST_F(AsyncBcpTest, TimeoutCutsOffLateProbes) {
  // A probe timeout shorter than one overlay hop: nothing arrives, the
  // destination's collection timeout fires, composition fails cleanly.
  auto req = spider::testing::easy_request(*scenario_);
  BcpConfig config = engine_->config();
  config.probe_timeout_ms = 0.5;
  engine_->set_config(config);
  Rng rng(3);
  bool called = false;
  engine_->compose_async(req, rng, [&](ComposeResult r) {
    called = true;
    EXPECT_FALSE(r.success);
  });
  scenario_->sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(scenario_->alloc->active_holds(), 0u);
}

TEST_F(AsyncBcpTest, ConcurrentComposesInterleave) {
  // Two overlapping async composes: both must complete, and the soft
  // allocation machinery keeps their combined admissions within capacity.
  auto req1 = spider::testing::easy_request(*scenario_, 3, 0, 1);
  auto req2 = spider::testing::easy_request(*scenario_, 3, 2, 3);
  Rng rng1(4), rng2(5);
  int completions = 0;
  std::vector<ComposeResult> results;
  auto on_done = [&](ComposeResult r) {
    ++completions;
    results.push_back(std::move(r));
  };
  engine_->compose_async(req1, rng1, on_done);
  engine_->compose_async(req2, rng2, on_done);
  scenario_->sim.run();
  ASSERT_EQ(completions, 2);
  for (auto& r : results) {
    EXPECT_TRUE(r.success);
    const SessionId session = scenario_->alloc->new_session_id();
    for (HoldId h : r.best_holds) {
      EXPECT_TRUE(scenario_->alloc->confirm(h, session));
    }
  }
  for (overlay::PeerId p = 0; p < scenario_->deployment->peer_count(); ++p) {
    EXPECT_TRUE(scenario_->alloc->peer_available(p).non_negative());
  }
}

}  // namespace
}  // namespace spider::core
