// Tests for the observability layer: JSON writer/parser round trips,
// metrics registry semantics, probe-trace JSON round trip, and the
// instrumented compose path producing a coherent snapshot.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/bcp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_scenario.hpp"
#include "util/json.hpp"

namespace spider {
namespace {

using obs::MetricsRegistry;
using obs::ProbeTrace;
using obs::TraceEvent;
using obs::TraceRecord;
using util::JsonValue;
using util::JsonWriter;

// ----------------------------------------------------------------- JSON

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(util::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterProducesCompactDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("spider");
  w.key("count");
  w.value(std::uint64_t(3));
  w.key("list");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"spider\",\"count\":3,\"list\":[1.5,true,null]}");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("pi");
  w.value(3.25);
  w.key("neg");
  w.value(std::int64_t(-42));
  w.key("text");
  w.value("he said \"hi\"\n");
  w.key("nested");
  w.begin_object();
  w.key("empty");
  w.begin_array();
  w.end_array();
  w.end_object();
  w.end_object();

  auto parsed = util::json_parse(w.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_DOUBLE_EQ(parsed->number_or("pi", 0.0), 3.25);
  EXPECT_DOUBLE_EQ(parsed->number_or("neg", 0.0), -42.0);
  EXPECT_EQ(parsed->string_or("text", ""), "he said \"hi\"\n");
  const JsonValue* nested = parsed->find("nested");
  ASSERT_NE(nested, nullptr);
  const JsonValue* empty = nested->find("empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->is_array());
  EXPECT_TRUE(empty->array.empty());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(util::json_parse("").has_value());
  EXPECT_FALSE(util::json_parse("{").has_value());
  EXPECT_FALSE(util::json_parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(util::json_parse("[1,2] trailing").has_value());
  EXPECT_FALSE(util::json_parse("nul").has_value());
  EXPECT_FALSE(util::json_parse("\"unterminated").has_value());
}

TEST(Json, ParserHandlesUnicodeEscapes) {
  auto parsed = util::json_parse("\"a\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string, "aA\xc3\xa9");
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("x.count"), &c);

  obs::Gauge& g = reg.gauge("x.level");
  g.set(10.0);
  g.add(2.5);
  g.sub(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("x.latency", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Metrics, JsonSnapshotParsesBack) {
  MetricsRegistry reg;
  reg.counter("bcp.probes_spawned").inc(17);
  reg.gauge("alloc.holds_outstanding").set(3.0);
  reg.histogram("bcp.setup_time_ms", {10.0, 100.0}).observe(42.0);

  auto parsed = util::json_parse(reg.to_json());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("bcp.probes_spawned", 0.0), 17.0);
  const JsonValue* gauges = parsed->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("alloc.holds_outstanding", 0.0), 3.0);
  const JsonValue* hists = parsed->find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* setup = hists->find("bcp.setup_time_ms");
  ASSERT_NE(setup, nullptr);
  EXPECT_DOUBLE_EQ(setup->number_or("count", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(setup->number_or("sum", 0.0), 42.0);
  const JsonValue* counts = setup->find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->array.size(), 3u);
  EXPECT_DOUBLE_EQ(counts->array[1].number, 1.0);
}

TEST(Metrics, WriteJsonToFile) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  const std::string path = ::testing::TempDir() + "/spider_metrics_test.json";
  ASSERT_TRUE(reg.write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = util::json_parse(std::string(buf, n > 0 && buf[n - 1] == '\n'
                                                      ? n - 1
                                                      : n));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("counters")->number_or("a", 0.0), 1.0);
}

TEST(Metrics, MergeSumsAllInstrumentKinds) {
  MetricsRegistry a, b;
  a.counter("c").inc(3);
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  a.gauge("g").set(2.0);
  b.gauge("g").set(5.0);
  a.histogram("h", {1.0, 10.0}).observe(0.5);
  b.histogram("h", {1.0, 10.0}).observe(5.0);
  b.histogram("h", {1.0, 10.0}).observe(50.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);  // created on demand
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 7.0);
  const obs::Histogram& h = a.histogram("h", {1.0, 10.0});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
}

TEST(Metrics, PerCellMergeMatchesSharedRegistrySnapshot) {
  // The property run_campaign_cells relies on: merging per-cell
  // registries in cell order must reproduce, byte for byte, the JSON a
  // single registry shared by serially executed cells would produce.
  auto record_cell = [](MetricsRegistry& reg, std::uint64_t cell) {
    reg.counter("bcp.requests").inc(cell + 1);
    reg.gauge("alloc.holds_outstanding").add(double(cell));
    reg.gauge("alloc.holds_outstanding").sub(double(cell));  // drains to 0
    reg.histogram("bcp.setup_time_ms", {10.0, 100.0})
        .observe(double(cell) * 40.0 + 5.0);
  };

  MetricsRegistry shared;
  for (std::uint64_t cell = 0; cell < 3; ++cell) record_cell(shared, cell);

  MetricsRegistry merged;
  for (std::uint64_t cell = 0; cell < 3; ++cell) {
    MetricsRegistry per_cell;
    record_cell(per_cell, cell);
    merged.merge(per_cell);
  }
  EXPECT_EQ(merged.to_json(), shared.to_json());
}

// ---------------------------------------------------------------- trace

TEST(Trace, EventNamesRoundTrip) {
  for (int e = int(TraceEvent::kSeedSpawned); e <= int(TraceEvent::kGraphSelected);
       ++e) {
    const char* name = obs::trace_event_name(TraceEvent(e));
    auto back = obs::trace_event_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(int(*back), e);
  }
  EXPECT_FALSE(obs::trace_event_from_name("bogus_event").has_value());
}

TEST(Trace, JsonRoundTripPreservesRecords) {
  ProbeTrace trace;
  TraceRecord seed;
  seed.event = TraceEvent::kSeedSpawned;
  seed.pattern = 0;
  seed.branch = 1;
  seed.peer = 7;
  seed.value = 16.0;
  trace.record(seed);
  TraceRecord drop;
  drop.event = TraceEvent::kProbeDropped;
  drop.time_ms = 12.5;
  drop.pattern = 0;
  drop.branch = 1;
  drop.peer = 9;
  drop.note = "qos_violation";
  trace.record(drop);
  TraceRecord hold;
  hold.event = TraceEvent::kHoldAcquired;
  hold.time_ms = 3.25;
  hold.node = 2;
  hold.value = 300.0;
  trace.record(hold);

  auto back = ProbeTrace::from_json(trace.to_json());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->events().size(), 3u);
  EXPECT_EQ(back->events()[0], trace.events()[0]);
  EXPECT_EQ(back->events()[1], trace.events()[1]);
  EXPECT_EQ(back->events()[2], trace.events()[2]);
  EXPECT_EQ(back->dropped_events(), 0u);
}

TEST(Trace, CapBoundsMemoryAndReportsDrops) {
  ProbeTrace trace(2);
  for (int i = 0; i < 5; ++i) {
    TraceRecord r;
    r.event = TraceEvent::kHopTaken;
    r.time_ms = double(i);
    trace.record(r);
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped_events(), 3u);
  EXPECT_EQ(trace.count(TraceEvent::kHopTaken), 2u);

  auto back = ProbeTrace::from_json(trace.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dropped_events(), 3u);
}

TEST(Trace, FromJsonRejectsMalformed) {
  EXPECT_FALSE(ProbeTrace::from_json("not json").has_value());
  EXPECT_FALSE(ProbeTrace::from_json("{}").has_value());
  EXPECT_FALSE(ProbeTrace::from_json(
                   "{\"events\":[{\"event\":\"no_such_event\"}],\"dropped\":0}")
                   .has_value());
}

// --------------------------------------------- instrumented compose path

TEST(ObsIntegration, ComposePublishesMetricsAndTrace) {
  auto s = spider::testing::small_scenario();
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, s->sim,
                      core::BcpConfig{});
  MetricsRegistry metrics;
  ProbeTrace trace;
  bcp.set_observability(&metrics, &trace);
  s->alloc->set_metrics(&metrics);
  s->deployment->registry().set_metrics(&metrics);
  s->deployment->dht().set_metrics(&metrics);

  Rng rng{5};
  auto req = spider::testing::easy_request(*s);
  core::ComposeResult r = bcp.compose(req, rng);
  ASSERT_TRUE(r.success);
  for (core::HoldId h : r.best_holds) s->alloc->release_hold(h);

  // The registry mirrors the request's ComposeStats...
  EXPECT_EQ(metrics.counter("bcp.requests").value(), 1u);
  EXPECT_EQ(metrics.counter("bcp.compose_success").value(), 1u);
  EXPECT_EQ(metrics.counter("bcp.probes_spawned").value(),
            r.stats.probes_spawned);
  EXPECT_EQ(metrics.counter("bcp.holds_acquired").value(),
            r.stats.holds_acquired);
  // ...the allocator counted every reservation the engine made...
  EXPECT_GE(metrics.counter("alloc.holds_reserved").value(),
            r.stats.holds_acquired);
  EXPECT_EQ(metrics.gauge("alloc.holds_outstanding").value(), 0.0);
  // ...and discovery went through the DHT.
  EXPECT_GT(metrics.counter("discovery.lookups").value(), 0u);
  EXPECT_GT(metrics.counter("dht.routes").value(), 0u);

  // The trace saw the whole request life cycle.
  EXPECT_GT(trace.count(TraceEvent::kSeedSpawned), 0u);
  EXPECT_GT(trace.count(TraceEvent::kHopTaken), 0u);
  EXPECT_EQ(trace.count(TraceEvent::kHoldAcquired), r.stats.holds_acquired);
  EXPECT_EQ(trace.count(TraceEvent::kHoldReused), r.stats.holds_reused);
  EXPECT_EQ(trace.count(TraceEvent::kGraphSelected), 1u);

  // And the whole snapshot survives a JSON round trip.
  auto parsed = util::json_parse(metrics.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("counters")->number_or("bcp.requests", 0.0),
                   1.0);
  auto trace_back = ProbeTrace::from_json(trace.to_json());
  ASSERT_TRUE(trace_back.has_value());
  EXPECT_EQ(trace_back->events().size(), trace.events().size());
}

}  // namespace
}  // namespace spider
