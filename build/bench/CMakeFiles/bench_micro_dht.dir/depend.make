# Empty dependencies file for bench_micro_dht.
# This may be replaced when dependencies are built.
