file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dht.dir/bench_micro_dht.cpp.o"
  "CMakeFiles/bench_micro_dht.dir/bench_micro_dht.cpp.o.d"
  "bench_micro_dht"
  "bench_micro_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
