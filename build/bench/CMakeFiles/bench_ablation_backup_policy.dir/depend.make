# Empty dependencies file for bench_ablation_backup_policy.
# This may be replaced when dependencies are built.
