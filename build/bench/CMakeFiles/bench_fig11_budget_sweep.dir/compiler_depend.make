# Empty compiler generated dependencies file for bench_fig11_budget_sweep.
# This may be replaced when dependencies are built.
