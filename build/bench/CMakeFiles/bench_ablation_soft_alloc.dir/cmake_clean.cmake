file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_soft_alloc.dir/bench_ablation_soft_alloc.cpp.o"
  "CMakeFiles/bench_ablation_soft_alloc.dir/bench_ablation_soft_alloc.cpp.o.d"
  "bench_ablation_soft_alloc"
  "bench_ablation_soft_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_soft_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
