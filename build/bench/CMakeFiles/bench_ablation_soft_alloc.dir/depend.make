# Empty dependencies file for bench_ablation_soft_alloc.
# This may be replaced when dependencies are built.
