# Empty dependencies file for bench_ablation_trust.
# This may be replaced when dependencies are built.
