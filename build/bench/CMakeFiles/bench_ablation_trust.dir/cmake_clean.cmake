file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trust.dir/bench_ablation_trust.cpp.o"
  "CMakeFiles/bench_ablation_trust.dir/bench_ablation_trust.cpp.o.d"
  "bench_ablation_trust"
  "bench_ablation_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
