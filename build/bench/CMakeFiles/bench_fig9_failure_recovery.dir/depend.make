# Empty dependencies file for bench_fig9_failure_recovery.
# This may be replaced when dependencies are built.
