file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_failure_recovery.dir/bench_fig9_failure_recovery.cpp.o"
  "CMakeFiles/bench_fig9_failure_recovery.dir/bench_fig9_failure_recovery.cpp.o.d"
  "bench_fig9_failure_recovery"
  "bench_fig9_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
