# Empty compiler generated dependencies file for bench_ablation_quota.
# This may be replaced when dependencies are built.
