file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quota.dir/bench_ablation_quota.cpp.o"
  "CMakeFiles/bench_ablation_quota.dir/bench_ablation_quota.cpp.o.d"
  "bench_ablation_quota"
  "bench_ablation_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
