file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_vs_centralized.dir/bench_overhead_vs_centralized.cpp.o"
  "CMakeFiles/bench_overhead_vs_centralized.dir/bench_overhead_vs_centralized.cpp.o.d"
  "bench_overhead_vs_centralized"
  "bench_overhead_vs_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_vs_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
