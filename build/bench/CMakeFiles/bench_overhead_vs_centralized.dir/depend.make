# Empty dependencies file for bench_overhead_vs_centralized.
# This may be replaced when dependencies are built.
