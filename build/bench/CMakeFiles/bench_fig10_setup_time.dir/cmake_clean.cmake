file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_setup_time.dir/bench_fig10_setup_time.cpp.o"
  "CMakeFiles/bench_fig10_setup_time.dir/bench_fig10_setup_time.cpp.o.d"
  "bench_fig10_setup_time"
  "bench_fig10_setup_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_setup_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
