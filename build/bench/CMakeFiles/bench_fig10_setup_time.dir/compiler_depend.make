# Empty compiler generated dependencies file for bench_fig10_setup_time.
# This may be replaced when dependencies are built.
