# Empty compiler generated dependencies file for bench_fig8_success_ratio.
# This may be replaced when dependencies are built.
