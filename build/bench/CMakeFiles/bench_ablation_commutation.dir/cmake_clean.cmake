file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_commutation.dir/bench_ablation_commutation.cpp.o"
  "CMakeFiles/bench_ablation_commutation.dir/bench_ablation_commutation.cpp.o.d"
  "bench_ablation_commutation"
  "bench_ablation_commutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_commutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
