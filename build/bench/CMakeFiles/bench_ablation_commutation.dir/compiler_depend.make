# Empty compiler generated dependencies file for bench_ablation_commutation.
# This may be replaced when dependencies are built.
