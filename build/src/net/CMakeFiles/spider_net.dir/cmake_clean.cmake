file(REMOVE_RECURSE
  "CMakeFiles/spider_net.dir/generator.cpp.o"
  "CMakeFiles/spider_net.dir/generator.cpp.o.d"
  "CMakeFiles/spider_net.dir/planetlab.cpp.o"
  "CMakeFiles/spider_net.dir/planetlab.cpp.o.d"
  "CMakeFiles/spider_net.dir/router.cpp.o"
  "CMakeFiles/spider_net.dir/router.cpp.o.d"
  "CMakeFiles/spider_net.dir/topology.cpp.o"
  "CMakeFiles/spider_net.dir/topology.cpp.o.d"
  "libspider_net.a"
  "libspider_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
