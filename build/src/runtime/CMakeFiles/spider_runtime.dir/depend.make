# Empty dependencies file for spider_runtime.
# This may be replaced when dependencies are built.
