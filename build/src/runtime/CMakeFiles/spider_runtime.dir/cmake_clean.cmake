file(REMOVE_RECURSE
  "CMakeFiles/spider_runtime.dir/pipeline.cpp.o"
  "CMakeFiles/spider_runtime.dir/pipeline.cpp.o.d"
  "CMakeFiles/spider_runtime.dir/transforms.cpp.o"
  "CMakeFiles/spider_runtime.dir/transforms.cpp.o.d"
  "libspider_runtime.a"
  "libspider_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
