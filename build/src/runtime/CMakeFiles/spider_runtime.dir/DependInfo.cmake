
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/pipeline.cpp" "src/runtime/CMakeFiles/spider_runtime.dir/pipeline.cpp.o" "gcc" "src/runtime/CMakeFiles/spider_runtime.dir/pipeline.cpp.o.d"
  "/root/repo/src/runtime/transforms.cpp" "src/runtime/CMakeFiles/spider_runtime.dir/transforms.cpp.o" "gcc" "src/runtime/CMakeFiles/spider_runtime.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/spider_service.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/spider_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
