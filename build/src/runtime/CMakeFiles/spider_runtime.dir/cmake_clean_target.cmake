file(REMOVE_RECURSE
  "libspider_runtime.a"
)
