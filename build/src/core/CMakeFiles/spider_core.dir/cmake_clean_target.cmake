file(REMOVE_RECURSE
  "libspider_core.a"
)
