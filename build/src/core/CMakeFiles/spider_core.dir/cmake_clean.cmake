file(REMOVE_RECURSE
  "CMakeFiles/spider_core.dir/allocator.cpp.o"
  "CMakeFiles/spider_core.dir/allocator.cpp.o.d"
  "CMakeFiles/spider_core.dir/baselines.cpp.o"
  "CMakeFiles/spider_core.dir/baselines.cpp.o.d"
  "CMakeFiles/spider_core.dir/bcp.cpp.o"
  "CMakeFiles/spider_core.dir/bcp.cpp.o.d"
  "CMakeFiles/spider_core.dir/deployment.cpp.o"
  "CMakeFiles/spider_core.dir/deployment.cpp.o.d"
  "CMakeFiles/spider_core.dir/evaluator.cpp.o"
  "CMakeFiles/spider_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/spider_core.dir/session.cpp.o"
  "CMakeFiles/spider_core.dir/session.cpp.o.d"
  "libspider_core.a"
  "libspider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
