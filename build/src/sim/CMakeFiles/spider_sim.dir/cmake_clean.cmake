file(REMOVE_RECURSE
  "CMakeFiles/spider_sim.dir/simulator.cpp.o"
  "CMakeFiles/spider_sim.dir/simulator.cpp.o.d"
  "libspider_sim.a"
  "libspider_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
