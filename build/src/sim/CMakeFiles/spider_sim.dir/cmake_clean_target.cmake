file(REMOVE_RECURSE
  "libspider_sim.a"
)
