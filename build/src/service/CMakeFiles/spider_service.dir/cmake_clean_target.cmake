file(REMOVE_RECURSE
  "libspider_service.a"
)
