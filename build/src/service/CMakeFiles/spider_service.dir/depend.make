# Empty dependencies file for spider_service.
# This may be replaced when dependencies are built.
