
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/function_graph.cpp" "src/service/CMakeFiles/spider_service.dir/function_graph.cpp.o" "gcc" "src/service/CMakeFiles/spider_service.dir/function_graph.cpp.o.d"
  "/root/repo/src/service/qos.cpp" "src/service/CMakeFiles/spider_service.dir/qos.cpp.o" "gcc" "src/service/CMakeFiles/spider_service.dir/qos.cpp.o.d"
  "/root/repo/src/service/request_spec.cpp" "src/service/CMakeFiles/spider_service.dir/request_spec.cpp.o" "gcc" "src/service/CMakeFiles/spider_service.dir/request_spec.cpp.o.d"
  "/root/repo/src/service/service_graph.cpp" "src/service/CMakeFiles/spider_service.dir/service_graph.cpp.o" "gcc" "src/service/CMakeFiles/spider_service.dir/service_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/spider_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
