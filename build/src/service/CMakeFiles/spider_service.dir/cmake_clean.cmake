file(REMOVE_RECURSE
  "CMakeFiles/spider_service.dir/function_graph.cpp.o"
  "CMakeFiles/spider_service.dir/function_graph.cpp.o.d"
  "CMakeFiles/spider_service.dir/qos.cpp.o"
  "CMakeFiles/spider_service.dir/qos.cpp.o.d"
  "CMakeFiles/spider_service.dir/request_spec.cpp.o"
  "CMakeFiles/spider_service.dir/request_spec.cpp.o.d"
  "CMakeFiles/spider_service.dir/service_graph.cpp.o"
  "CMakeFiles/spider_service.dir/service_graph.cpp.o.d"
  "libspider_service.a"
  "libspider_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
