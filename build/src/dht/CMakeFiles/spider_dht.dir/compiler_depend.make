# Empty compiler generated dependencies file for spider_dht.
# This may be replaced when dependencies are built.
