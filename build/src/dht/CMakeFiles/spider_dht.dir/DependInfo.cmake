
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/node_id.cpp" "src/dht/CMakeFiles/spider_dht.dir/node_id.cpp.o" "gcc" "src/dht/CMakeFiles/spider_dht.dir/node_id.cpp.o.d"
  "/root/repo/src/dht/pastry.cpp" "src/dht/CMakeFiles/spider_dht.dir/pastry.cpp.o" "gcc" "src/dht/CMakeFiles/spider_dht.dir/pastry.cpp.o.d"
  "/root/repo/src/dht/routing_state.cpp" "src/dht/CMakeFiles/spider_dht.dir/routing_state.cpp.o" "gcc" "src/dht/CMakeFiles/spider_dht.dir/routing_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/spider_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
