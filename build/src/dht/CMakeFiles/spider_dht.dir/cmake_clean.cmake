file(REMOVE_RECURSE
  "CMakeFiles/spider_dht.dir/node_id.cpp.o"
  "CMakeFiles/spider_dht.dir/node_id.cpp.o.d"
  "CMakeFiles/spider_dht.dir/pastry.cpp.o"
  "CMakeFiles/spider_dht.dir/pastry.cpp.o.d"
  "CMakeFiles/spider_dht.dir/routing_state.cpp.o"
  "CMakeFiles/spider_dht.dir/routing_state.cpp.o.d"
  "libspider_dht.a"
  "libspider_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
