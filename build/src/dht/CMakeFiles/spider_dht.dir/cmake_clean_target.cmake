file(REMOVE_RECURSE
  "libspider_dht.a"
)
