file(REMOVE_RECURSE
  "libspider_overlay.a"
)
