file(REMOVE_RECURSE
  "CMakeFiles/spider_overlay.dir/overlay.cpp.o"
  "CMakeFiles/spider_overlay.dir/overlay.cpp.o.d"
  "libspider_overlay.a"
  "libspider_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
