# Empty compiler generated dependencies file for spider_overlay.
# This may be replaced when dependencies are built.
