# Empty dependencies file for spider_workload.
# This may be replaced when dependencies are built.
