file(REMOVE_RECURSE
  "libspider_workload.a"
)
