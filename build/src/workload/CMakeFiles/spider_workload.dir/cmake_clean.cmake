file(REMOVE_RECURSE
  "CMakeFiles/spider_workload.dir/scenario.cpp.o"
  "CMakeFiles/spider_workload.dir/scenario.cpp.o.d"
  "libspider_workload.a"
  "libspider_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
