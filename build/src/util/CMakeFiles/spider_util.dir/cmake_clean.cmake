file(REMOVE_RECURSE
  "CMakeFiles/spider_util.dir/log.cpp.o"
  "CMakeFiles/spider_util.dir/log.cpp.o.d"
  "CMakeFiles/spider_util.dir/rng.cpp.o"
  "CMakeFiles/spider_util.dir/rng.cpp.o.d"
  "CMakeFiles/spider_util.dir/sha1.cpp.o"
  "CMakeFiles/spider_util.dir/sha1.cpp.o.d"
  "CMakeFiles/spider_util.dir/stats.cpp.o"
  "CMakeFiles/spider_util.dir/stats.cpp.o.d"
  "libspider_util.a"
  "libspider_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
