# Empty dependencies file for spider_discovery.
# This may be replaced when dependencies are built.
