file(REMOVE_RECURSE
  "CMakeFiles/spider_discovery.dir/registry.cpp.o"
  "CMakeFiles/spider_discovery.dir/registry.cpp.o.d"
  "libspider_discovery.a"
  "libspider_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
