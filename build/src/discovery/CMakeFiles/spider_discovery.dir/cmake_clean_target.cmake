file(REMOVE_RECURSE
  "libspider_discovery.a"
)
