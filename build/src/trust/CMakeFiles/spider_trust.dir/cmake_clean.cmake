file(REMOVE_RECURSE
  "CMakeFiles/spider_trust.dir/trust.cpp.o"
  "CMakeFiles/spider_trust.dir/trust.cpp.o.d"
  "libspider_trust.a"
  "libspider_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
