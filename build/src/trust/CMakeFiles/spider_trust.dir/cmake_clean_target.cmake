file(REMOVE_RECURSE
  "libspider_trust.a"
)
