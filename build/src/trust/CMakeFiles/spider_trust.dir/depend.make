# Empty dependencies file for spider_trust.
# This may be replaced when dependencies are built.
