# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/service_test[1]_include.cmake")
include("/root/repo/build/tests/request_spec_test[1]_include.cmake")
include("/root/repo/build/tests/discovery_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/allocator_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/bcp_test[1]_include.cmake")
include("/root/repo/build/tests/async_bcp_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/trust_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
