# Empty compiler generated dependencies file for request_spec_test.
# This may be replaced when dependencies are built.
