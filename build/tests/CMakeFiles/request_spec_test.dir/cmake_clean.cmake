file(REMOVE_RECURSE
  "CMakeFiles/request_spec_test.dir/request_spec_test.cpp.o"
  "CMakeFiles/request_spec_test.dir/request_spec_test.cpp.o.d"
  "request_spec_test"
  "request_spec_test.pdb"
  "request_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
