
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/session_test.cpp" "tests/CMakeFiles/session_test.dir/session_test.cpp.o" "gcc" "tests/CMakeFiles/session_test.dir/session_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/spider_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/spider_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/spider_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/spider_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/spider_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/spider_service.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/spider_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
