file(REMOVE_RECURSE
  "CMakeFiles/dht_test.dir/dht_test.cpp.o"
  "CMakeFiles/dht_test.dir/dht_test.cpp.o.d"
  "dht_test"
  "dht_test.pdb"
  "dht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
