# Empty dependencies file for dht_test.
# This may be replaced when dependencies are built.
