# Empty dependencies file for bcp_test.
# This may be replaced when dependencies are built.
