file(REMOVE_RECURSE
  "CMakeFiles/bcp_test.dir/bcp_test.cpp.o"
  "CMakeFiles/bcp_test.dir/bcp_test.cpp.o.d"
  "bcp_test"
  "bcp_test.pdb"
  "bcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
