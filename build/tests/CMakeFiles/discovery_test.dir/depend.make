# Empty dependencies file for discovery_test.
# This may be replaced when dependencies are built.
