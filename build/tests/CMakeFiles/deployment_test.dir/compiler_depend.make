# Empty compiler generated dependencies file for deployment_test.
# This may be replaced when dependencies are built.
