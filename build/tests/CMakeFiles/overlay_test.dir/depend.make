# Empty dependencies file for overlay_test.
# This may be replaced when dependencies are built.
