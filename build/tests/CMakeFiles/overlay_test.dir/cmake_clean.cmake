file(REMOVE_RECURSE
  "CMakeFiles/overlay_test.dir/overlay_test.cpp.o"
  "CMakeFiles/overlay_test.dir/overlay_test.cpp.o.d"
  "overlay_test"
  "overlay_test.pdb"
  "overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
