# Empty dependencies file for async_bcp_test.
# This may be replaced when dependencies are built.
