file(REMOVE_RECURSE
  "CMakeFiles/async_bcp_test.dir/async_bcp_test.cpp.o"
  "CMakeFiles/async_bcp_test.dir/async_bcp_test.cpp.o.d"
  "async_bcp_test"
  "async_bcp_test.pdb"
  "async_bcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_bcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
