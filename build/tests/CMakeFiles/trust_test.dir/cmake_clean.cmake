file(REMOVE_RECURSE
  "CMakeFiles/trust_test.dir/trust_test.cpp.o"
  "CMakeFiles/trust_test.dir/trust_test.cpp.o.d"
  "trust_test"
  "trust_test.pdb"
  "trust_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
