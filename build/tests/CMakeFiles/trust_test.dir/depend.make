# Empty dependencies file for trust_test.
# This may be replaced when dependencies are built.
