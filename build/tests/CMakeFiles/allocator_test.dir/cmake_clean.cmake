file(REMOVE_RECURSE
  "CMakeFiles/allocator_test.dir/allocator_test.cpp.o"
  "CMakeFiles/allocator_test.dir/allocator_test.cpp.o.d"
  "allocator_test"
  "allocator_test.pdb"
  "allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
