# Empty compiler generated dependencies file for video_streaming.
# This may be replaced when dependencies are built.
