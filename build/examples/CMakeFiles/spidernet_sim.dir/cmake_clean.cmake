file(REMOVE_RECURSE
  "CMakeFiles/spidernet_sim.dir/spidernet_sim.cpp.o"
  "CMakeFiles/spidernet_sim.dir/spidernet_sim.cpp.o.d"
  "spidernet_sim"
  "spidernet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spidernet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
