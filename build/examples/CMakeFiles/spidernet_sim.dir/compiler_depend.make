# Empty compiler generated dependencies file for spidernet_sim.
# This may be replaced when dependencies are built.
