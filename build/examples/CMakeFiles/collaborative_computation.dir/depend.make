# Empty dependencies file for collaborative_computation.
# This may be replaced when dependencies are built.
