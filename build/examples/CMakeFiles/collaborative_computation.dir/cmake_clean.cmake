file(REMOVE_RECURSE
  "CMakeFiles/collaborative_computation.dir/collaborative_computation.cpp.o"
  "CMakeFiles/collaborative_computation.dir/collaborative_computation.cpp.o.d"
  "collaborative_computation"
  "collaborative_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
