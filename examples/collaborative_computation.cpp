// Collaborative scientific computation (§1's second motivating example):
// geographically distributed labs share data-analysis services; a
// composite experiment maps a DAG of analysis stages onto the overlay.
//
// The function graph here is a diamond with a commutation link —
//   ingest -> {denoise, calibrate} -> correlate -> report
// where denoise and calibrate may run in either branch assignment — so
// this example exercises DAG branch probing, destination-side branch
// merging, and commutation-derived pattern exploration.
//
// Build: cmake --build build && ./build/examples/collaborative_computation
#include <cstdio>

#include "core/baselines.hpp"
#include "core/bcp.hpp"
#include "workload/scenario.hpp"

using namespace spider;

int main() {
  // Build a deployment whose catalog is the analysis toolbox.
  workload::SimScenarioConfig config;
  config.seed = 31;
  config.ip_nodes = 800;
  config.peers = 120;
  config.function_count = 30;  // a wider toolbox; stages are functions 0-4
  auto scenario = workload::build_sim_scenario(config);
  auto& deployment = *scenario->deployment;
  const char* stage_names[5] = {"ingest", "denoise", "calibrate", "correlate",
                                "report"};

  // Guarantee every stage has at least one replica (deploying one by hand
  // also demonstrates the deployment API).
  for (service::FunctionId f = 0; f < 5; ++f) {
    if (deployment.replicas_oracle(f).empty()) {
      service::ServiceComponent c;
      c.host = overlay::PeerId(10 + f);
      c.function = f;
      c.perf = service::Qos::delay_loss(15.0, 0.0);
      c.required = service::Resources::cpu_mem(6, 6);
      deployment.deploy_component(c);
    }
  }

  // DAG request: 0 -> {1, 2} -> 3 -> 4, commutation between 1 and 2.
  service::FunctionGraph graph;
  for (service::FunctionId f = 0; f < 5; ++f) graph.add_function(f);
  graph.add_dependency(0, 1);
  graph.add_dependency(0, 2);
  graph.add_dependency(1, 3);
  graph.add_dependency(2, 3);
  graph.add_dependency(3, 4);
  graph.add_commutation(1, 2);

  std::printf("function graph: %zu stages, %zu dependency links, "
              "%zu commutation link(s)\n", graph.node_count(),
              graph.dependencies().size(), graph.commutations().size());
  const auto patterns = graph.patterns();
  std::printf("composition patterns after commutation exchange: %zu\n",
              patterns.size());
  const auto branches = graph.branches();
  std::printf("branch paths per pattern: %zu\n\n", branches.size());

  service::CompositeRequest request;
  request.graph = graph;
  request.qos_req = service::Qos::delay_loss(5000.0, 1.0);
  request.bandwidth_kbps = 100.0;
  request.source = 2;
  request.dest = 99;

  core::BcpConfig bcp_config;
  bcp_config.probing_budget = 96;
  core::BcpEngine bcp(deployment, *scenario->alloc, *scenario->evaluator,
                      scenario->sim, bcp_config);
  core::ComposeResult composed = bcp.compose(request, scenario->rng);
  if (!composed.success) {
    std::printf("composition failed\n");
    return 1;
  }
  std::printf("BCP merged %zu candidate graphs, %zu qualified\n",
              composed.stats.candidates_merged,
              composed.stats.qualified_found);
  std::printf("selected experiment mapping (psi=%.3f, worst-branch delay "
              "%.0f ms):\n", composed.best.psi_cost,
              composed.best.qos.delay_ms());
  for (service::FnNode n = 0; n < composed.best.pattern.node_count(); ++n) {
    std::printf("  node %u (%s as %s) -> lab peer %u\n", n,
                stage_names[n],
                stage_names[composed.best.pattern.function(n)],
                composed.best.mapping[n].host);
  }

  // Sanity: how close is the bounded search to exhaustive flooding?
  core::OptimalComposer optimal(deployment, *scenario->alloc,
                                *scenario->evaluator);
  for (core::HoldId h : composed.best_holds) scenario->alloc->release_hold(h);
  core::BaselineResult exhaustive = optimal.compose(request);
  if (exhaustive.success) {
    std::printf("\nexhaustive flooding examined %zu graphs; best psi %.3f "
                "(BCP reached %.3f with %llu probes)\n",
                exhaustive.candidates_examined, exhaustive.best.psi_cost,
                composed.best.psi_cost,
                (unsigned long long)composed.stats.probes_spawned);
  }
  return 0;
}
