// Quickstart: the smallest end-to-end SpiderNet program.
//
//  1. Build a P2P service overlay (power-law IP network, overlay mesh,
//     Pastry DHT) with components deployed across peers.
//  2. Submit a composite service request (linear function graph + QoS).
//  3. Run bounded composition probing (BCP) and inspect the chosen
//     service graph.
//  4. Establish the session (confirm the soft-allocated resources), then
//     tear it down.
//  5. Inspect the run through the observability layer: per-request probe
//     trace counts and the cumulative metrics registry, optionally dumped
//     as JSON with --metrics-out <file>.json.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "core/bcp.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/scenario.hpp"

using namespace spider;

int main(int argc, char** argv) {
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[i + 1];
      ++i;
    }
  }

  // 1. A small deployment: 400-node IP network, 60 peers, 12 functions.
  workload::SimScenarioConfig config;
  config.seed = 7;
  config.ip_nodes = 400;
  config.peers = 60;
  config.function_count = 12;
  auto scenario = workload::build_sim_scenario(config);
  auto& deployment = *scenario->deployment;
  std::printf("deployment: %zu peers, %zu components, %zu functions\n",
              deployment.peer_count(), deployment.component_count(),
              deployment.catalog().size());

  // 2. Compose "fn/0 -> fn/1 -> fn/2" from peer 3 to peer 42 with a
  //    1.5-second end-to-end delay bound and a 300 kbps stream.
  service::CompositeRequest request;
  request.graph = service::make_linear_graph({0, 1, 2});
  request.qos_req = service::Qos::delay_loss(1500.0, service::loss_to_additive(0.05));
  request.bandwidth_kbps = 300.0;
  request.max_failure_prob = 0.3;
  request.source = 3;
  request.dest = 42;

  // 3. Bounded composition probing, with the observability layer attached:
  //    the registry collects cumulative counters from every instrumented
  //    subsystem, the trace records this request's per-probe events.
  core::BcpConfig bcp_config;
  bcp_config.probing_budget = 32;
  core::BcpEngine bcp(deployment, *scenario->alloc, *scenario->evaluator,
                      scenario->sim, bcp_config);
  obs::MetricsRegistry metrics;
  obs::ProbeTrace trace;
  bcp.set_observability(&metrics, &trace);
  scenario->alloc->set_metrics(&metrics);
  deployment.registry().set_metrics(&metrics);
  deployment.dht().set_metrics(&metrics);
  core::ComposeResult composed = bcp.compose(request, scenario->rng);
  if (!composed.success) {
    std::printf("no qualified composition found\n");
    return 1;
  }
  std::printf("\ncomposed! probes=%llu messages=%llu candidates=%zu "
              "qualified=%zu setup=%.0f ms\n",
              (unsigned long long)composed.stats.probes_spawned,
              (unsigned long long)composed.stats.probe_messages,
              composed.stats.candidates_merged,
              composed.stats.qualified_found, composed.stats.setup_time_ms);
  std::printf("selected service graph (psi=%.3f, delay=%.0f ms, "
              "fail-prob=%.3f):\n", composed.best.psi_cost,
              composed.best.qos.delay_ms(), composed.best.failure_prob);
  for (service::FnNode n = 0; n < composed.best.pattern.node_count(); ++n) {
    const auto& m = composed.best.mapping[n];
    std::printf("  %s -> component %llu on peer %u (perf %.0f ms)\n",
                deployment.catalog().name(composed.best.pattern.function(n)).c_str(),
                (unsigned long long)m.id, m.host, m.perf.delay_ms());
  }
  std::printf("  %zu backup-capable qualified graphs available\n",
              composed.backups.size());

  // 4. Establish (confirms soft holds into a session) and tear down.
  core::RecoveryConfig recovery;
  recovery.backup_aggressiveness = 3.0;  // keep a few backups even with
                                         // comfortable QoS margins
  core::SessionManager sessions(deployment, *scenario->alloc,
                                *scenario->evaluator, bcp, scenario->sim,
                                recovery);
  sessions.set_metrics(&metrics);
  const core::SessionId id = sessions.establish(request, std::move(composed));
  if (id == core::kInvalidSession) {
    std::printf("admission lost (holds expired)\n");
    return 1;
  }
  std::printf("\nsession %llu established with %zu backup graphs\n",
              (unsigned long long)id, sessions.backup_count_of(id));
  sessions.teardown(id);
  std::printf("session torn down; all resources released\n");

  // 5. What the observability layer saw.
  std::printf("\nprobe trace: %zu events (%llu hops, %llu drops, "
              "%llu skips, %llu holds acquired, %llu reused)\n",
              trace.events().size(),
              (unsigned long long)trace.count(obs::TraceEvent::kHopTaken),
              (unsigned long long)trace.count(obs::TraceEvent::kProbeDropped),
              (unsigned long long)trace.count(obs::TraceEvent::kCandidateSkipped),
              (unsigned long long)trace.count(obs::TraceEvent::kHoldAcquired),
              (unsigned long long)trace.count(obs::TraceEvent::kHoldReused));
  std::printf("metrics registry: %zu instruments\n", metrics.size());
  if (metrics_out != nullptr) {
    if (metrics.write_json(metrics_out)) {
      std::printf("metrics written to %s\n", metrics_out);
    } else {
      std::fprintf(stderr, "failed to write %s\n", metrics_out);
      return 1;
    }
  }
  return 0;
}
