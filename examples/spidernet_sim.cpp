// spidernet_sim — configurable command-line driver for the simulator.
//
// Runs a SpiderNet deployment under an open-loop composition workload with
// optional churn and prints a one-page report: success rate, message
// overhead, setup-time distribution, recovery statistics.
//
//   ./build/examples/spidernet_sim --peers 300 --workload 100 --budget 64
//       --units 30 --churn 0.01 --seed 7
//
// Flags (all optional):
//   --peers N         overlay size                    (default 200)
//   --ip N            IP network size                 (default peers*8)
//   --functions N     catalog size                    (default 80)
//   --workload R      requests per time unit          (default 50)
//   --units N         measured time units             (default 20)
//   --budget B        BCP probing budget              (default 64)
//   --churn F         peer failure fraction per unit  (default 0)
//   --backups N       backup upper bound (0=off)      (default 3)
//   --seed S          RNG seed                        (default 42)
//   --spec FILE       compose ONE request parsed from a spec file (see
//                     src/service/request_spec.hpp for the format) instead
//                     of running the workload
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/session.hpp"
#include "service/request_spec.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

using namespace spider;

namespace {

double flag(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* string_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Parses the spec, guarantees each named function has replicas, composes
/// once and prints the selected graph.
int run_spec(workload::Scenario& s, core::BcpEngine& bcp, const char* path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open spec file: %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string error;
  auto parsed = service::parse_request_spec(buffer.str(),
                                            s.deployment->catalog(), &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "spec error: %s\n", error.c_str());
    return 1;
  }

  // Named functions that nothing provides yet get three fresh replicas.
  for (service::FnNode n = 0; n < parsed->request.graph.node_count(); ++n) {
    const auto fn = parsed->request.graph.function(n);
    if (!s.deployment->replicas_oracle(fn).empty()) continue;
    for (int r = 0; r < 3; ++r) {
      service::ServiceComponent c;
      c.host = overlay::PeerId(s.rng.next_below(s.deployment->peer_count()));
      c.function = fn;
      c.perf = service::Qos::delay_loss(s.rng.next_double(5, 40), 0.0);
      c.required = service::Resources::cpu_mem(6, 6);
      c.output_level = parsed->request.min_dest_level;  // deliverable
      s.deployment->deploy_component(c);
    }
  }

  service::CompositeRequest req = parsed->request;
  req.source = 0;
  req.dest = overlay::PeerId(s.deployment->peer_count() - 1);
  core::ComposeResult r = bcp.compose(req, s.rng);
  if (!r.success) {
    std::printf("no qualified composition for the spec\n");
    return 1;
  }
  std::printf("composed '%s' spec: psi=%.3f delay=%.0f ms, %zu qualified\n",
              path, r.best.psi_cost, r.best.qos.delay_ms(),
              r.stats.qualified_found);
  for (service::FnNode n = 0; n < r.best.pattern.node_count(); ++n) {
    std::printf("  %-16s -> peer %u\n",
                parsed->function_names[n].c_str(), r.best.mapping[n].host);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto peers = std::size_t(flag(argc, argv, "--peers", 200));
  const auto ip_nodes =
      std::size_t(flag(argc, argv, "--ip", double(peers) * 8));
  const auto functions = std::size_t(flag(argc, argv, "--functions", 80));
  const double workload = flag(argc, argv, "--workload", 50);
  const auto units = std::size_t(flag(argc, argv, "--units", 20));
  const int budget = int(flag(argc, argv, "--budget", 64));
  const double churn = flag(argc, argv, "--churn", 0.0);
  const int backups = int(flag(argc, argv, "--backups", 3));
  const auto seed = std::uint64_t(flag(argc, argv, "--seed", 42));

  workload::SimScenarioConfig config;
  config.seed = seed;
  config.ip_nodes = ip_nodes;
  config.peers = peers;
  config.function_count = functions;
  auto s = workload::build_sim_scenario(config);
  auto& sim = s->sim;

  core::BcpConfig bcp_config;
  bcp_config.probing_budget = budget;
  core::BcpEngine bcp(*s->deployment, *s->alloc, *s->evaluator, sim,
                      bcp_config);
  core::RecoveryConfig rec;
  rec.proactive = backups > 0;
  rec.backup_upper_bound = backups;
  rec.backup_aggressiveness = 3.0;
  core::SessionManager manager(*s->deployment, *s->alloc, *s->evaluator, bcp,
                               sim, rec);

  if (const char* spec = string_flag(argc, argv, "--spec")) {
    return run_spec(*s, bcp, spec);
  }

  workload::RequestProfile profile;
  profile.mean_session_duration = 5.0;

  RatioCounter success;
  SampleStats setup_ms, psi, probes;
  std::uint64_t messages = 0;

  // Arrivals.
  for (std::size_t unit = 0; unit < units; ++unit) {
    for (std::size_t k = 0; k < std::size_t(workload); ++k) {
      const double at =
          double(unit) * 1000.0 + s->rng.next_double() * 1000.0;
      sim.schedule_at(at, [&] {
        auto gen = workload::sample_request(*s, profile);
        core::ComposeResult r = bcp.compose(gen.request, s->rng);
        messages += r.stats.probe_messages + r.stats.discovery_messages;
        if (!r.success) {
          success.record(false);
          return;
        }
        setup_ms.add(r.stats.setup_time_ms);
        psi.add(r.best.psi_cost);
        probes.add(double(r.stats.probes_spawned));
        const core::SessionId id =
            manager.establish(gen.request, std::move(r));
        success.record(id != core::kInvalidSession);
        if (id != core::kInvalidSession) {
          sim.schedule_after(gen.duration * 1000.0,
                             [&, id] { manager.teardown(id); });
        }
      });
    }
  }
  // Churn.
  if (churn > 0.0) {
    for (std::size_t unit = 1; unit <= units; ++unit) {
      sim.schedule_at(double(unit) * 1000.0, [&] {
        const auto live = s->deployment->live_peers();
        const auto kills = std::max<std::size_t>(
            1, std::size_t(double(live.size()) * churn));
        for (std::size_t k = 0; k < kills; ++k) {
          const auto survivors = s->deployment->live_peers();
          if (survivors.size() <= 2) break;
          const auto victim = survivors[s->rng.next_below(survivors.size())];
          s->deployment->kill_peer(victim);
          manager.on_peer_failed(victim, s->rng);
          sim.schedule_after(s->rng.next_exponential(10.0) * 1000.0,
                             [&, victim] {
                               s->deployment->revive_peer(victim);
                             });
        }
        manager.run_maintenance();
      });
    }
  }
  sim.run_until(double(units + 1) * 1000.0);

  std::printf("SpiderNet simulation report\n");
  std::printf("---------------------------\n");
  std::printf("deployment : %zu peers / %zu IP nodes / %zu functions, "
              "seed %llu\n", peers, ip_nodes, functions,
              (unsigned long long)seed);
  std::printf("workload   : %.0f req/unit x %zu units, budget %d, "
              "churn %.1f%%/unit\n", workload, units, budget, churn * 100.0);
  std::printf("success    : %.3f (%llu/%llu requests)\n", success.ratio(),
              (unsigned long long)success.hits,
              (unsigned long long)success.total);
  if (!setup_ms.empty()) {
    std::printf("setup time : %s ms\n", setup_ms.summary().c_str());
    std::printf("psi        : mean %.3f\n", psi.mean());
    std::printf("probes/req : mean %.1f\n", probes.mean());
  }
  std::printf("messages   : %llu total (%.1f per request)\n",
              (unsigned long long)messages,
              success.total ? double(messages) / double(success.total) : 0.0);
  const auto& st = manager.stats();
  if (churn > 0.0) {
    std::printf("recovery   : breaks=%llu fast=%llu reactive=%llu lost=%llu "
                "(avg %.2f backups)\n",
                (unsigned long long)st.breaks,
                (unsigned long long)st.backup_switches,
                (unsigned long long)st.reactive_recoveries,
                (unsigned long long)st.losses, st.avg_backups());
  }
  std::printf("active sessions at end: %zu\n", manager.active_sessions());
  return 0;
}
