// Customizable video streaming (the paper's §6.2 prototype application).
//
// A user on one PlanetLab-like host streams video to another with
// on-demand transformations: down-scale for a small screen, embed a stock
// ticker, and re-quantify to save bandwidth. SpiderNet composes the three
// functions across the 102-host overlay; the composed service graph is
// then *executed* by the multithreaded streaming runtime (one worker
// thread per component, bounded ADU queues) to deliver real frames.
//
// Build: cmake --build build && ./build/examples/video_streaming
#include <cstdio>

#include "core/bcp.hpp"
#include "runtime/pipeline.hpp"
#include "workload/scenario.hpp"

using namespace spider;

int main() {
  // The paper's testbed: 102 hosts, six multimedia functions, one
  // component per host (~17 replicas per function).
  workload::PlanetLabScenarioConfig config;
  config.seed = 11;
  auto scenario = workload::build_planetlab_scenario(config);
  auto& deployment = *scenario->deployment;
  const auto& catalog = deployment.catalog();

  // The customization the user asked for.
  const std::vector<std::string> wanted = {
      "media/down-scale", "media/stock-ticker", "media/re-quantify"};
  std::vector<service::FunctionId> fns;
  for (const std::string& name : wanted) fns.push_back(catalog.find(name));

  service::CompositeRequest request;
  request.graph = service::make_linear_graph(fns);
  // Scaling and ticker order is exchangeable — let SpiderNet pick.
  request.graph.add_commutation(0, 1);
  request.qos_req = service::Qos::delay_loss(30000.0, 1.0);
  request.bandwidth_kbps = 500.0;
  request.source = 5;
  request.dest = 77;

  core::BcpConfig bcp_config;
  bcp_config.probing_budget = 64;
  bcp_config.probe_timeout_ms = 30000.0;
  bcp_config.objective = core::SelectionObjective::kMinDelay;
  core::BcpEngine bcp(deployment, *scenario->alloc, *scenario->evaluator,
                      scenario->sim, bcp_config);
  core::ComposeResult composed = bcp.compose(request, scenario->rng);
  if (!composed.success) {
    std::printf("composition failed\n");
    return 1;
  }

  std::printf("composed streaming path (end-to-end %0.f ms, %zu candidate "
              "graphs merged):\n", composed.best.qos.delay_ms(),
              composed.stats.candidates_merged);
  std::vector<std::string> node_functions;
  for (service::FnNode n = 0; n < composed.best.pattern.node_count(); ++n) {
    const auto& m = composed.best.mapping[n];
    const std::string& fname =
        catalog.name(composed.best.pattern.function(n));
    std::printf("  hop %u: %-22s on host %u\n", n, fname.c_str(), m.host);
    node_functions.push_back(fname);
  }

  // Execute the composed graph with the multithreaded runtime: 150 frames
  // of 320x240 video at 120 fps, with each service link carrying the
  // composed overlay path's transit latency (scaled down 10x so the demo
  // finishes quickly; remove the scale for true WAN pacing).
  runtime::PipelineConfig pipe_config;
  pipe_config.frame_count = 150;
  pipe_config.width = 320;
  pipe_config.height = 240;
  pipe_config.fps = 120.0;
  const auto& deps = composed.best.pattern.dependencies();
  for (const auto& [u, v] : deps) {
    double delay = 0.0;
    for (const auto& hop : composed.best.hops) {
      if (hop.from == u && hop.to == v) delay = hop.path.delay_ms;
    }
    pipe_config.edge_delay_ms.push_back(delay / 10.0);
  }
  for (const auto& hop : composed.best.hops) {
    if (hop.from == service::ServiceLinkHop::kEndpoint) {
      pipe_config.ingress_delay_ms = hop.path.delay_ms / 10.0;
    }
  }
  runtime::StreamingPipeline pipeline(composed.best.pattern, node_functions,
                                      runtime::TransformRegistry::standard(),
                                      pipe_config);
  std::printf("\nstreaming %zu frames (%ux%u @ %.0f fps)...\n",
              pipe_config.frame_count, pipe_config.width, pipe_config.height,
              pipe_config.fps);
  const runtime::PipelineReport report = pipeline.run();

  std::printf("delivered %zu/%zu frames, %.1f fps, mean in-pipeline latency "
              "%.0f us\n", report.frames_out, report.frames_in,
              report.throughput_fps, report.mean_latency_us);
  std::printf("output: %ux%u, quantization step %u\n", report.out_width,
              report.out_height, report.out_quant);
  for (const std::string& a : report.annotations) {
    std::printf("  overlay: %s\n", a.c_str());
  }
  return report.frames_out == report.frames_in ? 0 : 1;
}
