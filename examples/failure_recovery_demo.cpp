// Proactive failure recovery in action (§5).
//
// Establishes a long-lived streaming session with backup service graphs,
// then repeatedly kills peers of the active graph and shows the session
// switching to backups (fast path) or falling back to reactive BCP (slow
// path) until the request can no longer be served.
//
// Build: cmake --build build && ./build/examples/failure_recovery_demo
#include <cstdio>

#include "core/bcp.hpp"
#include "core/session.hpp"
#include "workload/scenario.hpp"

using namespace spider;

namespace {

void print_graph(const core::Deployment& deployment,
                 const service::ServiceGraph& graph) {
  for (service::FnNode n = 0; n < graph.pattern.node_count(); ++n) {
    const auto& m = graph.mapping[n];
    std::printf("    %-12s -> peer %u\n",
                deployment.catalog().name(graph.pattern.function(n)).c_str(),
                m.host);
  }
}

}  // namespace

int main() {
  workload::SimScenarioConfig config;
  config.seed = 23;
  config.ip_nodes = 500;
  config.peers = 80;
  config.function_count = 10;
  auto scenario = workload::build_sim_scenario(config);
  auto& deployment = *scenario->deployment;

  core::BcpConfig bcp_config;
  bcp_config.probing_budget = 128;
  core::BcpEngine bcp(deployment, *scenario->alloc, *scenario->evaluator,
                      scenario->sim, bcp_config);
  core::RecoveryConfig rec;
  rec.backup_upper_bound = 4;
  rec.backup_aggressiveness = 3.0;
  core::SessionManager sessions(deployment, *scenario->alloc,
                                *scenario->evaluator, bcp, scenario->sim, rec);

  service::CompositeRequest request;
  request.graph = service::make_linear_graph({0, 1, 2});
  request.qos_req = service::Qos::delay_loss(3000.0, 1.0);
  request.bandwidth_kbps = 200.0;
  request.max_failure_prob = 0.10;
  request.source = 0;
  request.dest = 1;

  core::ComposeResult composed = bcp.compose(request, scenario->rng);
  if (!composed.success) {
    std::printf("initial composition failed\n");
    return 1;
  }
  std::printf("initial composition: %zu qualified graphs found\n",
              composed.stats.qualified_found);
  const core::SessionId id = sessions.establish(request, std::move(composed));
  if (id == core::kInvalidSession) {
    std::printf("establish failed\n");
    return 1;
  }
  std::printf("session up with %zu backup graphs:\n",
              sessions.backup_count_of(id));
  print_graph(deployment, *sessions.active_graph(id));

  for (int round = 1; round <= 12; ++round) {
    const service::ServiceGraph* active = sessions.active_graph(id);
    if (active == nullptr) {
      std::printf("\nround %d: session lost — reactive recovery could not "
                  "find a qualified replacement\n", round);
      break;
    }
    const overlay::PeerId victim = active->mapping[0].host;
    std::printf("\nround %d: killing peer %u (hosts the %s component)\n",
                round, victim,
                deployment.catalog()
                    .name(active->pattern.function(0))
                    .c_str());
    deployment.kill_peer(victim);
    const auto outcomes = sessions.on_peer_failed(victim, scenario->rng);
    const char* what = "?";
    switch (outcomes.at(0)) {
      case core::RecoveryOutcome::kNotAffected: what = "not affected"; break;
      case core::RecoveryOutcome::kSwitchedToBackup:
        what = "FAST: switched to a maintained backup graph";
        break;
      case core::RecoveryOutcome::kReactiveRecovered:
        what = "SLOW: re-composed via reactive BCP";
        break;
      case core::RecoveryOutcome::kLost: what = "LOST"; break;
      case core::RecoveryOutcome::kNotificationLost:
        what = "notification lost in transit (monitor will detect)";
        break;
    }
    std::printf("  -> %s\n", what);
    if (sessions.active_graph(id) != nullptr) {
      std::printf("  new active graph (%zu backups remain):\n",
                  sessions.backup_count_of(id));
      print_graph(deployment, *sessions.active_graph(id));
      sessions.run_maintenance();
    }
  }

  const auto& stats = sessions.stats();
  std::printf("\nsummary: breaks=%llu fast=%llu reactive=%llu lost=%llu "
              "(avg %.2f backups, %.2f components replaced per fast switch)\n",
              (unsigned long long)stats.breaks,
              (unsigned long long)stats.backup_switches,
              (unsigned long long)stats.reactive_recoveries,
              (unsigned long long)stats.losses, stats.avg_backups(),
              stats.avg_switch_disruption());
  return 0;
}
